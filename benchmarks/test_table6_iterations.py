"""Bench: regenerate Table VI (iterations, double vs refloat)."""

from repro.experiments import table6


def test_table6_iterations(once, scale):
    data = once(table6.run, scale=scale, print_output=True)
    # gridgena's curious 1-iteration row, reproduced mechanistically.
    assert data[1311]["cg_double"] == 1
    assert data[1311]["cg_refloat"] == 1
    # refloat converges everywhere with bounded extra iterations.
    for sid, d in data.items():
        assert d["cg_refloat"] is not None
        assert d["bicgstab_refloat"] is not None
        assert d["cg_refloat"] <= 4 * max(d["cg_double"], 1) + 40
