"""Bench: regenerate Fig. 3 (cost sweeps a-c, locality d)."""

from repro.experiments import fig3


def test_fig3_cost_model_and_locality(once, scale):
    data = once(fig3.run, scale=scale, print_output=True)
    # (a) exponential in exponent bits; (b/c) linear in fraction bits.
    by_e = {(d["ev"], d["eM"]): d["cycles"] for d in data["a"]}
    assert by_e[(10, 10)] > 15 * by_e[(2, 2)]  # 2153 vs 113: exponential in e
    # (d): every suite matrix fits in <= 4 offset bits, vs 11 for FP64.
    assert all(d["locality_bits"] <= 4 for d in data["d"])
    assert all(d["fp64_bits"] == 11 for d in data["d"])
