"""Bench: regenerate Table I (truncation sweep on crystm03, CG)."""

from repro.experiments import table1


def test_table1_truncation(once, scale):
    data = once(table1.run, scale=scale, print_output=True,
                max_iterations=8000)
    # Shape assertions: full precision converges, deep exponent cut does not.
    assert data["exp"][0]["iterations"] is not None     # exp=11
    assert data["exp"][-1]["iterations"] is None        # exp=6 -> NC
    assert data["frac"][0]["iterations"] is not None    # frac=52
