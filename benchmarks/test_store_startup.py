"""Suite-startup benchmark: warm ``REPRO_ASSET_STORE`` attach vs cold rebuild.

Asset construction (matrix generation, partition argsort, quantisation) is
the startup cost every cold process pays before the first solve; the
persistent store replaces it with checksummed memory-mapped loads.  This
bench times both paths for the full 12-matrix suite and asserts the warm
path wins — the store's reason to exist.

Measured at ``default`` scale: at ``test`` scale the matrices are so small
that per-entry fixed costs (open/stat/json) dominate and the comparison
measures the filesystem, not the store.  At ``default`` scale the warm
attach beats the cold rebuild by ~4-5x on a quiet machine; the assertion
only requires parity-beating (>1x) so CI noise cannot flake it.

Carries the ``bench`` marker — deselected from tier-1 runs (``pytest.ini``).
"""

import time

import pytest

from repro.experiments import store
from repro.experiments.common import clear_run_caches, matrix_assets
from repro.sparse.gallery.suite import suite_ids

pytestmark = pytest.mark.bench

SCALE = "default"


def _time_suite_assets(repeats: int = 3) -> float:
    """Best-of-N wall time to materialise every suite asset from scratch
    (in-process caches cleared each round; the store state is whatever the
    environment says)."""
    best = float("inf")
    for _ in range(repeats):
        clear_run_caches()
        t0 = time.perf_counter()
        for sid in suite_ids():
            matrix_assets(sid, SCALE)
        best = min(best, time.perf_counter() - t0)
    return best


def test_bench_warm_store_startup_beats_cold_rebuild(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)

    monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
    cold = _time_suite_assets()

    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "store"))
    store.reset_counters()
    clear_run_caches()
    for sid in suite_ids():       # populate the store (cold + save cost)
        matrix_assets(sid, SCALE)
    assert store.counters()["saves"] == len(suite_ids())

    store.reset_counters()
    warm = _time_suite_assets()
    counts = store.counters()
    assert counts["builds"] == 0, "warm rounds must not rebuild anything"

    clear_run_caches()
    speedup = cold / warm
    print(f"\nsuite asset startup ({SCALE} scale): "
          f"cold {cold * 1e3:.1f} ms, warm-store {warm * 1e3:.1f} ms, "
          f"speedup {speedup:.2f}x")
    assert warm < cold, (
        f"warm store attach ({warm * 1e3:.1f} ms) must beat cold rebuild "
        f"({cold * 1e3:.1f} ms)")
