"""Microbenchmarks of the library's hot kernels (real repeated timing).

These are genuine pytest-benchmark measurements (not one-shot experiment
regenerations): the ReFloat conversion pipeline, the vector converter, the
quantised SpMV, and the crossbar engines.

All tests here carry the ``bench`` marker and are deselected by the default
pytest invocation (see ``pytest.ini``).  To run them and record the
machine-readable perf trajectory::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -m bench \
        --benchmark-json=BENCH_kernels.json -q

``BENCH_kernels.json`` at the repo root is the committed per-PR snapshot.
"""

import numpy as np
import pytest

from repro.formats import DEFAULT_SPEC, ReFloatSpec, quantize_values, quantize_vector
from repro.formats.refloat import vector_converter_plan
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import build_matrix

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def matrix():
    return build_matrix(355, "test")  # crystm03 analog


@pytest.fixture(scope="module")
def vector(matrix):
    rng = np.random.default_rng(0)
    return rng.standard_normal(matrix.shape[0])


def test_bench_quantize_values(benchmark):
    rng = np.random.default_rng(1)
    x = rng.standard_normal(1 << 16) * np.exp2(rng.uniform(-3, 3, 1 << 16))
    out, _ = benchmark(quantize_values, x, 3, 3)
    assert out.shape == x.shape


def test_bench_vector_converter(benchmark, vector):
    out, _ = benchmark(quantize_vector, vector, DEFAULT_SPEC)
    assert out.shape == vector.shape


def test_bench_block_partition(benchmark, matrix):
    bm = benchmark(BlockedMatrix, matrix, 7)
    assert bm.n_blocks > 0


def test_bench_matrix_quantization(benchmark, matrix):
    bm = BlockedMatrix(matrix, 7)
    Q = benchmark(bm.quantize, DEFAULT_SPEC)
    assert Q.nnz == bm.nnz


def test_bench_spmv_exact(benchmark, matrix, vector):
    op = ExactOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_refloat(benchmark, matrix, vector):
    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_feinberg(benchmark, matrix, vector):
    op = FeinbergOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_vector_converter_planned(benchmark, vector):
    """The zero-allocation plan path (what ``ReFloatOperator.matvec`` uses)."""
    plan = vector_converter_plan(vector.size, DEFAULT_SPEC)
    out, _ = benchmark(plan.convert, vector)
    assert out.shape == vector.shape


def test_bench_crossbar_block_mvm(benchmark):
    from repro.hardware import ProcessingEngine

    rng = np.random.default_rng(2)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    block = rng.standard_normal((16, 16))
    seg = rng.standard_normal(16)
    engine = ProcessingEngine(block, spec)
    y = benchmark(engine.multiply, seg)
    assert y.shape == (16,)


def test_bench_blocked_engine_mvm(benchmark, matrix):
    """All occupied blocks of a suite matrix in one vectorised engine pass."""
    from repro.hardware import BlockedEngine

    rng = np.random.default_rng(3)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    blocked = BlockedMatrix(matrix, 4)
    engine = BlockedEngine(blocked, spec)
    x = rng.standard_normal(matrix.shape[0])
    y = benchmark(engine.multiply, x)
    assert y.shape == (matrix.shape[1],)
