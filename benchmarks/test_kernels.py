"""Microbenchmarks of the library's hot kernels (real repeated timing).

These are genuine pytest-benchmark measurements (not one-shot experiment
regenerations): the ReFloat conversion pipeline, the vector converter, the
quantised SpMV, and the crossbar engines.

All tests here carry the ``bench`` marker and are deselected by the default
pytest invocation (see ``pytest.ini``).  To run them and record the
machine-readable perf trajectory::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -m bench \
        --benchmark-json=BENCH_kernels.json -q

``BENCH_kernels.json`` at the repo root is the committed per-PR snapshot.
"""

import numpy as np
import pytest

from repro.formats import DEFAULT_SPEC, ReFloatSpec, quantize_values, quantize_vector
from repro.formats.refloat import vector_converter_plan
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import build_matrix

pytestmark = pytest.mark.bench


@pytest.fixture(scope="module")
def matrix():
    return build_matrix(355, "test")  # crystm03 analog


@pytest.fixture(scope="module")
def vector(matrix):
    rng = np.random.default_rng(0)
    return rng.standard_normal(matrix.shape[0])


def test_bench_quantize_values(benchmark):
    rng = np.random.default_rng(1)
    x = rng.standard_normal(1 << 16) * np.exp2(rng.uniform(-3, 3, 1 << 16))
    out, _ = benchmark(quantize_values, x, 3, 3)
    assert out.shape == x.shape


def test_bench_vector_converter(benchmark, vector):
    out, _ = benchmark(quantize_vector, vector, DEFAULT_SPEC)
    assert out.shape == vector.shape


def test_bench_block_partition(benchmark, matrix):
    bm = benchmark(BlockedMatrix, matrix, 7)
    assert bm.n_blocks > 0


def test_bench_matrix_quantization(benchmark, matrix):
    bm = BlockedMatrix(matrix, 7)
    Q = benchmark(bm.quantize, DEFAULT_SPEC)
    assert Q.nnz == bm.nnz


def test_bench_spmv_exact(benchmark, matrix, vector):
    op = ExactOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_refloat(benchmark, matrix, vector):
    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_feinberg(benchmark, matrix, vector):
    op = FeinbergOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_vector_converter_planned(benchmark, vector):
    """The zero-allocation plan path (what ``ReFloatOperator.matvec`` uses)."""
    plan = vector_converter_plan(vector.size, DEFAULT_SPEC)
    out, _ = benchmark(plan.convert, vector)
    assert out.shape == vector.shape


def test_bench_crossbar_block_mvm(benchmark):
    from repro.hardware import ProcessingEngine

    rng = np.random.default_rng(2)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    block = rng.standard_normal((16, 16))
    seg = rng.standard_normal(16)
    engine = ProcessingEngine(block, spec)
    y = benchmark(engine.multiply, seg)
    assert y.shape == (16,)


def test_bench_blocked_engine_mvm(benchmark, matrix):
    """All occupied blocks of a suite matrix in one vectorised engine pass."""
    from repro.hardware import BlockedEngine

    rng = np.random.default_rng(3)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    blocked = BlockedMatrix(matrix, 4)
    engine = BlockedEngine(blocked, spec)
    x = rng.standard_normal(matrix.shape[0])
    y = benchmark(engine.multiply, x)
    assert y.shape == (matrix.shape[1],)


# ----------------------------------------------------------------------
# BSR-path benches: the contiguous block layout as the engine operand.


def test_bench_blocked_engine_construction(benchmark, matrix):
    """Building the signed-cell tensor straight from the BSR scatter map."""
    from repro.hardware import BlockedEngine

    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    blocked = BlockedMatrix(matrix, 4)
    blocked.bsr  # pre-materialise the layout: the bench times the engine
    engine = benchmark(BlockedEngine, blocked, spec)
    assert engine.n_engines == blocked.n_blocks


def test_bench_engine_construction_speedup_over_per_block(matrix):
    """Asserted delta: one scatter-based BlockedEngine build beats the
    per-block ProcessingEngine loop (the reference path it is pinned
    against) by >= 10x.  Timed directly (best-of-repeats) so the ratio is
    asserted, not just recorded."""
    import time

    from repro.hardware import BlockedEngine, ProcessingEngine

    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    blocked = BlockedMatrix(matrix, 4)
    blocked.bsr
    bi, bj = blocked.block_coords()

    def best_of(fn, repeats=5):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    def per_block():
        for i, j in zip(bi, bj):
            ProcessingEngine(blocked.dense_block(int(i), int(j)), spec)

    t_blocked = best_of(lambda: BlockedEngine(blocked, spec))
    t_loop = best_of(per_block, repeats=3)
    assert t_loop > 10.0 * t_blocked, (
        f"BSR engine construction only {t_loop / t_blocked:.1f}x faster "
        f"than the per-block loop")


def test_bench_blocked_engine_matmat(benchmark, matrix):
    """The engine array's batched k=16 contraction over the cell tensor."""
    from repro.hardware import BlockedEngine

    rng = np.random.default_rng(5)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    blocked = BlockedMatrix(matrix, 4)
    engine = BlockedEngine(blocked, spec)
    X = rng.standard_normal((matrix.shape[0], 16))
    Y = benchmark(engine.multiply_batch, X)
    assert Y.shape == (matrix.shape[1], 16)


def test_bench_store_warm_attach(benchmark, tmp_path, monkeypatch, matrix):
    """Memory-map attach of the contiguous BSR entry (trusted local store:
    verification off, the pure zero-reassembly path).  The functional
    asserted delta: the attach rebuilds nothing — the tensor comes back as
    the on-disk memmap."""
    from repro.experiments import store

    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
    monkeypatch.setenv("REPRO_ASSET_STORE_VERIFY", "0")
    blocked = BlockedMatrix(matrix, 7)
    rhs = matrix @ np.ones(matrix.shape[0])
    assert store.save_entry(355, "test", matrix, rhs, blocked) is not None

    entry = benchmark(store.load_entry, 355, "test")
    assert entry is not None
    data = entry.blocked.bsr.data
    base = data if isinstance(data, np.memmap) else data.base
    assert isinstance(base, np.memmap)
    assert store.counters()["builds"] == 0


MATMAT_K = 16


@pytest.fixture(scope="module")
def rhs_block(matrix):
    rng = np.random.default_rng(4)
    return rng.standard_normal((matrix.shape[0], MATMAT_K))


def _looped_matvec(op, X):
    return np.column_stack([op.matvec(X[:, j]) for j in range(X.shape[1])])


def test_bench_spmv_refloat_matmat(benchmark, matrix, rhs_block):
    """The batched multi-RHS fast path: one conversion + one SpMM for k=16."""
    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    Y = benchmark(op.matmat, rhs_block)
    assert Y.shape == rhs_block.shape


def test_bench_spmv_refloat_matvec_loop(benchmark, matrix, rhs_block):
    """The looped-matvec equivalent of the matmat bench (k=16 conversions)."""
    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    Y = benchmark(_looped_matvec, op, rhs_block)
    assert Y.shape == rhs_block.shape


def test_bench_matmat_speedup_over_loop(matrix, rhs_block):
    """Acceptance pin: batched matmat throughput >= 2x the looped matvecs.

    Timed directly (best-of-repeats median) rather than via two separate
    pytest-benchmark entries so the ratio is asserted, not just recorded.
    """
    import time

    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    Y_loop = _looped_matvec(op, rhs_block)
    Y_batch = op.matmat(rhs_block)
    np.testing.assert_array_equal(Y_batch, Y_loop)  # same bits, then race

    def best_of(fn, repeats=7):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    t_batch = best_of(lambda: op.matmat(rhs_block))
    t_loop = best_of(lambda: _looped_matvec(op, rhs_block))
    assert t_loop > 2.0 * t_batch, (
        f"batched matmat only {t_loop / t_batch:.2f}x faster than the loop")
