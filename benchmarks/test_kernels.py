"""Microbenchmarks of the library's hot kernels (real repeated timing).

These are genuine pytest-benchmark measurements (not one-shot experiment
regenerations): the ReFloat conversion pipeline, the vector converter, the
quantised SpMV, and one CG step on each platform.
"""

import numpy as np
import pytest

from repro.formats import DEFAULT_SPEC, quantize_values, quantize_vector
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import build_matrix


@pytest.fixture(scope="module")
def matrix():
    return build_matrix(355, "test")  # crystm03 analog


@pytest.fixture(scope="module")
def vector(matrix):
    rng = np.random.default_rng(0)
    return rng.standard_normal(matrix.shape[0])


def test_bench_quantize_values(benchmark):
    rng = np.random.default_rng(1)
    x = rng.standard_normal(1 << 16) * np.exp2(rng.uniform(-3, 3, 1 << 16))
    out, _ = benchmark(quantize_values, x, 3, 3)
    assert out.shape == x.shape


def test_bench_vector_converter(benchmark, vector):
    out, _ = benchmark(quantize_vector, vector, DEFAULT_SPEC)
    assert out.shape == vector.shape


def test_bench_block_partition(benchmark, matrix):
    bm = benchmark(BlockedMatrix, matrix, 7)
    assert bm.n_blocks > 0


def test_bench_matrix_quantization(benchmark, matrix):
    bm = BlockedMatrix(matrix, 7)
    Q = benchmark(bm.quantize, DEFAULT_SPEC)
    assert Q.nnz == bm.nnz


def test_bench_spmv_exact(benchmark, matrix, vector):
    op = ExactOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_refloat(benchmark, matrix, vector):
    op = ReFloatOperator(matrix, DEFAULT_SPEC)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_spmv_feinberg(benchmark, matrix, vector):
    op = FeinbergOperator(matrix)
    y = benchmark(op.matvec, vector)
    assert y.shape == vector.shape


def test_bench_crossbar_block_mvm(benchmark):
    from repro.formats import ReFloatSpec
    from repro.hardware import ProcessingEngine

    rng = np.random.default_rng(2)
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    block = rng.standard_normal((16, 16))
    seg = rng.standard_normal(16)
    engine = ProcessingEngine(block, spec)
    y = benchmark(engine.multiply, seg)
    assert y.shape == (16,)
