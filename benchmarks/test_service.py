"""Service benchmarks: coalesced vs uncoalesced solve throughput.

Real pytest-benchmark measurements of the solve daemon running in
process: a burst of same-key vector requests served through the
coalescer's lockstep matmat batches, the same burst with coalescing
disabled (singleton batches — the per-request serial path), and the
lockstep gang solver on its own against the per-column serial loop.
The coalesced/uncoalesced pair is the service's headline number: the
work is bit-identical, only the batching differs.

All tests carry the ``bench`` marker and are deselected by the default
pytest invocation.  Refresh the committed snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_service.py -m bench \
        --benchmark-json=BENCH_service.json -q

``BENCH_service.json`` at the repo root is the committed per-PR snapshot;
CI gates it through ``check_regression.py`` alongside the kernel numbers.
"""

import threading

import numpy as np
import pytest

from repro.api import RunConfig
from repro.experiments.common import clear_run_caches, platform_operator
from repro.service import ServiceClient, SolveService, VectorJob
from repro.solvers import solve_lockstep, solve_many

pytestmark = pytest.mark.bench

SID = 2257
N_REQUESTS = 6


@pytest.fixture(scope="module")
def rhs_block(scale):
    _, op = platform_operator(SID, scale)
    rng = np.random.default_rng(41)
    return rng.standard_normal((op.shape[0], N_REQUESTS))


def _serve_burst(coalesce, rhs, scale):
    """One daemon lifetime serving a burst of concurrent same-key jobs."""
    cfg = RunConfig(service_batch_window=0.5,
                    service_batch_max=N_REQUESTS,
                    service_coalesce=coalesce)
    svc = SolveService(port=0, config=cfg)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    host, port = svc.address
    client = ServiceClient(f"{host}:{port}", timeout=300.0)
    results = [None] * rhs.shape[1]

    def worker(i):
        job = VectorJob(sid=SID, scale=scale,
                        rhs=tuple(float(v) for v in rhs[:, i]))
        results[i] = client.solve_vector(job)

    workers = [threading.Thread(target=worker, args=(i,))
               for i in range(rhs.shape[1])]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    svc.shutdown()
    thread.join(timeout=30)
    stats = svc.counters.to_dict()
    svc.close()
    return results, stats


def _record_latency(benchmark, stats):
    """Stamp the daemon's per-request p50/p95 (from the last round's
    counters) into the snapshot; ``check_regression.py`` gates
    ``extra_info`` metrics alongside the medians."""
    benchmark.extra_info["latency_p50_s"] = stats["latency"]["p50_s"]
    benchmark.extra_info["latency_p95_s"] = stats["latency"]["p95_s"]


def test_bench_service_burst_coalesced(benchmark, rhs_block, scale):
    platform_operator(SID, scale)  # warm the asset cache out of the timing
    results, stats = benchmark.pedantic(
        _serve_burst, args=(True, rhs_block, scale), rounds=3, iterations=1)
    assert all(r["converged"] for r in results)
    assert stats["coalesced_batches"] >= 1
    assert stats["latency"]["count"] == N_REQUESTS
    _record_latency(benchmark, stats)
    clear_run_caches()


def test_bench_service_burst_uncoalesced(benchmark, rhs_block, scale):
    platform_operator(SID, scale)
    results, stats = benchmark.pedantic(
        _serve_burst, args=(False, rhs_block, scale), rounds=3, iterations=1)
    assert all(r["converged"] for r in results)
    assert stats["coalesced_batches"] == 0
    assert stats["batches"] == N_REQUESTS
    _record_latency(benchmark, stats)
    clear_run_caches()


def test_bench_lockstep_gang(benchmark, rhs_block, scale):
    _, op = platform_operator(SID, scale)
    results = benchmark(solve_lockstep, op, rhs_block, solver="cg")
    assert all(r.converged for r in results)


def test_bench_serial_columns(benchmark, rhs_block, scale):
    _, op = platform_operator(SID, scale)
    results = benchmark(solve_many, op, rhs_block, solver="cg")
    assert all(r.converged for r in results)
