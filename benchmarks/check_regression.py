#!/usr/bin/env python
"""Gate kernel performance against the committed benchmark snapshot.

Compares a fresh ``pytest-benchmark`` JSON run against the repo's
``BENCH_kernels.json`` and exits nonzero when any kernel's median slows
down by more than the threshold (default 30%).  Produce the fresh run with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -m bench \
        --benchmark-json=BENCH_fresh.json -q
    python benchmarks/check_regression.py --fresh BENCH_fresh.json

CI runs this as a *non-blocking* job (shared runners have noisy clocks —
the job informs reviewers, it never gates a merge); on a quiet machine the
same command is a real regression gate.  Kernels present on only one side
are reported but never fail the check, so adding or retiring benchmarks
does not break the pipeline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


def load_medians(path) -> dict:
    """Map benchmark name -> median seconds from a pytest-benchmark JSON.

    Numeric ``extra_info`` entries (the service benches record per-request
    ``latency_p50_s``/``latency_p95_s`` there) become ``name[key]``
    pseudo-kernels, so tail latency gates through the same threshold as
    the medians.
    """
    with open(path) as fh:
        data = json.load(fh)
    benches = data.get("benchmarks")
    if not isinstance(benches, list):
        raise SystemExit(f"{path}: not a pytest-benchmark JSON (no 'benchmarks')")
    out = {}
    for b in benches:
        name = b["name"]
        out[name] = float(b["stats"]["median"])
        for key, value in (b.get("extra_info") or {}).items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out[f"{name}[{key}]"] = float(value)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Fail on >threshold median regressions vs the snapshot.")
    parser.add_argument("--fresh", required=True,
                        help="benchmark JSON of the fresh run")
    parser.add_argument("--baseline", default=str(DEFAULT_BASELINE),
                        help="committed snapshot (default: BENCH_kernels.json)")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional slowdown (default: 0.30)")
    args = parser.parse_args(argv)

    baseline = load_medians(args.baseline)
    fresh = load_medians(args.fresh)

    shared = sorted(set(baseline) & set(fresh))
    only_base = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))

    regressions = []
    width = max((len(n) for n in shared), default=10)
    print(f"{'kernel':<{width}}  {'baseline':>12}  {'fresh':>12}  {'delta':>8}")
    for name in shared:
        base, now = baseline[name], fresh[name]
        delta = now / base - 1.0 if base > 0 else float("inf")
        flag = "  << REGRESSION" if delta > args.threshold else ""
        print(f"{name:<{width}}  {base:12.3e}  {now:12.3e}  {delta:+8.1%}{flag}")
        if delta > args.threshold:
            regressions.append((name, delta))
    for name in only_base:
        print(f"{name:<{width}}  (missing from fresh run)")
    for name in only_fresh:
        print(f"{name:<{width}}  (new kernel, no baseline)")

    if not shared:
        print("no shared kernels between baseline and fresh run", file=sys.stderr)
        return 2
    if regressions:
        worst = max(delta for _, delta in regressions)
        print(f"\n{len(regressions)} kernel(s) regressed beyond "
              f"{args.threshold:.0%} (worst {worst:+.1%})", file=sys.stderr)
        return 1
    print(f"\nall {len(shared)} kernels within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
