"""Bench: regenerate Table V (matrix inventory with condition numbers)."""

import os

from repro.experiments import table5


def test_table5_suite(once, scale):
    with_kappa = os.environ.get("REPRO_SKIP_KAPPA") != "1"
    data = once(table5.run, scale=scale, print_output=True,
                with_condition=with_kappa)
    assert len(data) == 12
    for sid, d in data.items():
        assert d["rows"] > 0 and d["nnz"] > d["rows"]
