"""Benchmark configuration.

Experiment benches regenerate a paper table/figure per run; they are
deterministic end-to-end computations, so they run pedantically (1 round).
Set ``REPRO_BENCH_SCALE`` to ``test`` (fast, default), ``default`` (quarter
scale, minutes) or ``paper`` (paper-size matrices) to choose the matrix
scale; run with ``-s`` to see the regenerated tables.

The kernel *microbenchmarks* (``test_kernels.py``) carry the ``bench``
marker and are deselected by the default pytest invocation (``pytest.ini``
adds ``-m "not bench"``), keeping tier-1 runs fast.  Run them and refresh
the committed perf snapshot with::

    PYTHONPATH=src python -m pytest benchmarks/test_kernels.py -m bench \
        --benchmark-json=BENCH_kernels.json -q

``BENCH_kernels_seed.json`` preserves the seed-commit numbers the current
snapshot's ``seed_baseline`` section is computed against.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "test")


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
