"""Benchmark configuration.

Experiment benches regenerate a paper table/figure per run; they are
deterministic end-to-end computations, so they run pedantically (1 round).
Set ``REPRO_BENCH_SCALE`` to ``test`` (fast, default), ``default`` (quarter
scale, minutes) or ``paper`` (paper-size matrices) to choose the matrix
scale; run with ``-s`` to see the regenerated tables.
"""

import os

import pytest


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "test")


@pytest.fixture
def once(benchmark):
    """Run a deterministic experiment exactly once under the benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
