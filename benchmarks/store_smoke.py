#!/usr/bin/env python
"""Asset-store smoke harness: run the suite, report the store counters.

CI runs this twice against one ``REPRO_ASSET_STORE`` tmpdir: the first
(cold) run builds and materialises every asset, the second — a brand-new
interpreter — must attach to the store with **zero** matrix builds::

    export REPRO_ASSET_STORE=$(mktemp -d)
    PYTHONPATH=src python benchmarks/store_smoke.py
    PYTHONPATH=src python benchmarks/store_smoke.py \
        --expect-zero-builds --expect-bsr-layout

Exits nonzero when ``--expect-zero-builds`` is violated (a build happened,
or nothing was actually served from the store), when ``--expect-bsr-layout``
finds a current-version entry without the contiguous block tensor (the
store is still serving a pre-v2 layout), or when the environment is missing
``REPRO_ASSET_STORE`` entirely.
"""

import argparse
import json
import os
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="test",
                        help="suite scale (default: test)")
    parser.add_argument("--solver", default="cg",
                        help="solver to sweep (default: cg)")
    parser.add_argument("--expect-zero-builds", action="store_true",
                        help="fail unless every asset came from the store")
    parser.add_argument("--expect-bsr-layout", action="store_true",
                        help="fail unless every current-version entry "
                             "persists the contiguous BSR block tensor")
    args = parser.parse_args()

    if not os.environ.get("REPRO_ASSET_STORE"):
        print("store_smoke: REPRO_ASSET_STORE must point at a directory",
              file=sys.stderr)
        return 2

    from repro.experiments import store
    from repro.experiments.common import run_suite

    runs = run_suite(args.solver, args.scale, use_cache=False, max_workers=1)
    counts = store.counters()
    summary = {
        "scale": args.scale,
        "solver": args.solver,
        "matrices": len(runs),
        "counters": counts,
    }
    print(json.dumps(summary, indent=1, sort_keys=True))

    if args.expect_zero_builds:
        if counts["builds"] != 0:
            print(f"store_smoke: expected zero builds against a warm store, "
                  f"got {counts['builds']}", file=sys.stderr)
            return 1
        if counts["hits"] != len(runs):
            print(f"store_smoke: expected {len(runs)} store hits, "
                  f"got {counts['hits']}", file=sys.stderr)
            return 1

    if args.expect_bsr_layout:
        vroot = store.store_root() / f"v{store.STORE_VERSION}"
        entries = sorted(p for p in vroot.iterdir() if p.is_dir())
        if len(entries) < len(runs):
            print(f"store_smoke: only {len(entries)} entries under "
                  f"{vroot.name}/ for {len(runs)} matrices", file=sys.stderr)
            return 1
        missing = [e.name for e in entries
                   if not all((e / f"{name}.npy").is_file()
                              for name in ("bsr_data", "bsr_indptr",
                                           "bsr_indices", "bsr_scatter"))]
        if missing:
            print(f"store_smoke: entries without the contiguous BSR layout: "
                  f"{missing}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
