"""Bench: regenerate Fig. 10 (RTN-noise robustness on crystm03, CG)."""

from repro.experiments import fig10


def test_fig10_noise(once, scale):
    data = once(fig10.run, scale=scale, print_output=True,
                max_iterations=20000)
    # Paper: within 10% noise the speedup degrades very little; at 25% a
    # healthy speedup remains.
    by_sigma = {d["sigma"]: d for d in data}
    assert by_sigma[0.001]["converged"]
    assert by_sigma[0.10]["converged"]
    low, mid = by_sigma[0.001], by_sigma[0.10]
    assert mid["iterations"] < 10 * low["iterations"] + 100
    # At 25% the solver still reaches the tolerance (the paper's headline);
    # the retained speedup is scale-dependent (6.85x at paper scale).
    assert by_sigma[0.25]["converged"]
    assert by_sigma[0.25]["speedup_vs_gpu"] > 0
