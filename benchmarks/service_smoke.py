#!/usr/bin/env python
"""End-to-end smoke test of the solve-service daemon.

Starts ``python -m repro.experiments serve`` as a real subprocess, fires
concurrent clients at it from threads — same-key vector jobs that must
coalesce into one lockstep batch, plus mixed-sid engine requests — and
checks the service contract:

- every response arrives (no hangs, no dropped futures),
- vector solutions are bit-identical to the serial single-RHS reference
  computed in this (separate) process,
- engine runs are exactly the local ``MatrixRun.to_dict()`` payloads,
- at least one coalesced batch formed (``coalesced_batches >= 1``),
- the daemon exits 0 on ``POST /v1/shutdown``.

``--chaos`` additionally injects a deterministic worker crash into the
daemon's process pool (``crash@attempt=1,sid=2257``): the engine must
rebuild the pool, retry, and still deliver every response bit-identically.

CI runs both modes; locally::

    PYTHONPATH=src python benchmarks/service_smoke.py [--chaos]
"""

import argparse
import json
import re
import subprocess
import sys
import threading

import numpy as np

SID_VECTOR = 2257
ENGINE_SIDS = (353, 2257)
N_VECTOR_CLIENTS = 4


def start_daemon(chaos: bool):
    cmd = [sys.executable, "-m", "repro.experiments", "serve",
           "--host", "127.0.0.1", "--port", "0", "--workers", "2",
           "--batch-window", "0.25", "--batch-max", str(N_VECTOR_CLIENTS),
           "--json", "-"]
    if chaos:
        cmd += ["--executor", "process",
                "--fault", f"crash@attempt=1,sid={SID_VECTOR}",
                "--retries", "2"]
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True)
    line = proc.stdout.readline()
    match = re.search(r"listening on http://([\d.]+):(\d+)", line)
    if not match:
        proc.kill()
        raise SystemExit(f"daemon did not announce its address: {line!r}\n"
                         f"{proc.stderr.read()}")
    return proc, f"{match.group(1)}:{match.group(2)}"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chaos", action="store_true",
                        help="inject a worker crash into the daemon's pool")
    parser.add_argument("--scale", default="test")
    args = parser.parse_args(argv)

    # References first, in THIS process: the daemon must reproduce them
    # bit-for-bit across the HTTP and coalescing boundary.
    from repro.api.config import RunConfig
    from repro.api.specs import RunRequest
    from repro.experiments.common import platform_operator, run_request
    from repro.service import ServiceClient, VectorJob
    from repro.solvers import cg

    crit = RunConfig.from_env().effective_criterion
    _, op = platform_operator(SID_VECTOR, args.scale)
    n = op.shape[0]
    rng = np.random.default_rng(97)
    cols = [rng.standard_normal(n) for _ in range(N_VECTOR_CLIENTS)]
    vector_refs = [cg(op, c, criterion=crit) for c in cols]
    engine_requests = [RunRequest(sid=sid, solver="cg", scale=args.scale)
                       for sid in ENGINE_SIDS]
    engine_refs = [run_request(req).to_dict() for req in engine_requests]

    proc, address = start_daemon(args.chaos)
    failures = []
    try:
        client = ServiceClient(address, timeout=300.0)
        vector_out = [None] * N_VECTOR_CLIENTS
        engine_out = [None] * len(engine_requests)

        def vector_client(i):
            job = VectorJob(sid=SID_VECTOR, scale=args.scale,
                            rhs=tuple(float(v) for v in cols[i]))
            vector_out[i] = client.solve_vector(job)

        def engine_client(i):
            engine_out[i] = client.solve(engine_requests[i])

        threads = ([threading.Thread(target=vector_client, args=(i,))
                    for i in range(N_VECTOR_CLIENTS)]
                   + [threading.Thread(target=engine_client, args=(i,))
                      for i in range(len(engine_requests))])
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=280)
            if t.is_alive():
                failures.append("client thread hung: a response was "
                                "never delivered")

        for i, (out, ref) in enumerate(zip(vector_out, vector_refs)):
            if out is None:
                failures.append(f"vector client {i}: no response")
            elif not np.array_equal(np.asarray(out["x"]), ref.x):
                failures.append(f"vector client {i}: solution differs "
                                f"from the serial reference")
            elif out["iterations"] != ref.iterations:
                failures.append(f"vector client {i}: iteration count "
                                f"{out['iterations']} != {ref.iterations}")
        for req, out, ref in zip(engine_requests, engine_out, engine_refs):
            if out != ref:
                failures.append(f"engine request sid={req.sid}: run dict "
                                f"differs from the local reference")

        stats = client.stats()
        svc = stats["service"]
        print(f"requests={svc['requests']} batches={svc['batches']} "
              f"coalesced={svc['coalesced_batches']} "
              f"max_batch={svc['max_batch_size']} "
              f"engine={stats['engine']}")
        if svc["coalesced_batches"] < 1:
            failures.append(f"no coalesced batch formed: {svc}")
        if args.chaos and stats["engine"].get("pool_rebuilds", 0) < 1:
            failures.append(f"chaos run never rebuilt the pool: "
                            f"{stats['engine']}")

        client.shutdown()
        code = proc.wait(timeout=60)
        if code != 0:
            failures.append(f"daemon exited {code}, wanted 0")
        stdout = proc.stdout.read()
        final = json.loads(stdout) if stdout.strip() else {}
        if final.get("service", {}).get("requests") != svc["requests"]:
            failures.append("daemon's final stats JSON disagrees with the "
                            "live /v1/stats snapshot")
    finally:
        if proc.poll() is None:
            proc.kill()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    mode = "chaos" if args.chaos else "plain"
    print(f"service smoke OK ({mode}): all responses delivered "
          f"bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
