"""Bench: regenerate Fig. 8 (speedup vs GPU, all platforms, both solvers).

This is the paper's headline figure.  The shape claims asserted here:

* ReFloat converges on all 12 matrices; Feinberg does not converge on the
  6 all-positive mass matrices;
* ReFloat's geometric-mean speedup over the GPU exceeds Feinberg-fc's by a
  large factor (paper: 12.59x vs 0.84x for CG);
* the scattered matrices (2257/2259) are the slowest cases for both
  accelerators (the multi-round mapping crossover).
"""

import math

from repro.experiments import fig8

NC_SET = {353, 354, 355, 2261, 2259, 845}


def test_fig8_performance(once, scale):
    data = once(fig8.run, scale=scale, print_output=True)
    for solver in ("cg", "bicgstab"):
        block = data[solver]
        nc = {row[0] for row in block["rows"] if math.isnan(row[2])}
        assert nc == NC_SET, (solver, nc)
        refloat = {row[0]: row[4] for row in block["rows"]}
        assert all(s == s for s in refloat.values())  # refloat never NC
        gmn = block["gmn"]
        assert gmn["refloat"] > 3 * gmn["feinberg_fc"]
