"""Bench: regenerate Fig. 9 (convergence traces on the GPU-normalised axis)."""

from repro.experiments import fig9


def test_fig9_traces(once, scale):
    data = once(fig9.run, scale=scale, print_output=True)
    for solver in ("cg", "bicgstab"):
        for sid, entry in data[solver].items():
            gpu = entry["series"]["gpu"]
            rf = entry["series"]["refloat"]
            assert gpu["converged"] and rf["converged"]
            # ReFloat's iterations are cheaper: its trace ends earlier on the
            # normalised time axis for every resident matrix.
            if sid not in (2257, 2259):
                assert rf["x"][-1] < gpu["x"][-1]
