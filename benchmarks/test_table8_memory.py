"""Bench: regenerate Table VIII (memory overhead refloat vs double)."""

from repro.experiments import table8


def test_table8_memory(once, scale):
    data = once(table8.run, scale=scale, print_output=True)
    ratios = {sid: d["ratio"] for sid, d in data.items()}
    assert all(r < 0.45 for r in ratios.values())
    # The scattered matrices pay the most index/base overhead (paper: the
    # 0.300/0.312 outliers are thermomech_dM/TC).
    scattered = max(ratios[2257], ratios[2259])
    dense_blocked = min(ratios[353], ratios[845])
    assert scattered > dense_blocked
