"""Ablation: sweep ReFloat bit budgets on one matrix and chart the trade-off.

For a crystm-class mass matrix, sweeps the matrix fraction bits ``f`` and the
vector fraction bits ``fv`` and reports, for each configuration: iterations to
convergence, per-SpMV cycles (Eq. 3), engines available (Eq. 2), and the end-
to-end modelled solver time — showing why the paper settles on (3,3)(3,8) and
where iterative refinement takes over when the budget is pushed too far.

Run:  python examples/bit_budget_ablation.py
"""

import numpy as np

from repro import ConvergenceCriterion, ReFloatOperator, cg
from repro.experiments.reporting import format_table
from repro.formats import ReFloatSpec
from repro.hardware import MappingPlan, SolverTimingModel
from repro.solvers import iterative_refinement
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import hex_mass_matrix


def main() -> None:
    A = hex_mass_matrix(12, density_sigma=1.0, seed=355)
    n = A.shape[0]
    b = A @ np.ones(n)
    crit = ConvergenceCriterion(tol=1e-8, max_iterations=4000)
    # One partition feeds every spec of the sweep (the bit budget changes
    # the quantisation, never the block structure).
    blocked = BlockedMatrix(A, b=7)
    blocks = blocked.n_blocks

    rows = []
    for f in (1, 3, 7, 15):
        for fv in (4, 8, 16):
            spec = ReFloatSpec(b=7, e=3, f=f, ev=3, fv=fv)
            res = cg(ReFloatOperator(A, spec, blocked=blocked), b, criterion=crit)
            plan = MappingPlan.for_refloat(blocks, spec)
            timing = SolverTimingModel(plan)
            t = (timing.solve_time_s(res.iterations, n, include_setup=False)
                 if res.converged else float("nan"))
            rows.append([f, fv,
                         res.iterations if res.converged else "NC",
                         plan.cycles_per_mvm, plan.engines_available,
                         t * 1e6 if res.converged else "NC"])
    print(format_table(
        ["f", "fv", "iters", "cycles/MVM", "engines", "solve (us)"], rows,
        title=f"bit-budget ablation on hex mass matrix (n={n}, "
              f"blocks={blocks})"))

    # A quantised solve "converges" by its *own* residual — its residual
    # against the exact FP64 matrix floors at the matrix-truncation level.
    # Iterative refinement (exact residuals on the host FPU, quantised inner
    # solves on the crossbars) pushes the exact residual to full precision.
    spec = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)
    inner = ReFloatOperator(A, spec, blocked=blocked)
    direct = cg(inner, b, criterion=crit)
    b_norm = np.linalg.norm(b)
    exact_rel = np.linalg.norm(b - A @ direct.x) / b_norm
    refined = iterative_refinement(A, inner, b, outer_tol=1e-12, inner_tol=1e-5)
    print(f"\ndirect f=3/fv=8 solve: platform residual "
          f"{direct.residual_norm / b_norm:.1e}, but exact-system residual "
          f"{exact_rel:.1e} (floored by the f=3 matrix truncation)")
    print(f"with iterative refinement: exact residual "
          f"{refined.residual_norm / b_norm:.1e} after "
          f"{refined.outer_iterations} outer / {refined.inner_iterations} "
          f"inner iterations (converged={refined.converged})")


if __name__ == "__main__":
    main()
