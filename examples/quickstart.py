"""Quickstart: solve a linear system in ReFloat and compare platforms.

Builds a small SPD system, solves it in full FP64, in ReFloat(7,3,3)(3,8),
and on the Feinberg [32] model, then prints iterations and modelled solver
time on each platform.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ConvergenceCriterion,
    DEFAULT_SPEC,
    ExactOperator,
    FeinbergOperator,
    ReFloatOperator,
    cg,
)
from repro.hardware import GPUSolverModel, MappingPlan, SolverTimingModel
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import wathen


def main() -> None:
    # 1. A problem: the Wathen FEM mass matrix (SPD, random coefficients).
    A = wathen(40, 40, seed=0)
    n = A.shape[0]
    b = A @ np.ones(n)
    criterion = ConvergenceCriterion(tol=1e-8, max_iterations=5000)
    print(f"system: wathen(40,40), n={n}, nnz={A.nnz}")

    # 2. Solve on three platforms — only the SpMV operator changes.  One
    #    partition is shared by the operators and the mapping accounting.
    blocked = BlockedMatrix(A, b=7)
    platforms = {
        "FP64 (GPU)": ExactOperator(A),
        "ReFloat(7,3,3)(3,8)": ReFloatOperator(A, DEFAULT_SPEC, blocked=blocked),
        "Feinberg [32]": FeinbergOperator(A, blocked=blocked),
    }
    results = {name: cg(op, b, criterion=criterion)
               for name, op in platforms.items()}

    # 3. Attach the hardware timing models.
    blocks = blocked.n_blocks
    gpu = GPUSolverModel.cg()
    t_rf = SolverTimingModel(MappingPlan.for_refloat(blocks, DEFAULT_SPEC))
    t_fb = SolverTimingModel(MappingPlan.for_feinberg(blocks))

    print(f"\n{'platform':22} {'converged':>9} {'iters':>6} {'time':>12}")
    for name, res in results.items():
        if not res.converged:
            print(f"{name:22} {'NO':>9} {'-':>6} {'-':>12}")
            continue
        if name.startswith("FP64"):
            t = gpu.solve_time_s(res.iterations, n, A.nnz)
        elif name.startswith("ReFloat"):
            t = t_rf.solve_time_s(res.iterations, n, include_setup=False)
        else:
            t = t_fb.solve_time_s(res.iterations, n, include_setup=False)
        print(f"{name:22} {'yes':>9} {res.iterations:>6} {t * 1e6:>10.1f}us")

    rf = results["ReFloat(7,3,3)(3,8)"]
    err = np.linalg.norm(rf.x - 1.0) / np.sqrt(n)
    print(f"\nReFloat solution vs the FP64 solution (ones): {err:.2e} "
          "relative difference")
    print("— the accelerator solves the f=3-quantised system, so the answer")
    print("differs from FP64 at the truncation level (wrap with iterative")
    print("refinement for full accuracy; see examples/bit_budget_ablation.py).")
    print("ReFloat converges with a handful of extra iterations while each")
    print("iteration costs 28 crossbar cycles instead of 233 — the paper's")
    print("core result, reproduced end to end.")


if __name__ == "__main__":
    main()
