"""Domain example: implicit heat equation stepped on the ReFloat accelerator.

The paper motivates ReFloat with PDE workloads: discretise, get ``A x = b``,
solve iteratively, repeat.  This example integrates the 2-D heat equation
``u_t = div(k grad u)`` with backward Euler: every time step solves
``(M + dt*K) u_{n+1} = M u_n`` — a fresh right-hand side against a *fixed*
matrix, the exact scenario ReRAM acceleration targets (write the matrix once,
stream solves).

Run:  python examples/pde_heat_equation.py
"""

import numpy as np

from repro import (ConvergenceCriterion, ExactOperator, ReFloatOperator,
                   ReFloatSpec, cg)
from repro.hardware import GPUSolverModel, MappingPlan, SolverTimingModel
from repro.sparse import BlockedMatrix
from repro.sparse.gallery.fem import assemble, element_mass, element_stiffness
from repro.sparse.gallery.generators import smooth_lognormal_field
from repro.sparse.gallery.meshes import quad_grid


def build_system(n_cells: int = 48, dt: float = 1e-3, seed: int = 42):
    """(M + dt*K, M) for a variable-conductivity quad mesh."""
    n_nodes, conn = quad_grid(n_cells, n_cells)
    jj, ii = np.meshgrid(np.arange(n_cells), np.arange(n_cells), indexing="ij")
    centers = (np.stack([ii.ravel(), jj.ravel()], axis=1) + 0.5) / n_cells
    k = smooth_lognormal_field(centers, sigma=0.8, seed=seed)
    h2 = (1.0 / n_cells) ** 2
    M = assemble(n_nodes, conn, element_mass("q1_quad"), coeff=np.full(conn.shape[0], h2 / 4))
    K = assemble(n_nodes, conn, element_stiffness("q1_quad"), coeff=k)
    return (M + dt * K).tocsr(), M.tocsr(), n_cells


def main() -> None:
    A, M, n_cells = build_system()
    n = A.shape[0]
    crit = ConvergenceCriterion(tol=1e-8, max_iterations=2000)

    # Initial condition: a hot square in the middle.
    side = n_cells + 1
    xs, ys = np.meshgrid(np.linspace(0, 1, side), np.linspace(0, 1, side))
    u = np.where((abs(xs - 0.5) < 0.2) & (abs(ys - 0.5) < 0.2), 1.0, 0.0).ravel()

    exact_op = ExactOperator(A)
    # Time stepping compounds per-step matrix error, so spend more bits than
    # the single-solve default.  The heat matrix M + dt*K mixes mass- and
    # stiffness-scaled entries, so its measured per-block exponent locality is
    # 4 (one more than the solver suite): configure e = 4 to cover it, plus
    # f = 11 fraction bits.  ReFloat(7,4,11)(3,16) still needs only 112
    # crossbars / 52 cycles per engine (vs 8404 / 4201 for FP64).
    spec = ReFloatSpec(b=7, e=4, f=11, ev=3, fv=16)
    blocked = BlockedMatrix(A, b=7)
    rf_op = ReFloatOperator(A, spec, blocked=blocked)  # written to crossbars once

    blocks = blocked.n_blocks
    t_rf = SolverTimingModel(MappingPlan.for_refloat(blocks, spec))
    t_gpu = GPUSolverModel.cg()

    n_steps = 10
    total = {"fp64": 0.0, "refloat": 0.0}
    iters = {"fp64": 0, "refloat": 0}
    u_fp64 = u.copy()
    u_rf = u.copy()
    for step in range(n_steps):
        rhs64 = M @ u_fp64
        res64 = cg(exact_op, rhs64, x0=u_fp64, criterion=crit)
        u_fp64 = res64.x
        total["fp64"] += t_gpu.solve_time_s(res64.iterations, n, A.nnz)
        iters["fp64"] += res64.iterations

        rhs = M @ u_rf
        res = cg(rf_op, rhs, x0=u_rf, criterion=crit)
        u_rf = res.x
        total["refloat"] += t_rf.solve_time_s(res.iterations, n,
                                              include_setup=False)
        iters["refloat"] += res.iterations

    drift = np.linalg.norm(u_rf - u_fp64) / np.linalg.norm(u_fp64)
    energy64 = float(u_fp64 @ (M @ u_fp64))
    energy_rf = float(u_rf @ (M @ u_rf))
    print(f"heat equation, {n_steps} backward-Euler steps, n={n}")
    print(f"  FP64/GPU : {iters['fp64']:4d} CG iterations, "
          f"model time {total['fp64'] * 1e3:.2f} ms")
    print(f"  ReFloat  : {iters['refloat']:4d} CG iterations, "
          f"model time {total['refloat'] * 1e3:.2f} ms "
          f"({total['fp64'] / total['refloat']:.1f}x speedup)")
    print(f"  trajectory drift refloat vs fp64: {drift:.2e}")
    print(f"  thermal energy: fp64 {energy64:.6f}, refloat {energy_rf:.6f}")
    assert drift < 1e-2, "quantised trajectory should track fp64 closely"


if __name__ == "__main__":
    main()
