"""Explore the ReFloat format: worked example, format zoo, bit budgets.

Reproduces the paper's Eq. (6) -> Eq. (7) conversion example, shows how the
common reduced-precision formats are ReFloat special cases (Table III), and
prints the crossbar/cycle cost of a range of bit budgets (Eqs. 2-3).

Run:  python examples/format_explorer.py
"""

import numpy as np

from repro.formats import (
    FORMAT_ZOO,
    encode_values,
    quantize_to_named_format,
    quantize_values,
)
from repro.hardware import crossbars_per_engine, cycles_per_block_mvm


def worked_example() -> None:
    print("=== Eq. (6) -> Eq. (7): ReFloat(x,2,2) conversion ===")
    vals = np.array([-248.0, 336.0, -512.0, 136.0])
    q, eb = quantize_values(vals, e=2, f=2)
    enc = encode_values(vals, e=2, f=2)
    print(f"original : {vals}")
    print(f"eb = {eb[0]} (the paper's optimal base)")
    print(f"quantised: {q}   (paper: [-224, 320, -512, 128])")
    print(f"stored fields: sign={enc.sign.tolist()} "
          f"offset={enc.offset.tolist()} frac={enc.frac.tolist()}")


def format_zoo() -> None:
    print("\n=== Table III: formats as ReFloat special cases ===")
    x = np.array([np.pi])
    print(f"{'format':15} {'spec':22} {'pi becomes':>20}")
    for name, spec in FORMAT_ZOO.items():
        q = quantize_to_named_format(x, name)
        print(f"{name:15} {str(spec):22} {q[0]:>20.12f}")


def cost_table() -> None:
    print("\n=== Eqs. (2)-(3): hardware cost per block engine ===")
    print(f"{'config':24} {'crossbars':>10} {'cycles':>7}")
    for label, (e, f, ev, fv) in {
        "FP64 direct": (11, 52, 11, 52),
        "Feinberg [32] (6-bit)": (6, 52, 6, 52),
        "ReFloat(7,3,3)(3,8)": (3, 3, 3, 8),
        "ReFloat(7,2,3)(3,8)": (2, 3, 3, 8),
    }.items():
        print(f"{label:24} {crossbars_per_engine(e, f):>10} "
              f"{cycles_per_block_mvm(e, f, ev, fv):>7}")
    print("\n8404 -> 48 crossbars and 4201 -> 28 cycles is where the paper's")
    print("speedup comes from; the rest is convergence behaviour.")


if __name__ == "__main__":
    worked_example()
    format_zoo()
    cost_table()
