"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets pip fall back to the legacy ``setup.py develop`` path::

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
