"""Tests for the analysis utilities (locality, memory, traces)."""

import numpy as np
import pytest

from repro.analysis import (
    block_range_histogram,
    block_storage_bits,
    downsample_trace,
    locality_report,
    memory_overhead,
    normalize_trace,
    trace_summary,
)
from repro.formats import ReFloatSpec
from repro.solvers import SolverResult
from repro.sparse.gallery import hex_mass_matrix, laplacian_2d


class TestLocality:
    def test_report_fields(self):
        rep = locality_report(hex_mass_matrix(4, seed=1), b=5)
        assert rep["fp64_bits"] == 11
        assert 1 <= rep["locality_bits"] <= rep["matrix_bits"] <= 11
        assert rep["refloat_bits"] == 3

    def test_histogram_counts_blocks(self):
        A = hex_mass_matrix(4, seed=1)
        from repro.sparse.blocked import BlockedMatrix

        bm = BlockedMatrix(A, b=5)
        hist = block_range_histogram(bm)
        assert int(hist.sum()) == bm.n_blocks

    def test_uniform_matrix_has_zero_range(self):
        import scipy.sparse as sp

        A = laplacian_2d(8)
        uniform = sp.csr_matrix((np.ones_like(A.data), A.indices, A.indptr),
                                shape=A.shape)
        hist = block_range_histogram(uniform, b=3)
        assert hist[0] > 0 and hist[1:].sum() == 0


class TestMemory:
    def test_paper_sec4a_example_151_bits(self):
        spec = ReFloatSpec(b=2, e=2, f=3)
        out = block_storage_bits(8, spec)
        assert out["refloat_bits"] == 151
        assert out["double_bits"] == 1024
        assert out["ratio"] == pytest.approx(151 / 1024)

    def test_overhead_in_paper_range(self):
        A = hex_mass_matrix(6, seed=2)
        spec = ReFloatSpec(b=7, e=3, f=3)
        out = memory_overhead(A, spec)
        # Dense-blocked matrices: ~0.17 (Table VIII).
        assert 0.1 < out["ratio"] < 0.45

    def test_sparser_blocks_cost_more(self):
        from repro.sparse.gallery import scatter_permute

        A = laplacian_2d(40)
        spec = ReFloatSpec(b=7, e=3, f=3)
        tight = memory_overhead(A, spec)["ratio"]
        scattered = memory_overhead(scatter_permute(A, 1.0, seed=1), spec)["ratio"]
        assert scattered > tight


class TestTraces:
    def _result(self, history):
        return SolverResult(x=np.zeros(1), converged=True,
                            iterations=len(history) - 1,
                            residual_norm=history[-1],
                            residual_history=list(history))

    def test_normalize_trace_axes(self):
        res = self._result([1.0, 0.1, 0.01])
        out = normalize_trace(res, time_per_iteration_s=1e-6,
                              reference_time_s=2e-6)
        assert np.allclose(out["x"], [0.0, 0.5, 1.0])
        assert out["r"][-1] == 0.01

    def test_normalize_validates(self):
        res = self._result([1.0])
        with pytest.raises(ValueError):
            normalize_trace(res, 0.0, 1.0)

    def test_trace_summary_spikes(self):
        res = self._result([1.0, 0.5, 0.8, 0.1])
        s = trace_summary(res)
        assert s["spikes"] == 1
        assert s["max_ratio"] == pytest.approx(1.6)

    def test_downsample_keeps_endpoints(self):
        h = list(np.linspace(1.0, 0.0, 500))
        d = downsample_trace(h, max_points=32)
        assert len(d) <= 32
        assert d[0] == h[0] and d[-1] == h[-1]

    def test_downsample_short_passthrough(self):
        assert downsample_trace([3.0, 2.0]) == [3.0, 2.0]
