"""Tests for the persistent on-disk asset store (``REPRO_ASSET_STORE``).

Covers the serialisation round-trip helpers (CSR arrays, the
:class:`BlockedMatrix` partition), the store itself (bit-identical hits,
corruption/truncation fallback-and-replace, atomic publication), the
three-level ``matrix_assets`` hierarchy, and — under the ``slow`` marker —
a genuinely cold process attaching to a warm store with zero builds plus
the process-pool fan-out against a warm store matching serial results.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
import scipy.sparse as sp

from repro.experiments import store
from repro.experiments.common import (
    clear_run_caches,
    matrix_assets,
    run_matrix,
    run_suite,
)
from repro.formats.refloat import ReFloatSpec
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery import build_matrix
from repro.sparse.mmio import csr_from_arrays, csr_to_arrays


@pytest.fixture
def fresh(monkeypatch, tmp_path):
    """Fresh caches and counters, with a tmpdir store configured."""
    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
    monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)
    clear_run_caches()
    store.reset_counters()
    yield tmp_path / "assets"
    clear_run_caches()
    store.reset_counters()


def _assert_same_csr(A, C):
    assert A.shape == C.shape
    np.testing.assert_array_equal(np.asarray(A.indptr), np.asarray(C.indptr))
    np.testing.assert_array_equal(np.asarray(A.indices), np.asarray(C.indices))
    np.testing.assert_array_equal(np.asarray(A.data), np.asarray(C.data))


class TestCsrArrayRoundTrip:
    def test_round_trip_preserves_arrays_and_dtypes(self):
        A = sp.csr_matrix(build_matrix(353, "test"))
        arrays, shape = csr_to_arrays(A)
        B = csr_from_arrays(arrays["data"], arrays["indices"],
                            arrays["indptr"], shape, canonical=True)
        _assert_same_csr(A, B)
        assert B.indices.dtype == A.indices.dtype
        assert B.data is arrays["data"]  # no copy

    def test_non_canonical_matrix_round_trips_exactly(self):
        # Unsorted indices must survive: the exact operator's matvec
        # accumulates in nonzero order, so reordering changes last bits.
        data = np.array([3.0, 1.0, 2.0, 5.0])
        indices = np.array([2, 0, 1, 1], dtype=np.int32)
        indptr = np.array([0, 2, 3, 4], dtype=np.int32)
        A = csr_from_arrays(data, indices, indptr, (3, 3))
        assert not A.has_canonical_format
        arrays, shape = csr_to_arrays(A)
        B = csr_from_arrays(**arrays, shape=shape)
        _assert_same_csr(A, B)
        x = np.arange(3, dtype=np.float64)
        np.testing.assert_array_equal(A @ x, B @ x)

    def test_structural_validation(self):
        data = np.ones(2)
        indices = np.zeros(2, dtype=np.int32)
        with pytest.raises(ValueError, match="rows"):
            csr_from_arrays(data, indices, np.array([0, 1, 2]), (3, 3))
        with pytest.raises(ValueError, match="indptr"):
            csr_from_arrays(data, indices, np.array([0, 1, 5]), (2, 3))
        with pytest.raises(ValueError, match="lengths"):
            csr_from_arrays(data, np.zeros(3, dtype=np.int32),
                            np.array([0, 1, 2]), (2, 3))
        # Out-of-range columns must raise, not reach scipy's C kernels as
        # silent out-of-bounds reads.
        with pytest.raises(ValueError, match="column indices"):
            csr_from_arrays(data, np.array([5, 6], dtype=np.int32),
                            np.array([0, 1, 2]), (2, 3))


class TestBlockedRoundTrip:
    def test_from_arrays_matches_fresh_partition(self):
        A = build_matrix(1288, "test")
        orig = BlockedMatrix(A, b=4)
        back = BlockedMatrix.from_arrays(orig.A, orig.b, **orig.to_arrays())
        assert back.block_grid == orig.block_grid
        assert back.n_blocks == orig.n_blocks
        np.testing.assert_array_equal(back.order, orig.order)
        np.testing.assert_array_equal(back.block_eb, orig.block_eb)
        spec = ReFloatSpec(b=4, e=3, f=3)
        _assert_same_csr(back.quantize(spec), orig.quantize(spec))

    def test_from_arrays_validates_sizes(self):
        A = build_matrix(353, "test")
        orig = BlockedMatrix(A, b=4)
        arrays = orig.to_arrays()
        with pytest.raises(ValueError, match="order"):
            BlockedMatrix.from_arrays(orig.A, orig.b,
                                      arrays["order"][:-1],
                                      arrays["group_starts"],
                                      arrays["block_keys"],
                                      arrays["block_nnz"],
                                      arrays["nnz_key"])
        with pytest.raises(ValueError, match="block"):
            BlockedMatrix.from_arrays(orig.A, orig.b, arrays["order"],
                                      arrays["group_starts"][:-1],
                                      arrays["block_keys"],
                                      arrays["block_nnz"],
                                      arrays["nnz_key"])


class TestStore:
    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        assert store.store_root() is None
        assert not store.has_entry(353, "test")
        assert store.load_entry(353, "test") is None
        A = build_matrix(353, "test")
        assert store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                                BlockedMatrix(A, b=7)) is None

    def test_save_then_load_bit_identical(self, fresh):
        A = build_matrix(353, "test")
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        path = store.save_entry(353, "test", A, b, blocked)
        assert path is not None and (path / "meta.json").is_file()
        entry = store.load_entry(353, "test")
        assert entry is not None
        _assert_same_csr(entry.A, sp.csr_matrix(A, dtype=np.float64))
        _assert_same_csr(entry.blocked.A, blocked.A)
        np.testing.assert_array_equal(np.asarray(entry.b), b)
        np.testing.assert_array_equal(entry.blocked.order, blocked.order)
        assert store.counters()["hits"] == 1

    def test_loaded_arrays_are_readonly_mmaps(self, fresh):
        matrix_assets(353, "test")
        clear_run_caches()
        assets = matrix_assets(353, "test")
        data = assets.blocked.A.data
        base = data if isinstance(data, np.memmap) else data.base
        assert isinstance(base, np.memmap)
        assert not data.flags.writeable

    def test_non_canonical_matrix_stores_both_copies(self, fresh):
        # 2257 (thermomech_TC analog) is scatter-permuted: the generated CSR
        # is not canonical, so the store must keep it alongside blocked.A.
        assets = matrix_assets(2257, "test")
        meta = json.loads(
            (store.entry_path(2257, "test") / "meta.json").read_text())
        assert not meta["canonical_shared"]
        clear_run_caches()
        loaded = matrix_assets(2257, "test")
        _assert_same_csr(loaded.A,
                         sp.csr_matrix(assets.A, dtype=np.float64))
        _assert_same_csr(loaded.blocked.A, assets.blocked.A)

    def test_warm_store_hit_builds_nothing_and_matches(self, fresh):
        cold = run_matrix(1313, "cg", "test")
        assert store.counters()["builds"] == 1
        clear_run_caches()
        store.reset_counters()
        warm = run_matrix(1313, "cg", "test")
        counts = store.counters()
        assert counts["builds"] == 0 and counts["hits"] == 1
        assert warm.times_s == cold.times_s
        for platform in cold.results:
            np.testing.assert_array_equal(warm.results[platform].x,
                                          cold.results[platform].x)
            assert (warm.results[platform].residual_norm
                    == cold.results[platform].residual_norm)

    def test_store_hit_matches_storeless_build(self, fresh, monkeypatch):
        matrix_assets(2257, "test")  # publish (non-canonical case)
        clear_run_caches()
        from_store = run_matrix(2257, "bicgstab", "test")
        clear_run_caches()
        monkeypatch.delenv("REPRO_ASSET_STORE")
        built = run_matrix(2257, "bicgstab", "test")
        assert from_store.times_s == built.times_s
        for platform in built.results:
            np.testing.assert_array_equal(from_store.results[platform].x,
                                          built.results[platform].x)

    @pytest.mark.parametrize("damage", ["truncate", "garbage", "missing",
                                        "meta", "version"])
    def test_corrupt_entry_falls_back_and_is_replaced(self, fresh, damage):
        matrix_assets(353, "test")
        path = store.entry_path(353, "test")
        target = path / "A_data.npy"
        if damage == "truncate":
            target.write_bytes(target.read_bytes()[:-16])
        elif damage == "garbage":
            raw = bytearray(target.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            target.write_bytes(bytes(raw))
        elif damage == "missing":
            target.unlink()
        elif damage == "meta":
            (path / "meta.json").write_text("{not json")
        elif damage == "version":
            meta = json.loads((path / "meta.json").read_text())
            meta["store_version"] = store.STORE_VERSION + 1
            (path / "meta.json").write_text(json.dumps(meta))
        clear_run_caches()
        store.reset_counters()
        assets = matrix_assets(353, "test")  # falls back to a rebuild
        counts = store.counters()
        assert counts["invalid"] == 1 and counts["builds"] == 1
        assert assets.A.shape == assets.blocked.A.shape
        # The bad entry was discarded and the rebuild republished it.
        entry = store.load_entry(353, "test")
        assert entry is not None
        _assert_same_csr(entry.blocked.A, assets.blocked.A)

    def test_corruption_detected_even_with_matching_size(self, fresh):
        # A flipped bit keeps the .npy shape/dtype valid: only the
        # checksum catches it.
        A = build_matrix(353, "test")
        store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                         BlockedMatrix(A, b=7))
        target = store.entry_path(353, "test") / "b.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0x01
        target.write_bytes(bytes(raw))
        assert store.load_entry(353, "test") is None
        assert store.counters()["invalid"] == 1
        assert not store.has_entry(353, "test")  # discarded

    def test_transient_read_error_is_a_miss_not_an_eviction(self, fresh,
                                                            monkeypatch):
        # One process's EIO/EMFILE moment must not delete a valid entry
        # from a store shared by every other process.
        A = build_matrix(353, "test")
        store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                         BlockedMatrix(A, b=7))
        real_crc = store._file_crc32

        def flaky(path):
            raise OSError(5, "Input/output error")

        monkeypatch.setattr(store, "_file_crc32", flaky)
        assert store.load_entry(353, "test") is None
        counts = store.counters()
        assert counts["invalid"] == 0 and counts["misses"] == 1
        assert store.has_entry(353, "test")  # entry survived
        monkeypatch.setattr(store, "_file_crc32", real_crc)
        assert store.load_entry(353, "test") is not None  # and still loads

    def test_save_is_idempotent_and_keeps_first_publication(self, fresh):
        A = build_matrix(353, "test")
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        store.save_entry(353, "test", A, b, blocked)
        first = (store.entry_path(353, "test") / "meta.json").stat().st_mtime_ns
        store.save_entry(353, "test", A, b, blocked)
        assert (store.entry_path(353, "test")
                / "meta.json").stat().st_mtime_ns == first
        assert store.counters()["saves"] == 1

    def test_unwritable_store_degrades_to_no_save(self, fresh, monkeypatch):
        # A full/unwritable store must not crash a build that succeeded.
        blocker = fresh.parent / "blocker"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_ASSET_STORE", str(blocker / "store"))
        assets = matrix_assets(353, "test")  # builds fine, save is a no-op
        assert assets.A.shape[0] > 0
        assert store.counters()["saves"] == 0

    def test_corrupt_unrequested_extra_does_not_invalidate(self, fresh):
        A = build_matrix(353, "test")
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        store.save_entry(353, "test", A, b, blocked,
                         extras={"custom_extra": np.arange(4.0)})
        target = store.entry_path(353, "test") / "custom_extra.npy"
        raw = bytearray(target.read_bytes())
        raw[-1] ^= 0xFF
        target.write_bytes(bytes(raw))
        # Not requested: never read, never invalidates, core loads fine.
        entry = store.load_entry(353, "test")
        assert entry is not None and entry.extras == {}
        assert store.counters()["invalid"] == 0
        # Requested: the corruption is now provable -> invalid + discard.
        assert store.load_entry(353, "test",
                                extras=("custom_extra",)) is None
        assert store.counters()["invalid"] == 1
        assert not store.has_entry(353, "test")

    def test_requested_extra_round_trips(self, fresh):
        A = build_matrix(353, "test")
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        payload = np.linspace(0.0, 1.0, 7)
        store.save_entry(353, "test", A, b, blocked,
                         extras={"custom_extra": payload})
        entry = store.load_entry(353, "test", extras=("custom_extra",
                                                      "absent_extra"))
        assert entry is not None
        np.testing.assert_array_equal(np.asarray(entry.extras["custom_extra"]),
                                      payload)
        assert "absent_extra" not in entry.extras

    def test_verification_can_be_disabled(self, fresh, monkeypatch):
        A = build_matrix(353, "test")
        store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                         BlockedMatrix(A, b=7))
        monkeypatch.setenv("REPRO_ASSET_STORE_VERIFY", "0")
        entry = store.load_entry(353, "test")
        assert entry is not None  # structural checks still ran


class TestStoreV2BsrLayout:
    """STORE_VERSION 2: the contiguous BSR layout is the canonical entry."""

    def test_entry_persists_bsr_arrays_not_grouping_arrays(self, fresh):
        A = build_matrix(353, "test")
        blocked = BlockedMatrix(A, b=7)
        path = store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                                blocked)
        names = {p.name for p in path.iterdir()}
        assert {"bsr_data.npy", "bsr_indptr.npy", "bsr_indices.npy",
                "bsr_scatter.npy"} <= names
        # The v1 grouping arrays and the duplicated canonical value array
        # are gone from disk — they derive from the layout.
        assert not ({"order.npy", "group_starts.npy", "nnz_key.npy",
                     "C_data.npy"} & names)
        meta = json.loads((path / "meta.json").read_text())
        assert meta["store_version"] == 2
        shape = (blocked.n_blocks, 128, 128)
        assert tuple(meta["arrays"]["bsr_data"]["shape"]) == shape

    def test_attached_bsr_tensor_is_the_mmap(self, fresh):
        matrix_assets(353, "test")
        clear_run_caches()
        assets = matrix_assets(353, "test")
        data = assets.blocked.bsr.data
        base = data if isinstance(data, np.memmap) else data.base
        assert isinstance(base, np.memmap)
        # ... and the whole partition hangs off it with zero reassembly:
        # the quantised operator was rebuilt from the stored qbsr tensor.
        np.testing.assert_array_equal(assets.blocked.bsr.csr_data(),
                                      assets.blocked.A.data)

    def test_non_canonical_values_gather_from_tensor(self, fresh):
        # 2257 stores only the canonical CSR *pattern*; the values must
        # come back bit-identical through the BSR gather.
        assets = matrix_assets(2257, "test")
        canonical = assets.blocked.A.data.copy()
        clear_run_caches()
        loaded = matrix_assets(2257, "test")
        np.testing.assert_array_equal(np.asarray(loaded.blocked.A.data),
                                      canonical)

    def test_qbsr_extra_skips_requantisation_bit_identically(self, fresh):
        cold = matrix_assets(353, "test")
        qdata = cold.refloat_op.A.data.copy()
        clear_run_caches()
        store.reset_counters()
        warm = matrix_assets(353, "test")
        assert store.counters()["builds"] == 0
        np.testing.assert_array_equal(np.asarray(warm.refloat_op.A.data),
                                      qdata)

    @pytest.mark.parametrize("target", ["bsr_data.npy", "bsr_scatter.npy"])
    def test_corrupt_bsr_array_invalidates_entry(self, fresh, target):
        A = build_matrix(353, "test")
        store.save_entry(353, "test", A, A @ np.ones(A.shape[0]),
                         BlockedMatrix(A, b=7))
        victim = store.entry_path(353, "test") / target
        raw = bytearray(victim.read_bytes())
        raw[-9] ^= 0x04   # inside the payload, shape/dtype stay valid
        victim.write_bytes(bytes(raw))
        assert store.load_entry(353, "test") is None
        assert store.counters()["invalid"] == 1
        assert not store.has_entry(353, "test")


@pytest.mark.slow
class TestColdProcessAttach:
    def test_cold_process_performs_zero_builds(self, fresh):
        """The acceptance criterion: a genuinely cold interpreter against a
        warm store runs the full suite without a single matrix build."""
        script = (
            "import os, sys, json\n"
            "from repro.experiments import store\n"
            "from repro.experiments.common import run_suite\n"
            "runs = run_suite('cg', 'test', use_cache=False, max_workers=1)\n"
            "print(json.dumps({'counters': store.counters(),\n"
            "                  'iters': {str(s): r.results['refloat'].iterations\n"
            "                            for s, r in runs.items()}}))\n"
        )

        src = Path(__file__).resolve().parent.parent / "src"

        def cold_run():
            out = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True, cwd="/",
                env={**os.environ, "PYTHONPATH": str(src)})
            return json.loads(out.stdout.strip().splitlines()[-1])

        first = cold_run()
        assert first["counters"]["builds"] == 12
        second = cold_run()
        assert second["counters"]["builds"] == 0
        assert second["counters"]["hits"] == 12
        assert second["iters"] == first["iters"]

    def test_process_pool_against_warm_store_matches_serial(self, fresh,
                                                            monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        parallel = run_suite("cg", "test", use_cache=False, max_workers=2)
        # The parent pre-materialised every entry before fanning out.
        assert all(store.has_entry(sid, "test") for sid in parallel)
        clear_run_caches()
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR")
        monkeypatch.delenv("REPRO_ASSET_STORE")
        serial = run_suite("cg", "test", use_cache=False, max_workers=1)
        assert list(parallel) == list(serial)
        for sid in serial:
            s, p = serial[sid], parallel[sid]
            assert s.times_s == p.times_s
            for platform in s.results:
                assert (s.results[platform].residual_norm
                        == p.results[platform].residual_norm)
                np.testing.assert_array_equal(s.results[platform].x,
                                              p.results[platform].x)
