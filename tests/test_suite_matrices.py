"""Tests for the 12-matrix paper suite (Table V analogs)."""

import numpy as np
import pytest

from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery.suite import (
    PAPER_ORDER,
    PAPER_SUITE,
    build_matrix,
    resolve_scale,
    suite_ids,
)
from repro.sparse.stats import is_symmetric, nnz_per_row


class TestSuiteStructure:
    def test_twelve_matrices_in_paper_order(self):
        assert suite_ids() == PAPER_ORDER
        assert len(PAPER_SUITE) == 12

    def test_feinberg_nc_set_is_the_mass_matrices(self):
        nc = {sid for sid, s in PAPER_SUITE.items() if not s.feinberg_converges}
        assert nc == {353, 354, 355, 2261, 2259, 845}
        for sid in nc:
            assert PAPER_SUITE[sid].kind == "mass"

    def test_fv_overrides(self):
        assert PAPER_SUITE[1288].fv_override == 16
        assert PAPER_SUITE[1848].fv_override == 16
        assert PAPER_SUITE[353].fv_override is None

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            build_matrix(999)

    def test_resolve_scale(self, monkeypatch):
        assert resolve_scale("test") == "test"
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert resolve_scale(None) == "default"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert resolve_scale(None) == "paper"
        with pytest.raises(ValueError):
            resolve_scale("huge")


@pytest.mark.parametrize("sid", PAPER_ORDER)
class TestEachMatrix:
    def test_symmetric_and_structured(self, sid):
        A = build_matrix(sid, "test")
        assert A.shape[0] == A.shape[1]
        assert is_symmetric(A, tol=1e-12)
        assert np.all(np.isfinite(A.data))
        assert A.diagonal().min() > 0

    def test_nnz_per_row_matches_class(self, sid):
        A = build_matrix(sid, "test")
        ours = nnz_per_row(A)
        paper = PAPER_SUITE[sid].paper_nnz_per_row
        # Same structural class: within ~2.5x at tiny scale (boundary effects).
        assert paper / 2.5 < ours < paper * 2.5

    def test_reproducible(self, sid):
        A = build_matrix(sid, "test")
        B = build_matrix(sid, "test")
        assert (A != B).nnz == 0

    def test_mass_matrices_all_positive(self, sid):
        A = build_matrix(sid, "test")
        if PAPER_SUITE[sid].kind == "mass":
            assert A.data.min() > 0
        elif PAPER_SUITE[sid].kind in ("stiffness", "wathen"):
            assert A.data.min() < 0

    def test_locality_within_refloat_window(self, sid):
        # The DESIGN.md requirement: per-block exponent range fits e=3.
        A = build_matrix(sid, "test")
        assert BlockedMatrix(A, b=7).locality_bits() <= 4


class TestPaperScaleRows:
    @pytest.mark.parametrize("sid,expected", [(1288, 30401), (1289, 36441),
                                              (1848, 65025)])
    def test_exact_paper_dimensions(self, sid, expected):
        # These generators hit the paper's row counts exactly at paper scale.
        spec = PAPER_SUITE[sid]
        assert spec.paper_rows == expected
