"""Tests for the Feinberg [32] vector-window model."""

import numpy as np
import pytest

from repro.formats.feinberg import (
    FeinbergSpec,
    matrix_anchor_exponent,
    quantize_vector_feinberg,
)


class TestSpec:
    def test_defaults_match_paper(self):
        spec = FeinbergSpec()
        assert spec.exp_bits == 6 and spec.frac_bits == 52
        assert spec.window == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            FeinbergSpec(exp_bits=0)
        with pytest.raises(ValueError):
            FeinbergSpec(frac_bits=60)
        with pytest.raises(ValueError):
            FeinbergSpec(policy="saturate")


class TestAnchor:
    def test_anchor_is_max_exponent(self):
        assert matrix_anchor_exponent(np.array([0.5, 8.0, -3.0])) == 3

    def test_anchor_rejects_all_zero(self):
        with pytest.raises(ValueError):
            matrix_anchor_exponent(np.zeros(4))


class TestQuantize:
    def test_in_window_exact_at_52_bits(self):
        spec = FeinbergSpec()
        x = np.array([1.0, 2.0 ** -30, -0.75])
        q = quantize_vector_feinberg(x, anchor=0, spec=spec)
        assert np.array_equal(q, x)

    def test_above_window_wraps_catastrophically(self):
        spec = FeinbergSpec(policy="wrap")
        # anchor -30: window [-93, -30]; value 1.0 (exp 0) wraps mod 64.
        q = quantize_vector_feinberg(np.array([1.0]), anchor=-30, spec=spec)
        assert q[0] != 1.0
        assert 0 < q[0] < 2.0 ** -60  # landed ~64 binades down

    def test_above_window_clamp(self):
        spec = FeinbergSpec(policy="clamp")
        q = quantize_vector_feinberg(np.array([2.0 ** 10]), anchor=0, spec=spec)
        assert q[0] == 1.0  # saturated to window top binade, fraction zeroed

    def test_above_window_flush(self):
        spec = FeinbergSpec(policy="flush")
        q = quantize_vector_feinberg(np.array([2.0 ** 10]), anchor=0, spec=spec)
        assert q[0] == 0.0

    def test_below_window_flushes_in_all_policies(self):
        for policy in ("wrap", "clamp", "flush"):
            spec = FeinbergSpec(policy=policy)
            q = quantize_vector_feinberg(np.array([2.0 ** -70]), anchor=0,
                                         spec=spec)
            assert q[0] == 0.0

    def test_zero_passthrough(self):
        q = quantize_vector_feinberg(np.array([0.0]), anchor=0, spec=FeinbergSpec())
        assert q[0] == 0.0

    def test_fraction_truncation(self):
        spec = FeinbergSpec(frac_bits=4)
        q = quantize_vector_feinberg(np.array([1.0 + 2.0 ** -10]), anchor=0,
                                     spec=spec)
        assert q[0] == 1.0

    def test_sign_preserved(self):
        spec = FeinbergSpec()
        q = quantize_vector_feinberg(np.array([-1.5, 1.5]), anchor=0, spec=spec)
        assert q[0] == -1.5 and q[1] == 1.5

    def test_wrap_is_mod_window(self):
        spec = FeinbergSpec(policy="wrap")
        # exp 1 above the window top wraps exactly 64 binades down.
        q = quantize_vector_feinberg(np.array([2.0]), anchor=0, spec=spec)
        assert q[0] == 2.0 * 2.0 ** -64
