"""Tests for meshes, FEM assembly, and the named generators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.gallery.fem import (
    assemble,
    element_mass,
    element_stiffness,
    shape_q1_hex,
    shape_q1_quad,
    shape_serendipity_quad,
)
from repro.sparse.gallery.generators import (
    hex_mass_matrix,
    minimal_surface_2d,
    positive_stencil_3d,
    scatter_permute,
    smooth_lognormal_field,
    triangle_coupling_matrix,
    variable_coefficient_stiffness_2d,
)
from repro.sparse.gallery.laplacian import (
    anisotropic_periodic_2d,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
)
from repro.sparse.gallery.meshes import (
    hex_grid,
    quad_grid,
    serendipity_grid,
    triangle_dual_adjacency,
)
from repro.sparse.gallery.wathen import wathen
from repro.sparse.stats import is_symmetric


def spd_check(A, tol_scale=1e-10):
    """Cheap SPD check: symmetry + positive smallest Ritz values."""
    assert is_symmetric(A, tol=1e-12)
    import scipy.sparse.linalg as spla

    lam = spla.eigsh(sp.csr_matrix(A).astype(float), k=1, which="SA",
                     return_eigenvectors=False, maxiter=5000, tol=1e-6)[0]
    assert lam > 0, f"lambda_min = {lam}"


class TestShapes:
    def test_partition_of_unity(self):
        pts = np.linspace(-1, 1, 5)
        for fn, args in ((shape_q1_quad, (pts, pts)),
                         (shape_serendipity_quad, (pts, pts)),
                         (shape_q1_hex, (pts, pts, pts))):
            N, dN = fn(*args)
            assert np.allclose(N.sum(axis=1), 1.0)
            assert np.allclose(dN.sum(axis=2), 0.0)

    def test_kronecker_delta_at_nodes(self):
        # Q1 quad nodes
        nodes = np.array([[-1, -1], [1, -1], [1, 1], [-1, 1]], dtype=float)
        N, _ = shape_q1_quad(nodes[:, 0], nodes[:, 1])
        assert np.allclose(N, np.eye(4))
        # serendipity nodes
        snodes = np.array([[-1, -1], [0, -1], [1, -1], [1, 0],
                           [1, 1], [0, 1], [-1, 1], [-1, 0]], dtype=float)
        N, _ = shape_serendipity_quad(snodes[:, 0], snodes[:, 1])
        assert np.allclose(N, np.eye(8), atol=1e-12)


class TestElements:
    def test_q1_quad_mass_exact(self):
        # Known closed form: M = (1/9) * [[4,2,1,2],[2,4,2,1],[1,2,4,2],[2,1,2,4]]
        M = element_mass("q1_quad", order=3)
        expected = np.array([[4, 2, 1, 2], [2, 4, 2, 1],
                             [1, 2, 4, 2], [2, 1, 2, 4]]) / 9.0
        assert np.allclose(M, expected)

    def test_q1_quad_stiffness_exact(self):
        K = element_stiffness("q1_quad", order=2)
        expected = np.array([[4, -1, -2, -1], [-1, 4, -1, -2],
                             [-2, -1, 4, -1], [-1, -2, -1, 4]]) / 6.0
        assert np.allclose(K, expected)

    def test_mass_matrices_spd(self):
        for elem in ("q1_quad", "q1_hex", "serendipity_quad"):
            M = element_mass(elem, order=4)
            assert np.allclose(M, M.T)
            assert np.linalg.eigvalsh(M).min() > 0

    def test_serendipity_mass_has_negative_entries(self):
        # The property driving Feinberg's convergence on wathen (DESIGN.md).
        M = element_mass("serendipity_quad", order=4)
        assert M.min() < 0

    def test_stiffness_kernel_is_constants(self):
        for elem, dim in (("q1_quad", 2), ("q1_hex", 3)):
            K = element_stiffness(elem, order=3)
            assert np.allclose(K @ np.ones(K.shape[0]), 0.0, atol=1e-12)

    def test_anisotropic_stiffness(self):
        K = element_stiffness("q1_quad", order=2, anisotropy=(0.0, 1.0))
        # Pure d/dy diffusion: 1-D stiffness in y, mass in x.
        assert np.allclose(K @ np.ones(4), 0.0, atol=1e-12)
        assert not np.allclose(K, element_stiffness("q1_quad", order=2))

    def test_unknown_element(self):
        with pytest.raises(KeyError):
            element_mass("p2_triangle")


class TestMeshes:
    def test_quad_grid_counts(self):
        n_nodes, conn = quad_grid(3, 2)
        assert n_nodes == 12 and conn.shape == (6, 4)
        assert conn.max() < n_nodes

    def test_hex_grid_counts(self):
        n_nodes, conn = hex_grid(2, 2, 2)
        assert n_nodes == 27 and conn.shape == (8, 8)

    def test_serendipity_node_count_formula(self):
        for nx, ny in ((1, 1), (3, 2), (10, 10)):
            n_nodes, conn = serendipity_grid(nx, ny)
            assert n_nodes == 3 * nx * ny + 2 * nx + 2 * ny + 1
            assert conn.max() == n_nodes - 1 or conn.max() < n_nodes
            assert conn.shape == (nx * ny, 8)

    def test_serendipity_elements_share_edges(self):
        _, conn = serendipity_grid(2, 1)
        # Right edge of element 0 == left edge of element 1.
        assert conn[0][2] == conn[1][0]  # shared corner
        assert conn[0][3] == conn[1][7]  # shared vertical midpoint
        assert conn[0][4] == conn[1][6]  # shared top corner

    def test_triangle_adjacency_degree(self):
        n, u, v = triangle_dual_adjacency(4, 4)
        assert n == 32
        deg = np.bincount(np.concatenate((u, v)), minlength=n)
        assert deg.max() == 3  # interior triangles have 3 neighbours
        assert deg.min() >= 1
        assert np.all(u < v)

    def test_assemble_validates(self):
        n_nodes, conn = quad_grid(2, 2)
        with pytest.raises(ValueError):
            assemble(n_nodes, conn, np.eye(3))


class TestLaplacians:
    def test_1d_matrix(self):
        T = laplacian_1d(3).toarray()
        assert T.tolist() == [[2, -1, 0], [-1, 2, -1], [0, -1, 2]]

    def test_1d_periodic_rowsums_zero(self):
        T = laplacian_1d(5, periodic=True)
        assert np.allclose(T @ np.ones(5), 0.0)

    def test_2d_kron_structure(self):
        A = laplacian_2d(4, 3)
        assert A.shape == (12, 12)
        spd_check(A)

    def test_3d_diag(self):
        A = laplacian_3d(3)
        assert np.all(A.diagonal() == 6.0)

    def test_anisotropic_periodic_constant_rowsums(self):
        A = anisotropic_periodic_2d(8, epsilon=2 ** -5, shift=1e-3)
        r = A @ np.ones(64)
        assert np.allclose(r, 1e-3)

    def test_anisotropic_validates(self):
        with pytest.raises(ValueError):
            anisotropic_periodic_2d(4, epsilon=0.0)


class TestGenerators:
    def test_smooth_field_positive_and_smooth(self, rng):
        pts = np.stack([np.linspace(0, 1, 200), np.zeros(200)], axis=1)
        f = smooth_lognormal_field(pts, sigma=1.0, seed=1)
        assert np.all(f > 0)
        # Neighbouring samples differ by far less than the global spread.
        assert np.abs(np.diff(np.log(f))).max() < 0.2

    def test_hex_mass_positive_entries(self):
        A = hex_mass_matrix(4, seed=1)
        assert A.data.min() > 0
        spd_check(A)

    def test_hex_mass_scale(self):
        A = hex_mass_matrix(3, seed=1, scale=2.0 ** -30)
        B = hex_mass_matrix(3, seed=1, scale=1.0)
        assert np.allclose(A.data, B.data * 2.0 ** -30)

    def test_triangle_coupling_4_nnz_per_row(self):
        A = triangle_coupling_matrix(8, seed=2)
        counts = np.diff(A.indptr)
        assert counts.max() == 4
        assert A.data.min() > 0
        spd_check(A)

    def test_triangle_coupling_validates(self):
        with pytest.raises(ValueError):
            triangle_coupling_matrix(4, diag=(0.3, 0.9), coupling=(0.05, 0.15))

    def test_variable_coefficient_stiffness(self):
        A = variable_coefficient_stiffness_2d(8, seed=3)
        assert A.shape == (49, 49)
        spd_check(A)
        assert A.data.min() < 0  # mixed signs

    def test_minimal_surface_kappa(self):
        from repro.sparse.stats import condition_number

        A = minimal_surface_2d(40, seed=4)
        spd_check(A)
        assert 25 < condition_number(A) < 300  # ~81 asymptotic target

    def test_positive_stencil_spd_positive(self):
        A = positive_stencil_3d(5, seed=5)
        assert A.data.min() > 0
        spd_check(A)

    def test_positive_stencil_validates(self):
        with pytest.raises(ValueError):
            positive_stencil_3d(4, diag=(0.3, 0.9), coupling=0.065)

    def test_scatter_permute_preserves_spectrum(self):
        A = laplacian_2d(6)
        B = scatter_permute(A, fraction=0.7, seed=6)
        assert np.allclose(np.sort(np.linalg.eigvalsh(A.toarray())),
                           np.sort(np.linalg.eigvalsh(B.toarray())))

    def test_scatter_permute_increases_blocks(self):
        from repro.sparse.blocked import BlockedMatrix

        A = laplacian_3d(10)
        before = BlockedMatrix(A, b=5).n_blocks
        after = BlockedMatrix(scatter_permute(A, 0.8, seed=7), b=5).n_blocks
        assert after > before

    def test_scatter_permute_validates(self):
        with pytest.raises(ValueError):
            scatter_permute(laplacian_2d(4), fraction=1.5)


class TestWathen:
    def test_dimension_formula(self):
        A = wathen(5, 4, seed=1)
        assert A.shape[0] == 3 * 20 + 10 + 8 + 1

    def test_spd_and_mixed_sign(self):
        A = wathen(8, 8, seed=2)
        spd_check(A)
        assert A.data.min() < 0 < A.data.max()

    def test_seed_reproducible(self):
        A = wathen(4, 4, seed=3)
        B = wathen(4, 4, seed=3)
        assert (A != B).nnz == 0

    def test_rho_min_validated(self):
        with pytest.raises(ValueError):
            wathen(3, 3, rho_min=1.5)
