"""Tests for the Krylov and stationary solvers (exact operator)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.solvers import (
    ConvergenceCriterion,
    bicgstab,
    cg,
    gmres,
    ilu_preconditioner,
    iterative_refinement,
    jacobi,
    jacobi_preconditioner,
    richardson,
    ssor_preconditioner,
)
from repro.sparse.gallery import laplacian_2d, wathen


def system(n=10):
    A = laplacian_2d(n)
    x_true = np.ones(A.shape[0])
    return A, A @ x_true, x_true


CRIT = ConvergenceCriterion(tol=1e-10, max_iterations=5000)


class TestCG:
    def test_solves_spd(self):
        A, b, x_true = system()
        res = cg(A, b, criterion=CRIT)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-7
        assert res.matvecs == res.iterations

    def test_residual_history_matches_true_residual(self):
        A, b, _ = system(6)
        res = cg(A, b, criterion=CRIT)
        true_res = np.linalg.norm(b - A @ res.x)
        assert abs(true_res - res.residual_norm) < 1e-9 * np.linalg.norm(b)
        assert res.residual_history[0] == pytest.approx(np.linalg.norm(b))
        assert len(res.residual_history) == res.iterations + 1

    def test_exact_in_n_iterations(self):
        # CG terminates in at most n steps in exact arithmetic.
        rng = np.random.default_rng(1)
        M = rng.standard_normal((12, 12))
        A = sp.csr_matrix(M @ M.T + 12 * np.eye(12))
        b = rng.standard_normal(12)
        res = cg(A, b, criterion=ConvergenceCriterion(tol=1e-12))
        assert res.converged and res.iterations <= 12

    def test_x0_respected(self):
        A, b, x_true = system()
        res = cg(A, b, x0=x_true.copy(), criterion=CRIT)
        assert res.converged and res.iterations == 0

    def test_zero_rhs(self):
        A, _, _ = system()
        res = cg(A, np.zeros(A.shape[0]))
        assert res.converged and res.iterations == 0
        assert np.all(res.x == 0)

    def test_callback_invoked(self):
        A, b, _ = system(5)
        seen = []
        cg(A, b, criterion=CRIT, callback=lambda k, x, r: seen.append((k, r)))
        assert seen and seen[0][0] == 1
        assert all(r >= 0 for _, r in seen)

    def test_max_iterations_respected(self):
        A, b, _ = system()
        res = cg(A, b, criterion=ConvergenceCriterion(tol=1e-30,
                                                      max_iterations=3))
        assert not res.converged and res.iterations == 3

    def test_dimension_mismatch(self):
        A, _, _ = system()
        with pytest.raises(ValueError):
            cg(A, np.ones(3))

    def test_nonfinite_rhs(self):
        A, b, _ = system()
        b[0] = np.inf
        with pytest.raises(ValueError):
            cg(A, b)

    def test_relative_vs_absolute_tolerance(self):
        A, b, _ = system()
        rel = cg(A, b, criterion=ConvergenceCriterion(tol=1e-6, relative=True))
        absb = cg(A, b, criterion=ConvergenceCriterion(tol=1e-6, relative=False))
        assert absb.residual_norm <= 1e-6
        assert rel.residual_norm <= 1e-6 * np.linalg.norm(b)


class TestBiCGSTAB:
    def test_solves_spd(self):
        A, b, x_true = system()
        res = bicgstab(A, b, criterion=CRIT)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-6

    def test_solves_nonsymmetric(self):
        rng = np.random.default_rng(2)
        n = 40
        A = sp.csr_matrix(np.eye(n) * 4 + 0.5 * rng.standard_normal((n, n)) / np.sqrt(n))
        x_true = rng.standard_normal(n)
        res = bicgstab(A, A @ x_true, criterion=CRIT)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-6

    def test_two_matvecs_per_iteration(self):
        A, b, _ = system()
        res = bicgstab(A, b, criterion=CRIT)
        assert res.matvecs <= 2 * res.iterations + 1

    def test_zero_rhs(self):
        A, _, _ = system()
        res = bicgstab(A, np.zeros(A.shape[0]))
        assert res.converged and res.iterations == 0


class TestGMRES:
    def test_solves_spd(self):
        A, b, x_true = system(8)
        res = gmres(A, b, criterion=CRIT, restart=30)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-6

    def test_solves_nonsymmetric(self):
        rng = np.random.default_rng(3)
        n = 30
        A = sp.csr_matrix(np.eye(n) * 3 + rng.standard_normal((n, n)) / np.sqrt(n))
        x_true = rng.standard_normal(n)
        res = gmres(A, A @ x_true, criterion=CRIT, restart=15)
        assert res.converged

    def test_restart_smaller_than_dimension(self):
        A, b, x_true = system(8)
        res = gmres(A, b, criterion=CRIT, restart=5)
        assert res.converged

    def test_invalid_restart(self):
        A, b, _ = system(4)
        with pytest.raises(ValueError):
            gmres(A, b, restart=0)

    def test_converged_residual_is_true_residual(self):
        """converged=True must never rest on the Givens estimate alone.

        A quantised-style operator whose matvec differs from the exact
        matrix drives the in-cycle estimate away from the true residual:
        GMRES builds its Hessenberg system from the *perturbed* products,
        so the estimate models a different matrix than the residual
        ``b - A x_op``.  The reported residual_norm must be the recomputed
        true value, and converged only if that true value meets the
        threshold.
        """

        class PerturbedOperator:
            def __init__(self, A, eps=1e-6):
                self.A, self.shape, self.eps = A, A.shape, eps
                self.applies = 0

            def matvec(self, x):
                self.applies += 1
                y = self.A @ x
                # Deterministic relative perturbation (a crude quantiser).
                return y + self.eps * np.sin(np.arange(y.size)) * y

        A, b, _ = system(8)
        op = PerturbedOperator(sp.csr_matrix(A, dtype=np.float64))
        crit = ConvergenceCriterion(tol=1e-4, max_iterations=2000)
        res = gmres(op, b, criterion=crit, restart=10)
        # residual_norm is the recomputed ||b - op(x)||, not the estimate.
        assert res.residual_norm == pytest.approx(
            np.linalg.norm(b - op.matvec(res.x)), rel=1e-12)
        assert res.converged == (res.residual_norm
                                 < crit.tol * np.linalg.norm(b))

    def test_estimate_drift_forces_restart_not_false_convergence(self):
        """If the estimate crosses the threshold but the true residual has
        not, the solver must keep iterating (restart) rather than return an
        optimistic converged=True."""
        A, b, _ = system(8)

        class DriftingOperator:
            # Exact for the Krylov-building applies, so the estimate
            # plunges; the recompute then sees the same operator, but with
            # a tight tolerance MGS orthogonality loss alone separates the
            # two — use a tiny perturbation to force visible drift.
            def __init__(self, A):
                self.A, self.shape = A, A.shape

            def matvec(self, x):
                y = self.A @ x
                return y * (1 + 1e-9)

        op = DriftingOperator(sp.csr_matrix(A, dtype=np.float64))
        crit = ConvergenceCriterion(tol=1e-10, max_iterations=500)
        res = gmres(op, b, criterion=crit, restart=8)
        if res.converged:
            true_norm = np.linalg.norm(b - op.matvec(res.x))
            assert true_norm < crit.tol * np.linalg.norm(b)

    def test_singular_breakdown_reports_true_residual(self):
        # A = [[0]] makes the Hessenberg system exactly singular while the
        # Givens estimate collapses to 0.0; the reported residual must be
        # the true ||b - A x|| = 1, not the estimate.
        res = gmres(sp.csr_matrix(np.zeros((1, 1))), np.ones(1))
        assert not res.converged
        assert res.breakdown == "singular Hessenberg system"
        assert res.residual_norm == pytest.approx(1.0)
        assert res.residual_history[-1] == pytest.approx(1.0)


def _richardson(A, b, **kwargs):
    return richardson(A, b, 0.2, **kwargs)


#: Every solver taking an initial guess — Krylov AND stationary (the
#: stationary pair used to feed x0 raw into the first matvec).
GUESS_SOLVERS = [cg, bicgstab, gmres, jacobi, _richardson]
GUESS_IDS = ["cg", "bicgstab", "gmres", "jacobi", "richardson"]


class TestInitialGuessValidation:
    """x0 must fail fast with a named error, not a deep broadcast crash."""

    @pytest.mark.parametrize("solver", GUESS_SOLVERS, ids=GUESS_IDS)
    def test_wrong_length_x0(self, solver):
        A, b, _ = system()
        with pytest.raises(ValueError, match="x0 must have shape"):
            solver(A, b, x0=np.ones(b.size + 3))

    @pytest.mark.parametrize("solver", GUESS_SOLVERS, ids=GUESS_IDS)
    def test_wrong_ndim_x0(self, solver):
        A, b, _ = system()
        with pytest.raises(ValueError, match="x0 must have shape"):
            solver(A, b, x0=np.ones((b.size, 1)))

    @pytest.mark.parametrize("solver", GUESS_SOLVERS, ids=GUESS_IDS)
    def test_non_finite_x0(self, solver):
        A, b, _ = system()
        x0 = np.zeros(b.size)
        x0[3] = np.nan
        with pytest.raises(ValueError, match="x0 contains non-finite"):
            solver(A, b, x0=x0)

    @pytest.mark.parametrize("solver", GUESS_SOLVERS, ids=GUESS_IDS)
    def test_x0_not_mutated(self, solver):
        A, b, _ = system()
        x0 = np.full(b.size, 0.5)
        keep = x0.copy()
        solver(A, b, x0=x0, criterion=CRIT)
        np.testing.assert_array_equal(x0, keep)

    @pytest.mark.parametrize("solver", [jacobi, _richardson],
                             ids=["jacobi", "richardson"])
    def test_stationary_good_x0_still_accepted(self, solver):
        # The exact solution as the guess: zero iterations, converged.
        A, b, x_true = system(6)
        res = solver(A, b, x0=x_true.copy(), criterion=CRIT)
        assert res.converged
        assert res.iterations == 0


class TestStationary:
    def test_jacobi_on_diagonally_dominant(self):
        A, b, x_true = system(6)
        res = jacobi(A, b, criterion=ConvergenceCriterion(tol=1e-8,
                                                          max_iterations=20000),
                     damping=0.9)
        assert res.converged
        assert np.linalg.norm(res.x - x_true) < 1e-4

    def test_jacobi_rejects_zero_diagonal(self):
        A = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            jacobi(A, np.ones(2))

    def test_richardson_converges_with_valid_omega(self):
        A, b, x_true = system(5)
        res = richardson(A, b, omega=0.2,
                         criterion=ConvergenceCriterion(tol=1e-8,
                                                        max_iterations=20000))
        assert res.converged

    def test_richardson_validates_omega(self):
        A, b, _ = system(4)
        with pytest.raises(ValueError):
            richardson(A, b, omega=-1.0)


class TestPreconditioners:
    def test_jacobi_precond_reduces_iterations(self):
        A = wathen(8, 8, seed=4)
        b = A @ np.ones(A.shape[0])
        plain = cg(A, b, criterion=CRIT)
        pre = cg(A, b, criterion=CRIT,
                 preconditioner=jacobi_preconditioner(A))
        assert pre.converged and plain.converged
        assert pre.iterations < plain.iterations

    def test_ssor_precond(self):
        A = wathen(8, 8, seed=11)
        b = A @ np.ones(A.shape[0])
        pre = cg(A, b, criterion=CRIT, preconditioner=ssor_preconditioner(A))
        plain = cg(A, b, criterion=CRIT)
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_ssor_validates_omega(self):
        A, _, _ = system(4)
        with pytest.raises(ValueError):
            ssor_preconditioner(A, omega=2.5)

    def test_ilu_precond(self):
        A, b, _ = system(8)
        pre = cg(A, b, criterion=CRIT, preconditioner=ilu_preconditioner(A))
        assert pre.converged


class TestIterativeRefinement:
    def test_refines_quantized_inner_solver(self):
        from repro.operators import ReFloatOperator
        from repro.formats import ReFloatSpec

        A = laplacian_2d(12)
        b = A @ np.ones(A.shape[0])
        inner = ReFloatOperator(A, ReFloatSpec(b=5, e=3, f=3, ev=3, fv=8))
        out = iterative_refinement(A, inner, b, outer_tol=1e-12,
                                   inner_tol=1e-6)
        assert out.converged
        assert out.residual_norm <= 1e-12 * np.linalg.norm(b)
        assert out.outer_iterations >= 2  # genuinely needed refinement

    def test_zero_rhs(self):
        A = laplacian_2d(4)
        out = iterative_refinement(A, A, np.zeros(A.shape[0]))
        assert out.converged and out.outer_iterations == 0
