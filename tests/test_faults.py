"""Fault-tolerant run engine: injection harness, retries, timeouts,
pool recovery and sweep-journal resume.

The recovery tests run real worker processes (fork makes them cheap at
``test`` scale) with deterministic fault plans — a SIGKILLed worker, an
injected transient exception, a hung solve — and assert that the engine
returns every completed result, charges the right counters, and matches
serial execution bit-for-bit after recovery.  Fast suite matrices
(sub-0.1s solves at test scale) keep these tier-1.
"""

import json
import os
import signal
import time

import numpy as np
import pytest

import repro.api.config as api_config
from repro.api import faults
from repro.api.config import RunConfig
from repro.api.faults import (
    FaultPlan,
    InjectedFaultError,
    RunFailure,
    parse_fault,
)
from repro.api.specs import RunRequest
from repro.api.sweep import SweepSpec
from repro.experiments.common import (
    MatrixRun,
    clear_run_caches,
    run_request,
    run_suite,
    run_sweep,
)
from repro.experiments.journal import SweepJournal, default_journal_path

#: Suite matrices that solve in well under 0.1s at test scale — the
#: recovery tests stay fast even though they fork real worker pools.
FAST_SIDS = (1313, 1288, 2257)


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


@pytest.fixture
def no_plan():
    faults.install_fault_plan(None)
    yield
    faults.install_fault_plan(None)


class TestFaultTokens:
    def test_parse_builtin_kinds(self):
        crash = parse_fault("crash@attempt=1,sid=2257")
        assert crash.kind == "crash" and crash.sid == 2257
        assert crash.matches("solve", 2257, 1)
        assert not crash.matches("solve", 2257, 2)
        assert not crash.matches("solve", 353, 1)
        hang = parse_fault("hang@secs=30,sid=494")
        assert hang.kind == "hang" and hang.point == "solve"
        fail = parse_fault("fail@attempts=2,sid=353")
        assert fail.matches("solve", 353, 1)
        assert fail.matches("solve", 353, 2)
        assert not fail.matches("solve", 353, 3)

    def test_attempt_zero_matches_every_attempt(self):
        crash = parse_fault("crash@attempt=0,sid=845")
        assert all(crash.matches("solve", 845, a) for a in (1, 2, 7))
        fail = parse_fault("fail@attempts=0")
        assert fail.sid is None  # omitted sid matches every matrix
        assert fail.matches("solve", 353, 9)

    def test_result_point(self):
        spec = parse_fault("fail@point=result,sid=353")
        assert spec.point == "result"
        assert spec.matches("result", 353, 1)
        assert not spec.matches("solve", 353, 1)

    def test_bad_tokens_rejected(self):
        with pytest.raises(KeyError, match="unknown fault kind"):
            parse_fault("explode@sid=1")
        with pytest.raises(ValueError, match="rejected parameters"):
            parse_fault("crash@blast=9")
        with pytest.raises(ValueError, match="non-canonical"):
            parse_fault("crash@sid=2257,attempt=1")  # keys must sort
        with pytest.raises(ValueError, match="point must be one of"):
            parse_fault("fail@point=lunch")
        with pytest.raises(ValueError, match="secs must be positive"):
            parse_fault("hang@secs=0")
        with pytest.raises(ValueError, match="kind@key=value"):
            FaultPlan(tokens=("not-a-token",))

    def test_plan_install_and_sync(self, no_plan):
        plan = faults.install_fault_plan(["fail@attempts=1,sid=353"])
        assert faults.plan_tokens() == ("fail@attempts=1,sid=353",)
        faults.sync_fault_plan(plan.tokens)  # no-op on identical tokens
        assert faults.active_fault_plan() is plan
        faults.sync_fault_plan(())
        assert faults.active_fault_plan() is None

    def test_use_fault_plan_restores(self, no_plan):
        with faults.use_fault_plan(["fail@attempts=1"]):
            assert faults.plan_tokens() == ("fail@attempts=1",)
        assert faults.plan_tokens() == ()

    def test_consult_fires_matching_fault(self, no_plan):
        with faults.use_fault_plan(["fail@attempts=0,sid=353"]):
            with pytest.raises(InjectedFaultError, match="injected fault"):
                faults.consult("solve", sid=353)
            faults.consult("solve", sid=1313)  # other sids untouched


class TestRunFailure:
    def test_from_exception_and_to_dict(self):
        try:
            raise ValueError("boom")
        except ValueError as exc:
            f = RunFailure.from_exception(exc, key="k", phase="solve",
                                          attempts=2, sid=353, solver="cg")
        assert f.error_type == "ValueError" and f.exception is not None
        assert "boom" in f.traceback
        d = f.to_dict()
        assert d["phase"] == "solve" and d["attempts"] == 2
        assert "exception" not in d
        json.dumps(d)  # pure JSON

    def test_phase_validated(self):
        with pytest.raises(ValueError, match="phase must be one of"):
            RunFailure(key="k", phase="lunch", error_type="E", message="m")

    def test_phase_vocabulary_pinned(self):
        # The scheduler's failure phases are a public vocabulary (CI and
        # downstream reports match on them); growing it is fine, renames
        # and removals are not.
        from repro.api.faults import FAILURE_PHASES

        assert FAILURE_PHASES == ("solve", "timeout", "pool", "asset",
                                  "dependency")
        for phase in FAILURE_PHASES:
            RunFailure(key="k", phase=phase, error_type="E", message="m")


class TestSerialEngine:
    def test_collect_returns_partial_results(self, fresh_caches, no_plan):
        with faults.use_fault_plan(["fail@attempts=0,sid=1288"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=1,
                             use_cache=False, on_error="collect")
        assert sorted(runs) == sorted(s for s in FAST_SIDS if s != 1288)
        assert len(runs.failures) == 1
        f = runs.failures[0]
        assert (f.sid, f.solver, f.phase) == (1288, "cg", "solve")
        assert f.error_type == "InjectedFaultError"
        assert '"sid": 1288' in f.key  # the canonical RunRequest key
        assert runs.stats.requests == 3

    def test_raise_propagates_original_exception(self, fresh_caches,
                                                 no_plan):
        with faults.use_fault_plan(["fail@attempts=0,sid=1313"]):
            with pytest.raises(InjectedFaultError):
                run_suite("cg", "test", sids=(1313,), max_workers=1,
                          use_cache=False)

    def test_retry_absorbs_transient_fault(self, fresh_caches, no_plan):
        cfg = RunConfig(scale="test", request_retries=1)
        with faults.use_fault_plan(["fail@attempts=1,sid=1313"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=1,
                             use_cache=False, config=cfg,
                             on_error="collect")
        assert sorted(runs) == sorted(FAST_SIDS)
        assert runs.failures == ()
        assert runs.stats.retries == 1

    def test_backoff_is_exponential_and_deterministic(self, fresh_caches,
                                                      no_plan, monkeypatch):
        from repro.experiments import common

        sleeps = []
        monkeypatch.setattr(common.time, "sleep", sleeps.append)
        cfg = RunConfig(scale="test", request_retries=3, retry_backoff=0.5)
        with faults.use_fault_plan(["fail@attempts=3,sid=1313"]):
            runs = run_suite("cg", "test", sids=(1313, 1288),
                             max_workers=1, use_cache=False, config=cfg,
                             on_error="collect")
        assert sorted(runs) == [1288, 1313]
        assert sleeps == [0.5, 1.0, 2.0]  # backoff * 2**(attempt-1)

    def test_failed_runs_never_cached(self, fresh_caches, no_plan):
        with faults.use_fault_plan(["fail@attempts=0,sid=1313"]):
            bad = run_suite("cg", "test", sids=(1313, 1288),
                            max_workers=1, on_error="collect")
        assert 1313 not in bad
        good = run_suite("cg", "test", sids=(1313, 1288), max_workers=1)
        assert sorted(good) == [1288, 1313] and good.failures == ()

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error must be"):
            run_suite("cg", "test", sids=(1313,), on_error="explode")


class TestThreadEngine:
    def test_thread_pool_retry_and_collect(self, fresh_caches, no_plan):
        cfg = RunConfig(scale="test", request_retries=1)
        with faults.use_fault_plan(["fail@attempts=1,sid=2257"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="thread", use_cache=False,
                             config=cfg, on_error="collect")
        assert sorted(runs) == sorted(FAST_SIDS)
        assert runs.failures == () and runs.stats.retries == 1

    def test_thread_pool_timeout_fails_hung_request(self, fresh_caches,
                                                    no_plan):
        # The hung thread cannot be reclaimed — its 5s sleep outlives the
        # suite call (bounded, so the interpreter's thread join at exit
        # stays cheap) while the engine abandons it and reports a timeout.
        cfg = RunConfig(scale="test", request_timeout=1.0)
        with faults.use_fault_plan(["hang@secs=5,sid=2257"]):
            t0 = time.monotonic()
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="thread", use_cache=False,
                             config=cfg, on_error="collect")
        assert time.monotonic() - t0 < 4.5  # did not wait the hang out
        assert sorted(runs) == sorted(s for s in FAST_SIDS if s != 2257)
        assert [f.phase for f in runs.failures] == ["timeout"]
        assert runs.stats.timeouts == 1


class TestProcessEngine:
    def test_worker_crash_recovers_all_results(self, fresh_caches, no_plan):
        with faults.use_fault_plan(["crash@attempt=1,sid=2257"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="process", use_cache=False,
                             on_error="collect")
        assert sorted(runs) == sorted(FAST_SIDS)  # zero lost results
        assert runs.failures == ()
        assert runs.stats.pool_rebuilds >= 1
        clear_run_caches()
        serial = run_suite("cg", "test", sids=FAST_SIDS, max_workers=1,
                           use_cache=False)
        for sid in serial:
            assert runs[sid].times_s == serial[sid].times_s
            for p in serial[sid].results:
                np.testing.assert_array_equal(runs[sid].results[p].x,
                                              serial[sid].results[p].x)

    def test_sigkilled_live_worker_mid_suite(self, fresh_caches, no_plan):
        # Not an injected fault: SIGKILL an actual live pool worker from
        # the outside and require a complete result set anyway.
        from repro.experiments import common

        pool = common._process_pool(2)
        pool.submit(os.getpid).result()  # force a worker to spawn
        procs = [p for p in (pool._processes or {}).values() if p.is_alive()]
        assert procs, "pool spawned no live workers"
        os.kill(procs[0].pid, signal.SIGKILL)
        runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                         executor="process", use_cache=False,
                         on_error="collect")
        assert sorted(runs) == sorted(FAST_SIDS)
        assert runs.failures == ()

    def test_persistent_crasher_poisoned_others_complete(self, fresh_caches,
                                                         no_plan):
        with faults.use_fault_plan(["crash@attempt=0,sid=1288"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="process", use_cache=False,
                             on_error="collect")
        assert sorted(runs) == sorted(s for s in FAST_SIDS if s != 1288)
        assert [(f.phase, f.sid) for f in runs.failures] == [("pool", 1288)]
        assert "running alone" in runs.failures[0].message
        assert runs.stats.poisoned == 1

    def test_hang_with_timeout_retries_to_success(self, fresh_caches,
                                                  no_plan):
        cfg = RunConfig(scale="test", request_timeout=2.0,
                        request_retries=1)
        with faults.use_fault_plan(["hang@secs=60,sid=2257"]):
            t0 = time.monotonic()
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="process", use_cache=False,
                             config=cfg, on_error="collect")
        assert time.monotonic() - t0 < 30  # never waited the hang out
        assert sorted(runs) == sorted(FAST_SIDS)
        assert runs.failures == ()
        assert runs.stats.timeouts == 1 and runs.stats.retries == 1
        assert runs.stats.pool_rebuilds >= 1

    def test_hang_without_retries_is_timeout_failure(self, fresh_caches,
                                                     no_plan):
        cfg = RunConfig(scale="test", request_timeout=2.0)
        with faults.use_fault_plan(["hang@attempt=0,secs=60,sid=2257"]):
            runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="process", use_cache=False,
                             config=cfg, on_error="collect")
        assert sorted(runs) == sorted(s for s in FAST_SIDS if s != 2257)
        assert [(f.phase, f.sid) for f in runs.failures] == [
            ("timeout", 2257)]
        assert "request_timeout" in runs.failures[0].message


class TestMatrixRunSummaryRoundTrip:
    def test_from_dict_rebuilds_summary(self, fresh_caches):
        run = run_request(RunRequest(sid=1313, solver="cg", scale="test"))
        revived = MatrixRun.from_dict(run.to_dict())
        assert revived.to_dict() == run.to_dict()
        assert revived.platforms == run.platforms
        for p in run.platforms:
            assert revived.iterations(p) == run.iterations(p)
            assert revived.times_s[p] == run.times_s[p]

    def test_nonfinite_time_round_trips_to_inf(self):
        d = {"sid": 1, "name": "m", "solver": "cg", "n_rows": 2, "nnz": 2,
             "n_blocks": 1,
             "platforms": {"gpu": {"converged": False, "iterations": 7,
                                   "time_s": None}}}
        run = MatrixRun.from_dict(d)
        assert run.times_s["gpu"] == float("inf")


class TestSweepJournal:
    def _spec(self):
        return SweepSpec(family="noisy", grid={"sigma": (0.0, 0.02)},
                         solvers=("cg",), sids=(1313, 1288), scale="test")

    def test_journal_written_and_replayed(self, fresh_caches, tmp_path):
        spec = self._spec()
        path = tmp_path / "sweep.jsonl"
        result = run_sweep(spec, use_cache=False, max_workers=1,
                           journal=path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "SweepJournal" and header["version"] == 1
        assert len(lines) == 1 + 6  # header + (1 baseline + 2 variants) x 2
        replayed = SweepJournal(path).load(spec, "test", result.criterion)
        assert len(replayed) == 6
        for run in replayed.values():
            assert isinstance(run, MatrixRun)

    def test_resume_solves_only_missing_cells(self, fresh_caches, tmp_path,
                                              no_plan, monkeypatch):
        spec = self._spec()
        path = tmp_path / "sweep.jsonl"
        # First invocation dies on its first sid-1288 cell mid-sweep.
        with faults.use_fault_plan(["fail@attempts=0,sid=1288"]):
            with pytest.raises(InjectedFaultError):
                run_sweep(spec, use_cache=False, max_workers=1,
                          journal=path)
        crit = api_config.active().effective_criterion
        journaled = SweepJournal(path).load(spec, "test", crit)
        assert 0 < len(journaled) < 6  # partial progress survived
        clear_run_caches()
        # The resume must solve exactly the missing cells, nothing more.
        from repro.experiments import common

        solved = []
        orig = common.run_matrix

        def counting(sid, *args, **kwargs):
            solved.append(sid)
            return orig(sid, *args, **kwargs)

        monkeypatch.setattr(common, "run_matrix", counting)
        resumed = run_sweep(spec, use_cache=False, max_workers=1,
                            journal=path, resume=True)
        assert resumed.failures == ()
        assert resumed.stats.journal_skipped == len(journaled)
        assert len(solved) == 6 - len(journaled)
        monkeypatch.undo()
        clear_run_caches()
        # The resumed summary equals a fresh full sweep's summary.
        fresh = run_sweep(spec, use_cache=False, max_workers=1)
        assert set(resumed.runs) == set(fresh.runs)
        for key in fresh.runs:
            assert set(resumed.runs[key]) == set(fresh.runs[key])
            for sid, run in fresh.runs[key].items():
                assert resumed.runs[key][sid].to_dict() == run.to_dict()

    def test_fully_journaled_resume_solves_nothing(self, fresh_caches,
                                                   tmp_path, monkeypatch):
        spec = self._spec()
        path = tmp_path / "sweep.jsonl"
        run_sweep(spec, use_cache=False, max_workers=1, journal=path)
        clear_run_caches()
        from repro.experiments import common

        def explode(*args, **kwargs):
            raise AssertionError("resume re-solved a journaled cell")

        monkeypatch.setattr(common, "run_matrix", explode)
        resumed = run_sweep(spec, use_cache=False, max_workers=1,
                            journal=path, resume=True)
        assert resumed.stats.journal_skipped == 6
        assert resumed.stats.requests == 0
        assert set(resumed.runs) == {("cg", "noisy@sigma=0.0"),
                                     ("cg", "noisy@sigma=0.02")}

    def test_mismatched_header_refuses_resume(self, fresh_caches, tmp_path):
        spec = self._spec()
        path = tmp_path / "sweep.jsonl"
        run_sweep(spec, use_cache=False, max_workers=1, journal=path)
        other = spec.replace(sids=(1313,))
        with pytest.raises(ValueError, match="refusing to resume"):
            run_sweep(other, use_cache=False, max_workers=1, journal=path,
                      resume=True)

    def test_torn_final_record_is_skipped(self, fresh_caches, tmp_path):
        spec = self._spec()
        path = tmp_path / "sweep.jsonl"
        result = run_sweep(spec, use_cache=False, max_workers=1,
                           journal=path)
        whole = SweepJournal(path).load(spec, "test", result.criterion)
        with open(path, "a") as fh:
            fh.write('{"key": "torn-reco')  # the crash point
        torn = SweepJournal(path).load(spec, "test", result.criterion)
        assert torn.keys() == whole.keys()

    def test_resume_without_journal_rejected(self):
        with pytest.raises(ValueError, match="resume=True needs a journal"):
            run_sweep(self._spec(), resume=True)

    def test_default_journal_path_needs_store(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        with pytest.raises(ValueError, match="no asset store configured"):
            default_journal_path(self._spec())
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path))
        path = default_journal_path(self._spec())
        assert path.parent == tmp_path / "journals"
        assert path == default_journal_path(self._spec())  # stable digest
        assert path != default_journal_path(
            self._spec().replace(sids=(1313,)))


class TestStatsFallback:
    def test_singular_matrix_falls_back_to_lobpcg(self):
        import scipy.sparse as sp

        from repro.sparse.stats import extreme_eigenvalues

        # diag(0..49) is exactly singular: the shift-invert factorisation
        # fails and the LOBPCG fallback must deliver the spectrum edges.
        A = sp.diags(np.arange(50.0)).tocsr()
        lam_min, lam_max = extreme_eigenvalues(A)
        assert lam_max == pytest.approx(49.0, rel=1e-3)
        assert lam_min == pytest.approx(0.0, abs=1e-3)


class TestTable5KappaError:
    def test_kappa_failure_recorded_not_swallowed(self, monkeypatch):
        from repro.experiments import table5

        def boom(A):
            raise RuntimeError("no convergence")

        monkeypatch.setattr(table5, "condition_number", boom)
        monkeypatch.setattr(table5, "suite_ids", lambda: [1313])
        data = table5.collect("test", with_condition=True)
        entry = data[1313]
        assert entry["kappa"] != entry["kappa"]  # NaN
        err = entry["kappa_error"]
        assert err["error_type"] == "RuntimeError"
        assert err["phase"] == "solve" and err["sid"] == 1313
        json.dumps(err)
