"""Tests for the solve service: coalescer, wire protocol, remote store,
daemon end-to-end.

The coalescer tests pin the grouping contract (same-key concurrent jobs
merge into one batch, mixed keys never merge, ``coalesce=False`` gives
singleton batches) and the demux contract (positional results, per-batch
error propagation).  The wire tests pin the CRC framing: a byte-exact
round trip, and every corruption mode — truncation, payload tamper,
header tamper, bad magic — surfaces as :class:`WireError`, never as
silently-wrong arrays.  The daemon tests run a real HTTP server in
process: coalesced vector solves come back bit-identical to the serial
single-RHS path, engine requests come back as the exact local
``MatrixRun``, and malformed requests fail alone without poisoning the
batch they rode in.
"""

import json
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.api import RunConfig, use as use_config
from repro.api.config import active as active_config
from repro.api.specs import RunRequest
from repro.experiments import store
from repro.experiments.common import (
    clear_run_caches,
    matrix_assets,
    platform_operator,
    run_request,
)
from repro.service import (
    Coalescer,
    ServiceClient,
    ServiceCounters,
    ServiceError,
    SolveService,
    VectorJob,
    WireError,
    pack_entry,
    unpack_entry,
)
from repro.service import remote_store
from repro.service.client import parse_address
from repro.solvers import cg


@pytest.fixture
def fresh(monkeypatch, tmp_path):
    """Fresh caches/counters with a tmpdir store configured via env."""
    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
    monkeypatch.delenv("REPRO_SERVICE_STORE", raising=False)
    clear_run_caches()
    store.reset_counters()
    remote_store.reset_counters()
    yield tmp_path / "assets"
    clear_run_caches()
    store.reset_counters()
    remote_store.reset_counters()


def _build_entry(root, sid=2257, scale="test"):
    """Materialise one real store entry under ``root``; returns its path."""
    with use_config(RunConfig(store=str(root))):
        clear_run_caches()
        matrix_assets(sid, scale)
        path = store.entry_path(sid, scale, Path(root))
    clear_run_caches()
    assert (path / "meta.json").is_file()
    return path


def _entry_bytes(path):
    out = {}
    for f in sorted(Path(path).iterdir()):
        out[f.name] = f.read_bytes()
    return out


@pytest.fixture
def service():
    """An in-process daemon with a wide window and max_batch=3, so
    same-key tests flush deterministically on the size bound."""
    cfg = RunConfig(service_batch_window=5.0, service_batch_max=3)
    svc = SolveService(port=0, config=cfg)
    thread = threading.Thread(target=svc.serve_forever, daemon=True)
    thread.start()
    host, port = svc.address
    client = ServiceClient(f"{host}:{port}", timeout=120.0)
    yield svc, client
    svc.close()
    thread.join(timeout=10)
    clear_run_caches()


class TestVectorJob:
    def test_round_trip(self):
        job = VectorJob(sid=2257, scale="test", solver="bicgstab",
                        rhs=(1.0, 2.5, -3.0))
        again = VectorJob.from_json(job.to_json())
        assert again == job

    def test_batch_key_groups_by_identity_not_rhs(self):
        crit = active_config().effective_criterion
        a = VectorJob(sid=2257, scale="test", rhs=(1.0, 2.0))
        b = VectorJob(sid=2257, scale="test", rhs=(9.0, 8.0))
        c = VectorJob(sid=353, scale="test", rhs=(1.0, 2.0))
        assert a.batch_key(crit) == b.batch_key(crit)
        assert a.batch_key(crit) != c.batch_key(crit)

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorJob(sid=2257, scale="nope")
        with pytest.raises(ValueError):
            VectorJob(sid=2257, scale="test", solver="")
        with pytest.raises(ValueError):
            VectorJob(sid=2257, scale="test", rhs=())


class TestCoalescer:
    def _collecting_runner(self, batches):
        def runner(key, jobs):
            batches.append((key, list(jobs)))
            return [f"{key}:{job}" for job in jobs]
        return runner

    def test_same_key_jobs_merge_into_one_batch(self):
        batches = []
        counters = ServiceCounters()
        co = Coalescer(self._collecting_runner(batches), window=5.0,
                       max_batch=3, counters=counters)
        try:
            futs = [co.submit("k", i) for i in range(3)]
            results = [f.result(timeout=30) for f in futs]
        finally:
            co.close()
        assert len(batches) == 1
        assert batches[0][1] == [0, 1, 2]
        assert results == ["k:0", "k:1", "k:2"]  # positional demux
        snap = counters.to_dict()
        assert snap["batches"] == 1
        assert snap["coalesced_batches"] == 1
        assert snap["max_batch_size"] == 3

    def test_mixed_keys_never_merge(self):
        batches = []
        counters = ServiceCounters()
        co = Coalescer(self._collecting_runner(batches), window=0.05,
                       max_batch=8, counters=counters)
        try:
            fa = co.submit("a", 1)
            fb = co.submit("b", 2)
            assert fa.result(timeout=30) == "a:1"
            assert fb.result(timeout=30) == "b:2"
        finally:
            co.close()
        assert sorted(key for key, _ in batches) == ["a", "b"]
        assert all(len(jobs) == 1 for _, jobs in batches)
        assert counters.to_dict()["coalesced_batches"] == 0

    def test_coalesce_off_gives_singleton_batches(self):
        batches = []
        co = Coalescer(self._collecting_runner(batches), window=5.0,
                       max_batch=8, coalesce=False)
        try:
            futs = [co.submit("k", i) for i in range(4)]
            assert [f.result(timeout=30) for f in futs] == [
                "k:0", "k:1", "k:2", "k:3"]
        finally:
            co.close()
        assert len(batches) == 4

    def test_window_flushes_partial_batch(self):
        batches = []
        co = Coalescer(self._collecting_runner(batches), window=0.05,
                       max_batch=100)
        try:
            fut = co.submit("k", 7)
            assert fut.result(timeout=30) == "k:7"
        finally:
            co.close()
        assert batches == [("k", [7])]

    def test_runner_error_fails_every_future_in_batch(self):
        def runner(key, jobs):
            raise RuntimeError("batch exploded")

        co = Coalescer(runner, window=5.0, max_batch=2)
        try:
            futs = [co.submit("k", i) for i in range(2)]
            for fut in futs:
                with pytest.raises(RuntimeError, match="batch exploded"):
                    fut.result(timeout=30)
        finally:
            co.close()

    def test_closed_coalescer_rejects_submissions(self):
        co = Coalescer(lambda key, jobs: list(jobs), window=0.01,
                       max_batch=1)
        co.close()
        with pytest.raises(RuntimeError, match="closed"):
            co.submit("k", 1)


class TestWire:
    def test_round_trip_is_byte_exact(self, fresh, tmp_path):
        src = _build_entry(fresh)
        blob = pack_entry(src)
        dest = tmp_path / "copy"
        dest.mkdir()
        meta = unpack_entry(blob, dest)
        assert meta["sid"] == 2257
        got = _entry_bytes(dest)
        want = _entry_bytes(src)
        assert got.keys() == want.keys()
        for name in want:
            if name == "meta.json":  # formatting-normalised, same content
                assert json.loads(got[name]) == json.loads(want[name])
            else:
                assert got[name] == want[name]

    def test_bad_magic_rejected(self, tmp_path):
        with pytest.raises(WireError, match="magic"):
            unpack_entry(b"NOPE1\n" + b"\x00" * 64, tmp_path)

    def test_truncated_frame_rejected(self, fresh, tmp_path):
        blob = pack_entry(_build_entry(fresh))
        for cut in (len(blob) // 2, len(blob) - 1):
            dest = tmp_path / f"cut{cut}"
            dest.mkdir()
            with pytest.raises(WireError):
                unpack_entry(blob[:cut], dest)
            assert not (dest / "meta.json").exists()  # nothing installed

    def test_tampered_payload_rejected(self, fresh, tmp_path):
        blob = bytearray(pack_entry(_build_entry(fresh)))
        blob[-1] ^= 0xFF  # flip a bit in the last array's last byte
        dest = tmp_path / "tampered"
        dest.mkdir()
        with pytest.raises(WireError, match="checksum"):
            unpack_entry(bytes(blob), dest)

    def test_trailing_garbage_rejected(self, fresh, tmp_path):
        blob = pack_entry(_build_entry(fresh))
        dest = tmp_path / "trailing"
        dest.mkdir()
        with pytest.raises(WireError):
            unpack_entry(blob + b"extra", dest)

    def test_pack_missing_entry_raises(self, tmp_path):
        with pytest.raises(WireError):
            pack_entry(tmp_path / "absent")


class TestRemoteStoreProtocol:
    def test_fetch_installs_bit_identical_entry(self, fresh, tmp_path):
        src = _build_entry(fresh)
        cache = tmp_path / "cache"
        with SolveService(port=0,
                          config=RunConfig(store=str(fresh))) as svc:
            thread = threading.Thread(target=svc.serve_forever, daemon=True)
            thread.start()
            host, port = svc.address
            url = f"http://{host}:{port}"
            assert remote_store.fetch_entry(url, 2257, "test", cache)
            assert not remote_store.fetch_entry(url, 494, "test", cache)
            svc.shutdown()
            thread.join(timeout=10)
        installed = store.entry_path(2257, "test", cache)
        got, want = _entry_bytes(installed), _entry_bytes(src)
        for name in want:
            if name == "meta.json":
                assert json.loads(got[name]) == json.loads(want[name])
            else:
                assert got[name] == want[name]
        snap = remote_store.counters()
        assert snap["fetch_hits"] == 1
        assert snap["fetch_misses"] == 1

    def test_publish_installs_on_daemon_side(self, fresh, tmp_path):
        local = tmp_path / "local"
        src = _build_entry(local, sid=353)
        with SolveService(port=0,
                          config=RunConfig(store=str(fresh))) as svc:
            thread = threading.Thread(target=svc.serve_forever, daemon=True)
            thread.start()
            host, port = svc.address
            url = f"http://{host}:{port}"
            assert remote_store.publish_entry(url, 353, "test", src)
            # Re-publishing an existing entry is first-writer-wins, not
            # an error.
            assert remote_store.publish_entry(url, 353, "test", src)
            svc.shutdown()
            thread.join(timeout=10)
        installed = store.entry_path(353, "test", Path(str(fresh)))
        assert (installed / "meta.json").is_file()
        got, want = _entry_bytes(installed), _entry_bytes(src)
        assert set(got) == set(want)

    def test_fetch_from_dead_daemon_is_a_plain_miss(self, tmp_path):
        remote_store.reset_counters()
        assert not remote_store.fetch_entry("http://127.0.0.1:9",
                                            2257, "test", tmp_path)
        assert remote_store.counters()["fetch_errors"] == 1

    def test_load_entry_falls_back_to_remote_then_rebuilds(
            self, fresh, tmp_path, monkeypatch):
        """The store's miss path consults the remote hook; a corrupt
        remote payload degrades to a plain miss and a local rebuild —
        never a crash, never bad arrays."""
        calls = []

        def corrupt_fetch(url, sid, scale, root, timeout=None):
            calls.append((url, sid, scale))
            final = store.entry_path(sid, scale, Path(root))
            final.mkdir(parents=True, exist_ok=True)
            (final / "meta.json").write_text("{ not json")
            return True

        monkeypatch.setattr(remote_store, "fetch_entry", corrupt_fetch)
        cfg = RunConfig(store=str(fresh),
                        service_store="http://127.0.0.1:1")
        with use_config(cfg):
            clear_run_caches()
            assets = matrix_assets(2257, "test")  # rebuilds locally
        assert calls == [("http://127.0.0.1:1", 2257, "test")]
        assert assets.A is not None
        snap = store.counters()
        assert snap["builds"] >= 1


class TestDaemonEndToEnd:
    def test_coalesced_vector_solves_bit_identical_to_serial(self, service):
        svc, client = service
        sid, k = 2257, 3
        _, op = platform_operator(sid, "test")
        n = op.shape[0]
        rng = np.random.default_rng(17)
        cols = [rng.standard_normal(n) for _ in range(k)]
        results = [None] * k
        errors = []

        def worker(i):
            job = VectorJob(sid=sid, scale="test",
                            rhs=tuple(float(v) for v in cols[i]))
            try:
                results[i] = client.solve_vector(job)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(k)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        crit = active_config().effective_criterion
        for i, res in enumerate(results):
            assert res["batch"]["size"] == k  # they rode one batch
            ref = cg(op, cols[i], criterion=crit)
            assert np.array_equal(np.asarray(res["x"]), ref.x)
            assert res["iterations"] == ref.iterations
            assert res["residual_norm"] == ref.residual_norm
            assert res["converged"] == ref.converged
        stats = client.stats()
        assert stats["service"]["coalesced_batches"] == 1
        assert stats["service"]["vector_jobs"] == k
        assert stats["service"]["batch_matmats"] > 0

    def test_bad_rhs_fails_alone_not_the_batch(self, service):
        svc, client = service
        sid = 2257
        _, op = platform_operator(sid, "test")
        n = op.shape[0]
        rng = np.random.default_rng(23)
        good_rhs = rng.standard_normal(n)
        outcomes = {}

        def send(name, rhs):
            job = VectorJob(sid=sid, scale="test",
                            rhs=tuple(float(v) for v in rhs))
            try:
                outcomes[name] = client.solve_vector(job)
            except ServiceError as exc:
                outcomes[name] = exc

        threads = [
            threading.Thread(target=send, args=("good", good_rhs)),
            threading.Thread(target=send, args=("bad", np.ones(3))),
            threading.Thread(target=send, args=("good2", good_rhs)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert isinstance(outcomes["bad"], ServiceError)
        assert "rhs must have length" in str(outcomes["bad"])
        crit = active_config().effective_criterion
        ref = cg(op, good_rhs, criterion=crit)
        for name in ("good", "good2"):
            assert not isinstance(outcomes[name], ServiceError)
            assert np.array_equal(np.asarray(outcomes[name]["x"]), ref.x)

    def test_unsupported_solver_rejected_up_front(self, service):
        svc, client = service
        job = VectorJob(sid=2257, scale="test", solver="block_cg")
        with pytest.raises(ServiceError) as excinfo:
            client.solve_vector(job)
        assert excinfo.value.status == 400

    def test_engine_request_matches_local_run(self, service):
        svc, client = service
        request = RunRequest(sid=353, solver="cg", scale="test",
                             platforms=("gpu", "refloat"))
        remote = client.solve(request)
        local = run_request(request)
        assert remote == local.to_dict()

    def test_engine_failure_surfaces_as_structured_error(self, service):
        svc, client = service
        request = RunRequest(sid=999999, solver="cg", scale="test")
        with pytest.raises(ServiceError) as excinfo:
            client.solve(request)
        err = excinfo.value
        assert err.failure is not None or err.status in (400, 500)

    def test_health_and_stats_endpoints(self, service):
        svc, client = service
        health = client.health()
        assert health["ok"] is True
        stats = client.stats()
        assert {"service", "engine", "store", "remote_store"} <= set(stats)
        assert stats["coalesce"]["max_batch"] == 3

    def test_unknown_paths_and_malformed_bodies_get_4xx(self, service):
        svc, client = service
        status, payload = client._json("GET", "/v1/nope")
        assert status == 404
        status, _ = client._request("POST", "/v1/solve", b"{ not json")
        assert status == 400
        status, _ = client._request(
            "POST", "/v1/solve",
            json.dumps({"type": "Mystery"}).encode())
        assert status == 400

    def test_store_endpoints_without_root_return_503(self, service):
        svc, client = service
        status, _ = client._json("GET", "/v1/store/2257/test")
        assert status == 503


class TestServiceClient:
    def test_parse_address(self):
        assert parse_address("localhost:8537") == ("localhost", 8537)
        assert parse_address("http://10.0.0.2:80/") == ("10.0.0.2", 80)
        for bad in ("nohost", "host:", ":123", "host:port"):
            with pytest.raises(ValueError):
                parse_address(bad)

    def test_unreachable_service_raises_after_retries(self):
        client = ServiceClient("127.0.0.1:9", timeout=0.5, retries=2,
                               backoff=0.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()

    def test_from_config_wires_retry_knobs(self):
        cfg = RunConfig(request_timeout=7.0, request_retries=3,
                        retry_backoff=0.25)
        client = ServiceClient.from_config("h:1", cfg)
        assert (client.timeout, client.retries, client.backoff) == (
            7.0, 3, 0.25)
