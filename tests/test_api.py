"""Tests of the ``repro.api`` layer: registries, RunConfig, run specs.

Covers the registry contract (duplicate rejection, dependency closure),
the config resolution order (env < explicit config < arguments, with
``RunConfig.from_env`` as the single env reader), lossless JSON round
trips of the declarative job objects, and the headline acceptance
criteria: a user-registered platform sweeps via ``run_suite`` without
touching ``repro/experiments/common.py``, and a spec revived from JSON
reproduces bit-identical results.
"""

import json
import math
import pathlib

import numpy as np
import pytest

from repro.api import (
    DEFAULT_PLATFORMS,
    PLATFORM_REGISTRY,
    SOLVER_REGISTRY,
    PlatformSpec,
    Registry,
    RunConfig,
    RunRequest,
    SolverSpec,
    SuiteSpec,
    noisy_platform_spec,
    register_platform,
    register_solver,
    resolve_platforms,
)
from repro.api import config as api_config
from repro.experiments.common import (
    clear_run_caches,
    run_matrix,
    run_request,
    run_spec,
    run_suite,
)
from repro.solvers import cg

SRC_ROOT = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


@pytest.fixture
def scratch_platform():
    """Register a trivial platform for the duration of one test."""

    @register_platform("scratch", timing=lambda ctx, it: it * 1e-6)
    def factory(assets, ctx):
        return assets.exact_op

    yield "scratch"
    PLATFORM_REGISTRY.unregister("scratch")


class TestRegistry:
    def test_duplicate_platform_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_platform("gpu", timing=lambda ctx, it: 0.0)(
                lambda assets, ctx: assets.exact_op)

    def test_duplicate_solver_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_solver("cg", spmvs_per_iteration=1,
                            vector_ops_per_iteration=6)(cg)

    def test_replace_allows_override(self):
        reg = Registry("platform")
        spec = PlatformSpec(name="p", operator=lambda a, c: None,
                            timing=lambda c, i: 0.0)
        reg.register(spec)
        with pytest.raises(ValueError):
            reg.register(spec)
        reg.register(spec, replace=True)
        assert reg.get("p") is spec

    def test_unknown_name_lists_registered(self):
        with pytest.raises(KeyError, match="unknown platform 'warp'"):
            PLATFORM_REGISTRY.get("warp")
        with pytest.raises(KeyError, match="unknown solver 'sor'"):
            SOLVER_REGISTRY.get("sor")

    def test_builtin_registrations(self):
        for name in DEFAULT_PLATFORMS + ("noisy", "truncated"):
            assert name in PLATFORM_REGISTRY
        for name in ("cg", "bicgstab", "block_cg", "solve_many"):
            assert name in SOLVER_REGISTRY
        assert SOLVER_REGISTRY.get("block_cg").multi_rhs
        assert not SOLVER_REGISTRY.get("cg").multi_rhs

    def test_results_from_requires_known_shape(self):
        with pytest.raises(ValueError, match="operator factory"):
            PlatformSpec(name="x", operator=None, timing=lambda c, i: 0.0)
        with pytest.raises(ValueError, match="its own results"):
            PlatformSpec(name="x", operator=None, results_from="x",
                         timing=lambda c, i: 0.0)

    def test_resolve_platforms_pulls_dependencies(self):
        assert resolve_platforms(("feinberg_fc",)) == ("gpu", "feinberg_fc")
        # Stable, deduplicated, dependency-first.
        assert resolve_platforms(("refloat", "feinberg_fc", "gpu")) == \
            ("refloat", "gpu", "feinberg_fc")

    def test_resolve_platforms_rejects_empty_and_cycles(self):
        with pytest.raises(ValueError, match="empty"):
            resolve_platforms(())
        reg = Registry("platform")
        reg.register(PlatformSpec(name="a", operator=None, results_from="b",
                                  timing=lambda c, i: 0.0))
        reg.register(PlatformSpec(name="b", operator=None, results_from="a",
                                  timing=lambda c, i: 0.0))
        with pytest.raises(ValueError, match="cycle"):
            resolve_platforms(("a",), registry=reg)


class TestRunConfig:
    def test_defaults(self, monkeypatch):
        for var in ("REPRO_FULL", "REPRO_SUITE_WORKERS",
                    "REPRO_SUITE_EXECUTOR", "REPRO_ASSET_CACHE_MB",
                    "REPRO_ASSET_STORE", "REPRO_ASSET_STORE_VERIFY",
                    "REPRO_SKIP_KAPPA", "REPRO_REQUEST_TIMEOUT",
                    "REPRO_REQUEST_RETRIES", "REPRO_RETRY_BACKOFF"):
            monkeypatch.delenv(var, raising=False)
        cfg = RunConfig.from_env()
        assert cfg == RunConfig()
        assert cfg.executor == "thread"
        assert cfg.asset_cache_bytes is None
        assert cfg.request_timeout is None
        assert cfg.request_retries == 0
        assert cfg.retry_backoff == 0.0

    def test_from_env_reads_every_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "1")
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "3")
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "1.5")
        monkeypatch.setenv("REPRO_ASSET_STORE", "/tmp/store")
        monkeypatch.setenv("REPRO_ASSET_STORE_VERIFY", "0")
        monkeypatch.setenv("REPRO_SKIP_KAPPA", "1")
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "30.5")
        monkeypatch.setenv("REPRO_REQUEST_RETRIES", "2")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0.25")
        cfg = RunConfig.from_env()
        assert cfg == RunConfig(scale="paper", workers=3, executor="process",
                                asset_cache_mb=1.5, store="/tmp/store",
                                store_verify=False, skip_kappa=True,
                                request_timeout=30.5, request_retries=2,
                                retry_backoff=0.25)
        assert cfg.asset_cache_bytes == int(1.5 * (1 << 20))

    def test_overrides_take_precedence_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "3")
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        cfg = RunConfig.from_env(workers=7, executor="thread")
        assert cfg.workers == 7
        assert cfg.executor == "thread"

    def test_invalid_env_values_name_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_SUITE_WORKERS='many'"):
            RunConfig.from_env()
        monkeypatch.delenv("REPRO_SUITE_WORKERS")
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "fibers")
        with pytest.raises(ValueError, match="REPRO_SUITE_EXECUTOR='fibers'"):
            RunConfig.from_env()
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR")
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "lots")
        with pytest.raises(ValueError, match="'lots'"):
            RunConfig.from_env()

    @pytest.mark.parametrize("bad", ["0", "-1", "abc", "inf"])
    def test_invalid_request_timeout_names_var_and_value(self, monkeypatch,
                                                         bad):
        # Zero/negative/non-numeric/non-finite timeouts must fail with the
        # same named-error shape as REPRO_SUITE_WORKERS, not be clamped.
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", bad)
        with pytest.raises(ValueError,
                           match=f"REPRO_REQUEST_TIMEOUT='{bad}'"):
            RunConfig.from_env()

    @pytest.mark.parametrize("bad", ["-1", "1.5", "x"])
    def test_invalid_request_retries_names_var_and_value(self, monkeypatch,
                                                         bad):
        monkeypatch.setenv("REPRO_REQUEST_RETRIES", bad)
        with pytest.raises(ValueError,
                           match=f"REPRO_REQUEST_RETRIES='{bad}'"):
            RunConfig.from_env()

    @pytest.mark.parametrize("bad", ["-0.5", "nan", "y"])
    def test_invalid_retry_backoff_names_var_and_value(self, monkeypatch,
                                                       bad):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", bad)
        with pytest.raises(ValueError,
                           match=f"REPRO_RETRY_BACKOFF='{bad}'"):
            RunConfig.from_env()

    def test_valid_fault_knobs_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_REQUEST_TIMEOUT", "1.5")
        monkeypatch.setenv("REPRO_REQUEST_RETRIES", "0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
        cfg = RunConfig.from_env()
        assert cfg.request_timeout == 1.5
        assert cfg.request_retries == 0
        assert cfg.retry_backoff == 0.0

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="scale"):
            RunConfig(scale="huge")
        with pytest.raises(ValueError, match="executor"):
            RunConfig(executor="fibers")
        with pytest.raises(ValueError):
            RunConfig(workers=0)
        with pytest.raises(ValueError, match="asset_cache_mb"):
            RunConfig(asset_cache_mb=-1)
        with pytest.raises(ValueError, match="request_timeout"):
            RunConfig(request_timeout=0)
        with pytest.raises(ValueError, match="request_timeout"):
            RunConfig(request_timeout=float("inf"))
        with pytest.raises(ValueError, match="request_retries"):
            RunConfig(request_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            RunConfig(retry_backoff=-0.1)

    def test_json_round_trip(self):
        cfg = RunConfig(scale="test", workers=2, executor="process",
                        asset_cache_mb=64.0, store="/tmp/s",
                        store_verify=False, skip_kappa=True,
                        request_timeout=12.0, request_retries=3,
                        retry_backoff=0.5)
        assert RunConfig.from_json(cfg.to_json()) == cfg
        assert RunConfig.from_json(RunConfig().to_json()) == RunConfig()

    def test_use_installs_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        cfg = RunConfig(executor="process")
        assert api_config.active().executor == "thread"
        with api_config.use(cfg):
            assert api_config.active() is cfg
        assert api_config.active().executor == "thread"

    def test_installed_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "5")
        with api_config.use(RunConfig(workers=2)):
            assert api_config.active().workers == 2
        assert api_config.active().workers == 5


class TestConfigHygiene:
    def test_env_reads_only_in_config_module(self):
        """``REPRO_*`` env access must stay inside ``repro.api.config``."""
        offenders = []
        for path in sorted(SRC_ROOT.rglob("*.py")):
            if path == SRC_ROOT / "api" / "config.py":
                continue
            text = path.read_text()
            if "os.environ" in text or "getenv" in text:
                offenders.append(str(path.relative_to(SRC_ROOT)))
        assert offenders == []


class TestSpecs:
    def test_suite_spec_json_round_trip(self):
        for spec in (
            SuiteSpec(),
            SuiteSpec(solver="bicgstab", scale="test"),
            SuiteSpec(solver="cg", scale="paper",
                      platforms=("gpu", "refloat"), sids=(353, 1311)),
        ):
            assert SuiteSpec.from_json(spec.to_json()) == spec

    def test_run_request_json_round_trip(self):
        req = RunRequest(sid=353, solver="cg", scale="test",
                         platforms=("gpu", "refloat"))
        assert RunRequest.from_json(req.to_json()) == req
        assert RunRequest.from_json(
            RunRequest(sid=845, solver="bicgstab", scale="default").to_json()
        ).platforms is None

    def test_lists_normalise_to_tuples(self):
        spec = SuiteSpec(platforms=["gpu", "refloat"], sids=[353])
        assert spec.platforms == ("gpu", "refloat")
        assert spec.sids == (353,)
        assert spec == SuiteSpec(platforms=("gpu", "refloat"), sids=(353,))

    def test_validation(self):
        with pytest.raises(ValueError, match="scale"):
            SuiteSpec(scale="huge")
        with pytest.raises(ValueError, match="concrete scale"):
            RunRequest(sid=353, solver="cg", scale=None)
        with pytest.raises(ValueError, match="non-empty"):
            SuiteSpec(platforms=())
        with pytest.raises(ValueError, match="not a SuiteSpec"):
            SuiteSpec.from_dict({"type": "RunRequest", "sid": 1})
        with pytest.raises(ValueError, match="version"):
            SuiteSpec.from_json(json.dumps(
                {"type": "SuiteSpec", "version": 99, "solver": "cg",
                 "scale": None, "platforms": None, "sids": None}))


class TestMatrixRunSubsets:
    def test_absent_platform_iterations_none_speedup_nan(self, fresh_caches):
        run = run_matrix(1311, "cg", "test", platforms=["gpu", "refloat"])
        assert run.iterations("feinberg") is None
        assert math.isnan(run.speedup("feinberg"))
        assert run.iterations("refloat") == run.results["refloat"].iterations

    def test_speedup_nan_without_gpu_baseline(self, fresh_caches):
        run = run_matrix(1311, "cg", "test", platforms=["refloat"])
        assert run.platforms == ("refloat",)
        assert math.isfinite(run.times_s["refloat"])
        assert math.isnan(run.speedup("refloat"))

    def test_dependency_platform_pulled_into_sweep(self, fresh_caches):
        run = run_matrix(1311, "cg", "test", platforms=["feinberg_fc"])
        assert run.platforms == ("gpu", "feinberg_fc")
        assert run.results["feinberg_fc"] is run.results["gpu"]

    def test_multi_rhs_solver_rejected_by_run_matrix(self):
        with pytest.raises(ValueError, match="multi-RHS"):
            run_matrix(1311, "block_cg", "test")
        with pytest.raises(KeyError, match="unknown solver"):
            run_matrix(1311, "sor", "test")

    def test_unknown_platform_and_sid_fail_fast(self):
        with pytest.raises(KeyError, match="unknown platform"):
            run_matrix(1311, "cg", "test", platforms=["warp"])
        with pytest.raises(KeyError, match="unknown suite matrix id"):
            run_suite("cg", "test", sids=[999])

    def test_subset_suite_pinned_identical_to_full(self, fresh_caches):
        full = run_suite("cg", "test")
        sub = run_suite("cg", "test", platforms=("gpu", "refloat"),
                        sids=(353, 1311))
        assert set(sub) == {353, 1311}
        for sid in sub:
            for platform in ("gpu", "refloat"):
                a = sub[sid].results[platform]
                b = full[sid].results[platform]
                assert np.array_equal(a.x, b.x)
                assert a.iterations == b.iterations
                assert sub[sid].times_s[platform] == \
                    full[sid].times_s[platform]

    def test_suite_cache_distinguishes_subsets(self, fresh_caches):
        full = run_suite("cg", "test")
        sub = run_suite("cg", "test", platforms=("gpu", "refloat"))
        assert run_suite("cg", "test") is full
        assert run_suite("cg", "test", platforms=("gpu", "refloat")) is sub
        assert full is not sub

    def test_reregistration_invalidates_suite_cache(self, fresh_caches):
        # replace=True makes the same name mean different work; the run
        # cache must not serve the old sweep for it.
        spec = PlatformSpec(name="volatile",
                            operator=lambda assets, ctx: assets.exact_op,
                            timing=lambda ctx, it: it * 1e-6)
        PLATFORM_REGISTRY.register(spec)
        try:
            first = run_suite("cg", "test", platforms=("gpu", "volatile"),
                              sids=(1311,))
            PLATFORM_REGISTRY.register(
                spec.__class__(name="volatile", operator=spec.operator,
                               timing=lambda ctx, it: it * 1e-3),
                replace=True)
            second = run_suite("cg", "test",
                               platforms=("gpu", "volatile"), sids=(1311,))
            assert second is not first
            assert second[1311].times_s["volatile"] == \
                first[1311].times_s["volatile"] * 1e3
        finally:
            PLATFORM_REGISTRY.unregister("volatile")

    def test_bare_string_platforms_rejected(self):
        with pytest.raises(ValueError, match="bare string"):
            run_matrix(1311, "cg", "test", platforms="gpu")
        with pytest.raises(ValueError, match="bare string"):
            run_suite("cg", "test", platforms="refloat")
        with pytest.raises(ValueError, match="bare string"):
            SuiteSpec(platforms="gpu")


class TestUserRegistration:
    def test_new_platform_swept_without_touching_common(
            self, fresh_caches, scratch_platform):
        # The acceptance criterion: registration + run_suite(platforms=...)
        # from user code is the whole integration surface.
        runs = run_suite("cg", "test",
                         platforms=["gpu", scratch_platform], sids=[1311])
        run = runs[1311]
        assert run.platforms == ("gpu", scratch_platform)
        res = run.results[scratch_platform]
        assert res.converged
        assert np.array_equal(res.x, run.results["gpu"].x)  # same operator
        assert run.times_s[scratch_platform] == \
            res.iterations * 1e-6
        assert run.speedup(scratch_platform) > 0

    def test_noisy_platform_spec_variants(self, fresh_caches):
        spec = noisy_platform_spec("noisy_frozen", 0.02,
                                   fresh_per_apply=False, seed=7)
        PLATFORM_REGISTRY.register(spec)
        try:
            run = run_matrix(353, "cg", "test",
                             platforms=["gpu", "noisy_frozen"])
            assert "noisy_frozen" in run.results
        finally:
            PLATFORM_REGISTRY.unregister("noisy_frozen")


class TestDeclarativeExecution:
    def test_spec_json_round_trip_reproduces_bit_identical_runs(
            self, fresh_caches):
        spec = SuiteSpec(solver="cg", scale="test",
                         platforms=("gpu", "feinberg_fc", "refloat"),
                         sids=(353, 1311))
        first = run_spec(spec)
        clear_run_caches()
        revived = run_spec(SuiteSpec.from_json(spec.to_json()))
        assert set(first) == set(revived)
        for sid in first:
            assert first[sid].times_s == revived[sid].times_s
            for platform in first[sid].platforms:
                a, b = (first[sid].results[platform],
                        revived[sid].results[platform])
                assert np.array_equal(a.x, b.x)
                assert a.iterations == b.iterations
                assert np.array_equal(a.residual_history,
                                      b.residual_history)

    def test_run_request_matches_run_matrix(self, fresh_caches):
        req = RunRequest(sid=353, solver="cg", scale="test",
                         platforms=("gpu", "refloat"))
        a = run_request(req)
        b = run_matrix(353, "cg", "test", platforms=("gpu", "refloat"))
        assert a.times_s == b.times_s
        assert np.array_equal(a.results["refloat"].x,
                              b.results["refloat"].x)

    def test_run_suite_config_argument(self, fresh_caches, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
        cfg = RunConfig(scale="test", workers=1)
        runs = run_suite("cg", sids=[1311], config=cfg)
        assert runs[1311].results["gpu"].converged
        # The installed config must not leak past the call.
        assert api_config.active().scale is None

    def test_matrix_run_to_dict_is_json_safe(self, fresh_caches):
        run = run_matrix(353, "cg", "test")  # feinberg is NC here
        payload = json.loads(json.dumps(run.to_dict()))
        assert payload["platforms"]["feinberg"]["time_s"] is None
        assert payload["platforms"]["refloat"]["speedup_vs_gpu"] > 0
        assert payload["platforms"]["feinberg_fc"]["converged"] is True
