"""Tests for Matrix Market I/O."""

import io

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.mmio import read_matrix_market, write_matrix_market


def roundtrip(A, symmetric=False):
    buf = io.StringIO()
    write_matrix_market(buf, A, symmetric=symmetric)
    buf.seek(0)
    return read_matrix_market(buf)


class TestRoundtrip:
    def test_general(self, rng):
        A = sp.random(20, 30, density=0.2,
                      random_state=np.random.RandomState(1), format="csr")
        B = roundtrip(A)
        assert (A != B).nnz == 0

    def test_symmetric(self):
        from repro.sparse.gallery import laplacian_2d

        A = laplacian_2d(5)
        B = roundtrip(A, symmetric=True)
        assert (A != B).nnz == 0

    def test_values_exact(self):
        # repr-based writing must preserve doubles bit-for-bit.
        A = sp.csr_matrix(np.array([[1/3, 0], [0, 1e-300]]))
        B = roundtrip(A)
        assert np.array_equal(A.toarray(), B.toarray())

    def test_file_path(self, tmp_path):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [0.0, 3.0]]))
        path = tmp_path / "m.mtx"
        write_matrix_market(path, A, comment="hello\nworld")
        B = read_matrix_market(path)
        assert (A != B).nnz == 0


class TestRead:
    def test_pattern(self):
        text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n2 2\n"
        A = read_matrix_market(io.StringIO(text))
        assert A.toarray().tolist() == [[1.0, 0.0], [0.0, 1.0]]

    def test_symmetric_expansion(self):
        text = ("%%MatrixMarket matrix coordinate real symmetric\n"
                "2 2 2\n1 1 4.0\n2 1 -1.0\n")
        A = read_matrix_market(io.StringIO(text))
        assert A.toarray().tolist() == [[4.0, -1.0], [-1.0, 0.0]]

    def test_comments_skipped(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "% a comment\n% another\n1 1 1\n1 1 7.5\n")
        A = read_matrix_market(io.StringIO(text))
        assert A[0, 0] == 7.5

    def test_duplicates_summed(self):
        text = ("%%MatrixMarket matrix coordinate real general\n"
                "1 1 2\n1 1 1.0\n1 1 2.0\n")
        A = read_matrix_market(io.StringIO(text))
        assert A[0, 0] == 3.0

    def test_bad_header(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("not a header\n"))

    def test_unsupported_format(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real general\n"))

    def test_out_of_bounds_index(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))

    def test_wrong_entry_count(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n"
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(text))


class TestWrite:
    def test_symmetric_requires_symmetry(self):
        A = sp.csr_matrix(np.array([[1.0, 2.0], [0.0, 1.0]]))
        with pytest.raises(ValueError):
            write_matrix_market(io.StringIO(), A, symmetric=True)

    def test_header_line(self):
        buf = io.StringIO()
        write_matrix_market(buf, sp.csr_matrix((2, 2)))
        assert buf.getvalue().splitlines()[0] == \
            "%%MatrixMarket matrix coordinate real general"
