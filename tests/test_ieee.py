"""Unit tests for IEEE-754 bit manipulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import ieee

finite_doubles = st.floats(allow_nan=False, allow_infinity=False,
                           min_value=-1e300, max_value=1e300)
normal_doubles = finite_doubles.filter(lambda x: x == 0.0 or abs(x) > 1e-300)


class TestDecompose:
    def test_known_values(self):
        sign, exp, frac = ieee.decompose(np.array([1.0, -2.0, 0.5, 3.0]))
        assert list(sign) == [0, 1, 0, 0]
        assert list(exp) == [0, 1, -1, 1]
        assert frac[0] == 0 and frac[1] == 0
        # 3.0 = 1.1b * 2^1 -> fraction = 0.1b = top bit set
        assert frac[3] == 1 << 51

    def test_zero_sentinel(self):
        _, exp, frac = ieee.decompose(np.array([0.0, -0.0]))
        assert np.all(exp == ieee.EXP_ZERO)
        assert np.all(frac == 0)

    def test_subnormals_flush(self):
        _, exp, frac = ieee.decompose(np.array([5e-324, 1e-310]))
        assert np.all(exp == ieee.EXP_ZERO)
        assert np.all(frac == 0)

    def test_rejects_nan_inf(self):
        with pytest.raises(ValueError):
            ieee.decompose(np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            ieee.decompose(np.array([np.inf]))

    def test_noncontiguous_input(self):
        x = np.arange(10, dtype=np.float64)[::2] + 1.0
        _, exp, _ = ieee.decompose(x)
        assert exp.shape == (5,)

    @given(st.lists(normal_doubles, min_size=1, max_size=50))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip(self, values):
        arr = np.array(values, dtype=np.float64)
        out = ieee.compose(*ieee.decompose(arr))
        # -0.0 normalises to +0.0; everything else exact.
        assert np.array_equal(np.where(arr == 0, 0.0, arr), out)

    def test_exponent_of_matches_frexp(self, rng=np.random.default_rng(3)):
        x = rng.standard_normal(1000) * np.exp2(rng.uniform(-100, 100, 1000))
        e = ieee.exponent_of(x)
        mant, ex = np.frexp(x)
        assert np.array_equal(e, ex - 1)


class TestFractionOps:
    def test_truncate_keeps_top_bits(self):
        frac = np.array([(1 << 52) - 1], dtype=np.uint64)
        out = ieee.truncate_fraction(frac, 4)
        assert out[0] == (0b1111 << 48)

    def test_truncate_zero_bits(self):
        frac = np.array([123456789], dtype=np.uint64)
        assert ieee.truncate_fraction(frac, 0)[0] == 0

    def test_truncate_validates(self):
        with pytest.raises(ValueError):
            ieee.truncate_fraction(np.array([0], dtype=np.uint64), 53)

    def test_round_carry(self):
        # All-ones fraction rounds up and overflows the mantissa.
        frac = np.array([(1 << 52) - 1], dtype=np.uint64)
        rounded, carry = ieee.round_fraction(frac, 4)
        assert carry[0]
        assert rounded[0] == 0

    def test_round_no_carry(self):
        frac = np.array([1 << 47], dtype=np.uint64)  # 0.5 ulp at f=4
        rounded, carry = ieee.round_fraction(frac, 4)
        assert not carry[0]
        assert rounded[0] == (1 << 48)  # rounds up into bit 48

    def test_round_full_width_identity(self):
        frac = np.array([987654321], dtype=np.uint64)
        rounded, carry = ieee.round_fraction(frac, 52)
        assert rounded[0] == frac[0] and not carry[0]


class TestQuantizeIEEE:
    def test_full_width_is_identity(self, rng):
        x = rng.standard_normal(100)
        assert np.array_equal(ieee.quantize_ieee(x, 11, 52), x)

    def test_fraction_truncation_error_bound(self, rng):
        x = np.abs(rng.standard_normal(1000)) + 0.1
        q = ieee.quantize_ieee(x, 11, 20)
        rel = np.abs(q - x) / x
        assert np.all(rel < 2.0 ** -20)
        assert np.all(q <= x)  # truncation rounds magnitude toward zero

    def test_exponent_wrap(self):
        # exp_bits=6 keeps biased-exponent low bits; 2.0 (biased 1024) wraps
        # 64 binades down while 1.0 (biased 1023) is preserved.
        q = ieee.quantize_ieee(np.array([1.0, 2.0]), 6, 52)
        assert q[0] == 1.0
        assert q[1] == 2.0 ** -63

    def test_zero_passthrough(self):
        q = ieee.quantize_ieee(np.array([0.0, 1.5]), 6, 10)
        assert q[0] == 0.0

    def test_nearest_rounding(self):
        x = np.array([1.0 + 2.0 ** -21])
        q = ieee.quantize_ieee(x, 11, 20, rounding="nearest")
        assert q[0] == 1.0 + 2.0 ** -20

    def test_validates_bits(self):
        with pytest.raises(ValueError):
            ieee.quantize_ieee(np.array([1.0]), 0, 52)
        with pytest.raises(ValueError):
            ieee.quantize_ieee(np.array([1.0]), 6, 52, rounding="bogus")

    @given(st.lists(st.floats(min_value=0.25, max_value=4.0), min_size=1,
                    max_size=30), st.integers(1, 52))
    @settings(max_examples=100, deadline=None)
    def test_idempotent(self, values, frac_bits):
        x = np.array(values)
        q1 = ieee.quantize_ieee(x, 11, frac_bits)
        q2 = ieee.quantize_ieee(q1, 11, frac_bits)
        assert np.array_equal(q1, q2)
