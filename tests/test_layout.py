"""Tests for row-major vs block-major nonzero layouts (Fig. 7)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse.blocked import BlockedMatrix
from repro.sparse.layout import (
    block_major_order,
    layout_report,
    row_major_order,
    streaming_run_lengths,
)


def sample_blocked():
    rng = np.random.RandomState(9)
    A = sp.random(64, 64, density=0.15, random_state=rng, format="csr")
    A.data[:] = 1.0
    return BlockedMatrix(A, b=3)


class TestOrders:
    def test_row_major_is_identity(self):
        bm = sample_blocked()
        assert np.array_equal(row_major_order(bm.A), np.arange(bm.nnz))

    def test_block_major_is_permutation(self):
        bm = sample_blocked()
        perm = block_major_order(bm, P=2)
        assert np.array_equal(np.sort(perm), np.arange(bm.nnz))

    def test_block_major_groups_blocks_contiguously(self):
        bm = sample_blocked()
        perm = block_major_order(bm, P=1)
        rows = np.repeat(np.arange(64), np.diff(bm.A.indptr))
        cols = bm.A.indices
        bi = (rows[perm] >> 3) * bm.block_grid[1] + (cols[perm] >> 3)
        # Each block id appears as one contiguous run.
        changes = np.flatnonzero(np.diff(bi)) + 1
        seen = bi[np.concatenate(([0], changes))]
        assert len(seen) == len(set(seen.tolist()))

    def test_P_grouping_orders_block_rows_first(self):
        bm = sample_blocked()
        perm = block_major_order(bm, P=4)
        rows = np.repeat(np.arange(64), np.diff(bm.A.indptr))
        block_rows = rows[perm] >> 3
        assert np.all(np.diff(block_rows) >= 0)  # block-rows never go back

    def test_invalid_P(self):
        with pytest.raises(ValueError):
            block_major_order(sample_blocked(), P=0)


class TestRunLengths:
    def test_identity_is_one_run(self):
        runs = streaming_run_lengths(np.arange(100))
        assert runs.tolist() == [100]

    def test_reversed_is_all_singletons(self):
        runs = streaming_run_lengths(np.arange(10)[::-1])
        assert runs.tolist() == [1] * 10

    def test_empty(self):
        assert streaming_run_lengths(np.array([], dtype=int)).size == 0


class TestReport:
    def test_block_major_storage_streams(self):
        rep = layout_report(sample_blocked(), P=4)
        assert rep["mean_run_block_major"] == rep["nnz"]  # single full run
        assert rep["mean_run_row_major"] <= rep["mean_run_block_major"]
        assert rep["runs_row_major"] >= rep["runs_block_major"]
