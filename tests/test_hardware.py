"""Tests for the hardware substrate: cost model, crossbar, engine, timing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import DEFAULT_SPEC, ReFloatSpec
from repro.hardware import (
    ADCConfig,
    AcceleratorConfig,
    CrossbarMVM,
    EnergyModel,
    FEINBERG_CROSSBARS_PER_ENGINE,
    FEINBERG_CYCLES,
    GPUSolverModel,
    MappingPlan,
    ProcessingEngine,
    RTNModel,
    SARADC,
    SolverTimingModel,
    bit_slice,
    block_mvm_reference,
    crossbars_per_engine,
    cycles_per_block_mvm,
    fixed_point_mvm_cycles,
    integer_mvm,
)


class TestCostModel:
    """The paper's quoted constants, pinned exactly."""

    def test_fp64_crossbars_8404(self):
        assert crossbars_per_engine(11, 52) == 8404

    def test_fp64_cycles_4201(self):
        assert cycles_per_block_mvm(11, 52, 11, 52) == 4201

    def test_refloat_default_28_cycles(self):
        assert cycles_per_block_mvm(3, 3, 3, 8) == 28

    def test_feinberg_233_cycles(self):
        assert FEINBERG_CYCLES == 233

    def test_refloat_engine_48_crossbars(self):
        assert crossbars_per_engine(3, 3) == 48

    def test_refloat_2_2_3_is_16_crossbars_per_sign_pair(self):
        # Sec. IV-A: "our design only requires 16 crossbars with ReFloat(2,2,3)"
        assert crossbars_per_engine(2, 3) // 2 == 16

    def test_fig2_pipeline_cycles(self):
        assert fixed_point_mvm_cycles(4, 4) == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            crossbars_per_engine(-1, 3)
        with pytest.raises(ValueError):
            fixed_point_mvm_cycles(0, 4)


class TestCrossbar:
    def test_fig2_worked_example(self):
        M = np.array([[0, 13, 7, 11], [11, 14, 3, 8],
                      [9, 5, 2, 5], [14, 6, 9, 15]], dtype=np.uint64)
        x = np.array([6, 12, 6, 13], dtype=np.uint64)
        y, cycles = integer_mvm(M, x, 4, 4)
        assert y.tolist() == [368, 354, 207, 387]
        assert cycles == 7

    def test_fig2_partial_sum_trace(self):
        M = np.array([[0, 13, 7, 11], [11, 14, 3, 8],
                      [9, 5, 2, 5], [14, 6, 9, 15]], dtype=np.uint64)
        x = np.array([6, 12, 6, 13], dtype=np.uint64)
        eng = CrossbarMVM(M, 4, 4, record_trace=True)
        eng.multiply(x)
        # Final reduction step equals the Fig. 2 S-sequence endpoint.
        assert eng.trace[-1].tolist() == [368, 354, 207, 387]
        assert len(eng.trace) == 8  # 4 input steps + 4 reduction steps

    def test_bit_slice_msb_first(self):
        planes = bit_slice(np.array([0b101], dtype=np.uint64), 3)
        assert planes[:, 0].tolist() == [1, 0, 1]

    def test_bit_slice_validates_range(self):
        with pytest.raises(ValueError):
            bit_slice(np.array([8], dtype=np.uint64), 3)

    @given(st.integers(1, 10), st.integers(1, 10),
           st.integers(2, 8), st.integers(2, 8), st.integers(0, 2 ** 31))
    @settings(max_examples=60, deadline=None)
    def test_matches_integer_matmul(self, m, n, mb, vb, seed):
        rng = np.random.default_rng(seed)
        M = rng.integers(0, 1 << mb, (m, n)).astype(np.uint64)
        v = rng.integers(0, 1 << vb, m).astype(np.uint64)
        y, _ = integer_mvm(M, v, mb, vb)
        assert np.array_equal(y, M.astype(np.int64).T @ v.astype(np.int64))

    def test_shape_validation(self):
        eng = CrossbarMVM(np.zeros((3, 3), dtype=np.uint64), 2, 2)
        with pytest.raises(ValueError):
            eng.multiply(np.zeros(4, dtype=np.uint64))


class TestEngine:
    @pytest.mark.parametrize("seed", range(4))
    def test_bit_exact_vs_fp64_shortcut(self, seed):
        rng = np.random.default_rng(seed)
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        block = rng.standard_normal((8, 8)) * np.exp2(rng.uniform(-2, 2, (8, 8)))
        block[rng.random((8, 8)) < 0.4] = 0.0
        seg = rng.standard_normal(8) * np.exp2(rng.uniform(-6, 2, 8))
        engine = ProcessingEngine(block, spec)
        assert np.array_equal(engine.multiply(seg),
                              block_mvm_reference(block, seg, spec))

    def test_cycles_match_eq3(self):
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        engine = ProcessingEngine(np.zeros((8, 8)), spec)
        assert engine.cycles == 28

    def test_all_zero_block(self):
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=8)
        engine = ProcessingEngine(np.zeros((4, 4)), spec)
        assert np.all(engine.multiply(np.ones(4)) == 0.0)

    def test_block_shape_validated(self):
        with pytest.raises(ValueError):
            ProcessingEngine(np.zeros((4, 4)), ReFloatSpec(b=3))


class TestAcceleratorConfig:
    def test_both_designs_same_compute_reram(self):
        f = AcceleratorConfig.feinberg_default()
        r = AcceleratorConfig.refloat_default()
        assert f.total_crossbars == r.total_crossbars == 1048576
        # Table IV: 17.1 Gb (decimal) of compute ReRAM.
        assert f.compute_bits == 1048576 * 128 * 128
        assert round(f.compute_bits / 1e9, 1) == 17.2  # 17.1 in the paper (rounding)

    def test_engine_counts_match_paper(self):
        assert (AcceleratorConfig.feinberg_default().total_crossbars
                // FEINBERG_CROSSBARS_PER_ENGINE) == 2221
        assert (AcceleratorConfig.refloat_default().total_crossbars
                // crossbars_per_engine(3, 3)) == 21845


class TestMappingPlan:
    def test_paper_round_counts(self):
        # Paper Section VI-B: 10 and 18 rounds for matrices 2257 / 2259.
        assert MappingPlan.for_refloat(209263, DEFAULT_SPEC).rounds == 10
        assert MappingPlan.for_refloat(381321, DEFAULT_SPEC).rounds == 18
        assert MappingPlan.for_feinberg(209263).rounds == 95

    def test_resident_spmv_time(self):
        plan = MappingPlan.for_refloat(100, DEFAULT_SPEC)
        assert plan.resident
        assert plan.spmv_time_s == pytest.approx(28 * 107e-9)

    def test_multiround_pays_writes(self):
        plan = MappingPlan.for_refloat(50000, DEFAULT_SPEC)
        assert not plan.resident
        per_round = plan.config.block_write_time_s + 28 * 107e-9
        assert plan.spmv_time_s == pytest.approx(plan.rounds * per_round)

    def test_empty_matrix(self):
        plan = MappingPlan.for_refloat(0, DEFAULT_SPEC)
        assert plan.rounds == 1


class TestTimingModels:
    def test_solver_time_scales_with_iterations(self):
        plan = MappingPlan.for_refloat(500, DEFAULT_SPEC)
        model = SolverTimingModel(plan, spmvs_per_iteration=1)
        t10 = model.solve_time_s(10, 1000, include_setup=False)
        t20 = model.solve_time_s(20, 1000, include_setup=False)
        assert t20 == pytest.approx(2 * t10)

    def test_setup_toggle(self):
        plan = MappingPlan.for_refloat(500, DEFAULT_SPEC)
        model = SolverTimingModel(plan)
        delta = (model.solve_time_s(5, 100) -
                 model.solve_time_s(5, 100, include_setup=False))
        assert delta == pytest.approx(plan.setup_time_s)

    def test_negative_iterations_rejected(self):
        model = SolverTimingModel(MappingPlan.for_refloat(10, DEFAULT_SPEC))
        with pytest.raises(ValueError):
            model.solve_time_s(-1, 10)

    def test_gpu_bandwidth_vs_latency_regimes(self):
        gpu = GPUSolverModel.cg()
        # Tiny matrix: launch-bound; per-iteration time ~ 6 launches.
        t_small = gpu.iteration_time_s(1000, 5000)
        assert t_small < 12 * gpu.config.kernel_launch_s
        # Huge matrix: bandwidth-bound; dominated by SpMV bytes.
        t_big = gpu.iteration_time_s(10_000_000, 100_000_000)
        assert t_big > 5 * t_small

    def test_gpu_bicgstab_heavier_than_cg(self):
        n, nnz = 50000, 500000
        assert (GPUSolverModel.bicgstab().iteration_time_s(n, nnz)
                > 1.5 * GPUSolverModel.cg().iteration_time_s(n, nnz))


class TestADC:
    def test_table4_config_lossless_for_128_rows(self):
        adc = SARADC(ADCConfig(bits=10), full_scale=128)
        assert adc.is_lossless_for_rows(128)
        counts = np.arange(129)
        assert np.array_equal(adc.convert(counts), counts)

    def test_saturation(self):
        adc = SARADC(ADCConfig(bits=4), full_scale=15)
        assert adc.convert(np.array([100]))[0] == 15

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            SARADC().convert(np.array([-1]))


class TestNoiseModel:
    def test_zero_sigma_identity(self):
        model = RTNModel(sigma=0.0)
        assert np.all(model.factors(100) == 1.0)

    def test_statistics(self):
        model = RTNModel(sigma=0.1)
        f = model.factors(200000, rng=3)
        assert abs(f.mean() - 1.0) < 1e-3
        assert abs(f.std() - 0.1) < 2e-3

    def test_clipping_keeps_factors_physical(self):
        model = RTNModel(sigma=0.2, clip=4.0)
        f = model.factors(100000, rng=4)
        assert f.min() > 0

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            RTNModel(sigma=2.0)


class TestEnergy:
    def test_multiround_costs_more_than_resident(self):
        model = EnergyModel()
        resident = MappingPlan.for_refloat(20000, DEFAULT_SPEC)
        multi = MappingPlan.for_refloat(45000, DEFAULT_SPEC)
        # Normalise per block to compare mapping regimes.
        e_res = model.spmv_energy_J(resident) / 20000
        e_multi = model.spmv_energy_J(multi) / 45000
        assert e_multi > e_res

    def test_solve_energy_positive_and_monotone(self):
        model = EnergyModel()
        plan = MappingPlan.for_refloat(100, DEFAULT_SPEC)
        e1 = model.solve_energy_J(plan, 10, 1, 1000)
        e2 = model.solve_energy_J(plan, 20, 1, 1000)
        assert 0 < e1 < e2
