"""Block CG / solve_many: correctness, batching economy, breakdowns.

The block solver is tolerance-pinned against the per-column single-vector
solvers (same criterion, same operator), and the batching economy — the
acceptance criterion of the multi-RHS pipeline — is asserted with the
counting operator: ``block_cg`` with ``k = 8`` right-hand sides on a suite
matrix must perform *measurably fewer* engine contractions than eight
independent ``cg`` solves.
"""

import numpy as np
import pytest

import scipy.sparse as sp

from repro.operators import CountingOperator, ExactOperator, ReFloatOperator
from repro.solvers import (
    ConvergenceCriterion,
    block_bicgstab,
    block_cg,
    cg,
    solve_many,
)
from repro.sparse.gallery import build_matrix, laplacian_2d


def random_float_array(rng, n, exp_range=(-20, 20), include_zero=False):
    """Random finite doubles with a controlled exponent spread."""
    vals = rng.standard_normal(n) * np.exp2(rng.uniform(*exp_range, n))
    if include_zero and n > 2:
        vals[rng.integers(0, n, max(1, n // 10))] = 0.0
    return vals


@pytest.fixture
def suite_matrix():
    return build_matrix(353, "test")     # crystm01 analog, SPD


def _rhs_block(A, k, rng):
    """k right-hand sides with known solutions (columns of X are random)."""
    X = rng.standard_normal((A.shape[0], k)) + 1.0
    return A @ X, X


class TestBlockCG:
    def test_solves_all_columns(self, rng, small_spd):
        B, X_true = _rhs_block(small_spd, 6, rng)
        res = block_cg(small_spd, B)
        assert res.converged and res.breakdown is None
        assert bool(res.converged_mask.all())
        crit = ConvergenceCriterion()
        for j in range(6):
            r = np.linalg.norm(B[:, j] - small_spd @ res.X[:, j])
            # True residual within a small factor of the recursive criterion.
            assert r < 10 * crit.tol * np.linalg.norm(B[:, j])

    def test_tolerance_pinned_against_per_column_cg(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 4, rng)
        crit = ConvergenceCriterion(tol=1e-10)
        res = block_cg(small_spd, B, criterion=crit)
        singles = solve_many(small_spd, B, solver="cg", criterion=crit)
        assert res.converged and all(s.converged for s in singles)
        for j, s in enumerate(singles):
            scale = np.linalg.norm(s.x)
            assert np.linalg.norm(res.X[:, j] - s.x) < 1e-6 * scale

    def test_fewer_iterations_than_worst_single(self, rng, small_spd):
        # The k-dimensional search space can only help: the block iteration
        # count never exceeds the worst single-vector count.
        B, _ = _rhs_block(small_spd, 8, rng)
        res = block_cg(small_spd, B)
        singles = solve_many(small_spd, B, solver="cg")
        assert res.converged
        assert res.iterations <= max(s.iterations for s in singles)

    def test_batching_economy_on_suite_matrix(self, rng, suite_matrix):
        # Acceptance criterion: k=8 block solve uses measurably fewer engine
        # contractions (counting operator) than 8 independent cg solves.
        B, _ = _rhs_block(suite_matrix, 8, rng)
        counted_block = CountingOperator(suite_matrix)
        res = block_cg(counted_block, B)
        assert res.converged
        assert counted_block.count == res.matmats
        counted_loop = CountingOperator(suite_matrix)
        singles = [cg(counted_loop, B[:, j]) for j in range(8)]
        assert all(s.converged for s in singles)
        assert counted_block.count < counted_loop.count / 2
        # The block path pushed the same columns through far fewer programs.
        assert counted_block.columns == 8 * counted_block.count

    def test_refloat_platform_block_solve(self, rng, suite_matrix):
        # The quantised platform converges under block CG too, through its
        # batched matmat fast path.  Like single-vector CG on this platform,
        # convergence is in the solver's recursive residual; the solution is
        # tolerance-pinned against per-column cg on the same operator (both
        # solve the same quantised system).
        op = ReFloatOperator(suite_matrix)
        B, _ = _rhs_block(suite_matrix, 4, rng)
        crit = ConvergenceCriterion(tol=1e-6)
        res = block_cg(op, B, criterion=crit)
        singles = solve_many(op, B, solver="cg", criterion=crit)
        assert res.converged and all(s.converged for s in singles)
        b_norms = np.linalg.norm(B, axis=0)
        assert bool((res.residual_norms < crit.tol * b_norms).all())
        for j, s in enumerate(singles):
            r_op = np.linalg.norm(B[:, j] - op.matvec(res.X[:, j]))
            assert r_op < 1e-3 * b_norms[j]   # recursive-vs-actual drift
            diff = np.linalg.norm(res.X[:, j] - s.x) / np.linalg.norm(s.x)
            assert diff < 1e-2

    def test_x0_and_history(self, rng, small_spd):
        B, X_true = _rhs_block(small_spd, 3, rng)
        res0 = block_cg(small_spd, B, X0=np.zeros_like(B))
        res_warm = block_cg(small_spd, B, X0=X_true)
        assert res_warm.iterations == 0 and res_warm.converged
        assert len(res0.residual_history) == res0.iterations + 1
        assert res0.residual_history[0].shape == (3,)
        norms = [h.max() for h in res0.residual_history]
        assert norms[-1] < norms[0]

    def test_callback(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 2, rng)
        seen = []
        block_cg(small_spd, B,
                 callback=lambda it, X, r: seen.append((it, r.copy())))
        assert [it for it, _ in seen] == list(range(1, len(seen) + 1))

    def test_zero_rhs_block(self, small_spd):
        res = block_cg(small_spd, np.zeros((small_spd.shape[0], 3)))
        assert res.converged and res.iterations == 0
        assert np.all(res.X == 0.0)

    def test_invalid_x0_fails_fast(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 3, rng)
        with pytest.raises(ValueError, match="X0 must have shape"):
            block_cg(small_spd, B, X0=np.zeros((B.shape[0], 2)))
        bad = np.zeros_like(B)
        bad[0, 1] = np.inf
        with pytest.raises(ValueError, match="X0 contains non-finite"):
            block_cg(small_spd, B, X0=bad)

    def test_duplicate_columns_break_down(self, rng, small_spd):
        b = small_spd @ (random_float_array(rng, small_spd.shape[0]) + 3.0)
        B = np.column_stack([b, b])      # rank-deficient block
        res = block_cg(small_spd, B)
        assert not res.converged
        assert res.breakdown is not None

    def test_fallback_recovers_near_dependent_columns(self, rng, small_spd):
        # Nearly-parallel columns rank-deplete the search block mid-solve;
        # fallback=True repairs the unconverged columns with per-column cg.
        x1 = rng.standard_normal(small_spd.shape[0])
        x3 = rng.standard_normal(small_spd.shape[0])
        B = small_spd @ np.column_stack(
            [x1, x1 + 1e-9 * rng.standard_normal(x1.size), x3])
        plain = block_cg(small_spd, B)
        if plain.breakdown is None:      # machine-dependent; usually breaks
            pytest.skip("block did not break down on this BLAS")
        res = block_cg(small_spd, B, fallback=True)
        assert res.converged and bool(res.converged_mask.all())
        assert "recovered per-column" in res.breakdown
        for j in range(3):
            r = np.linalg.norm(B[:, j] - small_spd @ res.X[:, j])
            assert r < 10 * ConvergenceCriterion().tol * np.linalg.norm(B[:, j])

    def test_budget_exhaustion(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 2, rng)
        res = block_cg(small_spd, B,
                       criterion=ConvergenceCriterion(max_iterations=2))
        assert not res.converged and res.iterations == 2
        assert res.breakdown is None

    def test_validation(self, rng, small_spd):
        n = small_spd.shape[0]
        with pytest.raises(ValueError):
            block_cg(small_spd, np.ones(n))             # 1-D B
        with pytest.raises(ValueError):
            block_cg(small_spd, np.ones((n + 1, 2)))    # dimension mismatch
        with pytest.raises(ValueError):
            block_cg(small_spd, np.ones((n, 0)))        # no columns
        B = np.ones((n, 2))
        with pytest.raises(ValueError):
            block_cg(small_spd, B, X0=np.ones((n, 3)))  # bad X0 shape
        B[0, 0] = np.nan
        with pytest.raises(ValueError):
            block_cg(small_spd, B)


def _nonsymmetric(n=150, density=0.05, seed=3):
    """Diagonally dominant nonsymmetric sparse system (BiCGSTAB territory)."""
    A = sp.random(n, n, density=density, random_state=seed, format="csr")
    return (A + sp.diags(np.asarray(np.abs(A).sum(axis=1)).ravel() + 1.0)
            ).tocsr()


class TestBlockBiCGSTAB:
    def test_solves_all_columns_nonsymmetric(self, rng):
        A = _nonsymmetric()
        B, _ = _rhs_block(A, 6, rng)
        res = block_bicgstab(A, B)
        assert res.converged and res.breakdown is None
        assert bool(res.converged_mask.all())
        crit = ConvergenceCriterion()
        for j in range(6):
            r = np.linalg.norm(B[:, j] - A @ res.X[:, j])
            assert r < 10 * crit.tol * np.linalg.norm(B[:, j])

    def test_tolerance_pinned_against_per_column_bicgstab(self, rng):
        # The columns follow exactly the scalar recurrence (only the BLAS
        # accumulation differs), so the block solve lands on the same
        # iterates as per-column bicgstab to well below the tolerance.
        A = _nonsymmetric()
        B, _ = _rhs_block(A, 4, rng)
        crit = ConvergenceCriterion(tol=1e-10)
        res = block_bicgstab(A, B, criterion=crit)
        singles = solve_many(A, B, solver="bicgstab", criterion=crit)
        assert res.converged and all(s.converged for s in singles)
        for j, s in enumerate(singles):
            scale = np.linalg.norm(s.x)
            assert np.linalg.norm(res.X[:, j] - s.x) < 1e-6 * scale

    def test_batching_economy_on_suite_matrix(self, rng, suite_matrix):
        # k=8 block BiCGSTAB programs the engine measurably fewer times
        # than 8 independent bicgstab solves (two matmats per iteration vs
        # two matvecs per column per iteration).
        from repro.solvers import bicgstab

        B, _ = _rhs_block(suite_matrix, 8, rng)
        counted_block = CountingOperator(suite_matrix)
        res = block_bicgstab(counted_block, B)
        assert res.converged
        assert counted_block.count == res.matmats
        assert counted_block.columns == 8 * counted_block.count
        counted_loop = CountingOperator(suite_matrix)
        singles = [bicgstab(counted_loop, B[:, j]) for j in range(8)]
        assert all(s.converged for s in singles)
        assert counted_block.count < counted_loop.count / 2

    def test_refloat_platform_block_solve(self, rng, suite_matrix):
        op = ReFloatOperator(suite_matrix)
        B, _ = _rhs_block(suite_matrix, 4, rng)
        crit = ConvergenceCriterion(tol=1e-6)
        res = block_bicgstab(op, B, criterion=crit)
        singles = solve_many(op, B, solver="bicgstab", criterion=crit)
        assert res.converged and all(s.converged for s in singles)
        b_norms = np.linalg.norm(B, axis=0)
        assert bool((res.residual_norms < crit.tol * b_norms).all())
        for j, s in enumerate(singles):
            diff = np.linalg.norm(res.X[:, j] - s.x) / np.linalg.norm(s.x)
            assert diff < 1e-2

    def test_duplicate_columns_do_not_couple(self, rng, small_spd):
        # Unlike block CG there is no shared search block: duplicated
        # columns are simply solved twice, identically — no breakdown.
        b = small_spd @ (random_float_array(rng, small_spd.shape[0]) + 3.0)
        B = np.column_stack([b, b])
        res = block_bicgstab(small_spd, B)
        assert res.converged and res.breakdown is None
        np.testing.assert_array_equal(res.X[:, 0], res.X[:, 1])

    def test_x0_and_history(self, rng, small_spd):
        B, X_true = _rhs_block(small_spd, 3, rng)
        res0 = block_bicgstab(small_spd, B, X0=np.zeros_like(B))
        res_warm = block_bicgstab(small_spd, B, X0=X_true)
        assert res_warm.iterations == 0 and res_warm.converged
        assert len(res0.residual_history) == res0.iterations + 1
        assert res0.residual_history[0].shape == (3,)
        norms = [h.max() for h in res0.residual_history]
        assert norms[-1] < norms[0]

    def test_matmats_at_most_two_per_iteration(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 3, rng)
        res = block_bicgstab(small_spd, B)
        assert res.converged
        # Two applies per full iteration; the final one may exit half-step.
        assert 2 * res.iterations - 1 <= res.matmats <= 2 * res.iterations

    def test_callback(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 2, rng)
        seen = []
        block_bicgstab(small_spd, B,
                       callback=lambda it, X, r: seen.append((it, r.copy())))
        assert [it for it, _ in seen] == list(range(1, len(seen) + 1))

    def test_zero_rhs_block(self, small_spd):
        res = block_bicgstab(small_spd, np.zeros((small_spd.shape[0], 3)))
        assert res.converged and res.iterations == 0
        assert np.all(res.X == 0.0)

    def test_zero_column_rides_along(self, rng, small_spd):
        # A zero column is solved exactly by x = 0 while the others iterate.
        B, _ = _rhs_block(small_spd, 3, rng)
        B[:, 1] = 0.0
        res = block_bicgstab(small_spd, B)
        assert res.converged
        assert np.all(res.X[:, 1] == 0.0)

    def test_budget_exhaustion(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 2, rng)
        res = block_bicgstab(small_spd, B,
                             criterion=ConvergenceCriterion(max_iterations=2))
        assert not res.converged and res.iterations == 2
        assert res.breakdown is None

    def test_breakdown_freezes_column_and_fallback_repairs(self, rng):
        # A singular system breaks the recurrence; the breakdown names the
        # affected columns and fallback=True repairs what bicgstab can.
        n = 40
        A = sp.diags(np.concatenate([[0.0], np.ones(n - 1)])).tocsr()
        B = np.zeros((n, 2))
        B[0, 0] = 1.0              # unsolvable column (row 0 is zero)
        B[1:, 1] = rng.standard_normal(n - 1)
        res = block_bicgstab(A, B, criterion=ConvergenceCriterion(
            max_iterations=50))
        assert res.breakdown is not None and "columns" in res.breakdown
        assert not res.converged_mask[0]
        res_fb = block_bicgstab(A, B, fallback=True,
                                criterion=ConvergenceCriterion(
                                    max_iterations=50))
        assert "recovered per-column" in res_fb.breakdown
        # Column 1 solves exactly (identity on its support) either way.
        assert bool(res.converged_mask[1]) or bool(res_fb.converged_mask[1])

    def test_validation(self, rng, small_spd):
        n = small_spd.shape[0]
        with pytest.raises(ValueError):
            block_bicgstab(small_spd, np.ones(n))            # 1-D B
        with pytest.raises(ValueError):
            block_bicgstab(small_spd, np.ones((n + 1, 2)))   # dim mismatch
        with pytest.raises(ValueError):
            block_bicgstab(small_spd, np.ones((n, 0)))       # no columns
        B = np.ones((n, 2))
        with pytest.raises(ValueError):
            block_bicgstab(small_spd, B, X0=np.ones((n, 3)))
        B[0, 0] = np.nan
        with pytest.raises(ValueError):
            block_bicgstab(small_spd, B)

    def test_registered_multi_rhs(self):
        from repro.api import SOLVER_REGISTRY

        spec = SOLVER_REGISTRY.get("block_bicgstab")
        assert spec.multi_rhs
        assert spec.spmvs_per_iteration == 2


class TestSolveMany:
    def test_matches_individual_solves(self, rng, small_spd):
        B, _ = _rhs_block(small_spd, 3, rng)
        many = solve_many(small_spd, B, solver="cg")
        op = ExactOperator(small_spd)
        for j, res in enumerate(many):
            single = cg(op, B[:, j])
            assert res.iterations == single.iterations
            np.testing.assert_array_equal(res.x, single.x)

    def test_callable_solver_and_kwargs(self, rng, small_spd):
        from repro.solvers import bicgstab, jacobi_preconditioner

        B, _ = _rhs_block(small_spd, 2, rng)
        many = solve_many(small_spd, B, solver=bicgstab)
        assert all(r.converged for r in many)
        precond = jacobi_preconditioner(small_spd)
        many_pc = solve_many(small_spd, B, solver="cg",
                             preconditioner=precond)
        assert all(r.converged for r in many_pc)

    def test_x0_per_column(self, rng):
        A = laplacian_2d(7)
        B, X_true = _rhs_block(A, 2, rng)
        many = solve_many(A, B, solver="cg", X0=X_true)
        assert all(r.iterations == 0 for r in many)

    def test_unknown_solver_and_validation(self, rng, small_spd):
        B = np.ones((small_spd.shape[0], 2))
        with pytest.raises(KeyError):
            solve_many(small_spd, B, solver="sor")
        with pytest.raises(ValueError):
            solve_many(small_spd, B, X0=np.ones(3))
        bad = np.zeros_like(B)
        bad[-1, 0] = np.nan
        with pytest.raises(ValueError, match="X0 contains non-finite"):
            solve_many(small_spd, B, X0=bad)
