"""Tests of the scenario-sweep engine and the criterion threading.

Covers the variant-token grammar (canonical, round-trips, self-describing
across processes), the variant families, :class:`SweepSpec` expansion and
JSON round trips, :func:`run_sweep` execution on every executor (process
pinned identical to serial), the rebuilt Fig. 10 (pinned equivalent to the
pre-sweep implementation, with exactly one baseline solve per collect),
and ``RunConfig.criterion`` reaching every registered solver call site.
"""

import json
import math

import numpy as np
import pytest

from repro.api import (
    PLATFORM_REGISTRY,
    SOLVER_REGISTRY,
    RunConfig,
    RunRequest,
    SolverSpec,
    SweepSpec,
    ensure_variant,
    parse_variant_token,
    variant_token,
)
from repro.api import config as api_config
from repro.api.sweep import ensure_variant_platforms
from repro.experiments.common import (
    clear_run_caches,
    run_matrix,
    run_request,
    run_suite,
    run_sweep,
)
from repro.solvers import ConvergenceCriterion


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


@pytest.fixture
def drop_variants():
    """Unregister any variant platforms a test materialised."""
    before = set(PLATFORM_REGISTRY.names())
    yield
    for name in set(PLATFORM_REGISTRY.names()) - before:
        PLATFORM_REGISTRY.unregister(name)


class TestTokenGrammar:
    def test_canonical_token_sorts_keys(self):
        assert variant_token("noisy", {"sigma": 0.05, "seed": 7}) == \
            "noisy@seed=7,sigma=0.05"

    def test_parse_round_trip(self):
        for token in ("noisy@sigma=0.05", "truncated@e=8,f=23",
                      "feinberg@e=4,f=20,policy=clamp",
                      "noisy@seed=1234,setup=1,sigma=0.25"):
            family, params = parse_variant_token(token)
            assert variant_token(family, params) == token

    def test_value_types_survive(self):
        _, params = parse_variant_token("x@a=2,b=0.5,c=wrap,d=1e-08")
        assert params == {"a": 2, "b": 0.5, "c": "wrap", "d": 1e-08}
        assert isinstance(params["a"], int)
        assert isinstance(params["d"], float)

    def test_non_canonical_rejected(self):
        with pytest.raises(ValueError, match="non-canonical"):
            parse_variant_token("noisy@sigma=0.050")
        with pytest.raises(ValueError, match="non-canonical"):
            parse_variant_token("noisy@sigma=0.05,seed=7")  # unsorted

    def test_malformed_rejected(self):
        for bad in ("noisy", "noisy@", "@sigma=1", "noisy@sigma",
                    "noisy@sigma=", "noisy@sigma=1,sigma=2"):
            with pytest.raises(ValueError):
                parse_variant_token(bad)

    def test_reserved_characters_rejected(self):
        with pytest.raises(ValueError):
            variant_token("noisy", {"policy": "a,b"})
        with pytest.raises(ValueError):
            variant_token("no@isy", {"sigma": 1.0})
        with pytest.raises(ValueError, match="at least one"):
            variant_token("noisy", {})


class TestVariantFamilies:
    def test_ensure_variant_registers_once(self, drop_variants):
        token = "truncated@e=9,f=24"
        spec = ensure_variant(token)
        assert spec.name == token
        assert token in PLATFORM_REGISTRY
        gen = PLATFORM_REGISTRY.generation
        assert ensure_variant(token) is spec  # idempotent
        assert PLATFORM_REGISTRY.generation == gen

    def test_unknown_family_and_bad_params(self):
        with pytest.raises(KeyError, match="unknown variant family"):
            ensure_variant("warp@x=1")
        with pytest.raises(ValueError, match="rejected parameters"):
            ensure_variant("noisy@zigma=0.05")

    def test_ensure_variant_platforms_skips_plain_names(self, drop_variants):
        before = PLATFORM_REGISTRY.generation
        ensure_variant_platforms(["gpu", "refloat"])
        assert PLATFORM_REGISTRY.generation == before
        ensure_variant_platforms("gpu")  # bare string: validation is
        # resolve_platforms' job; must not iterate characters
        assert PLATFORM_REGISTRY.generation == before

    def test_builtin_families_build_working_specs(self, drop_variants):
        for token in ("noisy@fresh=0,seed=3,sigma=0.02",
                      "feinberg@e=6,f=52,policy=wrap",
                      "truncated@e=11,f=26"):
            assert ensure_variant(token).operator is not None

    def test_family_replacement_rebuilds_materialised_tokens(
            self, drop_variants):
        # replace=True on a family must reach tokens already materialised
        # from the old builder — serving them stale would diverge from
        # worker processes that rebuild fresh.
        from repro.api import register_variant_family
        from repro.api.platforms import noisy_platform_spec
        from repro.api.sweep import VARIANT_FAMILIES

        @register_variant_family("replfam")
        def _v1(name, sigma):
            return noisy_platform_spec(name, sigma=float(sigma),
                                       description="v1")

        try:
            token = "replfam@sigma=0.02"
            assert ensure_variant(token).description == "v1"
            version = PLATFORM_REGISTRY.versions((token,))

            @register_variant_family("replfam", replace=True)
            def _v2(name, sigma):
                return noisy_platform_spec(name, sigma=float(sigma),
                                           description="v2")

            assert ensure_variant(token).description == "v2"
            # The token's registry version moved, so result caches keyed
            # on it invalidate too.
            assert PLATFORM_REGISTRY.versions((token,)) != version
        finally:
            VARIANT_FAMILIES.unregister("replfam")

    def test_user_registered_token_shaped_name_left_alone(
            self, drop_variants):
        # A token-shaped name the USER registered (not materialised by
        # ensure_variant) is theirs: ensure_variant must not rebuild it.
        from repro.api import PlatformSpec

        spec = PlatformSpec(name="noisy@sigma=0.4",
                            operator=lambda assets, ctx: assets.exact_op,
                            timing=lambda ctx, it: 1.0)
        PLATFORM_REGISTRY.register(spec)
        assert ensure_variant("noisy@sigma=0.4") is spec


class TestSweepSpec:
    def test_json_round_trip(self):
        for spec in (
            SweepSpec(family="noisy", grid={"sigma": (0.001, 0.25)}),
            SweepSpec(family="truncated", grid=[("e", [11]), ("f", (20, 52))],
                      solvers=("cg", "bicgstab"), baseline=None,
                      sids=(355,), scale="test"),
            SweepSpec(family="feinberg", grid={"e": (4, 6), "policy": "wrap"},
                      baseline=("gpu", "refloat")),
        ):
            revived = SweepSpec.from_json(spec.to_json())
            assert revived == spec
            assert revived.variants() == spec.variants()

    def test_expansion_order_is_deterministic(self):
        spec = SweepSpec(family="truncated", grid={"e": (11, 8), "f": (26, 20)})
        assert spec.tokens() == (
            "truncated@e=11,f=26", "truncated@e=11,f=20",
            "truncated@e=8,f=26", "truncated@e=8,f=20")
        # Axis order drives the product; token spelling stays canonical.
        flipped = SweepSpec(family="truncated",
                            grid=[("f", (26, 20)), ("e", (11, 8))])
        assert flipped.tokens() == (
            "truncated@e=11,f=26", "truncated@e=8,f=26",
            "truncated@e=11,f=20", "truncated@e=8,f=20")

    def test_scalar_axis_pins_a_parameter(self):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.1, 0.2), "seed": 7})
        assert spec.tokens() == (
            "noisy@seed=7,sigma=0.1", "noisy@seed=7,sigma=0.2")
        assert spec.variants()[0][1] == {"sigma": 0.1, "seed": 7}

    def test_validation(self):
        with pytest.raises(KeyError, match="unknown variant family"):
            SweepSpec(family="warp", grid={"x": 1})
        with pytest.raises(ValueError, match="at least one parameter"):
            SweepSpec(family="noisy", grid={})
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(family="noisy", grid={"sigma": ()})
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(family="noisy", grid=[("s", 1), ("s", 2)])
        with pytest.raises(ValueError, match="scale"):
            SweepSpec(family="noisy", grid={"sigma": 0.1}, scale="huge")
        with pytest.raises(ValueError, match="bare string"):
            SweepSpec(family="noisy", grid={"sigma": 0.1}, solvers="cg")


class TestRunSweep:
    GRID = {"sigma": (0.001, 0.01), "seed": 1234}

    def test_noisy_sweep_end_to_end(self, fresh_caches, drop_variants):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test")
        result = run_sweep(spec, max_workers=1)
        assert result.tokens == spec.tokens()
        for token in result.tokens:
            run = result.variant(token)[355]
            # Baseline grafted in: gpu numerics present, speedup finite.
            assert run.platforms == ("gpu", token)
            assert run.results["gpu"].converged
            assert run.iterations(token) > 0
            assert math.isfinite(run.speedup(token))
        payload = json.loads(json.dumps(result.to_dict()))
        assert set(payload["variants"]) == set(result.tokens)

    def test_feinberg_ef_sweep_end_to_end(self, fresh_caches, drop_variants):
        spec = SweepSpec(family="feinberg",
                         grid={"e": (4, 6), "f": 52, "policy": "wrap"},
                         sids=(1311,), scale="test")
        result = run_sweep(spec, max_workers=1)
        full = result.variant("feinberg@e=6,f=52,policy=wrap")[1311]
        # The 6/52 window is the builtin feinberg model: same numerics.
        reference = run_matrix(1311, "cg", "test",
                               platforms=("gpu", "feinberg"))
        assert full.iterations("feinberg@e=6,f=52,policy=wrap") == \
            reference.iterations("feinberg")

    def test_baseline_solved_once_and_identical(self, fresh_caches,
                                                drop_variants):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test")
        result = run_sweep(spec, max_workers=1)
        runs = [result.variant(token)[355] for token in result.tokens]
        # One shared baseline MatrixRun: the grafted results are the same
        # objects, not re-solves.
        first = runs[0].results["gpu"]
        assert all(run.results["gpu"] is first for run in runs[1:])

    def test_thread_executor_identical_to_serial(self, fresh_caches,
                                                 drop_variants):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test")
        serial = run_sweep(spec, max_workers=1)
        clear_run_caches()
        threaded = run_sweep(spec, max_workers=4, executor="thread")
        for token in spec.tokens():
            a, b = serial.variant(token)[355], threaded.variant(token)[355]
            assert a.times_s == b.times_s
            assert np.array_equal(a.results[token].x, b.results[token].x)

    @pytest.mark.slow
    def test_process_executor_identical_to_serial(self, fresh_caches,
                                                  drop_variants):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355, 1311),
                         scale="test")
        serial = run_sweep(spec, max_workers=1)
        clear_run_caches()
        pooled = run_sweep(spec, max_workers=2, executor="process")
        for token in spec.tokens():
            for sid in (355, 1311):
                a = serial.variant(token)[sid]
                b = pooled.variant(token)[sid]
                assert a.times_s == b.times_s
                assert a.results[token].iterations == \
                    b.results[token].iterations
                assert np.array_equal(a.results[token].x, b.results[token].x)

    def test_add_only_registration_keeps_caches_valid(self, fresh_caches,
                                                      drop_variants):
        # Materialising NEW variant tokens (or registering any new
        # platform) must not invalidate cached results whose own names
        # never changed meaning — at paper scale a spurious miss re-solves
        # the whole grid.
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test")
        suite = run_suite("cg", "test", sids=(1311,), max_workers=1,
                          platforms=("gpu",))
        sweep = run_sweep(spec, max_workers=1)
        ensure_variant("truncated@e=10,f=30")  # add-only registration
        assert run_suite("cg", "test", sids=(1311,), max_workers=1,
                         platforms=("gpu",)) is suite
        assert run_sweep(spec, max_workers=1) is sweep

    def test_registry_versions_track_per_name(self, drop_variants):
        v1 = PLATFORM_REGISTRY.versions(("gpu", "refloat"))
        ensure_variant("truncated@e=10,f=29")
        assert PLATFORM_REGISTRY.versions(("gpu", "refloat")) == v1
        with pytest.raises(KeyError, match="unknown platform"):
            PLATFORM_REGISTRY.versions(("warp",))

    def test_pool_token_tracks_variant_families(self):
        # A process pool frozen before a register_variant_family call
        # cannot materialise the new family; its identity token must move.
        from repro.api import register_variant_family
        from repro.api.platforms import noisy_platform_spec
        from repro.api.sweep import VARIANT_FAMILIES
        from repro.experiments import common

        before = common._pool_token(2)

        @register_variant_family("scratch_family")
        def _build(name, sigma):
            return noisy_platform_spec(name, sigma=float(sigma))

        try:
            assert common._pool_token(2) != before
        finally:
            VARIANT_FAMILIES.unregister("scratch_family")

    def test_pool_token_tracks_plain_registrations_not_tokens(
            self, drop_variants):
        # A platform registered under a plain name is invisible to
        # fork-frozen workers (they cannot rebuild it from a token), so it
        # must churn the pool identity; materialising a variant token must
        # NOT (workers rebuild those on demand).
        from repro.api.platforms import noisy_platform_spec
        from repro.experiments import common

        before = common._pool_token(2)
        ensure_variant("truncated@e=10,f=28")
        assert common._pool_token(2) == before
        PLATFORM_REGISTRY.register(noisy_platform_spec("plain_custom", 0.02))
        assert common._pool_token(2) != before

    def test_sweep_cache_and_invalidation(self, fresh_caches, drop_variants):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test")
        first = run_sweep(spec, max_workers=1)
        assert run_sweep(spec, max_workers=1) is first
        other = run_sweep(spec.replace(baseline=None), max_workers=1)
        assert other is not first
        assert other.variant(spec.tokens()[0])[355].platforms == \
            (spec.tokens()[0],)

    def test_multi_rhs_solver_rejected(self):
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test", solvers=("block_cg",))
        with pytest.raises(ValueError, match="multi-RHS"):
            run_sweep(spec, max_workers=1)

    def test_variant_tokens_work_in_run_suite(self, fresh_caches,
                                              drop_variants):
        # A token is a registered-platform name like any other: the suite
        # path materialises it on demand too (SuiteSpec/CLI reuse this).
        runs = run_suite("cg", "test", platforms=("gpu", "noisy@sigma=0.01"),
                         sids=(355,), max_workers=1)
        assert runs[355].iterations("noisy@sigma=0.01") > 0

    def test_variant_token_as_baseline(self, fresh_caches, drop_variants):
        # The baseline set accepts tokens too — it must be materialised
        # like the grid's variants.
        spec = SweepSpec(family="noisy", grid=self.GRID, sids=(355,),
                         scale="test", baseline=("truncated@e=11,f=26",))
        result = run_sweep(spec, max_workers=1)
        run = result.variant(spec.tokens()[0])[355]
        assert "truncated@e=11,f=26" in run.platforms

    def test_one_shot_platform_iterables(self, fresh_caches, drop_variants):
        # run_matrix/run_suite take Iterable[str]: a generator must survive
        # the materialise-then-resolve double pass.
        run = run_matrix(1311, "cg", "test",
                         platforms=(p for p in ("gpu", "refloat")))
        assert run.platforms == ("gpu", "refloat")
        runs = run_suite("cg", "test", sids=(1311,), max_workers=1,
                         platforms=iter(["gpu"]))
        assert runs[1311].platforms == ("gpu",)


class TestCriterion:
    def test_run_matrix_arg_beats_config(self, fresh_caches):
        tight = ConvergenceCriterion(max_iterations=3)
        with api_config.use(RunConfig(criterion=ConvergenceCriterion(
                max_iterations=7))):
            run = run_matrix(1311, "cg", "test", criterion=tight,
                             platforms=("gpu",))
        assert run.results["gpu"].iterations <= 3

    def test_config_criterion_respected_by_every_registered_solver(
            self, fresh_caches):
        budget = ConvergenceCriterion(max_iterations=2)
        with api_config.use(RunConfig(criterion=budget)):
            for solver in SOLVER_REGISTRY.names():
                if SOLVER_REGISTRY.get(solver).multi_rhs:
                    continue
                run = run_matrix(1311, solver, "test", platforms=("gpu",))
                assert run.results["gpu"].iterations <= 2, solver

    def test_env_criterion_reaches_run_matrix(self, fresh_caches,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_MAX_ITERATIONS", "4")
        # sid 355 needs ~80 CG iterations at test scale: a 4-iteration
        # budget read from the environment must cut the solve short.
        run = run_matrix(355, "cg", "test", platforms=("gpu",))
        assert run.results["gpu"].iterations <= 4
        assert not run.results["gpu"].converged

    def test_invalid_env_values_name_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVER_TOL", "tiny")
        with pytest.raises(ValueError, match="REPRO_SOLVER_TOL"):
            RunConfig.from_env()
        monkeypatch.delenv("REPRO_SOLVER_TOL")
        monkeypatch.setenv("REPRO_SOLVER_MAX_ITERATIONS", "-3")
        with pytest.raises(ValueError, match="REPRO_SOLVER_MAX_ITERATIONS"):
            RunConfig.from_env()

    def test_run_request_criterion_json_round_trip(self):
        req = RunRequest(sid=355, solver="cg", scale="test",
                         platforms=("gpu",),
                         criterion=ConvergenceCriterion(max_iterations=5))
        revived = RunRequest.from_json(req.to_json())
        assert revived == req
        assert revived.criterion.max_iterations == 5
        # None stays None (defer to the executing process's config).
        assert RunRequest.from_json(RunRequest(
            sid=355, solver="cg", scale="test").to_json()).criterion is None

    def test_run_request_criterion_honoured(self, fresh_caches):
        req = RunRequest(sid=1311, solver="cg", scale="test",
                         platforms=("gpu",),
                         criterion=ConvergenceCriterion(max_iterations=3))
        run = run_request(req)
        assert run.results["gpu"].iterations <= 3

    def test_suite_cache_distinguishes_criteria(self, fresh_caches):
        loose = run_suite("cg", "test", sids=(1311,), max_workers=1)
        tight = run_suite("cg", "test", sids=(1311,), max_workers=1,
                          criterion=ConvergenceCriterion(max_iterations=2))
        assert tight is not loose
        assert tight[1311].results["gpu"].iterations <= 2
        assert loose[1311].results["gpu"].converged

    def test_config_json_round_trip_with_criterion(self):
        cfg = RunConfig(scale="test",
                        criterion=ConvergenceCriterion(
                            tol=1e-6, max_iterations=11,
                            divergence_factor=1e6))
        assert RunConfig.from_json(cfg.to_json()) == cfg

    def test_solver_registration_unaffected(self):
        # SolverSpec paths (shape metadata) stay intact with criterion
        # threading in place.
        spec = SOLVER_REGISTRY.get("cg")
        assert isinstance(spec, SolverSpec)
        assert spec.spmvs_per_iteration == 1


class TestFig10Rebuilt:
    """The rebuilt Fig. 10 against the pre-sweep reference implementation."""

    def _reference_collect(self, scale, sid=355, max_iterations=20000,
                           seed=1234):
        """The pre-refactor fig10.collect, baseline hoisted (the output is
        unchanged by the hoist: the dead first t_gpu was overwritten and
        the re-solved baseline is deterministic)."""
        from repro.experiments.common import default_spec_for
        from repro.hardware.accelerator import MappingPlan, SolverTimingModel
        from repro.hardware.gpu import GPUSolverModel
        from repro.operators import ExactOperator, NoisyReFloatOperator
        from repro.solvers import cg
        from repro.sparse.blocked import BlockedMatrix
        from repro.sparse.gallery.suite import PAPER_SUITE

        from repro.experiments.fig10 import NOISE_SWEEP

        A = PAPER_SUITE[sid].matrix(scale)
        n = A.shape[0]
        b = A @ np.ones(n)
        spec = default_spec_for(sid)
        crit = ConvergenceCriterion(tol=1e-8,
                                    max_iterations=max_iterations)
        sspec = SOLVER_REGISTRY.get("cg")
        blocked = BlockedMatrix(A, b=7)
        plan = MappingPlan.for_refloat(blocked.n_blocks, spec)
        timing = SolverTimingModel(
            plan, spmvs_per_iteration=sspec.spmvs_per_iteration,
            vector_ops_per_iteration=sspec.vector_ops_per_iteration)
        gpu = GPUSolverModel.cg()
        res_dbl = cg(ExactOperator(A), b, criterion=crit)
        t_gpu = gpu.solve_time_s(res_dbl.iterations, n, int(A.nnz))
        out = []
        for sigma in NOISE_SWEEP:
            op = NoisyReFloatOperator(A, spec, sigma=sigma, seed=seed,
                                      blocked=blocked)
            res = cg(op, b, criterion=crit)
            entry = {"sigma": sigma, "converged": res.converged,
                     "iterations": res.iterations if res.converged else None}
            if res.converged:
                t_rf = timing.solve_time_s(res.iterations, n)
                entry["speedup_vs_gpu"] = t_gpu / t_rf
            else:
                entry["speedup_vs_gpu"] = float("nan")
            out.append(entry)
        return out

    def test_pinned_equivalent_to_pre_refactor(self, fresh_caches,
                                               drop_variants):
        from repro.experiments import fig10

        reference = self._reference_collect("test", max_iterations=3000)
        rebuilt = fig10.collect(scale="test", max_iterations=3000)
        assert len(rebuilt) == len(reference)
        for old, new in zip(reference, rebuilt):
            assert new["sigma"] == old["sigma"]
            assert new["converged"] == old["converged"]
            assert new["iterations"] == old["iterations"]
            if old["converged"]:
                # Identical arithmetic, not merely close.
                assert new["speedup_vs_gpu"] == old["speedup_vs_gpu"]
            else:
                assert math.isnan(new["speedup_vs_gpu"])

    def test_one_baseline_solve_per_collect(self, fresh_caches,
                                            drop_variants):
        """Regression for the pre-sweep bug: the noise-free double baseline
        was re-solved inside the sigma loop on every iteration."""
        from repro.experiments import fig10
        from repro.operators import ExactOperator

        cg_spec = SOLVER_REGISTRY.get("cg")
        solved = []

        def counting_cg(op, b, **kwargs):
            solved.append(type(op).__name__)
            return cg_spec.solve(op, b, **kwargs)

        SOLVER_REGISTRY.register(
            SolverSpec(name="cg", solve=counting_cg,
                       spmvs_per_iteration=cg_spec.spmvs_per_iteration,
                       vector_ops_per_iteration=(
                           cg_spec.vector_ops_per_iteration),
                       gpu_vector_kernels_per_iteration=(
                           cg_spec.gpu_vector_kernels_per_iteration)),
            replace=True)
        try:
            data = fig10.collect(scale="test", max_iterations=3000)
        finally:
            SOLVER_REGISTRY.register(cg_spec, replace=True)
        assert solved.count(ExactOperator.__name__) == 1
        assert solved.count("NoisyReFloatOperator") == len(fig10.NOISE_SWEEP)
        assert len(data) == len(fig10.NOISE_SWEEP)


class TestToleranceAxis:
    """The sweep-level criterion axis (``SweepSpec.tols``)."""

    def test_spec_validation_and_round_trip(self):
        spec = SweepSpec(family="noisy", grid={"sigma": 0.001},
                         tols=(1e-6, 1e-10))
        assert SweepSpec.from_json(spec.to_json()) == spec
        with pytest.raises(ValueError, match="positive finite"):
            SweepSpec(family="noisy", grid={"sigma": 0.001}, tols=(0.0,))
        with pytest.raises(ValueError, match="positive finite"):
            SweepSpec(family="noisy", grid={"sigma": 0.001}, tols=(-1e-8,))
        with pytest.raises(ValueError, match="duplicate"):
            SweepSpec(family="noisy", grid={"sigma": 0.001},
                      tols=(1e-8, 1e-8))
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(family="noisy", grid={"sigma": 0.001}, tols=())

    def test_old_payload_without_tols_still_parses(self):
        spec = SweepSpec(family="noisy", grid={"sigma": 0.001})
        data = spec.to_dict()
        del data["tols"]  # a payload from before the axis existed
        assert SweepSpec.from_dict(data) == spec

    def test_per_tolerance_cells_and_stamped_criteria(self, fresh_caches,
                                                      drop_variants):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.001,)},
                         sids=(2257,), scale="test", tols=(1e-6, 1e-10))
        result = run_sweep(spec, max_workers=1)
        token = spec.tokens()[0]
        assert sorted(result.runs) == sorted(
            [("cg", token, 1e-6), ("cg", token, 1e-10)])
        loose = result.variant(token, tol=1e-6)[2257]
        tight = result.variant(token, tol=1e-10)[2257]
        # A tighter tolerance costs more iterations: the criterion really
        # was replaced per cell, not shared.
        assert tight.iterations(token) > loose.iterations(token)
        # Default accessor = the first tolerance on the axis.
        assert result.variant(token) is result.variant(token, tol=1e-6)
        data = result.to_dict()
        entry = data["variants"][token]
        assert sorted(entry["tols"]) == ["1e-06", "1e-10"]
        assert "solvers" not in entry  # the nested level replaces it

    def test_no_tols_keeps_historical_shape(self, fresh_caches,
                                            drop_variants):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.001,)},
                         sids=(2257,), scale="test")
        result = run_sweep(spec, max_workers=1)
        token = spec.tokens()[0]
        assert list(result.runs) == [("cg", token)]
        entry = result.to_dict()["variants"][token]
        assert sorted(entry) == ["params", "solvers"]
