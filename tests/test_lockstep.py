"""Tests for the lockstep gang solver behind the service coalescer.

The coalescer's bit-identity guarantee rests on ``solve_lockstep``: the
unmodified single-RHS solver runs once per column, every column's matvec
rendezvous at a shared gate, and one ``operator_matmat`` serves each
round.  These tests pin the guarantee (outputs exactly equal to
:func:`solve_many`, column by column) and the batching economy (one
matmat per gang round instead of one matvec per column per round).
"""

import numpy as np
import pytest

from repro.api.registry import SOLVER_REGISTRY
from repro.experiments.common import platform_operator
from repro.solvers import solve_lockstep, solve_many
from repro.sparse.gallery import build_matrix


class _CountingOperator:
    """Minimal operator protocol plus a batched matmat, both counted."""

    def __init__(self, A):
        self._A = A
        self.shape = A.shape
        self.n_matvecs = 0
        self.n_matmats = 0

    def matvec(self, x):
        self.n_matvecs += 1
        return self._A @ x

    def matmat(self, X):
        self.n_matmats += 1
        return self._A @ X


def _rhs_block(n, k, seed=11):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, k))


@pytest.fixture
def spd_op():
    return _CountingOperator(build_matrix(2257, "test"))


class TestBitIdentity:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab"])
    def test_matches_solve_many_on_counting_operator(self, spd_op, solver):
        B = _rhs_block(spd_op.shape[0], 5)
        serial = solve_many(spd_op, B, solver=solver)
        gang = solve_lockstep(spd_op, B, solver=solver)
        assert len(gang) == len(serial)
        for got, ref in zip(gang, serial):
            assert np.array_equal(got.x, ref.x)
            assert got.converged == ref.converged
            assert got.iterations == ref.iterations
            assert got.matvecs == ref.matvecs
            assert got.residual_history == ref.residual_history

    @pytest.mark.parametrize("platform", ["refloat", "gpu"])
    def test_matches_solve_many_on_platform_operator(self, platform):
        _, op = platform_operator(2257, "test", platform=platform)
        B = _rhs_block(op.shape[0], 4)
        serial = solve_many(op, B, solver="cg")
        gang = solve_lockstep(op, B, solver="cg")
        for got, ref in zip(gang, serial):
            assert np.array_equal(got.x, ref.x)
            assert got.iterations == ref.iterations

    def test_single_column_and_1d_rhs(self, spd_op):
        b = _rhs_block(spd_op.shape[0], 1)
        one = solve_lockstep(spd_op, b, solver="cg")
        ref = solve_many(spd_op, b, solver="cg")[0]
        assert len(one) == 1
        assert np.array_equal(one[0].x, ref.x)

    def test_initial_guess_columns(self, spd_op):
        B = _rhs_block(spd_op.shape[0], 3)
        X0 = _rhs_block(spd_op.shape[0], 3, seed=5) * 0.1
        gang = solve_lockstep(spd_op, B, solver="cg", X0=X0)
        serial = solve_many(spd_op, B, solver="cg", X0=X0)
        for got, ref in zip(gang, serial):
            assert np.array_equal(got.x, ref.x)


class TestBatchingEconomy:
    def test_one_matmat_per_round_no_per_column_matvecs(self, spd_op):
        k = 6
        B = _rhs_block(spd_op.shape[0], k)
        stats = {}
        gang = solve_lockstep(spd_op, B, solver="cg", batch_stats=stats)
        # Every round was served by exactly one matmat: the gang never
        # fell back to per-column matvecs.
        assert spd_op.n_matvecs == 0
        assert spd_op.n_matmats == stats["matmats"] > 0
        assert stats["columns"] == k
        # The batch is an economy, not just a reshuffle: far fewer
        # operator applications than the serial path's sum of matvecs.
        assert stats["matmats"] < sum(r.matvecs for r in gang)

    def test_gang_shrinks_as_columns_converge(self, spd_op):
        n = spd_op.shape[0]
        rng = np.random.default_rng(3)
        # One trivially easy column (b = A @ e scaled) converges far
        # earlier than the random ones, so later rounds must be narrower.
        easy = spd_op._A @ np.ones(n) * 1e-12
        B = np.stack([easy, rng.standard_normal(n),
                      rng.standard_normal(n)], axis=1)
        stats = {}
        gang = solve_lockstep(spd_op, B, solver="cg", batch_stats=stats)
        serial = solve_many(spd_op, B, solver="cg")
        for got, ref in zip(gang, serial):
            assert np.array_equal(got.x, ref.x)
            assert got.iterations == ref.iterations
        widths = stats["round_widths"]
        assert widths[0] == 3
        assert widths[-1] < widths[0]


class TestValidation:
    def test_registered_as_multi_rhs(self):
        spec = SOLVER_REGISTRY.get("lockstep")
        assert spec.multi_rhs
        assert spec.solve is solve_lockstep

    def test_rejects_unknown_inner_solver(self, spd_op):
        B = _rhs_block(spd_op.shape[0], 2)
        with pytest.raises(KeyError, match="block_cg"):
            solve_lockstep(spd_op, B, solver="block_cg")

    def test_rejects_bad_initial_guess_shape(self, spd_op):
        B = _rhs_block(spd_op.shape[0], 2)
        with pytest.raises(ValueError, match="X0"):
            solve_lockstep(spd_op, B, solver="cg",
                           X0=np.zeros((spd_op.shape[0], 3)))

    def test_operator_failure_propagates(self):
        class Exploding:
            shape = (8, 8)

            def matvec(self, x):
                return x

            def matmat(self, X):
                raise RuntimeError("boom in matmat")

        with pytest.raises(RuntimeError, match="boom in matmat"):
            solve_lockstep(Exploding(), np.ones((8, 2)), solver="cg")
