"""Tests for the sparse block partition."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import ReFloatSpec
from repro.formats.refloat import quantize_values
from repro.sparse.blocked import BlockedMatrix, block_coordinates


def small_matrix():
    rng = np.random.default_rng(5)
    A = sp.random(50, 50, density=0.1, random_state=np.random.RandomState(5),
                  format="csr")
    A.data = rng.standard_normal(A.nnz) * np.exp2(rng.uniform(-2, 2, A.nnz))
    A.eliminate_zeros()
    return A


class TestPartition:
    def test_block_coordinates(self):
        A = sp.csr_matrix(np.array([[1.0, 0, 0, 2.0], [0, 3.0, 0, 0],
                                    [0, 0, 4.0, 0], [5.0, 0, 0, 6.0]]))
        bi, bj = block_coordinates(A, b=1)
        assert bi.tolist() == [0, 0, 0, 1, 1, 1]
        assert bj.tolist() == [0, 1, 0, 1, 0, 1]

    def test_n_blocks_counts_occupied_only(self):
        A = sp.csr_matrix(np.diag(np.ones(16)))
        bm = BlockedMatrix(A, b=2)
        assert bm.n_blocks == 4  # only diagonal 4x4 blocks

    def test_block_nnz_sums_to_nnz(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        assert int(bm.block_nnz.sum()) == bm.nnz

    def test_block_coords_shape(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        bi, bj = bm.block_coords()
        assert bi.shape == bj.shape == (bm.n_blocks,)
        nbr, nbc = bm.block_grid
        assert bi.max() < nbr and bj.max() < nbc

    def test_eliminates_explicit_zeros(self):
        A = sp.csr_matrix(np.array([[1.0, 0.0], [0.0, 0.0]]))
        A[0, 1] = 0.0  # explicit zero
        bm = BlockedMatrix(A, b=0)
        assert bm.nnz == 1

    def test_rejects_nonfinite(self):
        A = sp.csr_matrix(np.array([[np.inf]]))
        with pytest.raises(ValueError):
            BlockedMatrix(A, b=0)

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            BlockedMatrix(small_matrix(), b=13)

    def test_empty_matrix(self):
        bm = BlockedMatrix(sp.csr_matrix((8, 8)), b=1)
        assert bm.n_blocks == 0
        assert bm.locality_bits() == 1
        assert bm.quantize(ReFloatSpec(b=1)).nnz == 0


class TestExponentBases:
    def test_cover_base_tops_block_max(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        eb = bm.exponent_bases(e=3, policy="cover")
        exps = bm._exponents[bm.order]
        mx = np.maximum.reduceat(exps, bm.group_starts)
        assert np.array_equal(eb, mx - 3)

    def test_mean_base_matches_scalar_formula(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        from repro.formats.refloat import optimal_exponent_base

        exps = bm._exponents[bm.order]
        starts = list(bm.group_starts) + [bm.nnz]
        for k in range(bm.n_blocks):
            expected = optimal_exponent_base(exps[starts[k]:starts[k + 1]])
            assert bm.block_eb[k] == expected

    def test_bad_policy(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        with pytest.raises(ValueError):
            bm.exponent_bases(3, policy="median")


class TestQuantize:
    def test_sparsity_pattern_preserved(self):
        A = small_matrix()
        bm = BlockedMatrix(A, b=3)
        Q = bm.quantize(ReFloatSpec(b=3, e=3, f=3))
        assert np.array_equal(Q.indices, bm.A.indices)
        assert np.array_equal(Q.indptr, bm.A.indptr)

    def test_matches_per_block_quantization(self):
        A = small_matrix()
        spec = ReFloatSpec(b=3, e=3, f=4)
        bm = BlockedMatrix(A, b=3)
        Q = bm.quantize(spec).tocoo()
        dense = A.toarray()
        B = 8
        for bi in range(0, 50, B):
            for bj in range(0, 50, B):
                blk = dense[bi:bi + B, bj:bj + B]
                nz = blk != 0
                if not nz.any():
                    continue
                expected = np.zeros_like(blk)
                expected[nz], _ = quantize_values(blk[nz], spec.e, spec.f,
                                                  eb_policy="cover",
                                                  underflow="flush")
                actual = Q.toarray()[bi:bi + B, bj:bj + B]
                assert np.array_equal(actual, expected)

    def test_symmetry_preserved(self):
        from repro.sparse.gallery import wathen

        A = wathen(6, 6, seed=3)
        bm = BlockedMatrix(A, b=4)
        Q = bm.quantize(ReFloatSpec(b=4, e=3, f=3))
        assert (Q - Q.T).nnz == 0

    def test_spec_b_mismatch_raises(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        with pytest.raises(ValueError):
            bm.quantize(ReFloatSpec(b=4))

    def test_full_precision_identity(self):
        A = small_matrix()
        bm = BlockedMatrix(A, b=3)
        Q = bm.quantize(ReFloatSpec(b=3, e=11, f=52))
        assert np.array_equal(Q.data, bm.A.data)

    def test_quantization_error_stats(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        err = bm.quantization_error(ReFloatSpec(b=3, e=4, f=4))
        assert 0 <= err["mean_rel"] <= err["max_rel"]
        assert err["frobenius_rel"] >= 0


class TestStatsAndStorage:
    def test_locality_bits_fits_ranges(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        e = bm.locality_bits()
        assert (1 << e) - 1 >= int(bm.block_exponent_range.max())
        assert (1 << (e - 1)) - 1 < int(bm.block_exponent_range.max()) or e == 1

    def test_storage_bits(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        spec = ReFloatSpec(b=3, e=3, f=3)
        bits = bm.storage_bits_refloat(spec)
        expected = bm.nnz * (6 + 7) + bm.n_blocks * (2 * 29 + 11)
        assert bits == expected
        assert bm.storage_bits_double() == bm.nnz * 128

    def test_occupancy_stats(self):
        bm = BlockedMatrix(small_matrix(), b=3)
        st = bm.occupancy_stats()
        assert st["n_blocks"] == bm.n_blocks
        assert 0 < st["density"] <= 1
