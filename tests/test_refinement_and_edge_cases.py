"""Edge cases across solvers, operators, and codecs."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import (
    DEFAULT_SPEC,
    ReFloatSpec,
    decompose,
    quantize_values,
    quantize_vector,
)
from repro.operators import ExactOperator, ReFloatOperator
from repro.solvers import ConvergenceCriterion, bicgstab, cg, gmres
from repro.solvers.base import as_operator, check_system
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery import laplacian_2d


class TestSolverEdgeCases:
    def test_one_by_one_system(self):
        A = sp.csr_matrix(np.array([[4.0]]))
        for solver in (cg, bicgstab, gmres):
            res = solver(A, np.array([8.0]))
            assert res.converged
            assert res.x[0] == pytest.approx(2.0)

    def test_identity_converges_in_one(self):
        A = sp.identity(50, format="csr")
        b = np.arange(50, dtype=float)
        res = cg(A, b)
        assert res.converged and res.iterations == 1
        assert np.allclose(res.x, b)

    def test_rectangular_operator_rejected(self):
        A = sp.csr_matrix(np.ones((3, 4)))
        with pytest.raises(ValueError):
            cg(A, np.ones(4))

    def test_b_must_be_vector(self):
        A = laplacian_2d(3)
        with pytest.raises(ValueError):
            check_system(as_operator(A), np.ones((3, 3)))

    def test_divergence_detection(self):
        # Richardson with omega > 2/lambda_max diverges geometrically; the
        # guard must stop it long before the iteration cap.
        from repro.solvers import richardson

        A = laplacian_2d(6)
        b = A @ np.ones(A.shape[0])
        crit = ConvergenceCriterion(tol=1e-12, max_iterations=100000,
                                    divergence_factor=1e9)
        res = richardson(A, b, omega=1.0, criterion=crit)
        assert not res.converged
        assert res.breakdown == "divergence"
        assert res.iterations < 10000

    def test_gmres_inner_iteration_counting(self):
        A = laplacian_2d(12)
        b = A @ np.ones(A.shape[0])
        res = gmres(A, b, restart=7,
                    criterion=ConvergenceCriterion(tol=1e-10))
        assert res.converged
        assert res.iterations >= 7  # needed more than one restart cycle

    def test_criterion_threshold(self):
        crit = ConvergenceCriterion(tol=1e-6, relative=True)
        assert crit.threshold(100.0) == pytest.approx(1e-4)
        crit_abs = ConvergenceCriterion(tol=1e-6, relative=False)
        assert crit_abs.threshold(100.0) == pytest.approx(1e-6)


class TestOperatorEdgeCases:
    def test_refloat_on_diagonal_matrix(self):
        A = sp.diags(np.linspace(1, 2, 64)).tocsr()
        op = ReFloatOperator(A, ReFloatSpec(b=4, e=3, f=8, ev=3, fv=16))
        x = np.ones(64)
        assert np.allclose(op.matvec(x), A @ x, rtol=1e-2)

    def test_refloat_rejects_nonfinite_matrix(self):
        A = sp.csr_matrix(np.array([[np.nan]]))
        with pytest.raises(ValueError):
            ReFloatOperator(A, ReFloatSpec(b=0))

    def test_matrix_smaller_than_block(self):
        A = sp.csr_matrix(np.array([[2.0, 1.0], [1.0, 2.0]]))
        op = ReFloatOperator(A, DEFAULT_SPEC)  # 128-blocks, 2x2 matrix
        res = cg(op, np.array([3.0, 3.0]))
        assert res.converged
        assert np.allclose(res.x, [1.0, 1.0], atol=1e-4)

    def test_exact_operator_repr(self):
        assert "MatrixOperator" in repr(ExactOperator(laplacian_2d(2)))


class TestCodecEdgeCases:
    def test_decompose_scalar_input(self):
        s, e, f = decompose(1.0)
        assert e == 0

    def test_quantize_single_value(self):
        q, eb = quantize_values(np.array([3.0]), 3, 3)
        assert q[0] == 3.0  # 1.1b x 2^1, fraction fits exactly

    def test_vector_shorter_than_segment(self):
        xq, ebv = quantize_vector(np.array([1.0, 2.0]), DEFAULT_SPEC)
        assert xq.shape == (2,) and ebv.shape == (1,)

    def test_negative_power_of_two_exact(self):
        q, _ = quantize_values(np.array([-0.25, -4.0]), 3, 0)
        assert q.tolist() == [-0.25, -4.0]

    def test_blocked_matrix_single_block(self):
        A = laplacian_2d(3)  # 9x9 inside one 128-block
        bm = BlockedMatrix(A, b=7)
        assert bm.n_blocks == 1
        assert bm.block_eb.shape == (1,)

    def test_spec_zero_fraction_bits(self):
        # f=0: magnitudes collapse to powers of two within the window.
        q, _ = quantize_values(np.array([3.0, 5.0, 9.0]), 3, 0)
        assert q.tolist() == [2.0, 4.0, 8.0]
