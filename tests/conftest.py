"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.formats import ReFloatSpec
from repro.sparse.gallery import laplacian_2d, wathen


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_spd():
    """A small SPD matrix (2-D Laplacian, 100x100)."""
    return laplacian_2d(10)


@pytest.fixture
def small_wathen():
    """A small Wathen matrix (341x341, mixed-sign mass)."""
    return wathen(10, 10, seed=7)


@pytest.fixture
def default_spec():
    return ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)


@pytest.fixture
def tiny_spec():
    """Spec with 8x8 blocks — keeps bit-exact engine tests fast."""
    return ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)


def random_float_array(rng, n, exp_range=(-20, 20), include_zero=False):
    """Random finite doubles with a controlled exponent spread."""
    vals = rng.standard_normal(n) * np.exp2(rng.uniform(*exp_range, n))
    if include_zero and n > 2:
        vals[rng.integers(0, n, max(1, n // 10))] = 0.0
    return vals
