"""Property-based tests (hypothesis) on the ReFloat codec invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.refloat import (
    ReFloatSpec,
    covering_exponent_base,
    offset_bounds,
    quantize_values,
    quantize_vector,
)

values_strategy = st.lists(
    st.floats(allow_nan=False, allow_infinity=False,
              min_value=-1e30, max_value=1e30)
    .filter(lambda v: v == 0.0 or abs(v) > 1e-30),
    min_size=1, max_size=64,
)
bit_strategy = st.tuples(st.integers(1, 5), st.integers(0, 20))


@given(values_strategy, bit_strategy)
@settings(max_examples=150, deadline=None)
def test_quantize_idempotent(values, bits):
    e, f = bits
    x = np.array(values)
    q1, eb = quantize_values(x, e, f)
    q2, _ = quantize_values(q1, e, f, eb=eb)
    assert np.array_equal(q1, q2)


@given(values_strategy, bit_strategy)
@settings(max_examples=150, deadline=None)
def test_quantize_preserves_sign_and_zero(values, bits):
    e, f = bits
    x = np.array(values)
    q, _ = quantize_values(x, e, f)
    assert np.all(q[x == 0] == 0)  # exact zeros stay zero
    # Nonzero outputs keep the input sign (flush may zero tiny inputs).
    nz = (x != 0) & (q != 0)
    assert np.all(np.sign(q[nz]) == np.sign(x[nz]))


@given(values_strategy, bit_strategy)
@settings(max_examples=150, deadline=None)
def test_cover_policy_top_value_error_bound(values, bits):
    """The block's largest-magnitude value loses only fraction bits."""
    e, f = bits
    x = np.array(values)
    if np.all(x == 0):
        return
    q, _ = quantize_values(x, e, f, eb_policy="cover")
    i = np.argmax(np.abs(x))
    rel = abs(q[i] - x[i]) / abs(x[i])
    assert rel < 2.0 ** -f if f > 0 else rel < 1.0


@given(values_strategy, bit_strategy)
@settings(max_examples=150, deadline=None)
def test_quantize_truncation_magnitude_bound(values, bits):
    """Flush-mode truncation never increases any magnitude."""
    e, f = bits
    x = np.array(values)
    q, _ = quantize_values(x, e, f, underflow="flush")
    assert np.all(np.abs(q) <= np.abs(x) + 0.0)


@given(st.integers(-500, 500), st.integers(1, 8))
@settings(max_examples=100, deadline=None)
def test_covering_base_window_contains_max(max_exp, e):
    eb = covering_exponent_base(max_exp, e)
    lo, hi = offset_bounds(e)
    assert eb + lo <= max_exp <= eb + hi


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                          allow_nan=False).filter(
                    lambda v: v == 0 or abs(v) > 1e-6),
                min_size=1, max_size=300),
       st.integers(2, 5), st.integers(2, 12))
@settings(max_examples=100, deadline=None)
def test_vector_dac_error_bound(values, ev, fv):
    """Per segment, |x - xq| <= segment_max * 2^-(2^ev - 1 + fv)."""
    spec = ReFloatSpec(b=4, e=3, f=3, ev=ev, fv=fv)
    x = np.array(values)
    xq, _ = quantize_vector(x, spec)
    size = spec.block_size
    bound_exp = (1 << ev) - 1 + fv
    for s in range(0, x.size, size):
        seg, segq = x[s:s + size], xq[s:s + size]
        m = np.max(np.abs(seg))
        if m == 0:
            assert np.all(segq == 0)
            continue
        # ulp = 2^(top_exponent - bound_exp) <= 2 * m * 2^-bound_exp
        assert np.max(np.abs(seg - segq)) <= 2.0 * m * 2.0 ** -bound_exp


@given(st.lists(st.floats(min_value=0.001, max_value=1000.0), min_size=1,
                max_size=200))
@settings(max_examples=100, deadline=None)
def test_vector_dac_idempotent(values):
    spec = ReFloatSpec(b=4, e=3, f=3, ev=3, fv=8)
    x = np.array(values)
    q1, _ = quantize_vector(x, spec)
    q2, _ = quantize_vector(q1, spec)
    assert np.array_equal(q1, q2)
