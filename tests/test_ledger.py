"""The run ledger: JSONL core, journal byte-compat, record_run, report CLI."""

import json
import threading
from dataclasses import asdict, replace

import pytest

from repro.api import RunConfig
from repro.api import config as api_config
from repro.api.specs import RunRequest
from repro.api.sweep import SweepSpec
from repro.experiments import common, ledger
from repro.experiments.__main__ import main as cli_main
from repro.experiments.common import (MatrixRun, clear_run_caches, run_suite,
                                      run_sweep)
from repro.experiments.journal import (SweepJournal, _legacy_journal_path,
                                       default_journal_path,
                                       resolve_journal_path)
from repro.experiments.ledger import JsonlLog, RunLedger
from repro.solvers.base import ConvergenceCriterion


@pytest.fixture
def ledger_env(tmp_path, monkeypatch):
    """A fresh store-rooted ledger; yields the default ledger file path."""
    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
    monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)
    monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
    clear_run_caches()
    ledger.reset_counters()
    yield tmp_path / "assets" / "ledger" / "ledger.jsonl"
    clear_run_caches()
    ledger.reset_counters()


def _run_dict(sid=1313, solver="cg"):
    """A summary-grade MatrixRun dict that round-trips through from_dict."""
    return {
        "sid": sid, "name": "minsurfo", "solver": solver, "n_rows": 400,
        "nnz": 3364, "n_blocks": 10,
        "platforms": {
            "gpu": {"converged": True, "iterations": 40,
                    "time_s": 0.5, "speedup_vs_gpu": 1.0},
            "feinberg": {"converged": True, "iterations": 40,
                         "time_s": 0.25, "speedup_vs_gpu": 2.0},
        },
    }


class TestJsonlLog:
    def test_missing_file_replays_empty(self, tmp_path):
        assert list(JsonlLog(tmp_path / "absent.jsonl").replay()) == []

    def test_replay_rejects_unknown_torn_mode(self, tmp_path):
        with pytest.raises(ValueError, match="torn"):
            list(JsonlLog(tmp_path / "x.jsonl").replay(torn="ignore"))

    def test_blank_lines_skipped_but_keep_linenos(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert list(JsonlLog(path).replay()) == [(0, {"a": 1}),
                                                 (2, {"a": 2})]

    def test_torn_final_line_stop_vs_skip(self, tmp_path):
        log = JsonlLog(tmp_path / "log.jsonl")
        log.append_atomic({"a": 1})
        log.append_atomic({"a": 2})
        with open(log.path, "a") as fh:
            fh.write('{"a": 3')  # the crash-torn final line
        assert [r for _, r in log.replay(torn="stop")] == [{"a": 1},
                                                           {"a": 2}]
        assert [r for _, r in log.replay(torn="skip")] == [{"a": 1},
                                                           {"a": 2}]

    def test_skip_sees_records_appended_after_a_torn_line(self, tmp_path):
        # Ledger semantics: a torn line from a dead writer must not hide
        # records a *different* process appended after it.
        log = JsonlLog(tmp_path / "log.jsonl")
        log.append_atomic({"a": 1})
        with open(log.path, "a") as fh:
            fh.write('{"a": 2"broken\n')  # complete but undecodable line
        log.append_atomic({"a": 3})
        assert [r for _, r in log.replay(torn="stop")] == [{"a": 1}]
        assert [r for _, r in log.replay(torn="skip")] == [{"a": 1},
                                                           {"a": 3}]

    def test_concurrent_atomic_appends_never_interleave(self, tmp_path):
        # The threaded-daemon shape: many writers, one file.  Every line
        # must decode and every (writer, seq) pair must survive exactly
        # once — interleaved bytes would fail both.
        log = JsonlLog(tmp_path / "led.jsonl")
        n_threads, per_thread = 8, 25

        def writer(t):
            for i in range(per_thread):
                log.append_atomic({"thread": t, "seq": i, "pad": "x" * 200})

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = [r for _, r in log.replay(torn="stop")]
        assert len(records) == n_threads * per_thread
        seen = {(r["thread"], r["seq"]) for r in records}
        assert len(seen) == n_threads * per_thread


class TestJournalOnCore:
    """The rebased SweepJournal must write/replay the pre-refactor format."""

    def _spec(self):
        return SweepSpec(family="noisy", grid={"sigma": (0.0, 0.02)},
                         solvers=("cg",), sids=(1313,), scale="test")

    def test_journal_bytes_identical_to_prerefactor_format(self, tmp_path):
        spec, crit = self._spec(), ConvergenceCriterion()
        run = MatrixRun.from_dict(_run_dict())
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.open(spec, "test", crit, resume=False)
        journal.record("cell-key", run)
        journal.close()
        expected = (
            json.dumps({"type": "SweepJournal", "version": 1,
                        "spec": spec.to_dict(), "scale": "test",
                        "criterion": asdict(crit)}, sort_keys=True) + "\n"
            + json.dumps({"key": "cell-key", "run": run.to_dict()},
                         sort_keys=True) + "\n")
        assert (tmp_path / "j.jsonl").read_text() == expected

    def test_replays_old_format_journal_file(self, tmp_path):
        # A journal literal as written before the tolerance axis existed:
        # the header's spec dict has no "tols" key.  The rebased journal
        # must still match and replay it.
        spec, crit = self._spec(), ConvergenceCriterion()
        header = {"type": "SweepJournal", "version": 1,
                  "spec": spec.to_dict(), "scale": "test",
                  "criterion": asdict(crit)}
        del header["spec"]["tols"]
        run_dict = _run_dict()
        path = tmp_path / "old.jsonl"
        path.write_text(
            json.dumps(header, sort_keys=True) + "\n"
            + json.dumps({"key": "old-key", "run": run_dict},
                         sort_keys=True) + "\n")
        journal = SweepJournal(path)
        assert journal.matches(spec, "test", crit)
        runs = journal.load(spec, "test", crit)
        assert list(runs) == ["old-key"]
        assert runs["old-key"].to_dict() == run_dict

    def test_mismatched_header_refuses_to_resume(self, tmp_path):
        spec, crit = self._spec(), ConvergenceCriterion()
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.open(spec, "test", crit, resume=False)
        journal.close()
        with pytest.raises(ValueError, match="refusing to resume"):
            SweepJournal(journal.path).load(
                spec, "test", replace(crit, tol=1e-6))


class TestJournalDigest:
    """Satellite fix: the default path digests spec AND scale AND criterion."""

    def _spec(self, **kw):
        base = dict(family="noisy", grid={"sigma": (0.0, 0.02)},
                    solvers=("cg",), sids=(1313,), scale="test")
        base.update(kw)
        return SweepSpec(**base)

    def test_digest_covers_scale_and_criterion(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path))
        spec = self._spec(scale=None)
        crit = ConvergenceCriterion()
        p_test = default_journal_path(spec, "test", crit)
        assert p_test.parent == tmp_path / "journals"
        assert default_journal_path(spec, "test", crit) == p_test  # stable
        assert default_journal_path(spec, "default", crit) != p_test
        assert default_journal_path(
            spec, "test", replace(crit, tol=1e-6)) != p_test

    def test_legacy_digest_file_resumes_when_header_matches(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
        monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
        monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        clear_run_caches()
        spec = self._spec()
        legacy = _legacy_journal_path(spec)
        # A journal written under the old spec-only digest.
        run_sweep(spec, max_workers=1, journal=legacy)
        assert legacy.exists()
        assert not default_journal_path(spec).exists()
        assert resolve_journal_path(spec) == legacy
        # An "auto" resume replays it completely: zero fresh solves.
        monkeypatch.setattr(common, "run_matrix",
                            lambda *a, **kw: pytest.fail("resolved journal "
                                                         "was not replayed"))
        resumed = run_sweep(spec, max_workers=1, journal="auto", resume=True)
        assert resumed.stats.journal_skipped == 3  # 1 baseline + 2 variants
        assert resumed.stats.requests == 0
        clear_run_caches()

    def test_legacy_file_with_mismatched_header_is_ignored(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
        monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
        monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        clear_run_caches()
        spec = self._spec()
        legacy = _legacy_journal_path(spec)
        # The legacy-path file pins a *different* criterion; falling back
        # to it would hit the header-mismatch refusal.
        run_sweep(spec, max_workers=1, journal=legacy,
                  criterion=ConvergenceCriterion(tol=1e-6))
        assert resolve_journal_path(spec) == default_journal_path(spec)
        clear_run_caches()


class TestRecordRun:
    def test_noop_without_store_or_ledger(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
        assert ledger.ledger_root() is None
        assert ledger.ledger_path() is None
        assert ledger.record_run(
            "suite", spec={"type": "SuiteSpec"}, scale="test",
            criterion=None, runs=()) is None
        stats = ledger.ledger_stats()
        assert stats["path"] is None
        assert stats["records"] == 0

    def test_disabled_token_turns_ledger_off(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path))
        for token in ("off", "none", "0", "OFF"):
            monkeypatch.setenv("REPRO_RUN_LEDGER", token)
            assert ledger.ledger_root(RunConfig.from_env()) is None
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "elsewhere"))
        assert ledger.ledger_root(RunConfig.from_env()) == \
            tmp_path / "elsewhere"
        monkeypatch.delenv("REPRO_RUN_LEDGER")
        assert ledger.ledger_root(RunConfig.from_env()) == \
            tmp_path / "ledger"

    def test_run_suite_appends_one_replayable_record(self, ledger_env):
        runs = run_suite("cg", scale="test", sids=(1313,), max_workers=1)
        assert 1313 in runs
        records = RunLedger(ledger_env).replay()
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "suite"
        assert rec["scale"] == "test"
        assert rec["spec"]["solver"] == "cg"
        assert rec["criterion"] == asdict(
            api_config.active().effective_criterion)
        assert rec["config"]["store"] == str(ledger_env.parent.parent)
        assert set(rec["registry"]["platforms"]) == set(runs[1313].platforms)
        assert rec["registry"]["solvers"].keys() == {"cg"}
        assert rec["stats"]["requests"] == 1
        assert rec["failures"] == []
        # The result is summary-grade replayable via MatrixRun.from_dict.
        revived = MatrixRun.from_dict(rec["runs"][0])
        assert revived.sid == 1313
        assert revived.to_dict() == rec["runs"][0]
        assert ledger.counters() == {"appends": 1, "errors": 0}

    def test_run_cache_hit_appends_nothing(self, ledger_env):
        run_suite("cg", scale="test", sids=(1313,), max_workers=1)
        run_suite("cg", scale="test", sids=(1313,), max_workers=1)
        assert len(RunLedger(ledger_env).replay()) == 1

    def test_run_sweep_appends_one_record(self, ledger_env):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.0, 0.02)},
                         solvers=("cg",), sids=(1313,), scale="test")
        run_sweep(spec, max_workers=1)
        records = RunLedger(ledger_env).replay()
        assert len(records) == 1
        rec = records[0]
        assert rec["kind"] == "sweep"
        assert rec["spec"]["family"] == "noisy"
        assert rec["stats"]["requests"] == 3
        assert len(rec["runs"]) == 3
        assert all(MatrixRun.from_dict(r).solver == "cg"
                   for r in rec["runs"])

    def test_unwritable_root_degrades_to_warning(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
        blocker = tmp_path / "blocker"
        blocker.write_text("")  # a *file* where a parent dir must go
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(blocker / "ledger"))
        clear_run_caches()
        ledger.reset_counters()
        with pytest.warns(RuntimeWarning, match="run ledger append"):
            runs = run_suite("cg", scale="test", sids=(1313,), max_workers=1)
        assert 1313 in runs  # the solve itself must stay successful
        assert ledger.counters() == {"appends": 0, "errors": 1}
        clear_run_caches()
        ledger.reset_counters()


class TestServiceLedger:
    def test_engine_batch_appends_one_service_record(self, ledger_env):
        from repro.service import SolveService

        cfg = RunConfig.from_env(service_batch_window=0.01)
        svc = SolveService(port=0, config=cfg)
        thread = threading.Thread(target=svc.serve_forever, daemon=True)
        thread.start()
        try:
            fut = svc.submit_request(
                RunRequest(sid=1313, solver="cg", scale="test"))
            out = fut.result(timeout=300)
            assert out["failure"] is None
            records = RunLedger(ledger_env).replay()
            assert [r["kind"] for r in records] == ["service"]
            rec = records[0]
            assert rec["spec"]["type"] == "ServiceBatch"
            assert [r["sid"] for r in rec["runs"]] == [1313]
            assert rec["service"] == {"batch_jobs": 1, "unique_requests": 1,
                                      "coalesced": False}
            stats = svc.stats()
            assert stats["ledger"]["records"] == 1
            assert stats["ledger"]["appends"] >= 1
            assert stats["ledger"]["path"] == str(ledger_env)
            assert stats["service"]["latency"]["p95_s"] >= \
                stats["service"]["latency"]["p50_s"] >= 0.0
        finally:
            svc.close()
            thread.join(timeout=10)
            clear_run_caches()


class TestLatencyPercentile:
    def test_nearest_rank(self):
        from repro.service.coalesce import latency_percentile

        samples = [0.4, 0.1, 0.3, 0.2, 0.5]
        assert latency_percentile(samples, 50) == 0.3
        assert latency_percentile(samples, 95) == 0.5
        assert latency_percentile(samples, 100) == 0.5
        assert latency_percentile([], 50) == 0.0
        assert latency_percentile([7.0], 50) == 7.0
        with pytest.raises(ValueError):
            latency_percentile(samples, 0)
        with pytest.raises(ValueError):
            latency_percentile(samples, 101)


class TestReportCLI:
    def test_report_without_ledger_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        monkeypatch.delenv("REPRO_RUN_LEDGER", raising=False)
        assert cli_main(["report"]) == 2
        assert "no run ledger configured" in capsys.readouterr().err

    def test_cli_runs_append_and_report_replays(self, ledger_env, tmp_path,
                                                capsys):
        assert cli_main(["suite", "--solver", "cg", "--scale", "test",
                         "--sids", "1313", "--workers", "1"]) == 0
        assert cli_main(["sweep", "--platform", "noisy",
                         "--grid", "sigma=0.001", "--solver", "cg",
                         "--sids", "1313", "--scale", "test",
                         "--workers", "1"]) == 0
        assert cli_main(["solve", "--sid", "1313", "--solver", "cg",
                         "--scale", "test"]) == 0
        records = RunLedger(ledger_env).replay()
        assert [r["kind"] for r in records] == ["suite", "sweep", "solve"]
        capsys.readouterr()

        out_file = tmp_path / "report.json"
        assert cli_main(["report", "--json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "perf trajectory over 3 record(s)" in out
        assert "failure-rate trend" in out
        assert "1 solve, 1 suite, 1 sweep" in out

        payload = json.loads(out_file.read_text())
        assert payload["type"] == "LedgerReport"
        assert payload["coverage"]["kinds"] == {"suite": 1, "sweep": 1,
                                                "solve": 1}
        assert payload["coverage"]["sids"] == [1313]
        assert len(payload["records"]) == 3
        # The same deployment stamped every record: shared registry names
        # must agree across records.
        assert len({rec["registry"]["solvers"]["cg"]
                    for rec in payload["records"]}) == 1
        # gpu appears in all three runs of sid 1313 — the trajectory has
        # one point per record.
        points = payload["trajectory"]["1313/cg/gpu"]
        assert [p["record"] for p in points] == [0, 1, 2]
        assert all(p["converged"] for p in points)
        assert all(p["time_s"] is not None for p in points)

    def test_report_last_limits_records(self, ledger_env, tmp_path, capsys):
        for sid in (1313, 1313):
            assert cli_main(["solve", "--sid", str(sid), "--solver", "cg",
                             "--scale", "test"]) == 0
        out_file = tmp_path / "report.json"
        assert cli_main(["report", "--last", "1",
                         "--json", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert len(payload["records"]) == 1
