"""Tests for block floating point and the Table III format zoo."""

import numpy as np
import pytest

from repro.formats.bfp import BFPSpec, quantize_block_bfp, quantize_vector_bfp
from repro.formats.zoo import FORMAT_ZOO, named_spec, quantize_to_named_format


class TestBFP:
    def test_shared_exponent_is_block_max(self):
        q, emax = quantize_block_bfp(np.array([1.0, 4.0, 0.25]), BFPSpec(b=2))
        assert emax == 2

    def test_large_values_exact_small_lose_bits(self):
        spec = BFPSpec(b=3, mantissa_bits=8)
        x = np.array([128.0, 1.0, 2.0 ** -3])
        q, emax = quantize_block_bfp(x, spec)
        assert q[0] == 128.0
        assert q[1] == 1.0   # exactly on the grid (ulp = 2^0)
        assert q[2] == 0.0   # below the fixed-point ulp -> flushed

    def test_paper_example_dynamic_range_failure(self):
        # Section II-C: 1e-40 and 1e-30 cannot coexist in one BFP block.
        q, _ = quantize_block_bfp(np.array([1e-30, 1e-40]), BFPSpec(mantissa_bits=30))
        assert q[0] != 0.0 and q[1] == 0.0

    def test_all_zero_block(self):
        q, emax = quantize_block_bfp(np.zeros(4), BFPSpec())
        assert np.all(q == 0) and emax == 0

    def test_vector_blockwise(self):
        spec = BFPSpec(b=1, mantissa_bits=10)
        x = np.array([4.0, 2.0 ** -12, 1.0, 0.5])
        q = quantize_vector_bfp(x, spec)
        assert q[1] == 0.0        # same block as 4.0, below its grid
        assert q[2] == 1.0 and q[3] == 0.5  # separate block, fits

    def test_validation(self):
        with pytest.raises(ValueError):
            BFPSpec(b=-1)
        with pytest.raises(ValueError):
            BFPSpec(mantissa_bits=0)


class TestZoo:
    def test_table3_entries(self):
        assert named_spec("bfloat16").e == 8 and named_spec("bfloat16").f == 7
        assert named_spec("ms-fp9").e == 5 and named_spec("ms-fp9").f == 3
        assert named_spec("fp64").f == 52
        assert named_spec("tensorfloat32").f == 10
        assert named_spec("bfp64").b == 6 and named_spec("bfp64").e == 0
        assert len(FORMAT_ZOO) == 8

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            named_spec("fp8")

    def test_fp64_identity(self, rng):
        x = rng.standard_normal(50)
        assert np.array_equal(quantize_to_named_format(x, "fp64"), x)

    def test_bfloat16_fraction_budget(self):
        q = quantize_to_named_format(np.array([1.0 / 3.0]), "bfloat16")
        # 7 fraction bits, truncated.
        assert q[0] == 0.33203125

    def test_elementwise_formats_keep_exponent(self, rng):
        # b=0 formats never change the binade, only the fraction.
        x = np.exp2(rng.uniform(-100, 100, 100)) * np.sign(rng.standard_normal(100))
        q = quantize_to_named_format(x, "ms-fp9")
        assert np.all(np.floor(np.log2(np.abs(q))) == np.floor(np.log2(np.abs(x))))
