"""Store GC tooling and the new CLI subcommands (suite / solve / store)."""

import json
import os

import pytest

from repro.experiments import ledger, store
from repro.experiments.__main__ import main as cli_main
from repro.experiments.common import clear_run_caches, matrix_assets


def _ledger_record():
    """Append one minimal ledger record; returns the ledger file path."""
    path = ledger.ledger_path()
    ledger.RunLedger(path).append(
        {"type": "RunLedger", "version": ledger.LEDGER_VERSION,
         "kind": "suite"})
    return path


@pytest.fixture
def store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "assets"))
    monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)
    monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
    monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
    clear_run_caches()
    store.reset_counters()
    yield tmp_path / "assets"
    clear_run_caches()
    store.reset_counters()


def _touch_entry(sid, scale, atime):
    """Set every file of an entry to a controlled access time."""
    path = store.entry_path(sid, scale)
    for f in path.iterdir():
        os.utime(f, (atime, f.stat().st_mtime))


class TestStoreStats:
    def test_stats_without_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        assert store.entry_stats() == []
        stats = store.store_stats()
        assert stats["root"] is None
        assert stats["entries"] == 0

    def test_stats_counts_entries_and_bytes(self, store_env):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        stats = store.store_stats()
        assert stats["entries"] == 2
        assert stats["nbytes"] > 0
        keys = {e["key"] for e in stats["per_entry"]}
        assert keys == {"353-test", "1311-test"}
        assert all(e["current"] for e in stats["per_entry"])

    def test_stats_includes_stale_versions(self, store_env):
        matrix_assets(353, "test")
        stale = store_env / "v0" / "999-test"
        stale.mkdir(parents=True)
        (stale / "meta.json").write_text("{}")
        entries = store.entry_stats()
        versions = {(e["version"], e["current"]) for e in entries}
        assert ("v0", False) in versions
        assert (f"v{store.STORE_VERSION}", True) in versions

    def test_stats_reports_ledger_totals(self, store_env):
        matrix_assets(353, "test")
        path = _ledger_record()
        stats = store.store_stats()
        assert stats["ledger"]["path"] == str(path)
        assert stats["ledger"]["records"] == 1
        assert stats["ledger"]["nbytes"] == path.stat().st_size
        # The ledger is not a store entry: it never shows up in (or
        # counts toward) the eviction namespace.
        assert {e["key"] for e in stats["per_entry"]} == {"353-test"}


class TestStoreGC:
    def test_gc_evicts_lru_by_atime(self, store_env):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        # 353 is the stale entry, 1311 the recently-used one.
        _touch_entry(353, "test", 1_000_000.0)
        _touch_entry(1311, "test", 2_000_000.0)
        sizes = {e["key"]: e["nbytes"] for e in store.entry_stats()}
        result = store.gc_store(sizes["1311-test"])
        assert result["evicted"] == [f"v{store.STORE_VERSION}/353-test"]
        assert result["kept"] == 1
        assert result["after_nbytes"] <= sizes["1311-test"]
        assert not store.has_entry(353, "test")
        assert store.has_entry(1311, "test")
        # The survivor still loads (bit rot would have been a GC bug).
        assert store.load_entry(1311, "test") is not None

    def test_gc_recency_order_flipped(self, store_env):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        _touch_entry(353, "test", 2_000_000.0)
        _touch_entry(1311, "test", 1_000_000.0)
        sizes = {e["key"]: e["nbytes"] for e in store.entry_stats()}
        result = store.gc_store(sizes["353-test"])
        assert result["evicted"] == [f"v{store.STORE_VERSION}/1311-test"]
        assert store.has_entry(353, "test")

    def test_load_stamps_recency_sidecar_that_beats_atime(self, store_env):
        # atime is unreliable (mmap reads, relatime/noatime mounts); the
        # last_used sidecar written on load is the authoritative signal.
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        assert store.load_entry(353, "test") is not None  # stamps sidecar
        assert (store.entry_path(353, "test") / "last_used").is_file()
        # Stale atimes everywhere; 1311's atime is *newer* than 353's,
        # but 353's sidecar (stamped "now") must keep it alive.
        _touch_entry(353, "test", 1_000_000.0)
        _touch_entry(1311, "test", 2_000_000.0)
        sidecar = store.entry_path(353, "test") / "last_used"
        os.utime(sidecar, (1_000_000.0, sidecar.stat().st_mtime))
        sizes = {e["key"]: e["nbytes"] for e in store.entry_stats()}
        result = store.gc_store(sizes["353-test"])
        assert result["evicted"] == [f"v{store.STORE_VERSION}/1311-test"]
        assert store.has_entry(353, "test")

    def test_gc_noop_when_under_budget(self, store_env):
        matrix_assets(353, "test")
        result = store.gc_store(1 << 30)
        assert result["evicted"] == []
        assert result["kept"] == 1
        assert store.has_entry(353, "test")

    def test_gc_zero_budget_clears_everything(self, store_env):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        result = store.gc_store(0)
        assert result["after_nbytes"] == 0
        assert result["kept"] == 0
        assert store.entry_stats() == []

    def test_gc_rejects_negative_budget(self, store_env):
        with pytest.raises(ValueError, match="max_bytes"):
            store.gc_store(-1)

    def test_evicted_entry_rebuilds_transparently(self, store_env):
        matrix_assets(353, "test")
        store.gc_store(0)
        clear_run_caches()
        store.reset_counters()
        matrix_assets(353, "test")  # miss -> rebuild -> republish
        counts = store.counters()
        assert counts["builds"] == 1
        assert counts["saves"] == 1
        assert store.has_entry(353, "test")


    def test_gc_never_evicts_the_ledger(self, store_env):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        path = _ledger_record()
        result = store.gc_store(0)
        assert len(result["evicted"]) == 2
        assert store.entry_stats() == []  # every entry gone...
        assert path.is_file()             # ...the ledger untouched
        assert len(ledger.RunLedger(path).replay()) == 1


class TestCLI:
    def test_store_stats_and_gc(self, store_env, capsys):
        matrix_assets(353, "test")
        matrix_assets(1311, "test")
        path = _ledger_record()
        assert cli_main(["store", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "353-test" in out
        assert f"ledger {path}: 1 records" in out
        assert cli_main(["store", "--gc", "--max-mb", "0"]) == 0
        out = capsys.readouterr().out
        assert "evicted 2 entries" in out
        assert store.entry_stats() == []
        # The regression this pins: a tiny GC budget clears the whole
        # entry namespace but must leave ledger/ intact.
        assert path.is_file()
        assert len(ledger.RunLedger(path).replay()) == 1

    def test_store_requires_configuration(self, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        assert cli_main(["store", "--stats"]) == 2
        assert "no asset store configured" in capsys.readouterr().err

    def test_store_flag_overrides_env(self, tmp_path, monkeypatch, capsys,
                                      store_env):
        matrix_assets(353, "test")
        other = tmp_path / "other-store"
        other.mkdir()
        assert cli_main(["store", "--stats", "--store", str(other)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_gc_requires_max_mb(self, store_env):
        with pytest.raises(SystemExit):
            cli_main(["store", "--gc"])

    def test_suite_subcommand_writes_json(self, tmp_path, monkeypatch,
                                          capsys):
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        monkeypatch.delenv("REPRO_SUITE_WORKERS", raising=False)
        clear_run_caches()
        out_file = tmp_path / "suite.json"
        code = cli_main(["suite", "--solver", "cg", "--scale", "test",
                         "--platforms", "gpu,refloat", "--sids", "353,1311",
                         "--workers", "1", "--json", str(out_file)])
        assert code == 0
        assert "ReFloat" in capsys.readouterr().out
        payload = json.loads(out_file.read_text())
        assert payload["spec"]["solver"] == "cg"
        assert set(payload["runs"]) == {"353", "1311"}
        refloat = payload["runs"]["353"]["platforms"]["refloat"]
        assert refloat["converged"] is True
        assert refloat["speedup_vs_gpu"] > 0
        clear_run_caches()

    def test_solve_subcommand(self, capsys):
        clear_run_caches()
        code = cli_main(["solve", "--sid", "1311", "--solver", "cg",
                         "--scale", "test", "--platforms", "gpu,refloat"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gridgena" in out and "refloat" in out
        clear_run_caches()

    def test_legacy_experiment_path_still_works(self, capsys):
        clear_run_caches()
        assert cli_main(["table7"]) == 0
        assert "Table VII" in capsys.readouterr().out
