"""Unit tests for the ReFloat format codec."""

import numpy as np
import pytest

from repro.formats.refloat import (
    DEFAULT_SPEC,
    ReFloatSpec,
    covering_exponent_base,
    decode_values,
    encode_values,
    exponent_loss,
    offset_bounds,
    optimal_exponent_base,
    quantize_values,
    quantize_vector,
    quantize_vector_storage,
    vector_segment_bases,
)


class TestSpec:
    def test_default_matches_table7(self):
        assert (DEFAULT_SPEC.b, DEFAULT_SPEC.e, DEFAULT_SPEC.f,
                DEFAULT_SPEC.ev, DEFAULT_SPEC.fv) == (7, 3, 3, 3, 8)

    def test_block_size(self):
        assert ReFloatSpec(b=7).block_size == 128
        assert ReFloatSpec(b=0).block_size == 1

    def test_value_bits(self):
        spec = ReFloatSpec(b=2, e=2, f=3)
        assert spec.matrix_value_bits == 6  # the Sec. IV-A example: 1+2+3

    def test_validation(self):
        with pytest.raises(ValueError):
            ReFloatSpec(b=-1)
        with pytest.raises(ValueError):
            ReFloatSpec(f=53)
        with pytest.raises(ValueError):
            ReFloatSpec(rounding="round")
        with pytest.raises(ValueError):
            ReFloatSpec(eb_policy="median")
        with pytest.raises(ValueError):
            ReFloatSpec(underflow="wrap")

    def test_with_vector_bits(self):
        spec = DEFAULT_SPEC.with_vector_bits(fv=16)
        assert spec.fv == 16 and spec.ev == DEFAULT_SPEC.ev
        assert DEFAULT_SPEC.fv == 8  # original untouched (frozen)

    def test_str(self):
        assert str(DEFAULT_SPEC) == "ReFloat(7,3,3)(3,8)"


class TestExponentBases:
    def test_offset_bounds_full_signed_range(self):
        assert offset_bounds(3) == (-4, 3)
        assert offset_bounds(1) == (-1, 0)
        assert offset_bounds(0) == (0, 0)

    def test_optimal_base_is_round_mean(self):
        assert optimal_exponent_base(np.array([7, 8, 9, 7])) == 8  # Eq. 6 example
        assert optimal_exponent_base(np.array([0, 1])) == 1  # half rounds up
        assert optimal_exponent_base(np.array([])) == 0

    def test_mean_base_minimises_loss(self, rng):
        exps = rng.integers(-20, 20, 64)
        eb = optimal_exponent_base(exps)
        for other in (eb - 1, eb + 1):
            assert exponent_loss(exps, eb) <= exponent_loss(exps, other)

    def test_covering_base_puts_max_at_window_top(self):
        eb = covering_exponent_base(10, 3)
        lo, hi = offset_bounds(3)
        assert eb + hi == 10
        assert covering_exponent_base(10, 0) == 10


class TestQuantizeValues:
    def test_paper_eq6_eq7_worked_example(self):
        vals = np.array([-248.0, 336.0, -512.0, 136.0])
        q, eb = quantize_values(vals, e=2, f=2)
        assert eb[0] == 8
        assert np.array_equal(q, [-224.0, 320.0, -512.0, 128.0])

    def test_mean_policy_same_example(self):
        vals = np.array([-248.0, 336.0, -512.0, 136.0])
        q, eb = quantize_values(vals, e=2, f=2, eb_policy="mean")
        assert eb[0] == 8
        assert np.array_equal(q, [-224.0, 320.0, -512.0, 128.0])

    def test_full_precision_is_identity(self, rng):
        x = rng.standard_normal(500) * np.exp2(rng.uniform(-30, 30, 500))
        q, _ = quantize_values(x, e=11, f=52)
        assert np.array_equal(q, x)

    def test_zero_passthrough(self):
        q, _ = quantize_values(np.array([0.0, 4.0]), e=3, f=3)
        assert q[0] == 0.0 and q[1] == 4.0

    def test_in_window_error_bound(self, rng):
        # All exponents within the window: error purely from the fraction.
        x = np.exp2(rng.uniform(0, 2.9, 200))
        q, _ = quantize_values(x, e=3, f=4)
        rel = np.abs(q - x) / x
        assert np.all(rel < 2.0 ** -4)

    def test_truncation_never_increases_magnitude_in_window(self, rng):
        x = np.exp2(rng.uniform(0, 2.9, 200)) * np.sign(rng.standard_normal(200))
        q, _ = quantize_values(x, e=3, f=3)
        assert np.all(np.abs(q) <= np.abs(x))

    def test_cover_policy_never_shrinks_largest(self):
        x = np.array([1024.0, 1.0, 2.0 ** -20])
        q, _ = quantize_values(x, e=3, f=3, eb_policy="cover")
        assert q[0] == 1024.0  # top of window, fraction exact (power of two)

    def test_underflow_flush_vs_saturate(self):
        x = np.array([1024.0, 2.0 ** -20])
        qf, _ = quantize_values(x, e=3, f=3, underflow="flush")
        qs, _ = quantize_values(x, e=3, f=3, underflow="saturate")
        assert qf[1] == 0.0
        lo, _ = offset_bounds(3)
        eb = covering_exponent_base(10, 3)
        assert qs[1] == 2.0 ** (eb + lo)  # inflated to the window bottom

    def test_mean_policy_saturates_above(self):
        # Outlier far above the mean-based window is shrunk (saturated at hi).
        x = np.concatenate((np.ones(63), [2.0 ** 20]))
        q, eb = quantize_values(x, e=3, f=3, eb_policy="mean")
        assert q[-1] < 2.0 ** 20

    def test_idempotent(self, rng):
        x = rng.standard_normal(256) * np.exp2(rng.uniform(-3, 3, 256))
        q1, eb = quantize_values(x, e=3, f=3)
        q2, _ = quantize_values(q1, e=3, f=3, eb=eb)
        assert np.array_equal(q1, q2)

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError):
            quantize_values(np.ones(4), 3, 3, eb_policy="nope")
        with pytest.raises(ValueError):
            quantize_values(np.ones(4), 3, 3, underflow="nope")
        with pytest.raises(ValueError):
            quantize_values(np.ones(4), 3, 3, rounding="nope")


class TestEncodeDecode:
    def test_roundtrip_matches_quantize(self, rng):
        vals = rng.standard_normal(64) * np.exp2(rng.uniform(-3, 3, 64))
        enc = encode_values(vals, e=3, f=5)
        dec = decode_values(enc)
        q, _ = quantize_values(vals, e=3, f=5, eb=enc.eb, underflow="saturate")
        assert np.array_equal(dec, q)

    def test_fields_in_range(self, rng):
        vals = rng.standard_normal(64) * np.exp2(rng.uniform(-10, 10, 64))
        enc = encode_values(vals, e=3, f=4)
        lo, hi = offset_bounds(3)
        assert enc.offset.min() >= lo and enc.offset.max() <= hi
        assert int(enc.frac.max()) < (1 << 4)
        assert set(np.unique(enc.sign)) <= {0, 1}
        assert enc.size == 64

    def test_rejects_zeros(self):
        with pytest.raises(ValueError):
            encode_values(np.array([1.0, 0.0]), 3, 3)


class TestVectorConverter:
    def test_segment_bases_cover(self):
        x = np.concatenate((np.full(128, 8.0), np.full(128, 0.5)))
        ebv = vector_segment_bases(x, b=7, ev=3)
        assert ebv.tolist() == [3 - 3, -1 - 3]

    def test_empty_segment_base_zero(self):
        x = np.zeros(256)
        x[0] = 4.0
        ebv = vector_segment_bases(x, b=7, ev=3)
        assert ebv[1] == 0

    def test_dac_grid_quantisation(self):
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=4)
        # segment of 4; top exponent 0 -> ulp = 2^(0-7-4) = 2^-11
        x = np.array([1.0, 2.0 ** -11, 2.0 ** -12, 0.75])
        xq, ebv = quantize_vector(x, spec)
        assert xq[0] == 1.0
        assert xq[1] == 2.0 ** -11      # exactly one ulp
        assert xq[2] == 0.0             # below the ulp -> truncates to zero
        assert xq[3] == 0.75            # on the grid
        assert ebv.shape == (1,)

    def test_dac_truncates_toward_zero(self):
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=4)
        x = np.array([-1.0, -(2.0 ** -12), 1.5 * 2.0 ** -11, 0.0])
        xq, _ = quantize_vector(x, spec)
        assert xq[0] == -1.0
        assert xq[1] == 0.0             # magnitude truncation
        assert xq[2] == 2.0 ** -11
        assert xq[3] == 0.0

    def test_zero_vector(self):
        xq, ebv = quantize_vector(np.zeros(300), DEFAULT_SPEC)
        assert np.all(xq == 0)
        assert ebv.shape == (3,)

    def test_empty_vector(self):
        xq, ebv = quantize_vector(np.zeros(0), DEFAULT_SPEC)
        assert xq.size == 0 and ebv.size == 0

    def test_relative_error_bound(self, rng):
        spec = DEFAULT_SPEC
        x = rng.standard_normal(1024)
        xq, _ = quantize_vector(x, spec)
        # Per segment, error <= ulp = 2^(top - 7 - 8) <= |seg|_max * 2^-14.
        for s in range(0, 1024, 128):
            seg, segq = x[s:s + 128], xq[s:s + 128]
            assert np.max(np.abs(seg - segq)) <= np.max(np.abs(seg)) * 2.0 ** -14

    def test_storage_codec_flushes_below_window(self):
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=4)
        x = np.array([1.0, 2.0 ** -9, 0.5, 0.25])
        xq, _ = quantize_vector_storage(x, spec)
        assert xq[1] == 0.0  # offset < -4 in the storage layout
        assert xq[0] == 1.0 and xq[2] == 0.5
