"""Tests for the SpMV platform operators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import ReFloatSpec
from repro.operators import (
    CountingOperator,
    ExactOperator,
    FeinbergFcOperator,
    FeinbergOperator,
    NoisyReFloatOperator,
    ReFloatOperator,
    TracingOperator,
    TruncatedOperator,
)
from repro.sparse.gallery import hex_mass_matrix, laplacian_2d, wathen


class TestExact:
    def test_matches_scipy(self, rng):
        A = laplacian_2d(6)
        x = rng.standard_normal(A.shape[0])
        assert np.array_equal(ExactOperator(A).matvec(x), A @ x)


class TestReFloat:
    def test_matrix_quantized_once_vector_per_apply(self, rng):
        A = wathen(6, 6, seed=1)
        spec = ReFloatSpec(b=5, e=3, f=3, ev=3, fv=8)
        op = ReFloatOperator(A, spec)
        # The stored matrix is the blockwise quantisation.
        assert op.A.nnz == sp.csr_matrix(A).nnz
        x = rng.standard_normal(A.shape[0])
        y = op.matvec(x)
        assert np.array_equal(y, op.A @ op.quantize_input(x))

    def test_full_precision_spec_is_exact(self, rng):
        A = laplacian_2d(8)
        spec = ReFloatSpec(b=5, e=11, f=52, ev=11, fv=52)
        op = ReFloatOperator(A, spec)
        x = rng.standard_normal(A.shape[0])
        # fv=52 with the 2^ev-binade DAC grid is exact for moderate ranges.
        assert np.allclose(op.matvec(x), A @ x, rtol=1e-12)

    def test_error_decreases_with_f(self, rng):
        A = wathen(6, 6, seed=2)
        x = rng.standard_normal(A.shape[0])
        y_exact = A @ x
        errs = []
        for f in (2, 6, 12):
            op = ReFloatOperator(A, ReFloatSpec(b=5, e=3, f=f, ev=3, fv=20))
            errs.append(np.linalg.norm(op.matvec(x) - y_exact))
        assert errs[0] > errs[1] > errs[2]

    def test_shape(self):
        A = laplacian_2d(5)
        assert ReFloatOperator(A, ReFloatSpec(b=4)).shape == A.shape


class TestFeinberg:
    def test_matrix_exact(self, rng):
        A = laplacian_2d(8)
        op = FeinbergOperator(A)
        # Vector within every window: matvec exact.
        x = np.ones(A.shape[0])
        assert np.allclose(op.matvec(x), A @ x)

    def test_mass_matrix_vector_wraps(self):
        # All-positive matrix: b = A @ ones exceeds per-column windows.
        A = hex_mass_matrix(4, seed=3)
        op = FeinbergOperator(A)
        b = A @ np.ones(A.shape[0])
        q = op.quantize_input(b)
        assert np.any(q != b)
        assert np.any(q < b * 2.0 ** -32)  # catastrophic wrap somewhere

    def test_global_anchor_mode(self):
        A = laplacian_2d(6)
        op = FeinbergOperator(A, block_b=None)
        assert np.all(op._per_elem_anchor == op.anchor)

    def test_fc_is_fp64(self, rng):
        A = wathen(5, 5, seed=4)
        x = rng.standard_normal(A.shape[0])
        assert np.array_equal(FeinbergFcOperator(A).matvec(x), A @ x)


class TestTruncated:
    def test_full_width_exact(self, rng):
        A = laplacian_2d(6)
        x = rng.standard_normal(A.shape[0])
        op = TruncatedOperator(A, exp_bits=11, frac_bits=52)
        assert np.array_equal(op.matvec(x), A @ x)

    def test_fraction_truncation_applied_to_matrix(self):
        A = sp.csr_matrix(np.array([[1.0 + 2.0 ** -30]]))
        op = TruncatedOperator(A, exp_bits=11, frac_bits=20)
        assert op.A[0, 0] == 1.0

    def test_vector_truncation_toggle(self, rng):
        A = laplacian_2d(5)
        x = rng.standard_normal(A.shape[0]) * 1e-20
        with_vec = TruncatedOperator(A, 6, 52, truncate_vector=True)
        without = TruncatedOperator(A, 6, 52, truncate_vector=False)
        assert not np.array_equal(with_vec.matvec(x), without.matvec(x))


class TestNoisy:
    def test_zero_sigma_equals_refloat(self, rng):
        A = wathen(5, 5, seed=5)
        spec = ReFloatSpec(b=5)
        x = rng.standard_normal(A.shape[0])
        clean = ReFloatOperator(A, spec).matvec(x)
        noisy = NoisyReFloatOperator(A, spec, sigma=0.0).matvec(x)
        assert np.array_equal(clean, noisy)

    def test_fresh_noise_each_apply(self, rng):
        A = wathen(5, 5, seed=6)
        op = NoisyReFloatOperator(A, ReFloatSpec(b=5), sigma=0.05, seed=1)
        x = rng.standard_normal(A.shape[0])
        assert not np.array_equal(op.matvec(x), op.matvec(x))

    def test_frozen_noise_is_deterministic(self, rng):
        A = wathen(5, 5, seed=6)
        op = NoisyReFloatOperator(A, ReFloatSpec(b=5), sigma=0.05, seed=1,
                                  fresh_per_apply=False)
        x = rng.standard_normal(A.shape[0])
        assert np.array_equal(op.matvec(x), op.matvec(x))

    def test_noise_magnitude_scales_with_sigma(self, rng):
        A = wathen(5, 5, seed=7)
        x = rng.standard_normal(A.shape[0])
        base = ReFloatOperator(A, ReFloatSpec(b=5)).matvec(x)
        errs = []
        for sigma in (0.01, 0.1):
            op = NoisyReFloatOperator(A, ReFloatSpec(b=5), sigma=sigma, seed=2)
            errs.append(np.linalg.norm(op.matvec(x) - base))
        assert errs[1] > 3 * errs[0]

    def test_sigma_validated(self):
        with pytest.raises(ValueError):
            NoisyReFloatOperator(laplacian_2d(4), ReFloatSpec(b=4), sigma=1.5)


class TestWrappers:
    def test_counting(self, rng):
        A = laplacian_2d(4)
        op = CountingOperator(A)
        x = rng.standard_normal(A.shape[0])
        op.matvec(x), op.matvec(x)
        assert op.count == 2
        op.reset()
        assert op.count == 0

    def test_tracing(self, rng):
        A = laplacian_2d(4)
        op = TracingOperator(A)
        x = rng.standard_normal(A.shape[0])
        y = op.matvec(x)
        assert op.input_norms == [pytest.approx(np.linalg.norm(x))]
        assert op.output_norms == [pytest.approx(np.linalg.norm(y))]
