"""Integration tests pinning the paper's headline claims (test scale).

Each test corresponds to a sentence in the paper; together they are the
"does the reproduction reproduce" gate.
"""

import numpy as np
import pytest

from repro.formats import DEFAULT_SPEC, ReFloatSpec
from repro.hardware import (
    FEINBERG_CYCLES,
    MappingPlan,
    cycles_for_spec,
)
from repro.operators import (
    ExactOperator,
    FeinbergOperator,
    NoisyReFloatOperator,
    ReFloatOperator,
    TruncatedOperator,
)
from repro.solvers import ConvergenceCriterion, bicgstab, cg
from repro.sparse.gallery.suite import PAPER_SUITE, build_matrix, suite_ids

CRIT = ConvergenceCriterion(tol=1e-8, max_iterations=5000)


def _system(sid):
    A = build_matrix(sid, "test")
    return A, A @ np.ones(A.shape[0])


class TestHeadlineClaims:
    def test_refloat_converges_on_all_12_both_solvers(self):
        """Abstract: 'GPU and ReFloat converge on all matrices'."""
        for sid in suite_ids():
            A, b = _system(sid)
            spec = ReFloatSpec(b=7, e=3, f=3, ev=3,
                               fv=PAPER_SUITE[sid].fv_override or 8)
            for solver in (cg, bicgstab):
                res = solver(ReFloatOperator(A, spec), b, criterion=CRIT)
                assert res.converged, (sid, solver.__name__)

    def test_feinberg_nc_on_exactly_the_paper_set(self):
        """Fig. 8: '[32] does not converge on 6 out of 12 matrices' —
        353, 354, 2261, 355, 2259, 845 (+ the mass matrix 845)."""
        for sid in suite_ids():
            A, b = _system(sid)
            res = cg(FeinbergOperator(A), b, criterion=CRIT)
            assert res.converged == PAPER_SUITE[sid].feinberg_converges, sid

    def test_refloat_iteration_overhead_is_modest(self):
        """Table VI: refloat adds a bounded number of iterations (CG)."""
        for sid in suite_ids():
            A, b = _system(sid)
            spec = ReFloatSpec(b=7, e=3, f=3, ev=3,
                               fv=PAPER_SUITE[sid].fv_override or 8)
            dbl = cg(ExactOperator(A), b, criterion=CRIT)
            rf = cg(ReFloatOperator(A, spec), b, criterion=CRIT)
            assert rf.iterations <= 2 * dbl.iterations + 40, sid

    def test_gridgena_one_iteration_in_double_and_refloat(self):
        """Table VI row 1311: #ite = 1 on every platform."""
        A, b = _system(1311)
        assert cg(ExactOperator(A), b, criterion=CRIT).iterations == 1
        assert cg(ReFloatOperator(A, DEFAULT_SPEC), b, criterion=CRIT).iterations == 1
        assert bicgstab(ReFloatOperator(A, DEFAULT_SPEC), b, criterion=CRIT).iterations == 1

    def test_refloat_cheaper_than_feinberg_per_block(self):
        """Sec. VI-B: 28 vs 233 cycles, 48 vs 472 crossbars per engine."""
        assert cycles_for_spec(DEFAULT_SPEC) == 28
        assert FEINBERG_CYCLES == 233
        ratio_engines = (MappingPlan.for_refloat(10 ** 6, DEFAULT_SPEC).engines_available
                         / MappingPlan.for_feinberg(10 ** 6).engines_available)
        assert ratio_engines == pytest.approx(21845 / 2221, rel=1e-3)

    def test_exponent_truncation_cliff(self):
        """Table I: naive exponent truncation below 7-8 bits kills crystm03."""
        A, b = _system(355)
        ok = cg(TruncatedOperator(A, exp_bits=9, frac_bits=52), b, criterion=CRIT)
        bad = cg(TruncatedOperator(A, exp_bits=6, frac_bits=52), b, criterion=CRIT)
        assert ok.converged
        assert not bad.converged

    def test_fraction_truncation_graceful_then_cliff(self):
        """Table I: fraction bits degrade gracefully, then NC."""
        A, b = _system(355)
        base = cg(ExactOperator(A), b, criterion=CRIT).iterations
        mid = cg(TruncatedOperator(A, 11, 26), b, criterion=CRIT)
        assert mid.converged and mid.iterations <= base * 2 + 20

    def test_noise_robustness(self):
        """Fig. 10: converges through 10% RTN noise with bounded slowdown."""
        A, b = _system(355)
        clean = cg(ReFloatOperator(A, DEFAULT_SPEC), b, criterion=CRIT)
        noisy = cg(NoisyReFloatOperator(A, DEFAULT_SPEC, sigma=0.10, seed=9),
                   b, criterion=CRIT)
        assert noisy.converged
        assert noisy.iterations < 6 * clean.iterations + 50

    def test_memory_ratio_below_a_third(self):
        """Table VIII: refloat stores the matrix in < ~1/3 of double."""
        from repro.analysis import memory_overhead

        for sid in suite_ids():
            A = build_matrix(sid, "test")
            ratio = memory_overhead(A, ReFloatSpec(b=7, e=3, f=3))["ratio"]
            assert ratio < 0.45, sid

    def test_quantized_solution_solves_original_system(self):
        """End to end: the refloat solution is a genuine solution of Ax=b
        (to the tolerance the quantised operator can certify)."""
        A, b = _system(2261)
        op = ReFloatOperator(A, DEFAULT_SPEC)
        res = cg(op, b, criterion=CRIT)
        # One recomputed apply of the final solution is floored by the vector
        # DAC grid (~2^-15 of each segment max), far below any useful level...
        plat_rel = np.linalg.norm(b - op.A @ op.quantize_input(res.x)) \
            / np.linalg.norm(b)
        assert plat_rel < 1e-4
        # ...and the exact-system residual floors at the f=3 matrix
        # quantisation level (~2^-4 relative), far below 1.
        true_rel = np.linalg.norm(b - A @ res.x) / np.linalg.norm(b)
        assert true_rel < 0.15
