"""Smoke + semantics tests of the experiment runners (test scale)."""

import math

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.common import (
    default_spec_for,
    geometric_mean,
    run_matrix,
    run_suite,
)
from repro.experiments.reporting import format_number, format_table


class TestReporting:
    def test_format_number(self):
        assert format_number(None) == "-"
        assert format_number("NC") == "NC"
        assert format_number(42) == "42"
        assert format_number(float("nan")) == "NC"
        assert format_number(1.23456789) == "1.235"
        assert format_number(1.5e-9) == "1.50e-09"

    def test_format_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(set(len(line) for line in lines[1:])) == 1  # aligned


class TestCommon:
    def test_default_spec_overrides(self):
        assert default_spec_for(1288).fv == 16
        assert default_spec_for(353).fv == 8

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert math.isnan(geometric_mean([]))
        assert geometric_mean([2.0, float("inf"), float("nan")]) == 2.0

    def test_run_matrix_platforms_and_times(self):
        run = run_matrix(1311, "cg", scale="test")
        assert set(run.results) == {"gpu", "feinberg", "feinberg_fc", "refloat"}
        assert run.results["gpu"].converged
        assert run.times_s["gpu"] > 0
        assert run.speedup("refloat") > 0

    def test_nc_platform_has_nan_speedup(self):
        run = run_matrix(353, "cg", scale="test")  # Feinberg NC on crystm01
        assert not run.results["feinberg"].converged
        assert math.isnan(run.speedup("feinberg"))

    def test_run_suite_cached(self):
        a = run_suite("cg", "test")
        b = run_suite("cg", "test")
        assert a is b

    def test_unknown_solver(self):
        with pytest.raises(KeyError):
            run_matrix(353, "sor", scale="test")


class TestRunners:
    def test_registry_complete(self):
        assert set(EXPERIMENTS) == {"table1", "fig3", "table5", "fig8", "fig9",
                                    "table6", "table7", "fig10", "table8"}

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table9")

    def test_fig3_shapes(self):
        data = run_experiment("fig3", scale="test", print_output=False)
        assert len(data["d"]) == 12
        assert all(d["locality_bits"] <= 4 for d in data["d"])
        # Eq. 2/3 monotonicity along the sweeps.
        cyc = {(d["ev"], d["eM"]): d["cycles"] for d in data["a"]}
        assert cyc[(0, 0)] < cyc[(10, 10)]

    def test_table7_matches_paper_config(self):
        data = run_experiment("table7", print_output=False)
        assert data[353] == {"name": "crystm01", "e": 3, "f": 3, "ev": 3,
                             "fv": 8, "note": ""}
        assert data[1848]["fv"] == 16

    def test_table8_ratios(self):
        data = run_experiment("table8", scale="test", print_output=False)
        for sid, d in data.items():
            assert 0.1 < d["ratio"] < 0.6

    def test_table5_without_condition(self):
        data = run_experiment("table5", scale="test", print_output=False)
        # run() computes kappa by default; collect via with_condition=False path:
        from repro.experiments.table5 import collect

        light = collect(scale="test", with_condition=False)
        assert "kappa" not in light[353]
        assert light[353]["rows"] == data[353]["rows"]

    def test_fig8_gmn_and_nc_set(self):
        data = run_experiment("fig8", scale="test", print_output=False)
        cg = data["cg"]
        nc_ids = {row[0] for row in cg["rows"] if row[2] != row[2]}  # NaN
        assert nc_ids == {353, 354, 355, 2261, 2259, 845}
        assert cg["gmn"]["refloat"] > cg["gmn"]["feinberg_fc"]

    def test_table6_refloat_close_to_double(self):
        data = run_experiment("table6", scale="test", print_output=False)
        for sid, d in data.items():
            assert d["cg_refloat"] is not None  # refloat always converges
            assert d["cg_refloat"] <= 4 * max(d["cg_double"], 1) + 30

    def test_fig9_traces_have_series(self):
        data = run_experiment("fig9", scale="test", print_output=False)
        entry = data["cg"][1311]
        assert entry["series"]["gpu"]["r"][0] > 0
        assert entry["series"]["refloat"]["converged"]

    def test_fig10_noise_monotone_iterations(self):
        from repro.experiments import fig10

        data = fig10.run(scale="test", print_output=False, max_iterations=5000)
        assert all(d["converged"] for d in data[:3])  # small sigma converges
        its = [d["iterations"] for d in data if d["converged"]]
        assert its[0] <= its[-1] * 1.5 + 10  # low noise not much worse

    def test_table1_shape(self):
        from repro.experiments import table1

        data = table1.run(scale="test", print_output=False,
                          max_iterations=4000)
        frac_iters = [d["iterations"] for d in data["frac"]]
        assert frac_iters[0] is not None  # full precision converges
        exp_rows = {d["exp"]: d["iterations"] for d in data["exp"]}
        assert exp_rows[11] is not None and exp_rows[6] is None  # 6-bit NC
