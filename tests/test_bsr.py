"""BSRBlocks: round-trips, refactor pinning, and layout validation.

The contiguous BSR layout is the single block representation — every test
here pins it against the representation it replaced:

* CSR -> BSR -> CSR round-trips bit-identically over the nasty shapes
  (ragged edges, empty matrix, single occupied block, the non-canonical
  suite matrices 2257/2259 at the paper's b=7);
* the tensor-derived exponent statistics and ``quantize`` match the old
  ``reduceat``-over-block-grouped-data formulas bit for bit (including the
  subnormal/EXP_ZERO corner);
* ``from_bsr`` lazily re-derives the legacy grouping arrays identically;
* the ``from_arrays`` order-validation bugfix rejects tampered
  non-permutation arrays with named errors.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import ieee
from repro.formats.refloat import ReFloatSpec, quantize_values
from repro.sparse import BlockedMatrix, BSRBlocks
from repro.sparse.gallery import build_matrix, laplacian_2d


def random_float_array(rng, n, exp_range=(-20, 20), include_zero=False):
    """Random finite doubles with a controlled exponent spread."""
    vals = rng.standard_normal(n) * np.exp2(rng.uniform(*exp_range, n))
    if include_zero and n > 2:
        vals[rng.integers(0, n, max(1, n // 10))] = 0.0
    return vals


def _random_sparse(rng, n_rows, n_cols, density):
    nnz = max(1, int(n_rows * n_cols * density))
    rows = rng.integers(0, n_rows, nnz)
    cols = rng.integers(0, n_cols, nnz)
    vals = random_float_array(rng, nnz)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))


def _cases():
    rng = np.random.default_rng(20240807)
    yield "ragged-square", BlockedMatrix(_random_sparse(rng, 29, 29, 0.1), b=2)
    yield "ragged-rect", BlockedMatrix(_random_sparse(rng, 24, 17, 0.15), b=3)
    yield "laplacian", BlockedMatrix(laplacian_2d(7), b=3)
    yield "empty", BlockedMatrix(sp.csr_matrix((16, 16)), b=2)
    single = sp.csr_matrix((np.array([1.5, -2.25, 3.0]),
                            (np.array([9, 10, 11]), np.array([8, 9, 10]))),
                           shape=(32, 32))
    yield "single-block", BlockedMatrix(single, b=3)
    sub = _random_sparse(rng, 40, 40, 0.1)
    sub.data[::3] = np.ldexp(sub.data[::3], -1070)   # subnormal values
    sub.eliminate_zeros()
    yield "subnormal", BlockedMatrix(sub, b=2)
    yield "suite-2257", BlockedMatrix(build_matrix(2257, "test"), b=7)
    yield "suite-2259", BlockedMatrix(build_matrix(2259, "test"), b=7)


CASES = dict(_cases())


@pytest.fixture(params=sorted(CASES), scope="module")
def bm(request):
    return CASES[request.param]


# ----------------------------------------------------------------------
# Legacy reduceat-based references (the pre-BSR formulas, verbatim).


def _ref_cover_bases(bm, e):
    exps = ieee.decompose(bm.A.data)[1]
    mx = np.maximum.reduceat(exps[bm.order], bm.group_starts).astype(np.int64)
    hi = (1 << (e - 1)) - 1 if e > 0 else 0
    return (mx - hi).astype(np.int32)


def _ref_block_eb(bm):
    exps = ieee.decompose(bm.A.data)[1]
    sums = np.add.reduceat(exps[bm.order].astype(np.float64),
                           bm.group_starts)
    return np.floor(sums / bm.block_nnz + 0.5).astype(np.int32)


def _ref_exponent_range(bm):
    exps = ieee.decompose(bm.A.data)[1]
    grouped = exps[bm.order]
    mx = np.maximum.reduceat(grouped, bm.group_starts).astype(np.int64)
    mn = np.minimum.reduceat(grouped, bm.group_starts).astype(np.int64)
    return (mx - mn).astype(np.int32)


def _ref_per_nnz_eb(bm, e, policy):
    bases = (_ref_block_eb(bm) if policy == "mean"
             else _ref_cover_bases(bm, e))
    per = np.empty(bm.nnz, dtype=np.int32)
    per[bm.order] = np.repeat(bases, bm.block_nnz)
    return per


# ----------------------------------------------------------------------


class TestRoundTrip:
    def test_csr_bsr_csr_bit_identical(self, bm):
        back = bm.bsr.to_csr()
        np.testing.assert_array_equal(back.data, bm.A.data)
        np.testing.assert_array_equal(back.indices, bm.A.indices)
        np.testing.assert_array_equal(back.indptr, bm.A.indptr)
        assert back.shape == bm.A.shape

    def test_csr_data_gather_bit_identical(self, bm):
        np.testing.assert_array_equal(bm.bsr.csr_data(), bm.A.data)

    def test_scatter_values_rebuilds_tensor(self, bm):
        np.testing.assert_array_equal(bm.bsr.scatter_values(bm.A.data),
                                      bm.bsr.data)

    def test_tensor_accounts_every_nonzero(self, bm):
        bsr = bm.bsr
        assert bsr.data.shape == (bm.n_blocks, bm.block_size, bm.block_size)
        assert int(np.count_nonzero(bsr.data)) <= bm.nnz
        assert int(bsr.block_nnz.sum()) == bm.nnz
        np.testing.assert_array_equal(bsr.block_nnz, bm.block_nnz)

    def test_block_addressing_matches_block_keys(self, bm):
        bsr = bm.bsr
        nbc = bm.block_grid[1]
        keys = bsr.block_rows * nbc + bsr.indices.astype(np.int64)
        np.testing.assert_array_equal(keys, bm.block_keys)


class TestRefactorPinning:
    def test_cover_bases_match_reduceat(self, bm):
        for e in (0, 3, 5):
            np.testing.assert_array_equal(bm.exponent_bases(e, "cover"),
                                          _ref_cover_bases(bm, e))

    def test_block_eb_matches_reduceat(self, bm):
        np.testing.assert_array_equal(bm.block_eb, _ref_block_eb(bm))

    def test_exponent_range_matches_reduceat(self, bm):
        np.testing.assert_array_equal(bm.block_exponent_range,
                                      _ref_exponent_range(bm))

    def test_per_nnz_eb_matches_double_permutation(self, bm):
        for policy in ("cover", "mean"):
            np.testing.assert_array_equal(bm.per_nnz_eb(3, policy),
                                          _ref_per_nnz_eb(bm, 3, policy))

    def test_quantize_bit_identical_to_reference(self, bm):
        spec = ReFloatSpec(b=bm.b, e=3, f=3, ev=3, fv=8)
        Q = bm.quantize(spec)
        qdata, _ = quantize_values(bm.A.data, spec.e, spec.f,
                                   eb=_ref_per_nnz_eb(bm, spec.e,
                                                      spec.eb_policy),
                                   rounding=spec.rounding,
                                   underflow=spec.underflow)
        np.testing.assert_array_equal(Q.data, qdata)
        np.testing.assert_array_equal(Q.indices, bm.A.indices)
        np.testing.assert_array_equal(Q.indptr, bm.A.indptr)

    def test_dense_block_matches_scipy_slice(self, bm):
        size = bm.block_size
        bi_all, bj_all = bm.block_coords()
        probe = list(zip(bi_all[:8], bj_all[:8]))
        # Also probe an unoccupied block when the grid has room.
        occupied = set(zip(bi_all.tolist(), bj_all.tolist()))
        for bi in range(bm.block_grid[0]):
            for bj in range(bm.block_grid[1]):
                if (bi, bj) not in occupied:
                    probe.append((bi, bj))
                    break
            else:
                continue
            break
        for bi, bj in probe:
            ref = np.zeros((size, size))
            chunk = bm.A[bi * size:(bi + 1) * size,
                         bj * size:(bj + 1) * size].toarray()
            ref[:chunk.shape[0], :chunk.shape[1]] = chunk
            np.testing.assert_array_equal(bm.dense_block(int(bi), int(bj)),
                                          ref)

    def test_dense_block_bounds(self, bm):
        with pytest.raises(IndexError, match="outside grid"):
            bm.dense_block(bm.block_grid[0], 0)


class TestFromBsr:
    def test_grouping_arrays_rederive_identically(self, bm):
        back = BlockedMatrix.from_bsr(bm.A, bm.bsr)
        np.testing.assert_array_equal(back.order, bm.order)
        np.testing.assert_array_equal(back.group_starts, bm.group_starts)
        np.testing.assert_array_equal(back.block_keys, bm.block_keys)
        np.testing.assert_array_equal(back.block_nnz, bm.block_nnz)
        np.testing.assert_array_equal(back._nnz_key, bm._nnz_key)
        assert back.b == bm.b and back.block_grid == bm.block_grid

    def test_statistics_identical_through_from_bsr(self, bm):
        back = BlockedMatrix.from_bsr(bm.A, bm.bsr)
        np.testing.assert_array_equal(back.block_eb, bm.block_eb)
        np.testing.assert_array_equal(back.exponent_bases(3, "cover"),
                                      bm.exponent_bases(3, "cover"))
        spec = ReFloatSpec(b=bm.b, e=3, f=3, ev=3, fv=8)
        np.testing.assert_array_equal(back.quantize(spec).data,
                                      bm.quantize(spec).data)

    def test_shape_and_nnz_mismatch_rejected(self, bm):
        if bm.nnz == 0:
            pytest.skip("needs nonzeros")
        wrong = sp.csr_matrix((bm.shape[0] + bm.block_size, bm.shape[1]))
        with pytest.raises(ValueError, match="shape"):
            BlockedMatrix.from_bsr(wrong, bm.bsr)
        truncated = bm.A[:, :].copy()
        truncated.data[0] = 0.0
        truncated.eliminate_zeros()
        with pytest.raises(ValueError, match="nonzeros"):
            BlockedMatrix.from_bsr(truncated, bm.bsr)


class TestLayoutValidation:
    def test_structural_checks(self):
        bm = CASES["laplacian"]
        bsr = bm.bsr
        args = dict(b=bsr.b, shape=bsr.shape, data=bsr.data,
                    indptr=bsr.indptr, indices=bsr.indices,
                    scatter=bsr.scatter)
        BSRBlocks(**args)  # the genuine layout validates
        with pytest.raises(ValueError, match="data must be"):
            BSRBlocks(**{**args, "data": bsr.data[:, :1, :]})
        with pytest.raises(ValueError, match="1-D integer"):
            BSRBlocks(**{**args,
                         "scatter": bsr.scatter.astype(np.float64)})
        with pytest.raises(ValueError, match="indptr must have"):
            BSRBlocks(**{**args, "indptr": bsr.indptr[:-1]})
        bad_ptr = bsr.indptr.copy()
        bad_ptr[-1] += 1
        with pytest.raises(ValueError, match="indptr must run"):
            BSRBlocks(**{**args, "indptr": bad_ptr})
        with pytest.raises(ValueError, match="block columns must lie"):
            BSRBlocks(**{**args, "indices": bsr.indices + bsr.block_grid[1]})
        with pytest.raises(ValueError, match="strictly ascending"):
            BSRBlocks(**{**args, "indices": bsr.indices[::-1].copy()})
        with pytest.raises(ValueError, match="scatter indices must lie"):
            BSRBlocks(**{**args,
                         "scatter": bsr.scatter + bsr.data.size})

    def test_scatter_injectivity_check(self):
        bm = CASES["laplacian"]
        bsr = bm.bsr
        bsr.check_scatter_unique()   # genuine layout passes
        dup = bsr.scatter.copy()
        dup[1] = dup[0]
        tampered = BSRBlocks(bsr.b, bsr.shape, bsr.data, bsr.indptr,
                             bsr.indices, dup)
        with pytest.raises(ValueError, match="same cell"):
            tampered.check_scatter_unique()


class TestFromArraysValidation:
    """The ISSUE 8 bugfix: a tampered ``order`` must not silently misindex."""

    def _arrays(self):
        bm = CASES["laplacian"]
        return bm, bm.to_arrays()

    def test_accepts_genuine_arrays(self):
        bm, arrays = self._arrays()
        back = BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)
        np.testing.assert_array_equal(back.block_eb, bm.block_eb)

    def test_rejects_float_order(self):
        bm, arrays = self._arrays()
        arrays["order"] = arrays["order"].astype(np.float64)
        with pytest.raises(ValueError, match="order must be an integer"):
            BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)

    def test_rejects_out_of_bounds_order(self):
        bm, arrays = self._arrays()
        bad = arrays["order"].copy()
        bad[3] = bm.nnz + 5
        arrays["order"] = bad
        with pytest.raises(ValueError, match="order entries must lie"):
            BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)
        bad[3] = -1
        with pytest.raises(ValueError, match="order entries must lie"):
            BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)

    def test_rejects_duplicate_order_under_store_verify(self, monkeypatch):
        bm, arrays = self._arrays()
        bad = arrays["order"].copy()
        bad[1] = bad[0]              # in-bounds, right dtype — but not a
        arrays["order"] = bad        # permutation
        monkeypatch.setenv("REPRO_ASSET_STORE_VERIFY", "1")
        with pytest.raises(ValueError, match="not a permutation"):
            BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)
        # With deep verification off the cheap checks still pass it through
        # (the store pairs this with checksums, which catch the tampering).
        monkeypatch.setenv("REPRO_ASSET_STORE_VERIFY", "0")
        BlockedMatrix.from_arrays(bm.A, bm.b, **arrays)
