"""The dependency-aware task graph and the graph-driven run engine.

Covers the graph/scheduler primitives (topological dispatch order, named
cycle errors, dependent-skip on failure), the engine integration (suite
and sweep results pinned bit-identical to direct ``run_matrix`` solves on
every executor), the no-phase-barrier property (a variant solve dispatches
while a baseline is still running), and the ``"asset"``/``"dependency"``
failure phases that replaced the silently-dropped pre-warm futures.
"""

import threading

import numpy as np
import pytest

from repro.api import faults
from repro.api.faults import RunFailure
from repro.api.graph import (
    AssetNode,
    BaselineNode,
    GraphCycleError,
    GraphScheduler,
    SolveNode,
    TaskGraph,
    compile_solve_graph,
)
from repro.api.registry import Registry, resolve_platforms
from repro.api.specs import RunRequest
from repro.api.sweep import SweepSpec
from repro.experiments import common, store
from repro.experiments.common import (
    ExecutionStats,
    clear_run_caches,
    run_matrix,
    run_suite,
    run_sweep,
)

#: Suite matrices that solve in well under 0.1s at test scale.
FAST_SIDS = (1313, 1288, 2257)


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


def _request(sid, platforms=("gpu",), solver="cg", scale="test"):
    return RunRequest(sid=sid, solver=solver, scale=scale,
                      platforms=tuple(platforms))


# ----------------------------------------------------------------------
# TaskGraph primitives


class TestTaskGraph:
    def test_add_and_introspect(self):
        g = TaskGraph()
        g.add("a")
        g.add("b", payload=42)
        g.depend("b", "a")
        assert "a" in g and "b" in g and "c" not in g
        assert len(g) == 2 and g.n_edges == 1
        assert g.keys() == ("a", "b")
        assert g.payload("b") == 42
        assert g.dependencies("b") == ("a",)
        assert g.dependents("a") == ("b",)

    def test_duplicate_node_rejected(self):
        g = TaskGraph()
        g.add("a")
        with pytest.raises(ValueError, match="already has a node 'a'"):
            g.add("a")

    def test_unknown_keys_rejected(self):
        g = TaskGraph()
        g.add("a")
        with pytest.raises(KeyError, match="no node 'b'"):
            g.depend("a", "b")
        with pytest.raises(KeyError, match="no node 'b'"):
            g.payload("b")

    def test_self_dependency_is_a_named_cycle(self):
        g = TaskGraph()
        g.add("a")
        with pytest.raises(GraphCycleError, match="cannot depend on itself"):
            g.depend("a", "a")

    def test_duplicate_edge_is_idempotent(self):
        g = TaskGraph()
        g.add("a")
        g.add("b")
        g.depend("b", "a")
        g.depend("b", "a")
        assert g.n_edges == 1

    def test_topological_order_dependencies_first(self):
        g = TaskGraph()
        for key in ("c", "a", "b"):
            g.add(key)
        g.depend("c", "b")
        g.depend("b", "a")
        assert g.topological_order() == ("a", "b", "c")

    def test_topological_order_breaks_ties_by_insertion(self):
        g = TaskGraph()
        for key in ("x", "p", "y", "q"):
            g.add(key)
        g.depend("p", "x")
        g.depend("q", "y")
        # Of the simultaneously-ready nodes, earliest-added first.
        assert g.topological_order() == ("x", "p", "y", "q")

    def test_cycle_detection_names_members(self):
        g = TaskGraph()
        for key in ("a", "b", "c"):
            g.add(key)
        g.depend("a", "b")
        g.depend("b", "a")
        with pytest.raises(GraphCycleError, match="cycle") as err:
            g.topological_order()
        assert set(err.value.members) == {"a", "b"}
        assert isinstance(err.value, ValueError)  # historical contract


class TestResolvePlatformsOnGraph:
    def test_builtin_order_unchanged(self):
        # The graph construction must keep the historical closure order:
        # dependencies first, then the requested names in the order given.
        assert resolve_platforms(
            ("gpu", "feinberg_fc", "feinberg", "refloat")) == (
            "gpu", "feinberg_fc", "feinberg", "refloat")
        assert resolve_platforms(("feinberg_fc",)) == ("gpu", "feinberg_fc")
        assert resolve_platforms(("refloat", "feinberg_fc")) == (
            "refloat", "gpu", "feinberg_fc")

    def test_dependency_cycle_raises_named_graph_error(self):
        from repro.api.registry import PlatformSpec

        reg = Registry("platform")
        reg.register(PlatformSpec(name="one", operator=None,
                                  timing=lambda ctx, it: 0.0,
                                  results_from="two"))
        reg.register(PlatformSpec(name="two", operator=None,
                                  timing=lambda ctx, it: 0.0,
                                  results_from="one"))
        with pytest.raises(GraphCycleError, match="cycle through"):
            resolve_platforms(("one",), registry=reg)
        with pytest.raises(ValueError, match="cycle"):  # old match spelling
            resolve_platforms(("two",), registry=reg)


# ----------------------------------------------------------------------
# GraphScheduler


class TestGraphScheduler:
    def _diamond(self):
        #   a -> b -> d ;  a -> c -> d
        g = TaskGraph()
        for key in ("a", "b", "c", "d"):
            g.add(key)
        g.depend("b", "a")
        g.depend("c", "a")
        g.depend("d", "b")
        g.depend("d", "c")
        return g

    def test_dispatch_follows_dependencies(self):
        sched = GraphScheduler(self._diamond())
        order = []
        while not sched.is_finished:
            key = sched.pop_ready()
            sched.start(key)
            order.append(key)
            sched.complete(key)
        assert order == ["a", "b", "c", "d"]

    def test_complete_reports_newly_ready(self):
        sched = GraphScheduler(self._diamond())
        assert sched.pop_ready() == "a"
        sched.start("a")
        assert sched.complete("a") == ("b", "c")
        sched.start(sched.pop_ready())
        assert sched.complete("b") == ()  # d still waits on c
        sched.start(sched.pop_ready())
        assert sched.complete("c") == ("d",)

    def test_fail_skips_dependents_transitively(self):
        sched = GraphScheduler(self._diamond())
        sched.start(sched.pop_ready())
        assert sched.fail("a") == ("b", "c", "d")
        assert sched.is_finished
        assert sched.n_skipped == 3
        assert sched.state("a") == "failed"
        assert sched.state("d") == "skipped"
        assert not sched.has_ready

    def test_fail_leaves_completed_dependents_alone(self):
        g = TaskGraph()
        g.add("a")
        g.add("b")
        g.add("c")
        g.depend("b", "a")
        g.depend("c", "a")
        sched = GraphScheduler(g)
        sched.start(sched.pop_ready())
        sched.complete("a")
        sched.start(sched.pop_ready())
        sched.complete("b")
        assert sched.fail("c") == ()  # nothing left to skip
        assert sched.state("b") == "done"

    def test_requeue_and_trace(self):
        g = TaskGraph()
        g.add("a")
        g.add("b")
        sched = GraphScheduler(g)
        key = sched.pop_ready()
        sched.start(key)
        sched.requeue(key)  # retry path: back of the queue
        assert sched.pop_ready() == "b"
        sched.start("b")
        sched.requeue("a", front=True)  # innocent-suspect path: front
        assert sched.pop_ready() == "a"
        sched.start("a")
        sched.complete("a")
        sched.complete("b")
        trace = sched.trace_dict()
        assert trace["a"]["dispatches"] == 2
        assert trace["a"]["first_dispatch"] <= trace["a"]["last_dispatch"]
        assert trace["a"]["state"] == "done"
        with pytest.raises(ValueError, match="finished"):
            sched.requeue("a")

    def test_cycle_rejected_at_construction(self):
        g = TaskGraph()
        g.add("a")
        g.add("b")
        g.depend("a", "b")
        g.depend("b", "a")
        with pytest.raises(GraphCycleError, match="cycle"):
            GraphScheduler(g)


# ----------------------------------------------------------------------
# Compiling request batches


class TestCompileSolveGraph:
    def test_typed_nodes_and_edges(self):
        base = _request(1313)
        variant = _request(1313, platforms=("noisy@seed=7,sigma=0.01",))
        g = compile_solve_graph([base, variant],
                                edges=[(variant.key(), base.key())],
                                assets=[(1313, "test")])
        assert len(g) == 3 and g.n_edges == 3
        # Asset nodes are inserted first so pre-warm dispatches ahead of
        # the solves racing it; the dependency side of a baseline edge
        # becomes a BaselineNode.
        kinds = [type(g.payload(key)) for key in g.keys()]
        assert kinds == [AssetNode, BaselineNode, SolveNode]
        assert g.topological_order()[0] == AssetNode.key_for(1313, "test")
        assert g.dependencies(variant.key()) == (
            AssetNode.key_for(1313, "test"), base.key())

    def test_duplicate_requests_collapse(self):
        req = _request(1313)
        g = compile_solve_graph([req, req])
        assert len(g) == 1 and g.n_edges == 0

    def test_self_baseline_needs_no_edge(self):
        req = _request(1313)
        g = compile_solve_graph([req], edges=[(req.key(), req.key())])
        assert len(g) == 1 and g.n_edges == 0


# ----------------------------------------------------------------------
# Engine integration: bit-identical fault-free results


class TestGraphEngineIdentical:
    def test_suite_serial_and_thread_match_run_matrix(self, fresh_caches):
        serial = run_suite("cg", "test", sids=FAST_SIDS, max_workers=1,
                           use_cache=False)
        threaded = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                             executor="thread", use_cache=False)
        for sid in FAST_SIDS:
            direct = run_matrix(sid, "cg", "test")
            for runs in (serial, threaded):
                assert runs[sid].to_dict() == direct.to_dict()
                assert runs[sid].times_s == direct.times_s
                for plat, res in direct.results.items():
                    np.testing.assert_array_equal(
                        runs[sid].results[plat].x, res.x)
        for runs in (serial, threaded):
            assert runs.stats.nodes == len(FAST_SIDS)
            assert runs.stats.edges == 0
            assert runs.stats.skipped == 0

    def test_sweep_matches_manual_graft(self, fresh_caches):
        token = "noisy@seed=7,sigma=0.01"
        spec = SweepSpec(family="noisy", grid={"sigma": (0.01,),
                                               "seed": (7,)},
                         sids=(1313, 1288), scale="test")
        serial = run_sweep(spec, use_cache=False, max_workers=1)
        threaded = run_sweep(spec, use_cache=False, max_workers=2,
                             executor="thread")
        assert serial.to_dict() == threaded.to_dict()
        # 2 baselines + 2 variant cells, one "needs baseline" edge each.
        assert serial.stats.nodes == 4 and serial.stats.edges == 2
        for sid in (1313, 1288):
            cell = serial.variant(token)[sid]
            base = run_matrix(sid, "cg", "test", platforms=("gpu",))
            var = run_matrix(sid, "cg", "test", platforms=(token,))
            # Baseline platforms graft ahead of the variant's own.
            assert list(cell.results) == ["gpu", token]
            assert cell.times_s["gpu"] == base.times_s["gpu"]
            assert cell.times_s[token] == var.times_s[token]
            np.testing.assert_array_equal(cell.results[token].x,
                                          var.results[token].x)
            np.testing.assert_array_equal(cell.results["gpu"].x,
                                          base.results["gpu"].x)

    def test_trace_covers_every_node(self, fresh_caches):
        runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                         executor="thread", use_cache=False)
        trace = runs.stats.trace
        assert len(trace) == len(FAST_SIDS)
        assert all(t["state"] == "done" and t["dispatches"] == 1
                   for t in trace.values())
        # The trace is observability-only: the serialised stats must stay
        # byte-identical across executors (the CI equivalence gate).
        assert "trace" not in runs.stats.to_dict()


# ----------------------------------------------------------------------
# No phase barrier: variants overlap still-running baselines


class TestNoPhaseBarrier:
    def test_variant_dispatches_before_last_baseline_completes(
            self, fresh_caches, monkeypatch):
        variant_started = threading.Event()
        baseline_released = threading.Event()
        events = []
        events_lock = threading.Lock()
        orig = common.run_request

        def choreographed(request, attempt=1):
            is_baseline = request.platforms == ("gpu",)
            with events_lock:
                events.append(("start", is_baseline, request.sid))
            if is_baseline and request.sid == 1288:
                # The last baseline parks until some variant has
                # dispatched.  Under a solve-all-baselines-first phase
                # barrier no variant could start, and this wait would
                # time out.
                assert variant_started.wait(30), (
                    "no variant dispatched while a baseline was still "
                    "running: the engine has a phase barrier")
                baseline_released.set()
            if not is_baseline:
                variant_started.set()
            return orig(request, attempt=attempt)

        monkeypatch.setattr(common, "run_request", choreographed)
        spec = SweepSpec(family="noisy", grid={"sigma": (0.01,),
                                               "seed": (7,)},
                         sids=(1313, 1288), scale="test")
        result = run_sweep(spec, use_cache=False, max_workers=2,
                           executor="thread")
        assert variant_started.is_set() and baseline_released.is_set()
        assert not result.failures
        assert sorted(result.variant(result.tokens[0])) == [1288, 1313]
        # The per-node timing trace shows the same overlap: at least one
        # variant solve dispatched before the last baseline finished.
        trace = result.stats.trace
        baseline_finish = max(t["finished"] for t in trace.values()
                              if t["kind"] == "baseline")
        variant_first = min(t["first_dispatch"] for t in trace.values()
                            if t["kind"] == "solve")
        assert variant_first < baseline_finish


# ----------------------------------------------------------------------
# Failure propagation: dependency skips and asset-phase failures


class TestDependencySkips:
    def test_failed_baseline_skips_its_variants(self, fresh_caches):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.01, 0.02),
                                               "seed": (7,)},
                         sids=(1313, 1288), scale="test")
        with faults.use_fault_plan(["fail@attempts=0,sid=1288"]):
            result = run_sweep(spec, use_cache=False, max_workers=1,
                               on_error="collect")
        phases = sorted(f.phase for f in result.failures)
        assert phases == ["dependency", "dependency", "solve"]
        solve = [f for f in result.failures if f.phase == "solve"][0]
        assert solve.sid == 1288 and solve.error_type == "InjectedFaultError"
        for dep in (f for f in result.failures if f.phase == "dependency"):
            assert dep.sid == 1288 and dep.attempts == 0
            assert solve.key in dep.message and "'solve'" in dep.message
        assert result.stats.skipped == 2
        # The healthy sid's cells are complete, the skipped sid absent.
        for token in result.tokens:
            assert sorted(result.variant(token)) == [1313]

    def test_raise_mode_propagates_the_root_failure(self, fresh_caches):
        spec = SweepSpec(family="noisy", grid={"sigma": (0.01,),
                                               "seed": (7,)},
                         sids=(1288,), scale="test")
        with faults.use_fault_plan(["fail@attempts=0,sid=1288"]):
            with pytest.raises(faults.InjectedFaultError):
                run_sweep(spec, use_cache=False, max_workers=1)

    def test_dependency_failure_phase_is_valid(self):
        record = RunFailure.from_dependency(
            key="victim", dependency_key="culprit",
            dependency_phase="pool", sid=1288, solver="cg")
        assert record.phase == "dependency" and record.attempts == 0
        assert "culprit" in record.message and "'pool'" in record.message
        data = record.to_dict()
        assert data["error_type"] == "DependencyFailed"

    def test_asset_node_failure_skips_dependent_solves(self, fresh_caches):
        # Hand-built graph: the solve depends on an asset node whose
        # build must fail (unknown sid), so the engine records an
        # "asset"-phase failure and a "dependency" skip — the fix for
        # pre-warm futures whose errors were silently dropped.
        req = _request(1313)
        graph = TaskGraph()
        graph.add_node(AssetNode(sid=999999, scale="test"))
        graph.add_node(SolveNode(req))
        graph.depend(req.key(), AssetNode.key_for(999999, "test"))
        stats = ExecutionStats(requests=1, nodes=2, edges=1)
        results, failures = common._execute_pooled(
            graph, 2, "thread", "collect", None, stats)
        assert results == {}
        assert [f.phase for f in failures] == ["asset", "dependency"]
        assert failures[0].sid == 999999 and failures[0].solver is None
        assert failures[0].error_type == "KeyError"
        assert failures[1].key == req.key() and failures[1].solver == "cg"
        assert stats.skipped == 1


# ----------------------------------------------------------------------
# Process executor: store pre-warm as first-class asset nodes


class TestProcessAssetNodes:
    def test_cold_store_prewarm_runs_as_asset_nodes(self, fresh_caches,
                                                    tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "store"))
        runs = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                         executor="process", use_cache=False)
        # One asset node per (sid, scale), one "needs store entry" edge
        # per solve.
        assert runs.stats.nodes == 2 * len(FAST_SIDS)
        assert runs.stats.edges == len(FAST_SIDS)
        assert not runs.failures
        kinds = [t["kind"] for t in runs.stats.trace.values()]
        assert kinds.count("asset") == len(FAST_SIDS)
        for sid in FAST_SIDS:
            assert store.has_entry(sid, "test")
        # Warm store: the next fan-out needs no asset nodes at all.
        clear_run_caches()
        warm = run_suite("cg", "test", sids=FAST_SIDS, max_workers=2,
                         executor="process", use_cache=False)
        assert warm.stats.nodes == len(FAST_SIDS)
        assert warm.stats.edges == 0
        # And the store-warmed process results match a storeless serial
        # solve bit-for-bit.
        clear_run_caches()
        monkeypatch.delenv("REPRO_ASSET_STORE")
        serial = run_suite("cg", "test", sids=FAST_SIDS, max_workers=1,
                           use_cache=False)
        for sid in FAST_SIDS:
            assert warm[sid].to_dict() == serial[sid].to_dict()
            assert warm[sid].times_s == serial[sid].times_s
