"""Bit-identity tests for the hot-path fast lanes.

Every optimised path in this PR keeps a slower reference implementation
around; these tests pin the equivalences:

* plan-backed :func:`quantize_vector` vs :func:`quantize_vector_reference`
  (specs with ``ev = 0``, empty segments, lengths not a multiple of ``2^b``,
  all-zero vectors, exact-grid configs);
* the batched :class:`CrossbarMVM` contraction vs the cycle-accurate
  ``record_trace`` loop;
* :class:`BlockedEngine` vs one :class:`ProcessingEngine` per occupied block;
* operators built from a prebuilt :class:`BlockedMatrix` vs from scratch;
* parallel :func:`run_suite` vs a serial :func:`run_matrix`.
"""

import threading

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import DEFAULT_SPEC, ReFloatSpec
from repro.formats import ieee
from repro.formats.refloat import (
    quantize_vector,
    quantize_vector_reference,
    vector_converter_plan,
    vector_segment_bases,
)
from repro.hardware import BlockedEngine, CrossbarMVM, ProcessingEngine
from repro.operators import FeinbergOperator, NoisyReFloatOperator, ReFloatOperator
from repro.sparse.blocked import BlockedMatrix

def random_float_array(rng, n, exp_range=(-20, 20), include_zero=False):
    """Random finite doubles with a controlled exponent spread."""
    vals = rng.standard_normal(n) * np.exp2(rng.uniform(*exp_range, n))
    if include_zero and n > 2:
        vals[rng.integers(0, n, max(1, n // 10))] = 0.0
    return vals


#: Edge-case specs named by the issue: ev = 0, tiny blocks, near-lossless
#: (exact-grid) vector configs, nearest rounding, mean policy.
EDGE_SPECS = [
    DEFAULT_SPEC,
    ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8),
    ReFloatSpec(b=3, e=0, f=2, ev=0, fv=4),
    ReFloatSpec(b=2, e=3, f=3, ev=11, fv=52),
    ReFloatSpec(b=4, e=2, f=5, ev=2, fv=6, rounding="nearest"),
    ReFloatSpec(b=5, e=3, f=3, ev=3, fv=8, eb_policy="mean"),
]


def _assert_same_conversion(x, spec):
    ref_xq, ref_ebv = quantize_vector_reference(x, spec)
    xq, ebv = quantize_vector(x, spec)
    np.testing.assert_array_equal(xq, ref_xq)
    np.testing.assert_array_equal(ebv, ref_ebv)
    assert ebv.dtype == ref_ebv.dtype
    if x.size:
        plan = vector_converter_plan(x.size, spec)
        pxq, pebv = plan.convert(x)
        np.testing.assert_array_equal(pxq, ref_xq)
        np.testing.assert_array_equal(pebv, ref_ebv)


class TestConverterPlan:
    @pytest.mark.parametrize("spec", EDGE_SPECS, ids=str)
    @pytest.mark.parametrize("shape", ["multiple", "ragged", "short", "one"])
    def test_bit_identical_random(self, rng, spec, shape):
        size = 1 << spec.b
        n = {"multiple": 3 * size, "ragged": 3 * size + size // 2 + 1,
             "short": max(1, size // 2), "one": 1}[shape]
        for trial in range(5):
            x = random_float_array(rng, n, exp_range=(-30, 30),
                                   include_zero=True)
            _assert_same_conversion(x, spec)

    @pytest.mark.parametrize("spec", EDGE_SPECS, ids=str)
    def test_empty_segment_and_all_zero(self, rng, spec):
        size = 1 << spec.b
        x = random_float_array(rng, 3 * size, include_zero=True)
        x[size:2 * size] = 0.0          # interior all-zero segment
        _assert_same_conversion(x, spec)
        x[:] = 0.0                       # fully zero vector
        _assert_same_conversion(x, spec)
        _assert_same_conversion(np.zeros(0), spec)

    def test_tiny_values_exact_grid_mix(self, rng):
        # Segments whose ulp grid falls below the binary64 normal range
        # (passthrough) mixed with ordinary segments.
        spec = ReFloatSpec(b=3, e=3, f=3, ev=11, fv=52)
        x = random_float_array(rng, 32, exp_range=(-600, -400))
        x[8:16] = random_float_array(rng, 8, exp_range=(-2, 2))
        _assert_same_conversion(x, spec)

    def test_subnormals_flush_like_reference(self, rng):
        x = random_float_array(rng, 16)
        x[3] = 5e-320                    # subnormal
        x[11] = -2e-310
        _assert_same_conversion(x, DEFAULT_SPEC)

    def test_nonfinite_raises(self):
        plan = vector_converter_plan(8, DEFAULT_SPEC)
        x = np.ones(8)
        x[5] = np.inf
        with pytest.raises(ValueError):
            plan.convert(x)
        x[5] = np.nan
        with pytest.raises(ValueError):
            plan.convert(x)

    def test_scratch_reuse_and_fresh_copies(self, rng):
        plan = vector_converter_plan(64, DEFAULT_SPEC)
        x1 = random_float_array(rng, 64)
        x2 = random_float_array(rng, 64)
        r1, _ = plan.convert(x1)
        kept = r1.copy()
        r2, _ = plan.convert(x2)
        assert r2 is r1                  # same scratch buffer...
        assert not np.array_equal(kept, r2)
        fresh, _ = plan.convert(x1, reuse=False)
        assert fresh is not r1           # ...unless a copy is requested
        np.testing.assert_array_equal(fresh, kept)

    def test_thread_safety_of_shared_plan(self, rng):
        plan = vector_converter_plan(256, DEFAULT_SPEC)
        xs = [random_float_array(rng, 256, include_zero=True)
              for _ in range(8)]
        refs = [quantize_vector_reference(x, DEFAULT_SPEC)[0] for x in xs]
        failures = []

        def worker(i):
            for _ in range(50):
                out, _ = plan.convert(xs[i])
                if not np.array_equal(out, refs[i]):
                    failures.append(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not failures

    def test_vectorised_segment_stats_path(self, rng, monkeypatch):
        """nseg above _PY_SEG_LIMIT switches to the NumPy stats pipeline."""
        from repro.formats.refloat import VectorConverterPlan

        monkeypatch.setattr(VectorConverterPlan, "_PY_SEG_LIMIT", 2)
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        for trial in range(3):
            x = random_float_array(rng, 85, include_zero=True)
            if trial == 1:
                x[8:16] = 0.0            # dead segment -> general path
            plan = VectorConverterPlan(85, spec)
            assert plan.nseg > plan._PY_SEG_LIMIT
            ref_xq, ref_ebv = quantize_vector_reference(x, spec)
            xq, ebv = plan.convert(x)
            np.testing.assert_array_equal(xq, ref_xq)
            np.testing.assert_array_equal(ebv, ref_ebv)
        x = random_float_array(rng, 85)
        x[3] = np.inf
        with pytest.raises(ValueError):
            VectorConverterPlan(85, spec).convert(x)

    @given(st.integers(0, 2 ** 31), st.integers(1, 70))
    @settings(max_examples=40, deadline=None)
    def test_bit_identical_hypothesis(self, seed, n):
        rng = np.random.default_rng(seed)
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        x = random_float_array(rng, n, exp_range=(-40, 40), include_zero=True)
        _assert_same_conversion(x, spec)

    def test_exponent_field_matches_decompose(self, rng):
        x = random_float_array(rng, 100, include_zero=True)
        x[7] = 4e-320                    # subnormal flushes in both
        field = ieee.exponent_field(x)
        _, exp, _ = ieee.decompose(x)
        zero = exp == ieee.EXP_ZERO
        np.testing.assert_array_equal(field == 0, zero)
        np.testing.assert_array_equal(
            field[~zero].astype(np.int64) - ieee.EXP_BIAS, exp[~zero])
        with pytest.raises(ValueError):
            ieee.exponent_field([1.0, np.inf])
        assert ieee.exponent_field([1.0, np.inf], validate=False)[1] == 0x7FF


class TestSegmentBasesReduceat:
    """vector_segment_bases now reduces contiguous segments with reduceat."""

    @pytest.mark.parametrize("policy", ["cover", "mean"])
    @pytest.mark.parametrize("n", [1, 5, 8, 24, 29])
    def test_matches_per_segment_loop(self, rng, policy, n):
        b, ev = 3, 3
        x = random_float_array(rng, n, exp_range=(-9, 9), include_zero=True)
        got = vector_segment_bases(x, b, ev=ev, eb_policy=policy)
        size = 1 << b
        expected = []
        for s in range(-(-n // size)):
            seg = x[s * size:(s + 1) * size]
            _, exp, _ = ieee.decompose(seg)
            exp = exp[exp != ieee.EXP_ZERO]
            if exp.size == 0:
                expected.append(0)
            elif policy == "cover":
                expected.append(int(exp.max()) - ((1 << (ev - 1)) - 1))
            else:
                expected.append(int(np.floor(exp.mean() + 0.5)))
        assert got.tolist() == expected

    def test_empty_vector(self):
        assert vector_segment_bases(np.zeros(0), 3, ev=3).size == 0


class TestCrossbarBatched:
    @given(st.integers(1, 12), st.integers(1, 12),
           st.integers(2, 8), st.integers(2, 8), st.integers(0, 2 ** 31))
    @settings(max_examples=60, deadline=None)
    def test_fast_path_matches_trace_loop(self, m, n, mb, vb, seed):
        rng = np.random.default_rng(seed)
        M = rng.integers(0, 1 << mb, (m, n)).astype(np.uint64)
        v = rng.integers(0, 1 << vb, m).astype(np.uint64)
        fast = CrossbarMVM(M, mb, vb).multiply(v)
        slow = CrossbarMVM(M, mb, vb, record_trace=True).multiply(v)
        np.testing.assert_array_equal(fast, slow)
        assert fast.dtype == np.int64

    def test_batch_matches_per_vector(self, rng):
        M = rng.integers(0, 1 << 5, (9, 7)).astype(np.uint64)
        eng = CrossbarMVM(M, 5, 6)
        V = rng.integers(0, 1 << 6, (4, 9)).astype(np.uint64)
        batched = eng.multiply_batch(V)
        for i in range(4):
            np.testing.assert_array_equal(batched[i], eng.multiply(V[i]))

    def test_batch_validates(self, rng):
        eng = CrossbarMVM(np.zeros((3, 3), dtype=np.uint64), 2, 2)
        with pytest.raises(ValueError):
            eng.multiply_batch(np.zeros((2, 4), dtype=np.uint64))
        traced = CrossbarMVM(np.zeros((3, 3), dtype=np.uint64), 2, 2,
                             record_trace=True)
        with pytest.raises(ValueError):
            traced.multiply_batch(np.zeros((2, 3), dtype=np.uint64))

    def test_record_trace_flip_off_still_multiplies(self, rng):
        # record_trace is a plain dataclass field; clearing it after
        # construction must lazily build the batched operands, not crash.
        M = rng.integers(0, 1 << 4, (5, 5)).astype(np.uint64)
        eng = CrossbarMVM(M, 4, 4, record_trace=True)
        v = rng.integers(0, 1 << 4, 5).astype(np.uint64)
        traced = eng.multiply(v)
        eng.record_trace = False
        np.testing.assert_array_equal(eng.multiply(v), traced)

    def test_wide_config_int64_fallback(self, rng):
        # width > 53 exercises the exact-int64 route.
        M = (rng.integers(0, 1 << 30, (4, 3)).astype(np.uint64) << np.uint64(2))
        eng = CrossbarMVM(M, 32, 20)
        assert eng._width > 53
        v = rng.integers(0, 1 << 20, 4).astype(np.uint64)
        slow = CrossbarMVM(M, 32, 20, record_trace=True).multiply(v)
        np.testing.assert_array_equal(eng.multiply(v), slow)


def _reference_blocked_mvm(blocked, spec, x):
    """One ProcessingEngine per occupied block, accumulated in block order."""
    size = blocked.block_size
    n_rows, n_cols = blocked.shape
    nseg_r = -(-n_rows // size)
    nseg_c = -(-n_cols // size)
    xpad = np.zeros(nseg_r * size)
    xpad[:n_rows] = x
    y = np.zeros(nseg_c * size)
    bi, bj = blocked.block_coords()
    for g in range(blocked.n_blocks):
        block = blocked.dense_block(int(bi[g]), int(bj[g]))
        engine = ProcessingEngine(block, spec)
        seg = engine.multiply(xpad[bi[g] * size:(bi[g] + 1) * size])
        y[bj[g] * size:(bj[g] + 1) * size] += seg
    return y[:n_cols]


class TestBlockedEngine:
    @pytest.mark.parametrize("b,n,density", [(3, 24, 0.3), (3, 29, 0.2),
                                             (2, 17, 0.4), (4, 40, 0.1)])
    def test_matches_per_block_engines(self, rng, b, n, density):
        spec = ReFloatSpec(b=b, e=3, f=3, ev=3, fv=8)
        A = sp.random(n, n, density=density, random_state=int(n + b),
                      data_rvs=lambda k: random_float_array(rng, k, (-4, 4)))
        blocked = BlockedMatrix(A, b=b)
        engine = BlockedEngine(blocked, spec)
        x = random_float_array(rng, n, exp_range=(-5, 3), include_zero=True)
        np.testing.assert_array_equal(engine.multiply(x),
                                      _reference_blocked_mvm(blocked, spec, x))

    def test_e_zero_and_nearest(self, rng, small_spd):
        blocked = BlockedMatrix(small_spd, b=3)
        x = random_float_array(rng, small_spd.shape[0], include_zero=True)
        for spec in (ReFloatSpec(b=3, e=0, f=2, ev=0, fv=4),
                     ReFloatSpec(b=3, e=2, f=4, ev=2, fv=6,
                                 rounding="nearest")):
            engine = BlockedEngine(blocked, spec)
            np.testing.assert_array_equal(
                engine.multiply(x), _reference_blocked_mvm(blocked, spec, x))

    def test_empty_matrix_and_validation(self):
        blocked = BlockedMatrix(sp.csr_matrix((16, 16)), b=3)
        engine = BlockedEngine(blocked, ReFloatSpec(b=3))
        assert np.all(engine.multiply(np.ones(16)) == 0.0)
        assert engine.n_engines == 0
        with pytest.raises(ValueError):
            BlockedEngine(blocked, ReFloatSpec(b=4))
        with pytest.raises(ValueError):
            engine.multiply(np.ones(17))

    def test_exact_grid_segments_rejected(self):
        # The bounded-integer wordline cannot represent a segment whose grid
        # is finer than binary64 (the converter's passthrough case); both
        # engines must refuse loudly instead of returning silent zeros.
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=8)
        x = np.full(4, 2.0 ** -1015)
        engine = ProcessingEngine(np.eye(4), spec)
        with pytest.raises(ValueError, match="binary64 normal range"):
            engine.multiply(x)
        blocked_eng = BlockedEngine(
            BlockedMatrix(sp.eye(4, format="csr"), b=2), spec)
        with pytest.raises(ValueError, match="binary64 normal range"):
            blocked_eng.multiply(x)

    def test_repeated_calls_stable(self, rng, small_spd):
        blocked = BlockedMatrix(small_spd, b=3)
        engine = BlockedEngine(blocked, ReFloatSpec(b=3))
        x = random_float_array(rng, small_spd.shape[0])
        first = engine.multiply(x).copy()
        np.testing.assert_array_equal(engine.multiply(x), first)


class TestConverterBatch:
    """convert_batch must be bit-identical per column to the 1-D converter."""

    @pytest.mark.parametrize("spec", EDGE_SPECS, ids=str)
    def test_bit_identical_per_column(self, rng, spec):
        size = 1 << spec.b
        for n in (3 * size, 3 * size + size // 2 + 1, max(1, size // 2)):
            X = np.column_stack([
                random_float_array(rng, n, exp_range=(-30, 30),
                                   include_zero=True)
                for _ in range(5)])
            plan = vector_converter_plan(n, spec)
            Xq, ebv = plan.convert_batch(X)
            assert Xq.shape == X.shape and ebv.shape == (plan.nseg, 5)
            for j in range(5):
                ref_xq, ref_ebv = quantize_vector_reference(X[:, j], spec)
                np.testing.assert_array_equal(Xq[:, j], ref_xq)
                np.testing.assert_array_equal(ebv[:, j], ref_ebv)

    def test_dead_segment_and_exact_grid_fallback(self, rng):
        # A dead segment (or an exact-grid segment) anywhere in the batch
        # routes through the per-column reference path; identity must hold
        # for every column, not just the offending one.
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        n = 4 * 8
        X = np.column_stack([random_float_array(rng, n, include_zero=True)
                             for _ in range(3)])
        X[8:16, 1] = 0.0                 # dead segment, middle column
        plan = vector_converter_plan(n, spec)
        Xq, ebv = plan.convert_batch(X)
        for j in range(3):
            ref_xq, ref_ebv = quantize_vector_reference(X[:, j], spec)
            np.testing.assert_array_equal(Xq[:, j], ref_xq)
            np.testing.assert_array_equal(ebv[:, j], ref_ebv)
        tiny = ReFloatSpec(b=3, e=3, f=3, ev=11, fv=52)
        T = np.column_stack([random_float_array(rng, 16, exp_range=(-600, -400)),
                             random_float_array(rng, 16, exp_range=(-2, 2))])
        bq, bebv = vector_converter_plan(16, tiny).convert_batch(T)
        for j in range(2):
            ref_xq, ref_ebv = quantize_vector_reference(T[:, j], tiny)
            np.testing.assert_array_equal(bq[:, j], ref_xq)
            np.testing.assert_array_equal(bebv[:, j], ref_ebv)

    def test_validation_and_nonfinite(self, rng):
        plan = vector_converter_plan(16, DEFAULT_SPEC)
        with pytest.raises(ValueError):
            plan.convert_batch(np.ones(16))            # 1-D
        with pytest.raises(ValueError):
            plan.convert_batch(np.ones((8, 2)))        # wrong length
        with pytest.raises(ValueError):
            plan.convert_batch(np.ones((16, 0)))       # no columns
        X = np.ones((16, 2))
        X[3, 1] = np.inf
        with pytest.raises(ValueError):
            plan.convert_batch(X)

    def test_scratch_reuse_and_fresh_copies(self, rng):
        plan = vector_converter_plan(64, DEFAULT_SPEC)
        X1 = np.column_stack([random_float_array(rng, 64) for _ in range(3)])
        X2 = np.column_stack([random_float_array(rng, 64) for _ in range(3)])
        r1, _ = plan.convert_batch(X1)
        kept = r1.copy()
        r2, _ = plan.convert_batch(X2)
        assert r2 is r1                  # same per-(thread, k) scratch...
        assert not np.array_equal(kept, r2)
        fresh, _ = plan.convert_batch(X1, reuse=False)
        assert fresh is not r1           # ...unless a copy is requested
        np.testing.assert_array_equal(fresh, kept)

    def test_single_column_matches_convert(self, rng):
        plan = vector_converter_plan(40, DEFAULT_SPEC)
        x = random_float_array(rng, 40, include_zero=True)
        xq, ebv = plan.convert(x, reuse=False)
        bq, bebv = plan.convert_batch(x[:, None])
        np.testing.assert_array_equal(bq[:, 0], xq)
        np.testing.assert_array_equal(bebv[:, 0], ebv)


class TestEngineBatch:
    """Batched engine MVMs must be bit-identical to their per-vector paths."""

    def test_processing_engine_batch(self, rng):
        spec = ReFloatSpec(b=3, e=3, f=3, ev=3, fv=8)
        block = random_float_array(rng, 64, exp_range=(-4, 4)).reshape(8, 8)
        engine = ProcessingEngine(block, spec)
        S = np.stack([random_float_array(rng, 8, exp_range=(-5, 3),
                                         include_zero=True)
                      for _ in range(5)])
        batched = engine.multiply_batch(S)
        for i in range(5):
            np.testing.assert_array_equal(batched[i], engine.multiply(S[i]))
        with pytest.raises(ValueError):
            engine.multiply_batch(S[:, :5])

    @pytest.mark.parametrize("b,n,density", [(3, 24, 0.3), (3, 29, 0.2),
                                             (2, 17, 0.4)])
    def test_blocked_engine_batch(self, rng, b, n, density):
        spec = ReFloatSpec(b=b, e=3, f=3, ev=3, fv=8)
        A = sp.random(n, n, density=density, random_state=int(n + b),
                      data_rvs=lambda k: random_float_array(rng, k, (-4, 4)))
        engine = BlockedEngine(BlockedMatrix(A, b=b), spec)
        X = np.column_stack([
            random_float_array(rng, n, exp_range=(-5, 3), include_zero=True)
            for _ in range(4)])
        batched = engine.multiply_batch(X)
        assert batched.shape == (n, 4)
        for j in range(4):
            np.testing.assert_array_equal(batched[:, j],
                                          engine.multiply(X[:, j]))

    def test_blocked_engine_batch_validation(self):
        spec = ReFloatSpec(b=2, e=3, f=3, ev=3, fv=8)
        engine = BlockedEngine(BlockedMatrix(sp.eye(4, format="csr"), b=2),
                               spec)
        with pytest.raises(ValueError):
            engine.multiply_batch(np.ones(4))           # 1-D
        with pytest.raises(ValueError):
            engine.multiply_batch(np.ones((5, 2)))      # wrong rows
        with pytest.raises(ValueError, match="binary64 normal range"):
            engine.multiply_batch(np.full((4, 2), 2.0 ** -1015))


class TestOperatorMatmat:
    """Operator matmat must be bit-identical per column to matvec."""

    def _assert_columns_match(self, op, X):
        Y = op.matmat(X)
        assert Y.shape == X.shape
        for j in range(X.shape[1]):
            np.testing.assert_array_equal(Y[:, j], op.matvec(X[:, j]))

    def test_refloat_matmat(self, rng, small_wathen):
        spec = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)
        op = ReFloatOperator(small_wathen, spec)
        X = np.column_stack([random_float_array(rng, small_wathen.shape[0])
                             for _ in range(6)])
        self._assert_columns_match(op, X)
        np.testing.assert_array_equal(
            op.quantize_input_batch(X)[:, 2],
            quantize_vector_reference(X[:, 2], spec)[0])

    def test_feinberg_matmat(self, rng, small_wathen):
        op = FeinbergOperator(small_wathen)
        X = np.column_stack([random_float_array(rng, small_wathen.shape[0])
                             for _ in range(4)])
        self._assert_columns_match(op, X)
        with pytest.raises(ValueError):
            op.matmat(X[:, 0])

    def test_feinberg_block_anchor_matmat(self, rng, small_wathen):
        op = FeinbergOperator(small_wathen, block_b=5)
        X = np.column_stack([random_float_array(rng, small_wathen.shape[0])
                             for _ in range(3)])
        self._assert_columns_match(op, X)

    def test_noisy_matmat_sigma_zero(self, rng, small_spd):
        op = NoisyReFloatOperator(small_spd, sigma=0.0)
        X = np.column_stack([random_float_array(rng, small_spd.shape[0])
                             for _ in range(3)])
        self._assert_columns_match(op, X)

    def test_noisy_matmat_one_draw_per_batch(self, rng, small_spd):
        # The batch sees ONE conductance realisation; a seed-matched looped
        # matvec draws k times, so equality must hold against a single-draw
        # reference instead.
        spec = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)
        op = NoisyReFloatOperator(small_spd, spec, sigma=0.05, seed=11)
        ref = NoisyReFloatOperator(small_spd, spec, sigma=0.05, seed=11)
        X = np.column_stack([random_float_array(rng, small_spd.shape[0])
                             for _ in range(3)])
        Y = op.matmat(X)
        factor = 1.0 + ref.sigma * ref.rng.standard_normal(ref.A.nnz)
        noisy = sp.csr_matrix(
            (ref.A.data * factor, ref.A.indices, ref.A.indptr),
            shape=ref.shape)
        Xq = ref._base.quantize_input_batch(X)
        np.testing.assert_array_equal(Y, noisy @ Xq)

    def test_exact_operator_matmat(self, rng, small_spd):
        from repro.operators import ExactOperator

        op = ExactOperator(small_spd)
        X = np.column_stack([random_float_array(rng, small_spd.shape[0])
                             for _ in range(5)])
        self._assert_columns_match(op, X)

    def test_counting_operator_matmat(self, rng, small_spd):
        from repro.operators import CountingOperator
        from repro.solvers.base import operator_matmat

        op = CountingOperator(small_spd)
        X = np.column_stack([random_float_array(rng, small_spd.shape[0])
                             for _ in range(4)])
        Y = op.matmat(X)
        assert op.count == 1 and op.columns == 4
        op.matvec(X[:, 0])
        assert op.count == 2 and op.columns == 5
        op.reset()
        assert op.count == 0 and op.columns == 0
        np.testing.assert_array_equal(Y, operator_matmat(op.inner, X))

    def test_counting_operator_failed_apply_not_counted(self, rng, small_spd):
        from repro.operators import CountingOperator

        op = CountingOperator(small_spd)
        with pytest.raises(ValueError):
            op.matmat(np.ones(small_spd.shape[0]))      # 1-D: rejected
        with pytest.raises(ValueError):
            op.matmat(np.ones((3, 2)))                  # wrong length
        assert op.count == 0 and op.columns == 0

    def test_operator_matmat_fallback_loop(self, rng, small_spd):
        from repro.solvers.base import operator_matmat

        class MatvecOnly:
            def __init__(self, A):
                self.A = A
                self.shape = A.shape

            def matvec(self, x):
                return self.A @ x

        op = MatvecOnly(small_spd)
        X = np.column_stack([random_float_array(rng, small_spd.shape[0])
                             for _ in range(3)])
        Y = operator_matmat(op, X)
        for j in range(3):
            np.testing.assert_array_equal(Y[:, j], op.matvec(X[:, j]))
        with pytest.raises(ValueError):
            operator_matmat(op, X[:, 0])


class TestPrebuiltBlocked:
    def test_refloat_operator_accepts_partition(self, rng, small_wathen):
        spec = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)
        blocked = BlockedMatrix(small_wathen, b=7)
        fresh = ReFloatOperator(small_wathen, spec)
        shared = ReFloatOperator(None, spec, blocked=blocked)
        assert shared.blocked is blocked
        assert (fresh.A != shared.A).nnz == 0
        x = random_float_array(rng, small_wathen.shape[0])
        np.testing.assert_array_equal(fresh.matvec(x).copy(),
                                      shared.matvec(x))
        np.testing.assert_array_equal(shared.quantize_input(x),
                                      quantize_vector_reference(x, spec)[0])

    def test_refloat_operator_rejects_mismatched_b(self, small_spd):
        blocked = BlockedMatrix(small_spd, b=3)
        with pytest.raises(ValueError):
            ReFloatOperator(small_spd, ReFloatSpec(b=7), blocked=blocked)

    def test_feinberg_operator_accepts_partition(self, rng, small_wathen):
        blocked = BlockedMatrix(small_wathen, b=7)
        fresh = FeinbergOperator(small_wathen)
        shared = FeinbergOperator(None, blocked=blocked)
        assert shared.A is blocked.A
        x = random_float_array(rng, small_wathen.shape[0])
        np.testing.assert_array_equal(fresh.matvec(x), shared.matvec(x))

    def test_noisy_operator_accepts_partition(self, rng, small_spd):
        blocked = BlockedMatrix(small_spd, b=7)
        spec = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)
        fresh = NoisyReFloatOperator(small_spd, spec, sigma=0.05, seed=9)
        shared = NoisyReFloatOperator(None, spec, sigma=0.05, seed=9,
                                      blocked=blocked)
        x = random_float_array(rng, small_spd.shape[0])
        np.testing.assert_array_equal(fresh.matvec(x), shared.matvec(x))


class TestParallelSuite:
    def test_parallel_matches_serial_run(self):
        from repro.experiments.common import run_matrix, run_suite

        runs = run_suite("cg", "test", max_workers=4)
        assert list(runs) == list(__import__(
            "repro.sparse.gallery.suite", fromlist=["suite_ids"]).suite_ids())
        serial = run_matrix(353, "cg", "test")
        parallel = runs[353]
        assert parallel.results["refloat"].iterations == \
            serial.results["refloat"].iterations
        assert parallel.results["gpu"].residual_norm == \
            serial.results["gpu"].residual_norm
        assert parallel.times_s == serial.times_s

    def test_assets_cached_and_shared(self):
        from repro.experiments.common import matrix_assets

        a1 = matrix_assets(353, "test")
        a2 = matrix_assets(353, "test")
        assert a1 is a2
        assert a1.refloat_op.blocked is a1.blocked
