"""Suite fan-out executors and the LRU asset-cache budget.

The process-pool equivalence run re-executes the full (test-scale) suite in
worker processes, so it carries the ``slow`` marker and is deselected from
the tier-1 invocation (see ``pytest.ini``); CI runs it in a dedicated step.
"""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.common import (
    asset_cache_stats,
    clear_run_caches,
    matrix_assets,
    run_suite,
)


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


class TestExecutorSelection:
    def test_env_selects_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        assert common._suite_executor() == "thread"
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        assert common._suite_executor() == "process"
        assert common._suite_executor("thread") == "thread"  # arg wins

    def test_invalid_env_names_var_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "fibers")
        with pytest.raises(ValueError,
                           match="REPRO_SUITE_EXECUTOR='fibers'"):
            common._suite_executor()
        with pytest.raises(ValueError, match="'fibers'"):
            common._suite_executor("fibers")

    def test_invalid_workers_names_var_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "many")
        with pytest.raises(ValueError,
                           match="REPRO_SUITE_WORKERS='many'"):
            common._suite_workers(4)

    @pytest.mark.parametrize("bad", ["0", "-1", "-8"])
    def test_nonpositive_workers_raise_same_named_error(self, monkeypatch,
                                                        bad):
        # 0 and negatives used to be clamped to serial silently; they must
        # fail exactly like non-integers, naming the variable and value.
        monkeypatch.setenv("REPRO_SUITE_WORKERS", bad)
        with pytest.raises(ValueError,
                           match=f"REPRO_SUITE_WORKERS='{bad}'"):
            common._suite_workers(4)

    def test_valid_workers_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "3")
        assert common._suite_workers(12) == 3
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "1")
        assert common._suite_workers(12) == 1


class TestProcessPoolLifecycle:
    def test_exit_hook_registered_ahead_of_futures_drain(self):
        # The hook must be in threading's exit-callback list (those run
        # LIFO, before concurrent.futures' own handler, which would first
        # drain every queued task — and can hang on a stuck worker).
        import threading

        registered = [getattr(cb, "func", cb)
                      for cb in threading._threading_atexits]
        assert common._exit_process_pool in registered

    def test_shutdown_is_idempotent(self):
        common._shutdown_process_pool()
        common._shutdown_process_pool()  # no pool: must be a no-op
        common._exit_process_pool()      # likewise
        assert common._PROCESS_POOL is None

    def test_pool_recreated_when_store_config_changes(self, monkeypatch,
                                                      tmp_path):
        # Forked workers freeze their environment: a pool outliving a
        # REPRO_ASSET_STORE change would keep rebuilding assets the parent
        # already materialised, so the pool identity includes the store
        # config.
        common._shutdown_process_pool()
        monkeypatch.delenv("REPRO_ASSET_STORE", raising=False)
        p1 = common._process_pool(1)
        assert common._process_pool(1) is p1
        monkeypatch.setenv("REPRO_ASSET_STORE", str(tmp_path / "s"))
        p2 = common._process_pool(1)
        assert p2 is not p1
        assert common._process_pool(1) is p2  # stable under same config
        common._shutdown_process_pool()

    @pytest.mark.slow
    def test_interpreter_exit_with_queued_work_does_not_drain(self):
        """Exiting with tasks queued must reap workers, not run the queue.

        Without the exit hook, concurrent.futures' handler executes all
        four queued 2-second sleeps before the interpreter can exit (>= 8s,
        or forever on a stuck worker); with it, exit is near-immediate.
        """
        import subprocess
        import sys
        import time

        script = (
            "import time\n"
            "from repro.experiments import common\n"
            "pool = common._process_pool(1)\n"
            "for _ in range(4):\n"
            "    pool.submit(time.sleep, 2.0)\n"
        )
        t0 = time.perf_counter()
        proc = subprocess.run([sys.executable, "-c", script],
                              capture_output=True, text=True, timeout=30)
        elapsed = time.perf_counter() - t0
        assert proc.returncode == 0, proc.stderr
        assert proc.stderr.strip() == ""
        assert elapsed < 6.0, (
            f"interpreter exit took {elapsed:.1f}s — the queued work was "
            f"drained instead of abandoned")

    def test_invalid_cache_budget_names_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "lots")
        with pytest.raises(ValueError, match="'lots'"):
            common._asset_cache_budget()
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "-3")
        with pytest.raises(ValueError, match="'-3'"):
            common._asset_cache_budget()


class TestAssetCacheBudget:
    def test_unbounded_without_env(self, monkeypatch, fresh_caches):
        monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)
        a1 = matrix_assets(353, "test")
        matrix_assets(1313, "test")
        assert matrix_assets(353, "test") is a1
        stats = asset_cache_stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0

    def test_evicts_least_recently_used(self, monkeypatch, fresh_caches):
        # Pin every entry's estimated size to 100 bytes so the eviction
        # arithmetic is deterministic: a 150-byte budget holds one entry.
        monkeypatch.setattr(common, "_approx_nbytes", lambda *roots: 100)
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", str(150 / (1 << 20)))
        a1 = matrix_assets(353, "test")
        matrix_assets(1313, "test")
        assert asset_cache_stats() == {"entries": 1, "bytes": 100}
        # 353 was evicted (LRU); fetching it again rebuilds fresh assets.
        assert matrix_assets(353, "test") is not a1

    def test_recent_use_refreshes_lru_position(self, monkeypatch, fresh_caches):
        # A 250-byte budget holds two 100-byte entries but not three.
        monkeypatch.setattr(common, "_approx_nbytes", lambda *roots: 100)
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", str(250 / (1 << 20)))
        a1 = matrix_assets(353, "test")
        a2 = matrix_assets(1313, "test")
        assert matrix_assets(353, "test") is a1     # touch: 1313 is now LRU
        matrix_assets(2261, "test")                 # insert: evicts 1313
        assert asset_cache_stats() == {"entries": 2, "bytes": 200}
        assert matrix_assets(353, "test") is a1
        assert matrix_assets(1313, "test") is not a2

    def test_clear_resets_accounting(self, fresh_caches):
        matrix_assets(353, "test")
        assert asset_cache_stats()["bytes"] > 0
        clear_run_caches()
        stats = asset_cache_stats()
        assert stats == {"entries": 0, "bytes": 0}


@pytest.mark.slow
class TestProcessPoolSuite:
    def test_process_pool_matches_serial(self, monkeypatch, fresh_caches):
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        parallel = run_suite("cg", "test", use_cache=False, max_workers=2)
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR")
        clear_run_caches()
        serial = run_suite("cg", "test", use_cache=False, max_workers=1)
        assert list(parallel) == list(serial)
        for sid in serial:
            s, p = serial[sid], parallel[sid]
            assert s.times_s == p.times_s
            for platform in s.results:
                assert (s.results[platform].iterations
                        == p.results[platform].iterations)
                assert (s.results[platform].residual_norm
                        == p.results[platform].residual_norm)
                np.testing.assert_array_equal(s.results[platform].x,
                                              p.results[platform].x)
