"""Suite fan-out executors and the LRU asset-cache budget.

The process-pool equivalence run re-executes the full (test-scale) suite in
worker processes, so it carries the ``slow`` marker and is deselected from
the tier-1 invocation (see ``pytest.ini``); CI runs it in a dedicated step.
"""

import numpy as np
import pytest

from repro.experiments import common
from repro.experiments.common import (
    asset_cache_stats,
    clear_run_caches,
    matrix_assets,
    run_suite,
)


@pytest.fixture
def fresh_caches():
    clear_run_caches()
    yield
    clear_run_caches()


class TestExecutorSelection:
    def test_env_selects_executor(self, monkeypatch):
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR", raising=False)
        assert common._suite_executor() == "thread"
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        assert common._suite_executor() == "process"
        assert common._suite_executor("thread") == "thread"  # arg wins

    def test_invalid_env_names_var_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "fibers")
        with pytest.raises(ValueError,
                           match="REPRO_SUITE_EXECUTOR='fibers'"):
            common._suite_executor()
        with pytest.raises(ValueError, match="'fibers'"):
            common._suite_executor("fibers")

    def test_invalid_workers_names_var_and_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SUITE_WORKERS", "many")
        with pytest.raises(ValueError,
                           match="REPRO_SUITE_WORKERS='many'"):
            common._suite_workers(4)

    def test_invalid_cache_budget_names_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "lots")
        with pytest.raises(ValueError, match="'lots'"):
            common._asset_cache_budget()
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", "-3")
        with pytest.raises(ValueError, match="'-3'"):
            common._asset_cache_budget()


class TestAssetCacheBudget:
    def test_unbounded_without_env(self, monkeypatch, fresh_caches):
        monkeypatch.delenv("REPRO_ASSET_CACHE_MB", raising=False)
        a1 = matrix_assets(353, "test")
        matrix_assets(1313, "test")
        assert matrix_assets(353, "test") is a1
        stats = asset_cache_stats()
        assert stats["entries"] == 2 and stats["bytes"] > 0

    def test_evicts_least_recently_used(self, monkeypatch, fresh_caches):
        # Pin every entry's estimated size to 100 bytes so the eviction
        # arithmetic is deterministic: a 150-byte budget holds one entry.
        monkeypatch.setattr(common, "_approx_nbytes", lambda *roots: 100)
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", str(150 / (1 << 20)))
        a1 = matrix_assets(353, "test")
        matrix_assets(1313, "test")
        assert asset_cache_stats() == {"entries": 1, "bytes": 100}
        # 353 was evicted (LRU); fetching it again rebuilds fresh assets.
        assert matrix_assets(353, "test") is not a1

    def test_recent_use_refreshes_lru_position(self, monkeypatch, fresh_caches):
        # A 250-byte budget holds two 100-byte entries but not three.
        monkeypatch.setattr(common, "_approx_nbytes", lambda *roots: 100)
        monkeypatch.setenv("REPRO_ASSET_CACHE_MB", str(250 / (1 << 20)))
        a1 = matrix_assets(353, "test")
        a2 = matrix_assets(1313, "test")
        assert matrix_assets(353, "test") is a1     # touch: 1313 is now LRU
        matrix_assets(2261, "test")                 # insert: evicts 1313
        assert asset_cache_stats() == {"entries": 2, "bytes": 200}
        assert matrix_assets(353, "test") is a1
        assert matrix_assets(1313, "test") is not a2

    def test_clear_resets_accounting(self, fresh_caches):
        matrix_assets(353, "test")
        assert asset_cache_stats()["bytes"] > 0
        clear_run_caches()
        stats = asset_cache_stats()
        assert stats == {"entries": 0, "bytes": 0}


@pytest.mark.slow
class TestProcessPoolSuite:
    def test_process_pool_matches_serial(self, monkeypatch, fresh_caches):
        monkeypatch.setenv("REPRO_SUITE_EXECUTOR", "process")
        parallel = run_suite("cg", "test", use_cache=False, max_workers=2)
        monkeypatch.delenv("REPRO_SUITE_EXECUTOR")
        clear_run_caches()
        serial = run_suite("cg", "test", use_cache=False, max_workers=1)
        assert list(parallel) == list(serial)
        for sid in serial:
            s, p = serial[sid], parallel[sid]
            assert s.times_s == p.times_s
            for platform in s.results:
                assert (s.results[platform].iterations
                        == p.results[platform].iterations)
                assert (s.results[platform].residual_norm
                        == p.results[platform].residual_norm)
                np.testing.assert_array_equal(s.results[platform].x,
                                              p.results[platform].x)
