"""Block partitioning of sparse matrices (the granularity of ReRAM compute).

A :class:`BlockedMatrix` partitions a CSR matrix into ``2^b x 2^b`` square
blocks — the unit mapped onto one crossbar cluster — and exposes the
partition through a contiguous :class:`repro.sparse.bsr.BSRBlocks` view
(``.bsr``): one ``(n_blocks, 2^b, 2^b)`` float64 tensor plus block
``indptr``/``indices`` and the dense<->CSR ``scatter`` map.  Everything
block-granular derives from that view, fully vectorised:

* the per-block optimal ReFloat exponent base ``eb`` (Eq. 5) and the exact
  per-block exponent spread (the "locality" of Fig. 3d) — axis reductions
  over the tensor;
* ``dense_block`` — an O(1) tensor slice (what one crossbar cluster holds);
* the ReFloat-quantised matrix as a plain CSR with the same sparsity
  pattern (functionally what the crossbars compute, see Eq. 9), via a
  single per-nonzero gather of the block bases;
* storage/occupancy statistics used by the accelerator mapping and the
  Table VIII memory accounting.

The legacy block-grouping arrays (``order``, ``group_starts``, ...) remain
available for cross-checking and compatibility; on a store attach they are
derived lazily from the BSR view instead of being persisted.
"""

from __future__ import annotations

from functools import cached_property
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.formats import ieee
from repro.formats.refloat import ReFloatSpec, quantize_values
from repro.sparse.bsr import BSRBlocks
from repro.util.validation import check_nonnegative_int

__all__ = ["BlockedMatrix", "block_coordinates"]


def block_coordinates(A: sp.csr_matrix, b: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-nonzero (block-row, block-col) coordinates of a CSR matrix."""
    A = sp.csr_matrix(A)
    rows = np.repeat(np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr))
    cols = A.indices.astype(np.int64)
    return rows >> b, cols >> b


class BlockedMatrix:
    """A sparse matrix partitioned into ``2^b x 2^b`` blocks.

    Parameters
    ----------
    A : scipy sparse matrix
        Converted to canonical CSR (duplicates summed, indices sorted).
        Explicit zeros are eliminated — they would otherwise occupy crossbar
        cells and distort exponent statistics.
    b : int
        log2 of the block edge (paper: 7, i.e. 128x128 crossbars).
    """

    def __init__(self, A, b: int = 7):
        b = check_nonnegative_int(b, "b")
        if b > 12:
            raise ValueError(f"b must be <= 12, got {b}")
        A = sp.csr_matrix(A, dtype=np.float64, copy=True)
        A.sum_duplicates()
        A.eliminate_zeros()
        A.sort_indices()
        if not np.all(np.isfinite(A.data)):
            raise ValueError("matrix contains non-finite values")
        self.A = A
        self.b = b
        n_rows, n_cols = A.shape
        self.block_grid = (-(-n_rows // (1 << b)), -(-n_cols // (1 << b)))

        bi, bj = block_coordinates(A, b)
        key = bi * self.block_grid[1] + bj
        # Stable permutation of nonzeros into block-grouped order.
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        if sorted_key.size:
            boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
            group_starts = np.concatenate(([0], boundaries))
            self.block_keys = sorted_key[group_starts]
            block_nnz = np.diff(np.concatenate((group_starts,
                                                [sorted_key.size])))
        else:
            group_starts = np.zeros(0, dtype=np.int64)
            self.block_keys = np.zeros(0, dtype=np.int64)
            block_nnz = np.zeros(0, dtype=np.int64)
        self._order_arr = order
        self._group_starts_arr = group_starts
        self._block_nnz_arr = block_nnz
        self._nnz_key_arr = key  # per-nonzero block key, in CSR order

    # ------------------------------------------------------------------
    # The contiguous layout and the (lazily derivable) grouping arrays.

    @cached_property
    def bsr(self) -> BSRBlocks:
        """The contiguous BSR view — every block consumer's operand layout.

        Built once per partition (``8 * n_blocks * 4^b`` bytes); a
        store-attached partition arrives with this view pre-populated from
        the memory-mapped tensor, so nothing is rebuilt.
        """
        return BSRBlocks.from_partition(self.A, self.b, self.block_grid,
                                        self.order, self.block_keys,
                                        self.block_nnz)

    @property
    def order(self) -> np.ndarray:
        """Stable permutation of nonzeros into block-grouped order."""
        if self._order_arr is None:
            # Stable argsort of the per-nonzero block index gives the same
            # permutation as the original block-key argsort (the block index
            # is the rank of the key — a monotone relabelling).
            self._order_arr = np.argsort(self.bsr.block_of_nnz, kind="stable")
        return self._order_arr

    @property
    def group_starts(self) -> np.ndarray:
        if self._group_starts_arr is None:
            block_nnz = self.block_nnz
            self._group_starts_arr = (
                np.concatenate(([0], np.cumsum(block_nnz)[:-1]))
                if block_nnz.size else np.zeros(0, dtype=np.int64))
        return self._group_starts_arr

    @property
    def block_nnz(self) -> np.ndarray:
        if self._block_nnz_arr is None:
            self._block_nnz_arr = self.bsr.block_nnz
        return self._block_nnz_arr

    @property
    def _nnz_key(self) -> np.ndarray:
        if self._nnz_key_arr is None:
            self._nnz_key_arr = (self.block_keys[self.bsr.block_of_nnz]
                                 if self.nnz else np.zeros(0, dtype=np.int64))
        return self._nnz_key_arr

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """The partition's derived arrays, for serialisation.

        Together with the canonical CSR matrix (``self.A``) and ``b`` these
        reconstruct the partition via :meth:`from_arrays` without re-running
        the block-key argsort.  The asset store persists the BSR layout
        instead (see :meth:`from_bsr`); this grouped form remains for
        callers that serialise the partition themselves.  The
        ``cached_property`` statistics (exponent bases etc.) are *not*
        included; they recompute deterministically on demand.
        """
        return {
            "order": self.order,
            "group_starts": self.group_starts,
            "block_keys": self.block_keys,
            "block_nnz": self.block_nnz,
            "nnz_key": self._nnz_key,
        }

    @classmethod
    def from_arrays(cls, A: sp.csr_matrix, b: int, order: np.ndarray,
                    group_starts: np.ndarray, block_keys: np.ndarray,
                    block_nnz: np.ndarray, nnz_key: np.ndarray,
                    ) -> "BlockedMatrix":
        """Reattach a partition from :meth:`to_arrays` output without rebuilding.

        ``A`` must be the canonical CSR the partition was computed from
        (sorted, duplicate-free — ``BlockedMatrix.A`` as serialised); it is
        used as-is, so read-only memory-mapped arrays work and nothing is
        copied or re-sorted.  Structural consistency is always checked —
        including that ``order`` is integer-typed and in-bounds, since a
        tampered non-permutation ``order`` would silently misindex every
        downstream gather.  The full O(nnz) permutation check runs only
        when ``store_verify`` is on (the asset store's deep-verification
        toggle); content integrity beyond that is the caller's job.
        """
        b = check_nonnegative_int(b, "b")
        nnz = int(A.nnz)
        if order.shape != (nnz,) or nnz_key.shape != (nnz,):
            raise ValueError(
                f"order/nnz_key must have {nnz} entries, got "
                f"{order.shape}/{nnz_key.shape}")
        if not np.issubdtype(order.dtype, np.integer):
            raise ValueError(
                f"order must be an integer array, got dtype {order.dtype}")
        if nnz and (int(order.min()) < 0 or int(order.max()) >= nnz):
            raise ValueError(
                f"order entries must lie in [0, {nnz}), got "
                f"[{int(order.min())}, {int(order.max())}]")
        n_blocks = block_keys.shape[0]
        if group_starts.shape != (n_blocks,) or block_nnz.shape != (n_blocks,):
            raise ValueError(
                f"group_starts/block_nnz must match block_keys "
                f"({n_blocks} blocks), got {group_starts.shape}/{block_nnz.shape}")
        if int(block_nnz.sum()) != nnz:
            raise ValueError(
                f"block_nnz sums to {int(block_nnz.sum())}, matrix has {nnz}")
        from repro.api import config  # deferred: repro.api imports operators

        if config.active().store_verify and nnz:
            if np.unique(order).size != nnz:
                raise ValueError(
                    "order is not a permutation (duplicate entries)")
        self = object.__new__(cls)
        self.A = A
        self.b = b
        n_rows, n_cols = A.shape
        self.block_grid = (-(-n_rows // (1 << b)), -(-n_cols // (1 << b)))
        self._order_arr = order
        self._group_starts_arr = group_starts
        self.block_keys = block_keys
        self._block_nnz_arr = block_nnz
        self._nnz_key_arr = nnz_key
        return self

    @classmethod
    def from_bsr(cls, A: sp.csr_matrix, bsr: BSRBlocks) -> "BlockedMatrix":
        """Attach a partition to a prebuilt :class:`BSRBlocks` view.

        The asset-store load path: ``A`` is the canonical CSR (its ``data``
        gathers bit-identically from the tensor) and ``bsr`` the
        memory-mapped layout.  The grouping arrays (``order``,
        ``group_starts``, ...) derive lazily on first access; the hot paths
        (quantisation, the engine, ``dense_block``) never need them.
        """
        nnz = int(A.nnz)
        if bsr.shape != tuple(A.shape):
            raise ValueError(
                f"BSR layout is for shape {bsr.shape}, matrix is {A.shape}")
        if bsr.nnz != nnz:
            raise ValueError(
                f"BSR layout holds {bsr.nnz} nonzeros, matrix has {nnz}")
        self = object.__new__(cls)
        self.A = A
        self.b = bsr.b
        self.block_grid = bsr.block_grid
        self.block_keys = (bsr.block_rows * bsr.block_grid[1]
                           + bsr.indices.astype(np.int64))
        self._order_arr = None
        self._group_starts_arr = None
        self._block_nnz_arr = None
        self._nnz_key_arr = None
        self.__dict__["bsr"] = bsr
        return self

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.A.shape

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)

    @property
    def block_size(self) -> int:
        return 1 << self.b

    @property
    def n_blocks(self) -> int:
        """Number of occupied (nonzero) blocks = crossbar clusters required."""
        return int(self.block_keys.size)

    def block_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """(block-row, block-col) arrays of the occupied blocks."""
        nbc = self.block_grid[1]
        return self.block_keys // nbc, self.block_keys % nbc

    def dense_block(self, bi: int, bj: int) -> np.ndarray:
        """One ``2^b x 2^b`` dense block, zero-padded at ragged edges.

        This is exactly what a single crossbar cluster holds — the unit a
        :class:`repro.hardware.engine.ProcessingEngine` consumes.  An O(1)
        binary search in the block row plus one tensor-slice copy;
        unoccupied blocks come back as zeros.
        """
        size = self.block_size
        nbr, nbc = self.block_grid
        if not (0 <= bi < nbr and 0 <= bj < nbc):
            raise IndexError(f"block ({bi}, {bj}) outside grid {self.block_grid}")
        bsr = self.bsr
        lo, hi = int(bsr.indptr[bi]), int(bsr.indptr[bi + 1])
        pos = lo + int(np.searchsorted(bsr.indices[lo:hi], bj))
        if pos < hi and int(bsr.indices[pos]) == bj:
            return np.array(bsr.data[pos], dtype=np.float64)
        return np.zeros((size, size), dtype=np.float64)

    # ------------------------------------------------------------------
    @cached_property
    def _exponents(self) -> np.ndarray:
        _, exp, _ = ieee.decompose(self.A.data)
        return exp

    @cached_property
    def _block_exp_extrema(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-block (max, min) stored exponent, from tensor axis reductions.

        The IEEE exponent is monotone in magnitude (with subnormals mapping
        to the ``EXP_ZERO`` sentinel below every normal exponent, exactly as
        :func:`repro.formats.ieee.decompose` reports them), so the blockwise
        extreme exponents are the exponents of the blockwise extreme
        magnitudes — two axis reductions over the tensor plus one
        ``n_blocks``-sized decompose, instead of per-nonzero reduceat.
        Unoccupied cells are excluded: exactly zero, they never win the max
        (every block holds a nonzero) and are masked to ``inf`` for the min.
        """
        if self.n_blocks == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        mags = np.abs(self.bsr.data)
        peak = mags.max(axis=(1, 2))
        low = np.where(mags != 0.0, mags, np.inf).min(axis=(1, 2))
        mx = ieee.decompose(peak)[1].astype(np.int64)
        mn = ieee.decompose(low)[1].astype(np.int64)
        return mx, mn

    @cached_property
    def block_eb(self) -> np.ndarray:
        """Per-block Eq. 5 exponent base (round of mean), block-grouped order.

        The exponent sums accumulate per block via ``bincount`` over the BSR
        per-nonzero block index — every partial sum is an exact integer in
        float64, so the result is bit-identical to any other summation order
        over the same per-block exponent multisets.
        """
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int32)
        sums = np.bincount(self.bsr.block_of_nnz,
                           weights=self._exponents.astype(np.float64),
                           minlength=self.n_blocks)
        means = sums / self.block_nnz
        return np.floor(means + 0.5).astype(np.int32)

    def exponent_bases(self, e: int, policy: str = "cover") -> np.ndarray:
        """Per-block exponent base under a policy (see ``ReFloatSpec.eb_policy``)."""
        if policy == "mean":
            return self.block_eb
        if policy != "cover":
            raise ValueError(f"policy must be 'cover' or 'mean', got {policy!r}")
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int32)
        mx, _ = self._block_exp_extrema
        hi = (1 << (e - 1)) - 1 if e > 0 else 0
        return (mx - hi).astype(np.int32)

    @cached_property
    def block_exponent_range(self) -> np.ndarray:
        """Per-block (max - min) exponent spread, block-grouped order."""
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int32)
        mx, mn = self._block_exp_extrema
        return (mx - mn).astype(np.int32)

    def per_nnz_eb(self, e: int = 3, policy: str = "cover") -> np.ndarray:
        """Exponent base of each nonzero's block, in CSR nonzero order.

        One gather through the BSR per-nonzero block index (the old path
        expanded the bases with ``repeat`` and inverse-permuted them)."""
        bases = self.exponent_bases(e, policy)
        if self.nnz == 0:
            return np.zeros(0, dtype=np.int32)
        return bases[self.bsr.block_of_nnz]

    def locality_bits(self) -> int:
        """Fig. 3d "locality": offset bits covering every block's exponent range.

        A block whose exponents span ``range = max - min`` binades is covered
        exactly by an ``e``-bit offset window when ``range <= 2^e - 1``; the
        matrix locality is the smallest such ``e`` over all blocks (>= 1).
        The paper's suite measures at most 7 binades per block, i.e. locality
        <= 3 — which is why ``e = 3`` loses nothing on exponents.
        """
        if self.nnz == 0:
            return 1
        max_range = int(self.block_exponent_range.max())
        e = 1
        while ((1 << e) - 1) < max_range:
            e += 1
        return e

    def matrix_exponent_bits(self) -> int:
        """Bits to cover the whole-matrix exponent span (the FP64 bar of Fig. 3d
        is 11; real matrices typically need fewer but we report the exact need)."""
        if self.nnz == 0:
            return 1
        exps = self._exponents
        span = int(exps.max()) - int(exps.min())
        bits = 1
        while ((1 << bits) - 1) < span:
            bits += 1
        return bits

    # ------------------------------------------------------------------
    def quantize(self, spec: ReFloatSpec) -> sp.csr_matrix:
        """Materialise the ReFloat-quantised matrix (same sparsity, new values).

        Functionally this *is* what the accelerator computes: by Eq. 9 the
        block MVMs with shared bases reproduce ``~A x`` where ``~A`` holds the
        per-block quantised values.  Symmetric inputs stay symmetric because
        blocks (i, j) and (j, i) see identical value multisets.
        """
        if spec.b != self.b:
            raise ValueError(
                f"spec block size 2^{spec.b} does not match partition 2^{self.b}"
            )
        qdata, _ = quantize_values(
            self.A.data, spec.e, spec.f,
            eb=self.per_nnz_eb(spec.e, spec.eb_policy),
            rounding=spec.rounding, underflow=spec.underflow,
        )
        Q = sp.csr_matrix((qdata, self.A.indices.copy(), self.A.indptr.copy()),
                          shape=self.A.shape)
        return Q

    def quantization_error(self, spec: ReFloatSpec) -> dict:
        """Elementwise relative-error statistics of :meth:`quantize`."""
        Q = self.quantize(spec)
        rel = np.abs(Q.data - self.A.data) / np.abs(self.A.data)
        return {
            "max_rel": float(rel.max()) if rel.size else 0.0,
            "mean_rel": float(rel.mean()) if rel.size else 0.0,
            "frobenius_rel": float(
                np.linalg.norm(Q.data - self.A.data) / np.linalg.norm(self.A.data)
            ) if rel.size else 0.0,
        }

    # ------------------------------------------------------------------
    def storage_bits_refloat(self, spec: ReFloatSpec) -> int:
        """Total bits to store the matrix in ReFloat format (Sec. IV-A accounting).

        Per nonzero: 2 in-block index fields of ``b`` bits each plus the
        ``1 + e + f`` value bits.  Per occupied block: two ``(32 - b)``-bit
        block indices plus the 11-bit exponent base.
        """
        if spec.b != self.b:
            raise ValueError("spec.b must match the partition b")
        per_nnz = 2 * self.b + spec.matrix_value_bits
        per_block = 2 * (32 - self.b) + 11
        return int(self.nnz * per_nnz + self.n_blocks * per_block)

    def storage_bits_double(self) -> int:
        """Bits for the COO double-precision baseline: 32+32 index + 64 value."""
        return int(self.nnz * (32 + 32 + 64))

    def occupancy_stats(self) -> dict:
        """Block-occupancy summary (drives the accelerator mapping rounds)."""
        if self.n_blocks == 0:
            return {"n_blocks": 0, "mean_nnz": 0.0, "max_nnz": 0, "density": 0.0}
        return {
            "n_blocks": self.n_blocks,
            "mean_nnz": float(self.block_nnz.mean()),
            "max_nnz": int(self.block_nnz.max()),
            "density": float(self.block_nnz.mean()) / (self.block_size ** 2),
        }
