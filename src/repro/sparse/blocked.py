"""Block partitioning of sparse matrices (the granularity of ReRAM compute).

A :class:`BlockedMatrix` partitions a CSR matrix into ``2^b x 2^b`` square
blocks — the unit mapped onto one crossbar cluster — and precomputes, fully
vectorised:

* the (block-row, block-col) coordinate of every nonzero,
* the set of occupied blocks and their nonzero counts,
* the per-block optimal ReFloat exponent base ``eb`` (Eq. 5) and the exact
  per-block exponent spread (the "locality" of Fig. 3d).

From that it can materialise the ReFloat-quantised matrix as a plain CSR with
the same sparsity pattern (functionally what the crossbars compute, see Eq. 9)
and report storage/occupancy statistics used by the accelerator mapping and
the Table VIII memory accounting.
"""

from __future__ import annotations

from functools import cached_property
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.formats import ieee
from repro.formats.refloat import ReFloatSpec, quantize_values
from repro.util.validation import check_nonnegative_int

__all__ = ["BlockedMatrix", "block_coordinates"]


def block_coordinates(A: sp.csr_matrix, b: int) -> Tuple[np.ndarray, np.ndarray]:
    """Per-nonzero (block-row, block-col) coordinates of a CSR matrix."""
    A = sp.csr_matrix(A)
    rows = np.repeat(np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr))
    cols = A.indices.astype(np.int64)
    return rows >> b, cols >> b


class BlockedMatrix:
    """A sparse matrix partitioned into ``2^b x 2^b`` blocks.

    Parameters
    ----------
    A : scipy sparse matrix
        Converted to canonical CSR (duplicates summed, indices sorted).
        Explicit zeros are eliminated — they would otherwise occupy crossbar
        cells and distort exponent statistics.
    b : int
        log2 of the block edge (paper: 7, i.e. 128x128 crossbars).
    """

    def __init__(self, A, b: int = 7):
        b = check_nonnegative_int(b, "b")
        if b > 12:
            raise ValueError(f"b must be <= 12, got {b}")
        A = sp.csr_matrix(A, dtype=np.float64, copy=True)
        A.sum_duplicates()
        A.eliminate_zeros()
        A.sort_indices()
        if not np.all(np.isfinite(A.data)):
            raise ValueError("matrix contains non-finite values")
        self.A = A
        self.b = b
        n_rows, n_cols = A.shape
        self.block_grid = (-(-n_rows // (1 << b)), -(-n_cols // (1 << b)))

        bi, bj = block_coordinates(A, b)
        key = bi * self.block_grid[1] + bj
        #: Stable permutation of nonzeros into block-grouped order.
        self.order = np.argsort(key, kind="stable")
        sorted_key = key[self.order]
        if sorted_key.size:
            boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
            self.group_starts = np.concatenate(([0], boundaries))
            self.block_keys = sorted_key[self.group_starts]
            self.block_nnz = np.diff(np.concatenate((self.group_starts, [sorted_key.size])))
        else:
            self.group_starts = np.zeros(0, dtype=np.int64)
            self.block_keys = np.zeros(0, dtype=np.int64)
            self.block_nnz = np.zeros(0, dtype=np.int64)
        self._nnz_key = key  # per-nonzero block key, in CSR order

    # ------------------------------------------------------------------
    def to_arrays(self) -> dict:
        """The partition's derived arrays, for serialisation.

        Together with the canonical CSR matrix (``self.A``) and ``b`` these
        reconstruct the partition via :meth:`from_arrays` without re-running
        the block-key argsort — the point of the on-disk asset store.  The
        ``cached_property`` statistics (exponent bases etc.) are *not*
        included; they recompute deterministically from ``A.data`` on demand.
        """
        return {
            "order": self.order,
            "group_starts": self.group_starts,
            "block_keys": self.block_keys,
            "block_nnz": self.block_nnz,
            "nnz_key": self._nnz_key,
        }

    @classmethod
    def from_arrays(cls, A: sp.csr_matrix, b: int, order: np.ndarray,
                    group_starts: np.ndarray, block_keys: np.ndarray,
                    block_nnz: np.ndarray, nnz_key: np.ndarray,
                    ) -> "BlockedMatrix":
        """Reattach a partition from :meth:`to_arrays` output without rebuilding.

        ``A`` must be the canonical CSR the partition was computed from
        (sorted, duplicate-free — ``BlockedMatrix.A`` as serialised); it is
        used as-is, so read-only memory-mapped arrays work and nothing is
        copied or re-sorted.  Only cheap structural consistency is checked
        here — content integrity is the caller's job (the asset store
        checksums every array).
        """
        b = check_nonnegative_int(b, "b")
        nnz = int(A.nnz)
        if order.shape != (nnz,) or nnz_key.shape != (nnz,):
            raise ValueError(
                f"order/nnz_key must have {nnz} entries, got "
                f"{order.shape}/{nnz_key.shape}")
        n_blocks = block_keys.shape[0]
        if group_starts.shape != (n_blocks,) or block_nnz.shape != (n_blocks,):
            raise ValueError(
                f"group_starts/block_nnz must match block_keys "
                f"({n_blocks} blocks), got {group_starts.shape}/{block_nnz.shape}")
        if int(block_nnz.sum()) != nnz:
            raise ValueError(
                f"block_nnz sums to {int(block_nnz.sum())}, matrix has {nnz}")
        self = object.__new__(cls)
        self.A = A
        self.b = b
        n_rows, n_cols = A.shape
        self.block_grid = (-(-n_rows // (1 << b)), -(-n_cols // (1 << b)))
        self.order = order
        self.group_starts = group_starts
        self.block_keys = block_keys
        self.block_nnz = block_nnz
        self._nnz_key = nnz_key
        return self

    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.A.shape

    @property
    def nnz(self) -> int:
        return int(self.A.nnz)

    @property
    def block_size(self) -> int:
        return 1 << self.b

    @property
    def n_blocks(self) -> int:
        """Number of occupied (nonzero) blocks = crossbar clusters required."""
        return int(self.block_keys.size)

    def block_coords(self) -> Tuple[np.ndarray, np.ndarray]:
        """(block-row, block-col) arrays of the occupied blocks."""
        nbc = self.block_grid[1]
        return self.block_keys // nbc, self.block_keys % nbc

    def dense_block(self, bi: int, bj: int) -> np.ndarray:
        """One ``2^b x 2^b`` dense block, zero-padded at ragged edges.

        This is exactly what a single crossbar cluster holds — the unit a
        :class:`repro.hardware.engine.ProcessingEngine` consumes.
        """
        size = self.block_size
        n_rows, n_cols = self.A.shape
        r0, c0 = bi * size, bj * size
        if not (0 <= r0 < n_rows and 0 <= c0 < n_cols):
            raise IndexError(f"block ({bi}, {bj}) outside grid {self.block_grid}")
        sub = self.A[r0:r0 + size, c0:c0 + size].toarray()
        if sub.shape == (size, size):
            return sub
        out = np.zeros((size, size), dtype=np.float64)
        out[: sub.shape[0], : sub.shape[1]] = sub
        return out

    # ------------------------------------------------------------------
    @cached_property
    def _exponents(self) -> np.ndarray:
        _, exp, _ = ieee.decompose(self.A.data)
        return exp

    @cached_property
    def block_eb(self) -> np.ndarray:
        """Per-block Eq. 5 exponent base (round of mean), block-grouped order."""
        exps = self._exponents[self.order].astype(np.float64)
        if exps.size == 0:
            return np.zeros(0, dtype=np.int32)
        sums = np.add.reduceat(exps, self.group_starts)
        means = sums / self.block_nnz
        return np.floor(means + 0.5).astype(np.int32)

    def exponent_bases(self, e: int, policy: str = "cover") -> np.ndarray:
        """Per-block exponent base under a policy (see ``ReFloatSpec.eb_policy``)."""
        if policy == "mean":
            return self.block_eb
        if policy != "cover":
            raise ValueError(f"policy must be 'cover' or 'mean', got {policy!r}")
        exps = self._exponents[self.order]
        if exps.size == 0:
            return np.zeros(0, dtype=np.int32)
        mx = np.maximum.reduceat(exps, self.group_starts).astype(np.int64)
        hi = (1 << (e - 1)) - 1 if e > 0 else 0
        return (mx - hi).astype(np.int32)

    @cached_property
    def block_exponent_range(self) -> np.ndarray:
        """Per-block (max - min) exponent spread, block-grouped order."""
        exps = self._exponents[self.order]
        if exps.size == 0:
            return np.zeros(0, dtype=np.int32)
        mx = np.maximum.reduceat(exps, self.group_starts)
        mn = np.minimum.reduceat(exps, self.group_starts)
        return (mx - mn).astype(np.int32)

    def per_nnz_eb(self, e: int = 3, policy: str = "cover") -> np.ndarray:
        """Exponent base of each nonzero's block, in CSR nonzero order."""
        expanded = np.repeat(self.exponent_bases(e, policy), self.block_nnz)
        out = np.empty(self.nnz, dtype=np.int32)
        out[self.order] = expanded
        return out

    def locality_bits(self) -> int:
        """Fig. 3d "locality": offset bits covering every block's exponent range.

        A block whose exponents span ``range = max - min`` binades is covered
        exactly by an ``e``-bit offset window when ``range <= 2^e - 1``; the
        matrix locality is the smallest such ``e`` over all blocks (>= 1).
        The paper's suite measures at most 7 binades per block, i.e. locality
        <= 3 — which is why ``e = 3`` loses nothing on exponents.
        """
        if self.nnz == 0:
            return 1
        max_range = int(self.block_exponent_range.max())
        e = 1
        while ((1 << e) - 1) < max_range:
            e += 1
        return e

    def matrix_exponent_bits(self) -> int:
        """Bits to cover the whole-matrix exponent span (the FP64 bar of Fig. 3d
        is 11; real matrices typically need fewer but we report the exact need)."""
        if self.nnz == 0:
            return 1
        exps = self._exponents
        span = int(exps.max()) - int(exps.min())
        bits = 1
        while ((1 << bits) - 1) < span:
            bits += 1
        return bits

    # ------------------------------------------------------------------
    def quantize(self, spec: ReFloatSpec) -> sp.csr_matrix:
        """Materialise the ReFloat-quantised matrix (same sparsity, new values).

        Functionally this *is* what the accelerator computes: by Eq. 9 the
        block MVMs with shared bases reproduce ``~A x`` where ``~A`` holds the
        per-block quantised values.  Symmetric inputs stay symmetric because
        blocks (i, j) and (j, i) see identical value multisets.
        """
        if spec.b != self.b:
            raise ValueError(
                f"spec block size 2^{spec.b} does not match partition 2^{self.b}"
            )
        qdata, _ = quantize_values(
            self.A.data, spec.e, spec.f,
            eb=self.per_nnz_eb(spec.e, spec.eb_policy),
            rounding=spec.rounding, underflow=spec.underflow,
        )
        Q = sp.csr_matrix((qdata, self.A.indices.copy(), self.A.indptr.copy()),
                          shape=self.A.shape)
        return Q

    def quantization_error(self, spec: ReFloatSpec) -> dict:
        """Elementwise relative-error statistics of :meth:`quantize`."""
        Q = self.quantize(spec)
        rel = np.abs(Q.data - self.A.data) / np.abs(self.A.data)
        return {
            "max_rel": float(rel.max()) if rel.size else 0.0,
            "mean_rel": float(rel.mean()) if rel.size else 0.0,
            "frobenius_rel": float(
                np.linalg.norm(Q.data - self.A.data) / np.linalg.norm(self.A.data)
            ) if rel.size else 0.0,
        }

    # ------------------------------------------------------------------
    def storage_bits_refloat(self, spec: ReFloatSpec) -> int:
        """Total bits to store the matrix in ReFloat format (Sec. IV-A accounting).

        Per nonzero: 2 in-block index fields of ``b`` bits each plus the
        ``1 + e + f`` value bits.  Per occupied block: two ``(32 - b)``-bit
        block indices plus the 11-bit exponent base.
        """
        if spec.b != self.b:
            raise ValueError("spec.b must match the partition b")
        per_nnz = 2 * self.b + spec.matrix_value_bits
        per_block = 2 * (32 - self.b) + 11
        return int(self.nnz * per_nnz + self.n_blocks * per_block)

    def storage_bits_double(self) -> int:
        """Bits for the COO double-precision baseline: 32+32 index + 64 value."""
        return int(self.nnz * (32 + 32 + 64))

    def occupancy_stats(self) -> dict:
        """Block-occupancy summary (drives the accelerator mapping rounds)."""
        if self.n_blocks == 0:
            return {"n_blocks": 0, "mean_nnz": 0.0, "max_nnz": 0, "density": 0.0}
        return {
            "n_blocks": self.n_blocks,
            "mean_nnz": float(self.block_nnz.mean()),
            "max_nnz": int(self.block_nnz.max()),
            "density": float(self.block_nnz.mean()) / (self.block_size ** 2),
        }
