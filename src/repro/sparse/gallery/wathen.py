"""The Wathen matrix: random-coefficient serendipity FEM mass matrix.

``wathen(nx, ny)`` is the classic SPD test matrix (Higham's gallery): the
consistent mass matrix of 8-node serendipity quadrilaterals with a random
density per element.  Dimensions ``N = 3*nx*ny + 2*nx + 2*ny + 1``; the paper's
wathen100 is ``wathen(100, 100)`` (N = 30401) and wathen120 is
``wathen(120, 100)`` (N = 36441).

The serendipity mass matrix has negative off-diagonal entries, so assembled
row sums stay comparable to the largest entries — the property that keeps the
Feinberg baseline convergent on the wathen matrices while it diverges on the
all-positive mass matrices (see DESIGN.md).
"""

from __future__ import annotations

import scipy.sparse as sp

from repro.sparse.gallery.fem import assemble, element_mass
from repro.sparse.gallery.meshes import serendipity_grid
from repro.util.rng import SeedLike, default_rng

__all__ = ["wathen"]


def wathen(nx: int, ny: int, seed: SeedLike = None, scale: float = 1.0,
           rho_min: float = 0.02) -> sp.csr_matrix:
    """Assemble the Wathen matrix with random densities per element.

    Parameters
    ----------
    nx, ny : int
        Element grid dimensions.
    seed : int | Generator | None
        Randomness for the element densities.
    scale : float
        Global multiplier applied to all entries (used to place the matrix in
        a target magnitude range without changing its conditioning).
    rho_min : float
        Densities are ``100 * U(rho_min, 1)``.  MATLAB's gallery uses
        ``100 * U(0, 1)``; bounding away from zero keeps the within-block
        exponent spread inside the paper's measured locality (Fig. 3d shows
        at most 7 binades per block across the suite) — an unbounded density
        tail would produce arbitrarily small entries and break that property.
        Physically, an element with density ~0 is a void, which the actual
        wathen100/wathen120 discretisations do not contain.
    """
    if not 0.0 <= rho_min < 1.0:
        raise ValueError(f"rho_min must be in [0, 1), got {rho_min}")
    rng = default_rng(seed)
    n_nodes, conn = serendipity_grid(nx, ny)
    local = element_mass("serendipity_quad", order=4)
    rho = 100.0 * rng.uniform(rho_min, 1.0, conn.shape[0])
    A = assemble(n_nodes, conn, local, coeff=rho * scale)
    return A
