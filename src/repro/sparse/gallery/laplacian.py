"""Structured Laplacian-type SPD operators (stencil and Kronecker builds)."""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.util.validation import check_positive_int

__all__ = [
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "anisotropic_periodic_2d",
]


def laplacian_1d(n: int, periodic: bool = False) -> sp.csr_matrix:
    """1-D second-difference matrix (Dirichlet by default)."""
    n = check_positive_int(n, "n")
    main = 2.0 * np.ones(n)
    off = -np.ones(n - 1)
    T = sp.diags([off, main, off], [-1, 0, 1], format="lil")
    if periodic and n > 2:
        T[0, n - 1] = -1.0
        T[n - 1, 0] = -1.0
    return sp.csr_matrix(T)


def laplacian_2d(nx: int, ny: Optional[int] = None, periodic: bool = False) -> sp.csr_matrix:
    """5-point 2-D Laplacian via Kronecker sum (SPD for Dirichlet)."""
    ny = nx if ny is None else ny
    Tx = laplacian_1d(nx, periodic)
    Ty = laplacian_1d(ny, periodic)
    Ix = sp.identity(nx, format="csr")
    Iy = sp.identity(ny, format="csr")
    return (sp.kron(Iy, Tx) + sp.kron(Ty, Ix)).tocsr()


def laplacian_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None,
                 periodic: bool = False) -> sp.csr_matrix:
    """7-point 3-D Laplacian via Kronecker sum."""
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    Tx = laplacian_1d(nx, periodic)
    Ty = laplacian_1d(ny, periodic)
    Tz = laplacian_1d(nz, periodic)
    Ix = sp.identity(nx, format="csr")
    Iy = sp.identity(ny, format="csr")
    Iz = sp.identity(nz, format="csr")
    return (
        sp.kron(Iz, sp.kron(Iy, Tx))
        + sp.kron(Iz, sp.kron(Ty, Ix))
        + sp.kron(Tz, sp.kron(Iy, Ix))
    ).tocsr()


def anisotropic_periodic_2d(nx: int, ny: Optional[int] = None,
                            epsilon: float = 1e-2, shift: float = 1e-4) -> sp.csr_matrix:
    """Anisotropic periodic Laplacian plus a diagonal shift (gridgena analog).

    ``A = eps * Lx + Ly + shift * I`` with periodic boundaries.  Row sums are
    the constant ``shift`` (the periodic Laplacian annihilates constants), so
    ``A @ ones = shift * ones`` — the constant vector is an eigenvector, which
    is why CG/BiCGSTAB converge on it in a single iteration (the curious
    ``#ite = 1`` row of the paper's Table VI).  The condition number is
    ``(lambda_max + shift) / shift`` with ``lambda_max ~ 4(1 + eps)``; the
    default shift targets kappa ~ 5e5 like gridgena.
    """
    ny = nx if ny is None else ny
    if epsilon <= 0 or shift <= 0:
        raise ValueError("epsilon and shift must be positive")
    Tx = laplacian_1d(nx, periodic=True)
    Ty = laplacian_1d(ny, periodic=True)
    Ix = sp.identity(nx, format="csr")
    Iy = sp.identity(ny, format="csr")
    A = epsilon * sp.kron(Iy, Tx) + sp.kron(Ty, Ix)
    return (A + shift * sp.identity(nx * ny)).tocsr()
