"""Synthetic SPD matrix gallery standing in for the SuiteSparse evaluation set."""

from repro.sparse.gallery.fem import (
    assemble,
    element_mass,
    element_stiffness,
    shape_q1_hex,
    shape_q1_quad,
    shape_serendipity_quad,
)
from repro.sparse.gallery.generators import (
    hex_mass_matrix,
    minimal_surface_2d,
    positive_stencil_3d,
    scatter_permute,
    shifted_laplacian_2d,
    shifted_laplacian_3d,
    smooth_lognormal_field,
    triangle_coupling_matrix,
    variable_coefficient_stiffness_2d,
)
from repro.sparse.gallery.laplacian import (
    anisotropic_periodic_2d,
    laplacian_1d,
    laplacian_2d,
    laplacian_3d,
)
from repro.sparse.gallery.meshes import (
    hex_grid,
    quad_grid,
    serendipity_grid,
    triangle_dual_adjacency,
)
from repro.sparse.gallery.suite import (
    MatrixSpec,
    PAPER_SUITE,
    build_matrix,
    resolve_scale,
    suite_ids,
)
from repro.sparse.gallery.wathen import wathen

__all__ = [
    "assemble",
    "element_mass",
    "element_stiffness",
    "shape_q1_hex",
    "shape_q1_quad",
    "shape_serendipity_quad",
    "hex_mass_matrix",
    "minimal_surface_2d",
    "positive_stencil_3d",
    "scatter_permute",
    "shifted_laplacian_2d",
    "shifted_laplacian_3d",
    "smooth_lognormal_field",
    "triangle_coupling_matrix",
    "variable_coefficient_stiffness_2d",
    "anisotropic_periodic_2d",
    "laplacian_1d",
    "laplacian_2d",
    "laplacian_3d",
    "hex_grid",
    "quad_grid",
    "serendipity_grid",
    "triangle_dual_adjacency",
    "MatrixSpec",
    "PAPER_SUITE",
    "build_matrix",
    "resolve_scale",
    "suite_ids",
    "wathen",
]
