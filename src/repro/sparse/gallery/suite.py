"""The 12-matrix evaluation suite (Table V analogs).

Each entry maps a SuiteSparse matrix from the paper's Table V to a synthetic
generator whose structure class matches (see DESIGN.md for the substitution
argument).  Three size scales are provided:

* ``"test"`` — tiny instances for unit tests (seconds for the whole suite);
* ``"default"`` — about quarter scale, used by the benchmark harness;
* ``"paper"`` — the paper's row counts (within the nearest structured-grid
  size), enabled with ``REPRO_FULL=1`` or ``scale="paper"``.

``fv_override`` records the paper's per-matrix vector-fraction exception
(Table VII: fv=16 for wathen100 / Dubcova2, fv=8 elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import scipy.sparse as sp

from repro.api.config import SCALES, active as _active_config

from repro.sparse.gallery.generators import (
    hex_mass_matrix,
    minimal_surface_2d,
    positive_stencil_3d,
    scatter_permute,
    shifted_laplacian_3d,
    triangle_coupling_matrix,
    variable_coefficient_stiffness_2d,
)
from repro.sparse.gallery.wathen import wathen

__all__ = ["MatrixSpec", "PAPER_SUITE", "suite_ids", "build_matrix", "resolve_scale"]

# SCALES lives in repro.api.config (the single source of truth, shared with
# RunConfig validation) and is re-exported here for back-compat.


@dataclass(frozen=True)
class MatrixSpec:
    """One row of Table V with its generator and scale parameters."""

    sid: int                       # SuiteSparse ID used by the paper
    name: str                      # SuiteSparse name
    kind: str                      # "mass" (all-positive) | "stiffness" | ...
    paper_rows: int
    paper_nnz: int
    paper_nnz_per_row: float
    paper_kappa: float
    build: Callable[[str], sp.csr_matrix]
    fv_override: Optional[int] = None  # Table VII exception (fv=16)
    feinberg_converges: bool = True    # the paper's Fig. 8 NC set

    def matrix(self, scale: str = "default") -> sp.csr_matrix:
        scale = resolve_scale(scale)
        return self.build(scale)


def resolve_scale(scale: Optional[str]) -> str:
    """Resolve a scale name against the active config when ``None``.

    The config's scale comes from an installed :class:`RunConfig` or from
    the environment (``REPRO_FULL=1`` means ``"paper"``); unset everywhere
    means ``"default"``.
    """
    if scale is None:
        scale = _active_config().scale or "default"
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {SCALES}, got {scale!r}")
    return scale


def _sizes(test, default, paper):
    return {"test": test, "default": default, "paper": paper}


def _make_suite() -> List[MatrixSpec]:
    specs: List[MatrixSpec] = []

    def add(sid, name, kind, rows, nnz, nnzr, kappa, builder, fv=None, fc=True):
        specs.append(MatrixSpec(sid, name, kind, rows, nnz, nnzr, kappa,
                                builder, fv_override=fv, feinberg_converges=fc))

    # --- crystm01/02/03: crystal FEM mass matrices (tiny positive entries) --
    for sid, name, rows, nnz, nnzr, kappa, cells in (
        (353, "crystm01", 4875, 105339, 21.6, 4.21e2, _sizes(5, 10, 16)),
        (354, "crystm02", 13965, 322905, 23.1, 4.49e2, _sizes(6, 14, 23)),
        (355, "crystm03", 24696, 583770, 23.6, 4.68e2, _sizes(7, 17, 28)),
    ):
        add(sid, name, "mass", rows, nnz, nnzr, kappa,
            (lambda c, s=sid: lambda scale: hex_mass_matrix(
                c[scale], density_sigma=1.0, seed=s))(cells),
            fc=False)

    # --- minsurfo: minimal-surface Hessian (variable-coeff + prop. shift) ---
    n1313 = _sizes(21, 102, 203)
    add(1313, "minsurfo", "stiffness", 40806, 203622, 5.0, 8.11e1,
        lambda scale: minimal_surface_2d(n1313[scale], seed=1313))

    # --- shallow_water1: all-positive 4-nnz/row coupling operator -----------
    k2261 = _sizes(16, 101, 202)
    add(2261, "shallow_water1", "mass", 81920, 327680, 4.0, 3.63e0,
        lambda scale: triangle_coupling_matrix(k2261[scale], seed=2261),
        fc=False)

    # --- wathen100 / wathen120: random serendipity FEM mass -----------------
    w1288 = _sizes((10, 10), (50, 50), (100, 100))
    add(1288, "wathen100", "wathen", 30401, 471601, 15.5, 8.24e3,
        lambda scale: wathen(*w1288[scale], seed=1288), fv=16)
    w1289 = _sizes((12, 10), (60, 50), (120, 100))
    add(1289, "wathen120", "wathen", 36441, 565761, 15.5, 4.05e3,
        lambda scale: wathen(*w1289[scale], seed=1289))

    # --- gridgena: anisotropic periodic operator, constant row sums ---------
    n1311 = _sizes(20, 110, 221)
    add(1311, "gridgena", "stiffness", 48962, 512084, 10.5, 5.74e5,
        lambda scale: _gridgena(n1311[scale]))

    # --- thermomech_TC: conductivity stiffness, scattered ordering ----------
    n2257 = _sizes(10, 29, 47)
    add(2257, "thermomech_TC", "stiffness", 102158, 711558, 6.9, 1.23e2,
        lambda scale: scatter_permute(
            shifted_laplacian_3d(n2257[scale], shift_ratio=1 / 123),
            fraction=0.5, seed=2257))

    # --- Dubcova2: variable-coefficient 2-D stiffness ------------------------
    n1848 = _sizes(12, 128, 256)
    add(1848, "Dubcova2", "stiffness", 65025, 1030225, 15.84, 1.04e4,
        lambda scale: variable_coefficient_stiffness_2d(
            n1848[scale], contrast_sigma=0.3, seed=1848),
        fv=16)

    # --- thermomech_dM: mass companion of TC, scattered, positive ----------
    n2259 = _sizes(10, 34, 59)
    add(2259, "thermomech_dM", "mass", 204316, 1423116, 6.9, 1.24e2,
        lambda scale: scatter_permute(
            positive_stencil_3d(n2259[scale], seed=2259),
            fraction=0.5, seed=22590),
        fc=False)

    # --- qa8fm: acoustics FEM mass (positive, well conditioned) -------------
    c845 = _sizes(6, 19, 40)
    add(845, "qa8fm", "mass", 66127, 1660579, 25.1, 1.10e2,
        lambda scale: hex_mass_matrix(c845[scale], density_sigma=0.4, seed=845),
        fc=False)

    specs.sort(key=lambda s: PAPER_ORDER.index(s.sid))
    return specs


def _gridgena(n: int) -> sp.csr_matrix:
    from repro.sparse.gallery.laplacian import anisotropic_periodic_2d

    # kappa ~ 5.7e5 via the diagonal shift: lambda_max ~ 4*(1+eps) + shift.
    # epsilon = 2^-5 keeps the weak couplings exactly representable at f = 3
    # and within the e = 3 offset window (exponent -5 vs the diagonal's +1),
    # so the quantised matrix keeps constant row sums and b = A @ ones stays
    # an eigenvector — reproducing the paper's curious 1-iteration row of
    # Table VI in refloat as well as in double.
    return anisotropic_periodic_2d(n, epsilon=2.0 ** -5, shift=4.125 / 5.74e5)


#: Table V row order.
PAPER_ORDER = [353, 1313, 354, 2261, 1288, 1311, 1289, 355, 2257, 1848, 2259, 845]

PAPER_SUITE: Dict[int, MatrixSpec] = {s.sid: s for s in _make_suite()}


def suite_ids() -> List[int]:
    """Matrix IDs in the paper's Table V order."""
    return list(PAPER_ORDER)


def build_matrix(sid: int, scale: Optional[str] = None) -> sp.csr_matrix:
    """Build the analog of a paper matrix by SuiteSparse ID."""
    if sid not in PAPER_SUITE:
        raise KeyError(f"unknown matrix id {sid}; known: {suite_ids()}")
    return PAPER_SUITE[sid].matrix(resolve_scale(scale))
