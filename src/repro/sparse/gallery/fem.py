"""Finite-element local matrices and global assembly, from scratch.

Element matrices are computed by Gauss–Legendre quadrature over reference
elements with the standard isoparametric shape functions:

* 4-node bilinear quad (Q1),
* 8-node trilinear hexahedron (Q1),
* 8-node serendipity quad (quadratic without the centre node — the Wathen
  element; its consistent mass matrix has *negative* entries, which matters
  for the Feinberg convergence behaviour).

Assembly is fully vectorised: per-element coefficient times the shared local
matrix scattered into COO triplets.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "shape_q1_quad",
    "shape_q1_hex",
    "shape_serendipity_quad",
    "element_mass",
    "element_stiffness",
    "assemble",
]


def shape_q1_quad(xi: np.ndarray, eta: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Bilinear shape functions and gradients on [-1,1]^2.

    Returns ``(N, dN)`` with ``N`` of shape ``(npts, 4)`` and ``dN`` of shape
    ``(npts, 2, 4)`` (derivative axis first: d/dxi, d/deta).
    Node order: (-1,-1), (1,-1), (1,1), (-1,1).
    """
    sx = np.array([-1.0, 1.0, 1.0, -1.0])
    sy = np.array([-1.0, -1.0, 1.0, 1.0])
    xi = np.asarray(xi)[:, None]
    eta = np.asarray(eta)[:, None]
    N = 0.25 * (1 + sx * xi) * (1 + sy * eta)
    dN = np.stack([
        0.25 * sx * (1 + sy * eta) * np.ones_like(xi),
        0.25 * sy * (1 + sx * xi) * np.ones_like(eta),
    ], axis=1)
    return N, dN


def shape_q1_hex(xi, eta, zeta) -> Tuple[np.ndarray, np.ndarray]:
    """Trilinear shape functions/gradients on [-1,1]^3 (8 nodes).

    Node order matches :func:`repro.sparse.gallery.meshes.hex_grid`:
    bottom face CCW then top face CCW.
    """
    sx = np.array([-1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0, -1.0])
    sy = np.array([-1.0, -1.0, 1.0, 1.0, -1.0, -1.0, 1.0, 1.0])
    sz = np.array([-1.0, -1.0, -1.0, -1.0, 1.0, 1.0, 1.0, 1.0])
    xi = np.asarray(xi)[:, None]
    eta = np.asarray(eta)[:, None]
    zeta = np.asarray(zeta)[:, None]
    N = 0.125 * (1 + sx * xi) * (1 + sy * eta) * (1 + sz * zeta)
    dN = np.stack([
        0.125 * sx * (1 + sy * eta) * (1 + sz * zeta),
        0.125 * sy * (1 + sx * xi) * (1 + sz * zeta),
        0.125 * sz * (1 + sx * xi) * (1 + sy * eta),
    ], axis=1)
    return N, dN


def shape_serendipity_quad(xi, eta) -> Tuple[np.ndarray, np.ndarray]:
    """8-node serendipity shape functions/gradients on [-1,1]^2.

    Node order: corners (-1,-1), (0,-1) midside, (1,-1), (1,0) midside,
    (1,1), (0,1) midside, (-1,1), (-1,0) midside — matching
    :func:`repro.sparse.gallery.meshes.serendipity_grid`.
    """
    xi = np.asarray(xi, dtype=np.float64)
    eta = np.asarray(eta, dtype=np.float64)
    x, y = xi[:, None], eta[:, None]
    one = np.ones_like(x)

    # Corner nodes: N = 1/4 (1+sx x)(1+sy y)(sx x + sy y - 1)
    # Midside nodes on y = +-1: N = 1/2 (1-x^2)(1+sy y)
    # Midside nodes on x = +-1: N = 1/2 (1+sx x)(1-y^2)
    def corner(sx, sy):
        n = 0.25 * (1 + sx * x) * (1 + sy * y) * (sx * x + sy * y - 1)
        dx = 0.25 * sx * (1 + sy * y) * (2 * sx * x + sy * y)
        dy = 0.25 * sy * (1 + sx * x) * (sx * x + 2 * sy * y)
        return n, dx, dy

    def mid_h(sy):  # midside on horizontal edge y = sy
        n = 0.5 * (1 - x * x) * (1 + sy * y)
        dx = -x * (1 + sy * y)
        dy = 0.5 * sy * (1 - x * x) * one
        return n, dx, dy

    def mid_v(sx):  # midside on vertical edge x = sx
        n = 0.5 * (1 + sx * x) * (1 - y * y)
        dx = 0.5 * sx * (1 - y * y) * one
        dy = -(1 + sx * x) * y
        return n, dx, dy

    nodes = [corner(-1, -1), mid_h(-1), corner(1, -1), mid_v(1),
             corner(1, 1), mid_h(1), corner(-1, 1), mid_v(-1)]
    N = np.concatenate([n for n, _, _ in nodes], axis=1)
    dNx = np.concatenate([dx for _, dx, _ in nodes], axis=1)
    dNy = np.concatenate([dy for _, _, dy in nodes], axis=1)
    dN = np.stack([dNx, dNy], axis=1)
    return N, dN


@lru_cache(maxsize=32)
def _gauss_points(dim: int, order: int) -> Tuple[np.ndarray, np.ndarray]:
    """Tensor-product Gauss-Legendre points/weights on [-1,1]^dim."""
    pts, wts = np.polynomial.legendre.leggauss(order)
    grids = np.meshgrid(*([pts] * dim), indexing="ij")
    coords = np.stack([g.ravel() for g in grids], axis=1)
    wgrids = np.meshgrid(*([wts] * dim), indexing="ij")
    weights = np.prod(np.stack([w.ravel() for w in wgrids], axis=1), axis=1)
    return coords, weights


_SHAPES = {
    "q1_quad": (shape_q1_quad, 2),
    "q1_hex": (shape_q1_hex, 3),
    "serendipity_quad": (shape_serendipity_quad, 2),
}


@lru_cache(maxsize=32)
def element_mass(element: str, order: int = 4) -> np.ndarray:
    """Consistent mass matrix on the reference element: M_ij = ∫ N_i N_j.

    Physical elements scale by ``detJ = prod(h_k / 2)``; callers multiply by
    that (structured grids: constant Jacobian).
    """
    shape_fn, dim = _lookup(element)
    coords, w = _gauss_points(dim, order)
    N, _ = shape_fn(*coords.T)
    return (N.T * w) @ N


@lru_cache(maxsize=32)
def element_stiffness(element: str, order: int = 4,
                      anisotropy: Tuple[float, ...] = ()) -> np.ndarray:
    """Reference stiffness matrix K_ij = ∫ (D grad N_i) . grad N_j.

    ``anisotropy`` gives per-axis diffusion coefficients (default all 1).
    For physical elements of size ``h``: multiply by ``detJ`` and the
    per-axis gradient scale ``(2/h_k)^2`` — callers handle it; for cubes with
    equal ``h`` the factor is ``detJ * (2/h)^2 = (h/2)^(d-2) * ...`` (handled
    by the generator).
    """
    shape_fn, dim = _lookup(element)
    diff = np.ones(dim) if not anisotropy else np.asarray(anisotropy, dtype=float)
    if diff.shape != (dim,):
        raise ValueError(f"anisotropy must have {dim} entries")
    coords, w = _gauss_points(dim, order)
    _, dN = shape_fn(*coords.T)  # (npts, dim, nnodes)
    K = np.einsum("pdi,pdj,p,d->ij", dN, dN, w, diff)
    return K


def _lookup(element: str):
    if element not in _SHAPES:
        raise KeyError(f"unknown element {element!r}; have {sorted(_SHAPES)}")
    return _SHAPES[element]


def assemble(n_nodes: int, conn: np.ndarray, local: np.ndarray,
             coeff=None) -> sp.csr_matrix:
    """Assemble ``sum_e coeff[e] * local`` over elements into a CSR matrix.

    Parameters
    ----------
    n_nodes : int
    conn : (n_elem, k) int array of node ids per element.
    local : (k, k) shared reference element matrix.
    coeff : None | scalar | (n_elem,) per-element multiplier.
    """
    conn = np.asarray(conn, dtype=np.int64)
    n_elem, k = conn.shape
    if local.shape != (k, k):
        raise ValueError(f"local matrix must be {k}x{k}, got {local.shape}")
    if coeff is None:
        coeff = np.ones(n_elem)
    coeff = np.broadcast_to(np.asarray(coeff, dtype=np.float64), (n_elem,))

    rows = np.repeat(conn, k, axis=1).ravel()          # (n_elem * k * k,)
    cols = np.tile(conn, (1, k)).ravel()
    vals = (coeff[:, None] * local.ravel()[None, :]).ravel()
    A = sp.coo_matrix((vals, (rows, cols)), shape=(n_nodes, n_nodes)).tocsr()
    A.sum_duplicates()
    A.eliminate_zeros()
    return A
