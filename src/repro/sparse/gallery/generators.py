"""SPD generators matched to the evaluation-suite matrix classes.

Each generator controls the four properties that drive the paper's results on
its matrix class (see DESIGN.md): per-block exponent locality, entry sign /
magnitude structure (all-positive mass rows vs mixed-sign stiffness rows),
condition number, and block-occupancy scatter.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.gallery.fem import assemble, element_mass, element_stiffness
from repro.sparse.gallery.laplacian import laplacian_2d, laplacian_3d
from repro.sparse.gallery.meshes import hex_grid, quad_grid, triangle_dual_adjacency
from repro.util.rng import SeedLike, default_rng
from repro.util.validation import check_positive_int

__all__ = [
    "smooth_lognormal_field",
    "hex_mass_matrix",
    "triangle_coupling_matrix",
    "variable_coefficient_stiffness_2d",
    "shifted_laplacian_2d",
    "minimal_surface_2d",
    "shifted_laplacian_3d",
    "positive_stencil_3d",
    "scatter_permute",
]


def smooth_lognormal_field(points: np.ndarray, sigma: float,
                           seed: SeedLike = None, n_modes: int = 6) -> np.ndarray:
    """Spatially smooth lognormal coefficient field ``exp(sigma * g(x))``.

    ``g`` is a random low-frequency Fourier series normalised to unit variance.
    Smoothness matters for the reproduction: real material fields (crystal
    density, PDE coefficients) vary slowly, so the exponent spread *within one
    128x128 matrix block* stays within the paper's measured locality (<= 7
    binades, Fig. 3d) even when the global contrast — and hence the condition
    number — is large.  IID randomness would break that locality and, with it,
    ReFloat's convergence (see DESIGN.md).
    """
    points = np.atleast_2d(np.asarray(points, dtype=np.float64))
    rng = default_rng(seed)
    dim = points.shape[1]
    amps = rng.standard_normal(n_modes)
    freqs = rng.integers(1, 4, size=(n_modes, dim)).astype(np.float64)
    phases = rng.uniform(0, 2 * np.pi, n_modes)
    g = np.zeros(points.shape[0])
    for a, k, phi in zip(amps, freqs, phases):
        g += a * np.sin(2 * np.pi * points @ k + phi)
    norm = np.sqrt(np.sum(amps ** 2) / 2.0)
    return np.exp(sigma * g / max(norm, 1e-12))


def hex_mass_matrix(n_cells: int, density_sigma: float = 1.0,
                    scale: float = 2.0 ** -30, seed: SeedLike = None) -> sp.csr_matrix:
    """Q1 hexahedral consistent mass matrix (crystm / qa8fm analog).

    All entries are positive (trilinear shape functions are non-negative) and
    row sums exceed the largest entry by ~27/8, the structure that defeats the
    Feinberg vector window.  ``density_sigma`` sets a lognormal per-element
    density spread that inflates the condition number; ``scale`` is a global
    power-of-two multiplier placing entries in the (tiny) magnitude range of
    the real crystal mass matrices while exactly preserving binade structure.
    """
    n_cells = check_positive_int(n_cells, "n_cells")
    rng = default_rng(seed)
    n_nodes, conn = hex_grid(n_cells, n_cells, n_cells)
    local = element_mass("q1_hex", order=3)
    kk, jj, ii = np.meshgrid(np.arange(n_cells), np.arange(n_cells),
                             np.arange(n_cells), indexing="ij")
    centers = (np.stack([ii.ravel(), jj.ravel(), kk.ravel()], axis=1) + 0.5) / n_cells
    rho = smooth_lognormal_field(centers, density_sigma, seed=rng)
    return assemble(n_nodes, conn, local, coeff=rho * scale)


def triangle_coupling_matrix(k: int, diag: tuple = (0.55, 0.95),
                             coupling: tuple = (0.05, 0.15),
                             seed: SeedLike = None) -> sp.csr_matrix:
    """All-positive SPD operator on the triangle-neighbour graph
    (shallow_water analog: exactly 4 nonzeros per interior row).

    ``A = D + W`` with random positive diagonal ``D`` and a random positive
    weight per triangle-adjacency edge.  SPD because
    ``min(diag) > 3 * max(coupling)``.  Row sums straddle the binade boundary
    at 1.0 while all entries sit below it — so under the Feinberg window
    (anchored at the matrix's max entry exponent) *some but not all* solver
    vector components alias, which is the catastrophic, non-uniform corruption
    that makes [32] diverge here (a uniform wrap would be a benign global
    rescaling).
    """
    k = check_positive_int(k, "k")
    lo, hi = coupling
    dlo, dhi = diag
    if not (0 < lo <= hi) or dlo <= 3 * hi or dlo > dhi:
        raise ValueError("need 0 < lo <= hi and dlo > 3*hi and dlo <= dhi")
    rng = default_rng(seed)
    n, eu, ev = triangle_dual_adjacency(k, k)
    w = rng.uniform(lo, hi, eu.size)
    d = rng.uniform(dlo, dhi, n)
    rows = np.concatenate((eu, ev, np.arange(n)))
    cols = np.concatenate((ev, eu, np.arange(n)))
    vals = np.concatenate((w, w, d))
    return sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()


def variable_coefficient_stiffness_2d(n_cells: int, contrast_sigma: float = 0.6,
                                      seed: SeedLike = None) -> sp.csr_matrix:
    """Q1 quad stiffness with lognormal coefficient, Dirichlet BCs
    (Dubcova analog: mixed-sign rows, ~9 nonzeros per row, kappa ~ 1e4).

    Boundary nodes are eliminated, leaving ``(n_cells - 1)^2`` unknowns.
    """
    n_cells = check_positive_int(n_cells, "n_cells")
    if n_cells < 3:
        raise ValueError("n_cells must be >= 3 for a nonempty interior")
    rng = default_rng(seed)
    n_nodes, conn = quad_grid(n_cells, n_cells)
    local = element_stiffness("q1_quad", order=2)
    jj, ii = np.meshgrid(np.arange(n_cells), np.arange(n_cells), indexing="ij")
    centers = (np.stack([ii.ravel(), jj.ravel()], axis=1) + 0.5) / n_cells
    kappa_e = smooth_lognormal_field(centers, contrast_sigma, seed=rng)
    A = assemble(n_nodes, conn, local, coeff=kappa_e)
    # Interior selection: nodes with grid coords in [1, n_cells-1].
    idx = np.arange(n_nodes)
    gx, gy = idx % (n_cells + 1), idx // (n_cells + 1)
    interior = np.flatnonzero((gx > 0) & (gx < n_cells) & (gy > 0) & (gy < n_cells))
    return sp.csr_matrix(A[np.ix_(interior, interior)])


def shifted_laplacian_2d(n: int, shift_ratio: float = 1 / 81) -> sp.csr_matrix:
    """5-point Dirichlet Laplacian plus a diagonal shift.

    The shift pins the condition number near ``1/shift_ratio`` regardless of
    grid size.  Note: under aggressive fraction truncation a *uniform* small
    shift is erased from the (uniform) diagonal, inflating the quantised
    condition number — use :func:`minimal_surface_2d` for the minsurfo analog,
    whose varying coefficients avoid that artifact.
    """
    A = laplacian_2d(n)
    shift = 8.0 * shift_ratio  # lambda_max of the 5-point stencil is < 8
    return (A + shift * sp.identity(A.shape[0])).tocsr()


def minimal_surface_2d(n: int, sigma: float = 0.5, gamma: float = 0.12,
                       seed: SeedLike = None) -> sp.csr_matrix:
    """Minimal-surface-Hessian analog (minsurfo): variable-coefficient Q1
    stiffness plus a *proportional* diagonal shift ``gamma * diag(K)``.

    The minimal-surface Hessian is a Laplacian with solution-dependent
    coefficients plus a positive-definite low-order term; the proportional
    shift pins kappa near ``(1 + gamma) * 4 / gamma`` (~81 at the default,
    the paper's value) and — unlike a uniform additive shift — survives
    fraction truncation because it scales with each (varying) diagonal entry.
    """
    n = check_positive_int(n, "n")
    if n < 3:
        raise ValueError("n must be >= 3 for a nonempty interior")
    if gamma <= 0:
        raise ValueError("gamma must be positive")
    rng = default_rng(seed)
    n_nodes, conn = quad_grid(n, n)
    local = element_stiffness("q1_quad", order=2)
    jj, ii = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    centers = (np.stack([ii.ravel(), jj.ravel()], axis=1) + 0.5) / n
    coef = smooth_lognormal_field(centers, sigma, seed=rng)
    K = assemble(n_nodes, conn, local, coeff=coef)
    idx = np.arange(n_nodes)
    gx, gy = idx % (n + 1), idx // (n + 1)
    interior = np.flatnonzero((gx > 0) & (gx < n) & (gy > 0) & (gy < n))
    K = sp.csr_matrix(K[np.ix_(interior, interior)])
    return (K + gamma * sp.diags(K.diagonal())).tocsr()


def shifted_laplacian_3d(n: int, shift_ratio: float = 1 / 123) -> sp.csr_matrix:
    """7-point Dirichlet Laplacian plus diagonal shift (thermomech_TC analog)."""
    A = laplacian_3d(n)
    shift = 12.0 * shift_ratio
    return (A + shift * sp.identity(A.shape[0])).tocsr()


def positive_stencil_3d(n: int, diag: tuple = (0.5, 0.9), coupling: float = 0.065,
                        scale: float = 2.0 ** -30, seed: SeedLike = None,
                        jitter: float = 0.2) -> sp.csr_matrix:
    """All-positive 7-point operator (thermomech_dM analog: a mass matrix).

    ``A = D + C`` with a random positive diagonal in ``diag`` and jittered
    positive couplings on grid edges.  SPD for
    ``min(diag) > 6 * coupling * (1 + jitter)``.  Interior row sums straddle
    the binade at 1.0 while entries stay below it — the non-uniform Feinberg
    aliasing condition (see :func:`triangle_coupling_matrix`).
    """
    n = check_positive_int(n, "n")
    dlo, dhi = diag
    if dlo <= 6 * coupling * (1 + jitter) or dlo > dhi:
        raise ValueError("need dlo > 6*coupling*(1+jitter) and dlo <= dhi for SPD")
    rng = default_rng(seed)
    L = laplacian_3d(n).tocoo()
    off = L.row != L.col
    rows, cols = L.row[off], L.col[off]
    # Symmetric jitter: hash the undirected edge so both triangles match.
    lo = np.minimum(rows, cols).astype(np.int64)
    hi = np.maximum(rows, cols).astype(np.int64)
    edge_key = lo * (n ** 3) + hi
    uniq, inverse = np.unique(edge_key, return_inverse=True)
    w_edge = coupling * (1.0 + jitter * (2 * rng.random(uniq.size) - 1))
    vals = w_edge[inverse]
    m = n ** 3
    d = rng.uniform(dlo, dhi, m)
    A = sp.coo_matrix(
        (np.concatenate((vals, d)),
         (np.concatenate((rows, np.arange(m))), np.concatenate((cols, np.arange(m))))),
        shape=(m, m),
    ).tocsr()
    return (A * scale).tocsr()


def scatter_permute(A: sp.csr_matrix, fraction: float = 0.5,
                    seed: SeedLike = None) -> sp.csr_matrix:
    """Symmetrically permute a random subset of indices (occupancy scatter).

    Real engineering matrices (thermomech_*) come with orderings that scatter
    nonzeros across many ``128 x 128`` blocks; mesh-native numbering is far too
    local.  Permuting ``fraction`` of the indices reproduces the scattered
    block occupancy that drives the accelerator's multi-round mapping, without
    changing the spectrum (similarity transform).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    A = sp.csr_matrix(A)
    n = A.shape[0]
    rng = default_rng(seed)
    perm = np.arange(n)
    chosen = rng.choice(n, size=int(round(fraction * n)), replace=False)
    perm[np.sort(chosen)] = chosen[np.argsort(rng.random(chosen.size))]
    # perm is a permutation: chosen slots filled by a shuffle of chosen ids.
    P = sp.csr_matrix((np.ones(n), (np.arange(n), perm)), shape=(n, n))
    return (P @ A @ P.T).tocsr()
