"""Structured meshes for the FEM gallery generators.

All meshes are logically structured (tensor grids) so connectivity is computed
with pure NumPy index arithmetic — no mesh libraries.  Node/element counts:

* ``quad_grid(nx, ny)``: bilinear quads, ``(nx+1)(ny+1)`` nodes.
* ``hex_grid(nx, ny, nz)``: trilinear hexahedra, ``(nx+1)(ny+1)(nz+1)`` nodes.
* ``serendipity_grid(nx, ny)``: 8-node quadratic quads (corner + edge-midside
  nodes, no centre node), ``3*nx*ny + 2*nx + 2*ny + 1`` nodes — the mesh
  underlying MATLAB's ``gallery('wathen')``.
* ``triangle_dual_adjacency(nx, ny)``: the 3-regular-ish adjacency of the
  triangles obtained by splitting each grid cell along a diagonal, used for
  the shallow-water analog (4 nonzeros per row including the diagonal).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.util.validation import check_positive_int

__all__ = [
    "quad_grid",
    "hex_grid",
    "serendipity_grid",
    "triangle_dual_adjacency",
]


def quad_grid(nx: int, ny: int) -> Tuple[int, np.ndarray]:
    """4-node quad connectivity on an ``nx x ny`` cell grid.

    Returns ``(n_nodes, conn)`` with ``conn`` of shape ``(nx*ny, 4)`` listing
    node ids counter-clockwise from the lower-left corner.
    """
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny, "ny")
    n_nodes = (nx + 1) * (ny + 1)
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    ll = (jj * (nx + 1) + ii).ravel()  # lower-left node of each cell
    conn = np.stack([ll, ll + 1, ll + nx + 2, ll + nx + 1], axis=1)
    return n_nodes, conn.astype(np.int64)


def hex_grid(nx: int, ny: int, nz: int) -> Tuple[int, np.ndarray]:
    """8-node hexahedron connectivity on an ``nx x ny x nz`` cell grid."""
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny, "ny")
    nz = check_positive_int(nz, "nz")
    n_nodes = (nx + 1) * (ny + 1) * (nz + 1)
    stride_y = nx + 1
    stride_z = (nx + 1) * (ny + 1)
    kk, jj, ii = np.meshgrid(np.arange(nz), np.arange(ny), np.arange(nx),
                             indexing="ij")
    base = (kk * stride_z + jj * stride_y + ii).ravel()
    conn = np.stack([
        base, base + 1, base + stride_y + 1, base + stride_y,
        base + stride_z, base + stride_z + 1,
        base + stride_z + stride_y + 1, base + stride_z + stride_y,
    ], axis=1)
    return n_nodes, conn.astype(np.int64)


def serendipity_grid(nx: int, ny: int) -> Tuple[int, np.ndarray]:
    """8-node serendipity quad connectivity (Wathen's mesh).

    Node layout per element (reference coordinates), in the conventional
    counter-clockwise order starting at the lower-left corner::

        7---6---5
        |       |
        8       4        (element-local ids 0..7 = nodes 1,2,3,4,5,6,7,8)
        |       |
        1---2---3

    Global numbering: corner nodes live on a ``(nx+1) x (ny+1)`` grid, the
    horizontal mid-edge nodes on an ``nx x (ny+1)`` grid, the vertical
    mid-edge nodes on an ``(nx+1) x ny`` grid; rows interleave so each "row
    band" contributes ``(2*nx + 1) + (nx + 1)`` nodes — giving the classic
    ``3*nx*ny + 2*nx + 2*ny + 1`` total.
    """
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny, "ny")
    row_full = 2 * nx + 1  # corners + horizontal midpoints along one y-level
    row_mid = nx + 1       # vertical midpoints between two y-levels
    band = row_full + row_mid
    n_nodes = 3 * nx * ny + 2 * nx + 2 * ny + 1

    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    jj = jj.ravel()
    ii = ii.ravel()
    bottom = jj * band + 2 * ii          # lower-left corner node
    midrow = jj * band + row_full + ii   # left vertical midpoint
    top = (jj + 1) * band + 2 * ii       # upper-left corner node
    conn = np.stack([
        bottom, bottom + 1, bottom + 2,   # 1, 2, 3 (bottom edge)
        midrow + 1,                       # 4 (right vertical midpoint)
        top + 2, top + 1, top,            # 5, 6, 7 (top edge, right to left)
        midrow,                           # 8 (left vertical midpoint)
    ], axis=1)
    return n_nodes, conn.astype(np.int64)


def triangle_dual_adjacency(nx: int, ny: int) -> Tuple[int, np.ndarray, np.ndarray]:
    """Edge list of the triangle-neighbour graph of a split quad grid.

    Each cell splits into a lower and an upper triangle (``2*nx*ny``
    triangles).  Two triangles are adjacent if they share an edge; interior
    triangles have exactly 3 neighbours (lower: right cell's upper? no —
    lower triangle neighbours: the upper triangle of the same cell, the upper
    triangle of the cell below, and the upper triangle of the cell to the
    left... with the diagonal from lower-left to upper-right:
    lower = (SW, SE, NE), upper = (SW, NE, NW)).

    Returns ``(n_triangles, edge_u, edge_v)`` with each undirected edge listed
    once (``u < v``).
    """
    nx = check_positive_int(nx, "nx")
    ny = check_positive_int(ny, "ny")
    n_tri = 2 * nx * ny
    jj, ii = np.meshgrid(np.arange(ny), np.arange(nx), indexing="ij")
    jj = jj.ravel()
    ii = ii.ravel()
    lower = 2 * (jj * nx + ii)      # triangle (SW, SE, NE)
    upper = lower + 1               # triangle (SW, NE, NW)

    edges_u = [lower]               # diagonal edge: lower <-> upper, same cell
    edges_v = [upper]

    # lower's bottom edge <-> upper triangle of the cell below (shares SW-SE).
    has_below = jj > 0
    edges_u.append(upper[has_below] - 2 * nx - 1 + 0)  # placeholder, fixed below
    edges_v.append(lower[has_below])
    # Recompute properly: cell below has index (jj-1, ii); its upper triangle
    # top edge is the NW-NE edge... the shared edge between vertically adjacent
    # cells is cell-below's top edge (NW-NE of below = SW-SE of current), which
    # belongs to below's *upper* triangle.
    edges_u[-1] = 2 * ((jj[has_below] - 1) * nx + ii[has_below]) + 1

    # upper's left edge (SW-NW) <-> the triangle right of the left cell that
    # owns the shared vertical edge: left cell's *lower* triangle owns its
    # right edge (SE-NE)?  With diagonal SW-NE: lower = (SW, SE, NE) owns the
    # right vertical edge SE-NE; upper = (SW, NE, NW) owns the left vertical
    # edge SW-NW.  So current upper's left edge matches left cell's lower
    # triangle's right edge.
    has_left = ii > 0
    edges_u.append(2 * (jj[has_left] * nx + ii[has_left] - 1))
    edges_v.append(upper[has_left])

    u = np.concatenate(edges_u)
    v = np.concatenate(edges_v)
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return n_tri, lo.astype(np.int64), hi.astype(np.int64)
