"""Row-major vs block-major nonzero layouts (Fig. 7, Section V-C).

The accelerator consumes nonzeros one block at a time; a matrix stored
row-major (Matrix Market order) forces strided access.  The paper's
block-major layout stores each ``2^b x 2^b`` block's nonzeros consecutively,
and groups ``P`` consecutive blocks of the same block-row together (``P`` =
number of blocks processed in parallel) before moving to the next block-row.

This module computes the permutations between the two layouts and a simple
sequential-access metric showing the benefit, mirroring the paper's argument
that block-major reading is (almost entirely) streaming.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.sparse.blocked import BlockedMatrix
from repro.util.validation import check_positive_int

__all__ = [
    "row_major_order",
    "block_major_order",
    "streaming_run_lengths",
    "layout_report",
]


def row_major_order(A: sp.csr_matrix) -> np.ndarray:
    """Permutation of nonzeros in row-major (CSR) order — the identity."""
    return np.arange(sp.csr_matrix(A).nnz, dtype=np.int64)


def block_major_order(blocked: BlockedMatrix, P: int = 1) -> np.ndarray:
    """Permutation taking CSR nonzero order to block-major order.

    Nonzeros are sorted by (block-row, block-col group of ``P``, block-col,
    row within block, col within block).  ``perm[k]`` is the CSR index of the
    k-th nonzero in block-major order.
    """
    P = check_positive_int(P, "P")
    A = blocked.A
    b = blocked.b
    rows = np.repeat(np.arange(A.shape[0], dtype=np.int64), np.diff(A.indptr))
    cols = A.indices.astype(np.int64)
    bi, bj = rows >> b, cols >> b
    group = bj // P
    nbc = blocked.block_grid[1]
    ngrp = -(-nbc // P)
    # Lexicographic composite key, innermost last.
    key = (((bi * ngrp + group) * nbc + bj) * A.shape[0] + rows)
    # Break remaining ties by column (within-row order already sorted in CSR).
    order = np.argsort(key, kind="stable")
    return order


def streaming_run_lengths(perm: np.ndarray) -> np.ndarray:
    """Lengths of maximal runs where the storage order is read consecutively.

    Given a read order ``perm`` over nonzeros stored at positions
    ``0..nnz-1``, a run is a maximal stretch with ``perm[k+1] == perm[k] + 1``
    (a sequential burst from memory).  Longer runs = more streaming.
    """
    perm = np.asarray(perm, dtype=np.int64)
    if perm.size == 0:
        return np.zeros(0, dtype=np.int64)
    breaks = np.flatnonzero(np.diff(perm) != 1)
    edges = np.concatenate(([0], breaks + 1, [perm.size]))
    return np.diff(edges)


def layout_report(blocked: BlockedMatrix, P: int = 8) -> dict:
    """Compare streaming behaviour of block access under the two layouts.

    Simulates the accelerator's access pattern (reading blocks in block-major
    processing order) against (a) row-major storage and (b) block-major
    storage, reporting mean sequential-run length for each — the Fig. 7
    argument quantified.
    """
    read_order = block_major_order(blocked, P=P)
    # (a) storage row-major: run structure of the read permutation itself.
    runs_row_major = streaming_run_lengths(read_order)
    # (b) storage block-major: reads become the identity.
    inv = np.empty_like(read_order)
    inv[read_order] = np.arange(read_order.size)
    runs_block_major = streaming_run_lengths(np.arange(read_order.size))
    return {
        "nnz": int(read_order.size),
        "mean_run_row_major": float(runs_row_major.mean()) if read_order.size else 0.0,
        "mean_run_block_major": float(runs_block_major.mean()) if read_order.size else 0.0,
        "runs_row_major": int(runs_row_major.size),
        "runs_block_major": int(runs_block_major.size),
    }
