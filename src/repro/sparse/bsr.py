"""Contiguous block-sparse-row (BSR) layout — the single block representation.

A :class:`BSRBlocks` holds every occupied ``2^b x 2^b`` block of a sparse
matrix as one contiguous ``(n_blocks, 2^b, 2^b)`` float64 tensor plus the
classic BSR index arrays (block ``indptr`` over block rows, block column
``indices``), mirroring the fealpy ``BSRMatrix`` layout.  It is what every
block consumer operates on:

* :class:`repro.sparse.blocked.BlockedMatrix` derives its exponent
  statistics from axis reductions over the tensor and serves
  ``dense_block`` as an O(1) slice;
* :class:`repro.hardware.engine.BlockedEngine` scatters its signed-cell
  tensor through one precomputed flat index instead of per-nonzero
  ``order``/``repeat`` indirection;
* the asset store (:mod:`repro.experiments.store`) persists the tensor and
  index arrays directly, so a cold worker memory-maps the accelerator's
  native operand layout with zero reassembly.

The bridge back to CSR is :attr:`BSRBlocks.scatter` — for each nonzero of
the canonical CSR matrix, in CSR order, the flat index of its cell in
``data.reshape(-1)``.  A gather through it (:meth:`csr_data`) reproduces the
CSR value array *bit-identically*, which is what keeps every refactored
fast path pinned to its per-block reference.

Blocks are addressed in block-row-major order of the *occupied* blocks
only (the same order ``BlockedMatrix.block_keys`` always used), so tensor
index ``g`` means the same block everywhere.
"""

from __future__ import annotations

from functools import cached_property
from typing import Tuple

import numpy as np
import scipy.sparse as sp

from repro.util.validation import check_nonnegative_int

__all__ = ["BSRBlocks"]


class BSRBlocks:
    """Occupied blocks of a ``2^b``-partitioned sparse matrix, contiguously.

    Parameters
    ----------
    b : int
        log2 of the (square) block edge.
    shape : (n_rows, n_cols)
        Shape of the underlying matrix (blocks at ragged edges are
        zero-padded in the tensor).
    data : (n_blocks, 2^b, 2^b) float64 ndarray
        Dense contents of every occupied block, block-row-major.
    indptr : (n_block_rows + 1,) integer ndarray
        Block-row pointer into ``indices``/``data`` (classic BSR).
    indices : (n_blocks,) integer ndarray
        Block-column index of each occupied block, ascending within each
        block row.
    scatter : (nnz,) integer ndarray
        For each nonzero of the canonical CSR matrix, in CSR order, the
        flat index of its cell in ``data.reshape(-1)`` — the dense<->CSR
        bridge that keeps gathers bit-identical.
    checked : bool
        Run the always-on structural validation (shapes, bounds, sorted
        block columns).  Constructors that just built the arrays pass
        ``False``; anything attaching to external data (the asset store)
        keeps the default.

    All arrays may be read-only (e.g. memory-mapped); nothing here writes
    to them.
    """

    def __init__(self, b: int, shape: Tuple[int, int], data: np.ndarray,
                 indptr: np.ndarray, indices: np.ndarray,
                 scatter: np.ndarray, checked: bool = True):
        self.b = check_nonnegative_int(b, "b")
        self.shape = (int(shape[0]), int(shape[1]))
        self.data = data
        self.indptr = indptr
        self.indices = indices
        self.scatter = scatter
        if checked:
            self._check_structure()

    # ------------------------------------------------------------------
    @property
    def block_size(self) -> int:
        return 1 << self.b

    @property
    def n_blocks(self) -> int:
        return int(self.data.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.scatter.shape[0])

    @property
    def block_grid(self) -> Tuple[int, int]:
        size = self.block_size
        return (-(-self.shape[0] // size), -(-self.shape[1] // size))

    @cached_property
    def block_rows(self) -> np.ndarray:
        """Block-row index of each occupied block (expanded from ``indptr``)."""
        nbr = self.indptr.shape[0] - 1
        return np.repeat(np.arange(nbr, dtype=np.int64),
                         np.diff(self.indptr.astype(np.int64)))

    @cached_property
    def block_of_nnz(self) -> np.ndarray:
        """Tensor block index ``g`` of each CSR nonzero, in CSR order."""
        cell = self.block_size ** 2
        return (self.scatter.astype(np.int64) // cell
                if self.nnz else np.zeros(0, dtype=np.int64))

    @cached_property
    def block_nnz(self) -> np.ndarray:
        """Nonzero count of each occupied block."""
        return np.bincount(self.block_of_nnz,
                           minlength=self.n_blocks).astype(np.int64)

    # ------------------------------------------------------------------
    def _check_structure(self) -> None:
        """Cheap always-on consistency checks (O(nnz) scans, no sorting)."""
        size = self.block_size
        nbr, nbc = self.block_grid
        G = self.n_blocks
        if self.data.ndim != 3 or self.data.shape[1:] != (size, size):
            raise ValueError(
                f"data must be (n_blocks, {size}, {size}), got {self.data.shape}")
        for name in ("indptr", "indices", "scatter"):
            arr = getattr(self, name)
            if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
                raise ValueError(
                    f"{name} must be a 1-D integer array, got "
                    f"{arr.dtype}{arr.shape}")
        if self.indptr.shape[0] != nbr + 1:
            raise ValueError(
                f"indptr must have {nbr + 1} entries for {nbr} block rows, "
                f"got {self.indptr.shape[0]}")
        if int(self.indptr[0]) != 0 or int(self.indptr[-1]) != G:
            raise ValueError(
                f"indptr must run from 0 to n_blocks={G}, got "
                f"[{int(self.indptr[0])}, {int(self.indptr[-1])}]")
        diffs = np.diff(self.indptr.astype(np.int64))
        if diffs.size and int(diffs.min()) < 0:
            raise ValueError("indptr must be non-decreasing")
        if self.indices.shape[0] != G:
            raise ValueError(
                f"indices must have one entry per block ({G}), got "
                f"{self.indices.shape[0]}")
        if G and (int(self.indices.min()) < 0
                  or int(self.indices.max()) >= nbc):
            raise ValueError(
                f"block columns must lie in [0, {nbc}), got "
                f"[{int(self.indices.min())}, {int(self.indices.max())}]")
        # Ascending block columns within each block row (binary search in
        # dense_block depends on it): adjacent pairs must increase except
        # across block-row boundaries.
        if G > 1:
            idx = self.indices.astype(np.int64)
            same_row = np.diff(self.block_rows) == 0
            if bool((np.diff(idx)[same_row] <= 0).any()):
                raise ValueError(
                    "block columns must be strictly ascending within each "
                    "block row")
        if self.nnz and (int(self.scatter.min()) < 0
                         or int(self.scatter.max()) >= G * size * size):
            raise ValueError(
                f"scatter indices must lie in [0, {G * size * size}), got "
                f"[{int(self.scatter.min())}, {int(self.scatter.max())}]")

    def check_scatter_unique(self) -> None:
        """Full injectivity check of ``scatter`` (each cell holds at most one
        nonzero).  O(nnz log nnz) — run under ``store_verify``, not on every
        attach."""
        if self.nnz and np.unique(self.scatter).size != self.nnz:
            raise ValueError("scatter maps two nonzeros to the same cell")

    # ------------------------------------------------------------------
    @classmethod
    def from_partition(cls, A: sp.csr_matrix, b: int,
                       block_grid: Tuple[int, int], order: np.ndarray,
                       block_keys: np.ndarray, block_nnz: np.ndarray,
                       ) -> "BSRBlocks":
        """Materialise the tensor from a :class:`BlockedMatrix` partition.

        ``A`` must be the canonical CSR (sorted, duplicate-free) the
        partition was computed from; ``order``/``block_keys``/``block_nnz``
        are its block-grouping arrays.  The resulting block order is the
        ascending-``block_keys`` order, i.e. block-row-major over occupied
        blocks — identical to the partition's group order, so per-block
        quantities (exponent bases, engine cells) index both the same way.
        """
        size = 1 << b
        nbr, nbc = block_grid
        G = int(block_keys.shape[0])
        nnz = int(A.nnz)
        block_keys = block_keys.astype(np.int64)
        block_row_of_g = block_keys // nbc
        indices = block_keys % nbc
        indptr = np.zeros(nbr + 1, dtype=np.int64)
        np.cumsum(np.bincount(block_row_of_g, minlength=nbr), out=indptr[1:])

        rows = np.repeat(np.arange(A.shape[0], dtype=np.int64),
                         np.diff(A.indptr))
        cols = A.indices.astype(np.int64)
        g_of_nnz = np.empty(nnz, dtype=np.int64)
        g_of_nnz[order] = np.repeat(np.arange(G, dtype=np.int64), block_nnz)
        scatter = (g_of_nnz * (size * size)
                   + (rows & (size - 1)) * size + (cols & (size - 1)))
        data = np.zeros((G, size, size), dtype=np.float64)
        data.reshape(-1)[scatter] = A.data
        self = cls(b, A.shape, data, indptr, indices, scatter, checked=False)
        # The division in block_of_nnz would just recompute this.
        self.__dict__["block_of_nnz"] = g_of_nnz
        return self

    # ------------------------------------------------------------------
    def csr_data(self) -> np.ndarray:
        """The CSR value array, gathered from the tensor — bit-identical to
        the canonical matrix's ``data`` (each nonzero occupies exactly one
        cell and the gather copies it unchanged)."""
        return self.data.reshape(-1)[self.scatter]

    def scatter_values(self, values: np.ndarray) -> np.ndarray:
        """A new ``(n_blocks, 2^b, 2^b)`` float64 tensor holding ``values``
        (one per CSR nonzero, CSR order) in this layout — e.g. pre-quantised
        matrix data stored next to :attr:`data` in the asset store."""
        values = np.asarray(values, dtype=np.float64)
        if values.shape != self.scatter.shape:
            raise ValueError(
                f"need one value per nonzero ({self.nnz}), got shape "
                f"{values.shape}")
        out = np.zeros_like(self.data, subok=False)
        out.reshape(-1)[self.scatter] = values
        return out

    def to_csr(self) -> sp.csr_matrix:
        """Reconstruct the canonical CSR matrix from the layout.

        Walks :attr:`scatter` (which is in CSR order by construction), so
        the result's ``data``/``indices``/``indptr`` are bit-identical to
        the canonical matrix the layout was built from — the round-trip the
        BSR tests pin.
        """
        from repro.sparse.mmio import csr_from_arrays

        size = self.block_size
        cell = size * size
        flat = self.scatter.astype(np.int64)
        g = flat // cell
        rem = flat % cell
        rows = self.block_rows[g] * size + rem // size
        cols = self.indices.astype(np.int64)[g] * size + rem % size
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=self.shape[0]), out=indptr[1:])
        return csr_from_arrays(self.data.reshape(-1)[flat], cols, indptr,
                               self.shape, canonical=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BSRBlocks(b={self.b}, shape={self.shape}, "
                f"n_blocks={self.n_blocks}, nnz={self.nnz})")
