"""Matrix Market file I/O (the paper's input format, Section V-C).

Supports the coordinate format with ``real``/``integer``/``pattern`` fields
and ``general``/``symmetric`` symmetry — the subset covering the SuiteSparse
collection the paper evaluates.  Implemented from scratch (no scipy.io) so the
package is self-contained and the symmetric-expansion semantics are explicit.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

__all__ = ["read_matrix_market", "write_matrix_market"]

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(source: Union[str, Path, io.TextIOBase]) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file into CSR.

    Symmetric matrices are expanded to full storage (both triangles), matching
    how a solver consumes them.  Pattern matrices get value 1.0.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"not a MatrixMarket file (header {header[:40]!r})")
    parts = header.strip().split()
    if len(parts) != 5:
        raise ValueError(f"malformed MatrixMarket header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise ValueError(f"only 'matrix coordinate' supported, got {obj} {fmt}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read size line.
    line = source.readline()
    while line.startswith("%"):
        line = source.readline()
    try:
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())
    except ValueError:
        raise ValueError(f"malformed size line: {line.strip()!r}") from None

    body = np.loadtxt(source, ndmin=2, dtype=np.float64, max_rows=nnz) if nnz else np.zeros((0, 3))
    if body.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    if field == "pattern":
        if body.size and body.shape[1] != 2:
            raise ValueError("pattern entries must have 2 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = np.ones(nnz, dtype=np.float64)
    else:
        if body.size and body.shape[1] != 3:
            raise ValueError(f"{field} entries must have 3 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = body[:, 2].astype(np.float64)

    if nnz and (rows.min() < 0 or cols.min() < 0 or rows.max() >= n_rows or cols.max() >= n_cols):
        raise ValueError("index out of declared bounds")

    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate((rows, mirror_rows))
        cols = np.concatenate((cols, mirror_cols))
        vals = np.concatenate((vals, vals[off]))

    A = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    out = A.tocsr()
    out.sum_duplicates()
    out.sort_indices()
    return out


def write_matrix_market(
    target: Union[str, Path, io.TextIOBase],
    A,
    symmetric: bool = False,
    comment: str = "",
) -> None:
    """Write a sparse matrix in coordinate/real format.

    With ``symmetric=True`` only the lower triangle is written (the matrix
    must actually be symmetric; this is validated).
    """
    if isinstance(target, (str, Path)):
        with open(target, "w") as fh:
            write_matrix_market(fh, A, symmetric=symmetric, comment=comment)
            return

    A = sp.coo_matrix(A)
    if symmetric:
        if A.shape[0] != A.shape[1]:
            raise ValueError("symmetric output requires a square matrix")
        diff = (sp.csr_matrix(A) - sp.csr_matrix(A).T)
        if diff.nnz and np.max(np.abs(diff.data)) > 0:
            raise ValueError("matrix is not symmetric")
        keep = A.row >= A.col
        rows, cols, vals = A.row[keep], A.col[keep], A.data[keep]
        sym = "symmetric"
    else:
        rows, cols, vals = A.row, A.col, A.data
        sym = "general"

    target.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{A.shape[0]} {A.shape[1]} {rows.size}\n")
    order = np.lexsort((rows, cols))  # column-major, the conventional order
    for r, c, v in zip(rows[order], cols[order], vals[order]):
        # repr of a Python float is shortest-exact: round-trips bit-for-bit.
        target.write(f"{r + 1} {c + 1} {float(v)!r}\n")
