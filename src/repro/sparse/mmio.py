"""Matrix Market file I/O (the paper's input format, Section V-C).

Supports the coordinate format with ``real``/``integer``/``pattern`` fields
and ``general``/``symmetric`` symmetry — the subset covering the SuiteSparse
collection the paper evaluates.  Implemented from scratch (no scipy.io) so the
package is self-contained and the symmetric-expansion semantics are explicit.

Alongside the text format, :func:`csr_to_arrays`/:func:`csr_from_arrays`
round-trip a CSR matrix through its three raw arrays without copying or
re-canonicalising — the binary interchange the on-disk asset store
(:mod:`repro.experiments.store`) builds on, where the arrays come back as
read-only ``np.load(..., mmap_mode="r")`` views.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Dict, Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = [
    "read_matrix_market",
    "write_matrix_market",
    "csr_to_arrays",
    "csr_from_arrays",
]

_HEADER_PREFIX = "%%MatrixMarket"


def read_matrix_market(source: Union[str, Path, io.TextIOBase]) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file into CSR.

    Symmetric matrices are expanded to full storage (both triangles), matching
    how a solver consumes them.  Pattern matrices get value 1.0.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r") as fh:
            return read_matrix_market(fh)

    header = source.readline()
    if not header.startswith(_HEADER_PREFIX):
        raise ValueError(f"not a MatrixMarket file (header {header[:40]!r})")
    parts = header.strip().split()
    if len(parts) != 5:
        raise ValueError(f"malformed MatrixMarket header: {header.strip()!r}")
    _, obj, fmt, field, symmetry = (p.lower() for p in parts)
    if obj != "matrix" or fmt != "coordinate":
        raise ValueError(f"only 'matrix coordinate' supported, got {obj} {fmt}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field type {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")

    # Skip comments, read size line.
    line = source.readline()
    while line.startswith("%"):
        line = source.readline()
    try:
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())
    except ValueError:
        raise ValueError(f"malformed size line: {line.strip()!r}") from None

    body = np.loadtxt(source, ndmin=2, dtype=np.float64, max_rows=nnz) if nnz else np.zeros((0, 3))
    if body.shape[0] != nnz:
        raise ValueError(f"expected {nnz} entries, found {body.shape[0]}")
    if field == "pattern":
        if body.size and body.shape[1] != 2:
            raise ValueError("pattern entries must have 2 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = np.ones(nnz, dtype=np.float64)
    else:
        if body.size and body.shape[1] != 3:
            raise ValueError(f"{field} entries must have 3 columns")
        rows = body[:, 0].astype(np.int64) - 1
        cols = body[:, 1].astype(np.int64) - 1
        vals = body[:, 2].astype(np.float64)

    if nnz and (rows.min() < 0 or cols.min() < 0 or rows.max() >= n_rows or cols.max() >= n_cols):
        raise ValueError("index out of declared bounds")

    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate((rows, mirror_rows))
        cols = np.concatenate((cols, mirror_cols))
        vals = np.concatenate((vals, vals[off]))

    A = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    out = A.tocsr()
    out.sum_duplicates()
    out.sort_indices()
    return out


def csr_to_arrays(A) -> Tuple[Dict[str, np.ndarray], Tuple[int, int]]:
    """Decompose a sparse matrix into its raw CSR arrays plus its shape.

    The arrays are the matrix's own buffers (no copy) in their native dtypes
    — preserving the index dtype matters because rebuilding with a different
    one changes scipy's kernel dispatch.  A CSR input is **not**
    canonicalised: duplicate or unsorted entries round-trip exactly, so the
    rebuilt matrix's matvec accumulates in the same order as the original's
    (bit-identical results).  Non-CSR inputs are converted first, which for
    e.g. COO sums duplicates and sorts indices — the exact-layout guarantee
    applies only to what the conversion produced, so pass CSR when the
    original nonzero order matters.
    """
    A = sp.csr_matrix(A)
    return ({"data": A.data, "indices": A.indices, "indptr": A.indptr},
            tuple(A.shape))


def csr_from_arrays(
    data: np.ndarray,
    indices: np.ndarray,
    indptr: np.ndarray,
    shape: Tuple[int, int],
    canonical: bool = False,
    checked: bool = True,
) -> sp.csr_matrix:
    """Rebuild a CSR matrix from :func:`csr_to_arrays` output without copying.

    The arrays may be read-only (e.g. memory-mapped); nothing here writes to
    them.  ``canonical=True`` marks the result as having sorted, duplicate-
    free indices so later scipy operations do not attempt an in-place
    canonicalisation pass — only pass it for matrices that were canonical
    when serialised (``BlockedMatrix.A`` always is).  ``checked=False``
    skips the O(nnz) column-bounds scan (which pages a memory-mapped
    ``indices`` fully in) — only for callers that have already verified the
    arrays or explicitly trust their source; out-of-range columns reach
    scipy's C kernels as out-of-bounds reads, not exceptions.
    """
    n_rows = int(len(indptr)) - 1
    if n_rows < 0 or len(shape) != 2:
        raise ValueError("indptr must have n_rows + 1 entries and shape 2 dims")
    if n_rows != shape[0]:
        raise ValueError(
            f"indptr describes {n_rows} rows, shape says {shape[0]}")
    if len(data) != len(indices):
        raise ValueError(
            f"data ({len(data)}) and indices ({len(indices)}) lengths differ")
    if n_rows and (int(indptr[0]) != 0 or int(indptr[-1]) != len(data)):
        raise ValueError(
            f"indptr must run from 0 to nnz={len(data)}, "
            f"got [{int(indptr[0])}, {int(indptr[-1])}]")
    if checked and len(indices) and (int(indices.min()) < 0
                                     or int(indices.max()) >= shape[1]):
        # Out-of-range columns would reach scipy's C kernels as silent
        # out-of-bounds reads (or a segfault), not an exception.
        raise ValueError(
            f"column indices must lie in [0, {shape[1]}), got "
            f"[{int(indices.min())}, {int(indices.max())}]")
    A = sp.csr_matrix(tuple(shape), dtype=data.dtype)
    A.data, A.indices, A.indptr = data, indices, indptr
    if canonical:
        A.has_sorted_indices = True
        A.has_canonical_format = True
    return A


def write_matrix_market(
    target: Union[str, Path, io.TextIOBase],
    A,
    symmetric: bool = False,
    comment: str = "",
) -> None:
    """Write a sparse matrix in coordinate/real format.

    With ``symmetric=True`` only the lower triangle is written (the matrix
    must actually be symmetric; this is validated).
    """
    if isinstance(target, (str, Path)):
        with open(target, "w") as fh:
            write_matrix_market(fh, A, symmetric=symmetric, comment=comment)
            return

    A = sp.coo_matrix(A)
    if symmetric:
        if A.shape[0] != A.shape[1]:
            raise ValueError("symmetric output requires a square matrix")
        diff = (sp.csr_matrix(A) - sp.csr_matrix(A).T)
        if diff.nnz and np.max(np.abs(diff.data)) > 0:
            raise ValueError("matrix is not symmetric")
        keep = A.row >= A.col
        rows, cols, vals = A.row[keep], A.col[keep], A.data[keep]
        sym = "symmetric"
    else:
        rows, cols, vals = A.row, A.col, A.data
        sym = "general"

    target.write(f"%%MatrixMarket matrix coordinate real {sym}\n")
    for line in comment.splitlines():
        target.write(f"% {line}\n")
    target.write(f"{A.shape[0]} {A.shape[1]} {rows.size}\n")
    order = np.lexsort((rows, cols))  # column-major, the conventional order
    for r, c, v in zip(rows[order], cols[order], vals[order]):
        # repr of a Python float is shortest-exact: round-trips bit-for-bit.
        target.write(f"{r + 1} {c + 1} {float(v)!r}\n")
