"""Matrix statistics: the Table V columns plus exponent/magnitude profiles."""

from __future__ import annotations

import warnings
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.formats import ieee

__all__ = [
    "is_symmetric",
    "nnz_per_row",
    "extreme_eigenvalues",
    "condition_number",
    "summarize",
]


def is_symmetric(A, tol: float = 0.0) -> bool:
    """Exact (tol=0) or tolerant structural+value symmetry check."""
    A = sp.csr_matrix(A)
    if A.shape[0] != A.shape[1]:
        return False
    D = (A - A.T).tocoo()
    if D.nnz == 0:
        return True
    return bool(np.max(np.abs(D.data)) <= tol * max(np.max(np.abs(A.data)), 1e-300))


def nnz_per_row(A) -> float:
    A = sp.csr_matrix(A)
    return A.nnz / A.shape[0]


def extreme_eigenvalues(A, tol: float = 1e-6, maxiter: int = 5000):
    """(lambda_min, lambda_max) of a symmetric matrix via Lanczos.

    lambda_max uses plain Lanczos; lambda_min uses shift-invert when a sparse
    factorisation succeeds, else LOBPCG with a Jacobi preconditioner.  Returns
    floats (possibly approximate — intended for reporting, not algorithms).
    """
    A = sp.csr_matrix(A).astype(np.float64)
    n = A.shape[0]
    if n < 3:
        w = np.linalg.eigvalsh(A.toarray())
        return float(w[0]), float(w[-1])
    lam_max = float(spla.eigsh(A, k=1, which="LA", tol=tol,
                               maxiter=maxiter, return_eigenvectors=False)[0])
    try:
        lam_min = float(spla.eigsh(A, k=1, sigma=0, which="LM", tol=tol,
                                   maxiter=maxiter, return_eigenvectors=False)[0])
    except (RuntimeError, ValueError, spla.ArpackError,
            np.linalg.LinAlgError):
        # Shift-invert needs a sparse factorisation of A; a singular or
        # otherwise unfactorisable matrix lands here (ARPACK convergence
        # failures too).  Anything else — a genuine bug — propagates.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rng = np.random.default_rng(0)
            X = rng.standard_normal((n, 1))
            diag = A.diagonal()
            M = sp.diags(1.0 / np.where(diag > 0, diag, 1.0))
            vals, _ = spla.lobpcg(A, X, M=M, largest=False, tol=tol, maxiter=500)
            lam_min = float(vals[0])
    return lam_min, lam_max


def condition_number(A, tol: float = 1e-6) -> float:
    """2-norm condition number estimate for a symmetric positive matrix."""
    lam_min, lam_max = extreme_eigenvalues(A, tol=tol)
    if lam_min <= 0:
        return float("inf")
    return lam_max / lam_min


def exponent_profile(A) -> dict:
    """Unbiased-exponent span of the nonzero values (locality raw material)."""
    A = sp.csr_matrix(A)
    _, exp, _ = ieee.decompose(A.data)
    exp = exp[exp != ieee.EXP_ZERO]
    if exp.size == 0:
        return {"min": 0, "max": 0, "span": 0}
    return {"min": int(exp.min()), "max": int(exp.max()),
            "span": int(exp.max() - exp.min())}


def summarize(A, with_condition: bool = False) -> dict:
    """The Table V row for a matrix (condition number optional: it is the
    only expensive column)."""
    A = sp.csr_matrix(A)
    out = {
        "rows": int(A.shape[0]),
        "cols": int(A.shape[1]),
        "nnz": int(A.nnz),
        "nnz_per_row": round(nnz_per_row(A), 2),
        "symmetric": is_symmetric(A, tol=1e-12),
    }
    out.update({f"exp_{k}": v for k, v in exponent_profile(A).items()})
    if with_condition:
        out["kappa"] = condition_number(A)
    return out
