"""Sparse-matrix substrate: blocking, layouts, Matrix Market I/O, gallery."""

from repro.sparse.blocked import BlockedMatrix, block_coordinates
from repro.sparse.bsr import BSRBlocks
from repro.sparse.layout import (
    block_major_order,
    layout_report,
    row_major_order,
    streaming_run_lengths,
)
from repro.sparse.mmio import read_matrix_market, write_matrix_market
from repro.sparse.stats import (
    condition_number,
    extreme_eigenvalues,
    is_symmetric,
    nnz_per_row,
    summarize,
)

__all__ = [
    "BSRBlocks",
    "BlockedMatrix",
    "block_coordinates",
    "block_major_order",
    "layout_report",
    "row_major_order",
    "streaming_run_lengths",
    "read_matrix_market",
    "write_matrix_market",
    "condition_number",
    "extreme_eigenvalues",
    "is_symmetric",
    "nnz_per_row",
    "summarize",
]
