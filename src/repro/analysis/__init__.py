"""Analysis utilities: locality, storage accounting, convergence traces."""

from repro.analysis.convergence import downsample_trace, normalize_trace, trace_summary
from repro.analysis.locality import block_range_histogram, locality_report
from repro.analysis.memory import block_storage_bits, memory_overhead

__all__ = [
    "downsample_trace",
    "normalize_trace",
    "trace_summary",
    "block_range_histogram",
    "locality_report",
    "block_storage_bits",
    "memory_overhead",
]
