"""Convergence-trace utilities (Fig. 9 post-processing)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.solvers.base import SolverResult

__all__ = ["normalize_trace", "trace_summary", "downsample_trace"]


def normalize_trace(result: SolverResult, time_per_iteration_s: float,
                    reference_time_s: float) -> Dict[str, np.ndarray]:
    """Express a residual trace on Fig. 9's x-axis.

    Fig. 9 normalises the iteration axis by the *time* of the GPU baseline:
    a platform whose iterations are cheaper stretches further left for the
    same residual level.  Returns arrays ``x`` (normalised time) and ``r``
    (residual norms).
    """
    if time_per_iteration_s <= 0 or reference_time_s <= 0:
        raise ValueError("times must be positive")
    history = np.asarray(result.residual_history, dtype=np.float64)
    iters = np.arange(history.size)
    x = iters * time_per_iteration_s / reference_time_s
    return {"x": x, "r": history}


def trace_summary(result: SolverResult) -> Dict[str, float]:
    """Spike statistics of a residual trace (the paper notes refloat traces
    spike more often than double but still converge)."""
    h = np.asarray(result.residual_history, dtype=np.float64)
    if h.size < 2:
        return {"spikes": 0, "max_ratio": 1.0, "monotone_fraction": 1.0}
    ratios = h[1:] / np.maximum(h[:-1], 1e-300)
    spikes = int(np.sum(ratios > 1.0))
    return {
        "spikes": spikes,
        "max_ratio": float(ratios.max()),
        "monotone_fraction": float(np.mean(ratios <= 1.0)),
    }


def downsample_trace(history: Sequence[float], max_points: int = 64) -> List[float]:
    """Thin a long residual history for compact reporting (keeps endpoints)."""
    h = list(history)
    if len(h) <= max_points:
        return h
    idx = np.unique(np.linspace(0, len(h) - 1, max_points).astype(int))
    return [h[i] for i in idx]
