"""Exponent value locality (Section III-D, Fig. 3d)."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.sparse.blocked import BlockedMatrix

__all__ = ["locality_report", "block_range_histogram"]

#: The FP64 exponent field width — the paper's reference bar.
FP64_EXPONENT_BITS = 11


def locality_report(A, b: int = 7, refloat_e: int = 3) -> Dict[str, int]:
    """One Fig. 3d bar group for a matrix.

    Returns the FP64 exponent bits (11), the matrix's whole-range exponent
    bits, the per-block locality bits, and the ReFloat ``e`` that would be
    configured.
    """
    bm = A if isinstance(A, BlockedMatrix) else BlockedMatrix(A, b=b)
    return {
        "fp64_bits": FP64_EXPONENT_BITS,
        "matrix_bits": bm.matrix_exponent_bits(),
        "locality_bits": bm.locality_bits(),
        "refloat_bits": refloat_e,
    }


def block_range_histogram(A, b: int = 7, max_range: Optional[int] = None) -> np.ndarray:
    """Histogram of per-block exponent ranges (how locality distributes).

    ``out[k]`` = number of occupied blocks whose exponent spread is exactly
    ``k`` binades.  Demonstrates the paper's claim that while the worst block
    sets the locality, the overwhelming majority of blocks are far tighter.
    """
    bm = A if isinstance(A, BlockedMatrix) else BlockedMatrix(A, b=b)
    ranges = bm.block_exponent_range
    if ranges.size == 0:
        return np.zeros(1, dtype=np.int64)
    hi = int(ranges.max()) if max_range is None else max_range
    return np.bincount(np.minimum(ranges, hi), minlength=hi + 1).astype(np.int64)
