"""Storage accounting: the Section IV-A example and Table VIII ratios."""

from __future__ import annotations

from typing import Dict

from repro.formats.refloat import ReFloatSpec
from repro.sparse.blocked import BlockedMatrix

__all__ = ["block_storage_bits", "memory_overhead"]


def block_storage_bits(nnz: int, spec: ReFloatSpec) -> Dict[str, int]:
    """Bits to store one block's nonzeros — the paper's worked example.

    For 8 scalars in ReFloat(2,2,3): ``8 * (2 + 2 + 6) + 2 * 30 + 11 = 151``
    vs ``8 * (32 + 32 + 64) = 1024`` in indexed double precision.
    """
    refloat = (nnz * (2 * spec.b + spec.matrix_value_bits)
               + 2 * (32 - spec.b) + 11)
    baseline = nnz * (32 + 32 + 64)
    return {"refloat_bits": refloat, "double_bits": baseline,
            "ratio": refloat / baseline}


def memory_overhead(A, spec: ReFloatSpec) -> Dict[str, float]:
    """Table VIII: whole-matrix refloat/double storage ratio.

    Sparser matrices (thermomech_*) pay relatively more block-index and
    exponent-base overhead because blocks hold fewer nonzeros — the paper's
    0.300/0.312 outliers vs ~0.173 for the dense-blocked matrices.
    """
    bm = A if isinstance(A, BlockedMatrix) else BlockedMatrix(A, b=spec.b)
    refloat = bm.storage_bits_refloat(spec)
    double = bm.storage_bits_double()
    return {
        "refloat_bits": float(refloat),
        "double_bits": float(double),
        "ratio": refloat / double,
        "nnz_per_block": bm.nnz / max(bm.n_blocks, 1),
    }
