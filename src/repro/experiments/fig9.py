"""Figure 9: residual convergence traces, x normalised to GPU solve time."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.convergence import downsample_trace, normalize_trace, trace_summary
from repro.experiments.common import run_suite
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import suite_ids

__all__ = ["run", "collect", "TRACE_PLATFORMS"]


#: Platforms whose traces the figure draws (the paper plots these three).
TRACE_PLATFORMS = ("gpu", "feinberg_fc", "refloat")


def collect(scale: Optional[str] = None, max_points: int = 48,
            platforms: Optional[tuple] = None) -> Dict[str, dict]:
    """Per (solver, matrix, platform) traces on the normalised time axis.

    ``platforms`` selects which swept platforms to trace (default: the
    paper's three); the GPU is always swept as the normalisation baseline.
    """
    trace_platforms = TRACE_PLATFORMS if platforms is None else tuple(platforms)
    # Default traces come from the shared full-grid sweep (one set of runs
    # serves Fig. 8/9 and Table VI); an explicit subset sweeps just itself.
    sweep = (None if platforms is None
             else tuple(dict.fromkeys(("gpu",) + trace_platforms)))
    out: Dict[str, dict] = {}
    for solver in ("cg", "bicgstab"):
        runs = run_suite(solver, scale, platforms=sweep)
        per_matrix = {}
        for sid in suite_ids():
            run = runs[sid]
            t_gpu = run.times_s["gpu"]
            series = {}
            for platform in trace_platforms:
                res = run.results[platform]
                iters = max(len(res.residual_history) - 1, 1)
                t_platform = run.times_s.get(platform)
                if t_platform is None or t_platform != t_platform or t_platform == float("inf"):
                    t_platform = t_gpu
                trace = normalize_trace(res, t_platform / iters, t_gpu)
                series[platform] = {
                    "x": downsample_trace(trace["x"].tolist(), max_points),
                    "r": downsample_trace(trace["r"].tolist(), max_points),
                    "converged": res.converged,
                    "summary": trace_summary(res),
                }
            per_matrix[sid] = {"name": run.name, "series": series}
        out[solver] = per_matrix
    return out


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[str, dict]:
    data = collect(scale)
    if print_output:
        for solver, per_matrix in data.items():
            rows = []
            for sid, d in per_matrix.items():
                gpu = d["series"]["gpu"]
                rf = d["series"]["refloat"]
                rows.append([
                    sid, d["name"],
                    gpu["x"][-1], gpu["r"][-1],
                    rf["x"][-1] if rf["converged"] else float("nan"),
                    rf["r"][-1],
                    rf["summary"]["spikes"], gpu["summary"]["spikes"],
                ])
            print(format_table(
                ["id", "matrix", "gpu x_end", "gpu r_end", "rf x_end",
                 "rf r_end", "rf spikes", "dbl spikes"],
                rows,
                title=(f"\nFig. 9 [{solver.upper()}] — trace endpoints on the "
                       "GPU-normalised time axis (x < 1 means faster than GPU; "
                       "refloat spikes more but converges, as the paper notes)")))
    return data
