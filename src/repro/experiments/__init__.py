"""Experiment runners: one module per paper table/figure.

Run from the command line::

    python -m repro.experiments table1
    python -m repro.experiments fig8
    python -m repro.experiments all

or programmatically via :func:`run_experiment`.
"""

from typing import Callable, Dict, Optional

from repro.experiments import (
    fig3,
    fig8,
    fig9,
    fig10,
    table1,
    table5,
    table6,
    table7,
    table8,
)

__all__ = ["EXPERIMENTS", "run_experiment"]

EXPERIMENTS: Dict[str, Callable] = {
    "table1": table1.run,
    "fig3": fig3.run,
    "table5": table5.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table6": table6.run,
    "table7": table7.run,
    "fig10": fig10.run,
    "table8": table8.run,
}


def run_experiment(name: str, scale: Optional[str] = None,
                   print_output: bool = True):
    """Run one experiment by table/figure name (or ``"all"``)."""
    if name == "all":
        return {key: fn(scale=scale, print_output=print_output)
                for key, fn in EXPERIMENTS.items()}
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; have {sorted(EXPERIMENTS)} + 'all'")
    return EXPERIMENTS[name](scale=scale, print_output=print_output)
