"""Table VIII: matrix memory overhead, refloat vs double."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.memory import memory_overhead
from repro.experiments.common import default_spec_for
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids

__all__ = ["run", "collect", "PAPER_TABLE8"]

PAPER_TABLE8 = {353: 0.173, 1313: 0.176, 354: 0.173, 2261: 0.176,
                1288: 0.173, 1311: 0.174, 1289: 0.173, 355: 0.173,
                2257: 0.312, 1848: 0.179, 2259: 0.300, 845: 0.173}


def collect(scale: Optional[str] = None) -> Dict[int, dict]:
    scale = resolve_scale(scale)
    out = {}
    for sid in suite_ids():
        A = PAPER_SUITE[sid].matrix(scale)
        d = memory_overhead(A, default_spec_for(sid))
        d["name"] = PAPER_SUITE[sid].name
        d["paper_ratio"] = PAPER_TABLE8[sid]
        out[sid] = d
    return out


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[int, dict]:
    data = collect(scale)
    if print_output:
        rows = [[sid, d["name"], d["ratio"], d["paper_ratio"],
                 d["nnz_per_block"]] for sid, d in data.items()]
        print(format_table(
            ["id", "name", "ratio", "paper", "nnz/block"],
            rows,
            title="\nTable VIII — memory overhead refloat/double "
                  "(sparser blocks pay more index+base overhead)"))
        avg = sum(d["ratio"] for d in data.values()) / len(data)
        print(f"average ratio: {avg:.3f} (paper: 0.192)")
    return data
