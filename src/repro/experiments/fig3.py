"""Figure 3: cost-model sweeps (a-c) and exponent locality (d)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.locality import locality_report
from repro.experiments.reporting import format_table
from repro.hardware.cost import crossbars_per_engine, cycles_per_block_mvm
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids

__all__ = ["run", "collect"]


def collect(scale: Optional[str] = None) -> Dict[str, list]:
    # (a) cycles vs exponent bits of vector and matrix (f = fv = 52).
    sweep_a = [{"ev": ev, "eM": eM,
                "cycles": cycles_per_block_mvm(eM, 52, ev, 52)}
               for ev in range(0, 11, 2) for eM in range(0, 11, 2)]
    # (b) cycles vs fraction bits (e = ev = 3).
    sweep_b = [{"fv": fv, "fM": fM,
                "cycles": cycles_per_block_mvm(3, fM, 3, fv)}
               for fv in range(0, 53, 13) for fM in range(0, 53, 13)]
    # (c) crossbars vs exponent/fraction bits of the matrix.
    sweep_c = [{"eM": eM, "fM": fM, "crossbars": crossbars_per_engine(eM, fM)}
               for eM in range(0, 11, 2) for fM in range(0, 53, 13)]
    # (d) locality of the 12 matrices.
    scale = resolve_scale(scale)
    locality = []
    for sid in suite_ids():
        A = PAPER_SUITE[sid].matrix(scale)
        rep = locality_report(A, b=7)
        rep["sid"] = sid
        rep["name"] = PAPER_SUITE[sid].name
        locality.append(rep)
    return {"a": sweep_a, "b": sweep_b, "c": sweep_c, "d": locality}


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[str, list]:
    data = collect(scale)
    if print_output:
        print(format_table(
            ["ev", "eM", "cycles"],
            [[d["ev"], d["eM"], d["cycles"]] for d in data["a"]],
            title="\nFig. 3a — cycles vs exponent bits (f=fv=52): "
                  "exponential in both"))
        print(format_table(
            ["fv", "fM", "cycles"],
            [[d["fv"], d["fM"], d["cycles"]] for d in data["b"]],
            title="\nFig. 3b — cycles vs fraction bits (e=ev=3): linear"))
        print(format_table(
            ["eM", "fM", "crossbars"],
            [[d["eM"], d["fM"], d["crossbars"]] for d in data["c"]],
            title="\nFig. 3c — crossbars: exponential in eM, linear in fM"))
        print(format_table(
            ["id", "name", "FP64", "matrix bits", "locality", "ReFloat"],
            [[d["sid"], d["name"], d["fp64_bits"], d["matrix_bits"],
              d["locality_bits"], d["refloat_bits"]] for d in data["d"]],
            title="\nFig. 3d — exponent bits: FP64 vs per-block locality vs "
                  "ReFloat"))
    return data
