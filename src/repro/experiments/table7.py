"""Table VII: the bit configuration used per matrix/solver."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import default_spec_for
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import PAPER_SUITE, suite_ids

__all__ = ["run", "collect"]


def collect(scale: Optional[str] = None) -> Dict[int, dict]:
    out = {}
    for sid in suite_ids():
        spec = default_spec_for(sid)
        out[sid] = {"name": PAPER_SUITE[sid].name, "e": spec.e, "f": spec.f,
                    "ev": spec.ev, "fv": spec.fv,
                    "note": "fv=16 exception" if PAPER_SUITE[sid].fv_override else ""}
    return out


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[int, dict]:
    data = collect(scale)
    if print_output:
        rows = [[sid, d["name"], d["e"], d["f"], d["ev"], d["fv"], d["note"]]
                for sid, d in data.items()]
        print(format_table(["id", "name", "e", "f", "ev", "fv", "note"], rows,
                           title="\nTable VII — ReFloat bit configuration "
                                 "(paper: e=3 f=3 ev=3 fv=8; fv=16 for 1288/1848)"))
    return data
