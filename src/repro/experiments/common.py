"""Shared evaluation runner: solve every suite matrix on every platform.

Fig. 8 (speedups), Fig. 9 (traces), Table VI (iterations) and Table VII
(configurations) are all views of the same set of runs, so the runs are done
once per (scale, solver) and cached in-process.

Platforms (the Fig. 8 legend):

* ``gpu``          — exact FP64 solve, timed with the V100 roofline model;
* ``feinberg_fc``  — functionally-correct baseline: FP64 iterations charged
                     with the [32] accelerator timing;
* ``feinberg``     — the [32] functional model (vector window flaw); its own
                     iteration count (or NC) with [32] timing;
* ``refloat``      — ReFloat operator, its own iterations, ReFloat timing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.formats.feinberg import FeinbergSpec
from repro.formats.refloat import ReFloatSpec
from repro.hardware.accelerator import MappingPlan, SolverTimingModel
from repro.hardware.gpu import GPUSolverModel
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.solvers import ConvergenceCriterion, SolverResult, bicgstab, cg
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids

__all__ = [
    "PLATFORMS",
    "SOLVERS",
    "MatrixRun",
    "default_spec_for",
    "run_matrix",
    "run_suite",
    "geometric_mean",
]

PLATFORMS = ("gpu", "feinberg", "feinberg_fc", "refloat")
SOLVERS: Dict[str, Callable[..., SolverResult]] = {"cg": cg, "bicgstab": bicgstab}

#: SpMVs and n-length vector ops per iteration, per solver (Section VI-B:
#: BiCGSTAB does two whole-matrix SpMVs per iteration).
_SOLVER_SHAPE = {"cg": (1, 6), "bicgstab": (2, 12)}

#: In-process cache of full-suite runs, keyed (scale, solver).
_CACHE: Dict[tuple, Dict[int, "MatrixRun"]] = {}


def default_spec_for(sid: int) -> ReFloatSpec:
    """The Table VII configuration for a matrix (fv=16 for 1288/1848)."""
    fv = PAPER_SUITE[sid].fv_override or 8
    return ReFloatSpec(b=7, e=3, f=3, ev=3, fv=fv)


@dataclass
class MatrixRun:
    """All platform results for one (matrix, solver) cell of Fig. 8."""

    sid: int
    name: str
    solver: str
    n_rows: int
    nnz: int
    n_blocks: int
    results: Dict[str, SolverResult] = field(default_factory=dict)
    times_s: Dict[str, float] = field(default_factory=dict)

    def iterations(self, platform: str) -> Optional[int]:
        res = self.results[platform]
        return res.iterations if res.converged else None

    def speedup(self, platform: str) -> float:
        """Fig. 8's metric ``p = t_GPU / t_x`` (NaN when x did not converge)."""
        t = self.times_s.get(platform)
        if t is None or not math.isfinite(t):
            return float("nan")
        return self.times_s["gpu"] / t


def run_matrix(sid: int, solver: str, scale: Optional[str] = None,
               criterion: Optional[ConvergenceCriterion] = None,
               feinberg_spec: FeinbergSpec = FeinbergSpec()) -> MatrixRun:
    """Solve one suite matrix on all four platforms and attach model times."""
    if solver not in SOLVERS:
        raise KeyError(f"solver must be one of {sorted(SOLVERS)}")
    scale = resolve_scale(scale)
    crit = criterion or ConvergenceCriterion(tol=1e-8, max_iterations=20000)
    solve = SOLVERS[solver]
    spmvs, vops = _SOLVER_SHAPE[solver]

    info = PAPER_SUITE[sid]
    A = info.matrix(scale)
    n = A.shape[0]
    b = A @ np.ones(n)
    blocked = BlockedMatrix(A, b=7)
    spec = default_spec_for(sid)

    run = MatrixRun(sid=sid, name=info.name, solver=solver, n_rows=n,
                    nnz=int(A.nnz), n_blocks=blocked.n_blocks)

    run.results["gpu"] = solve(ExactOperator(A), b, criterion=crit)
    run.results["feinberg"] = solve(FeinbergOperator(A, feinberg_spec), b, criterion=crit)
    run.results["feinberg_fc"] = run.results["gpu"]  # identical numerics
    run.results["refloat"] = solve(ReFloatOperator(A, spec), b, criterion=crit)

    # --- timing models -------------------------------------------------
    gpu_model = GPUSolverModel.cg() if solver == "cg" else GPUSolverModel.bicgstab()
    it_gpu = run.results["gpu"].iterations
    run.times_s["gpu"] = gpu_model.solve_time_s(it_gpu, n, run.nnz)

    plan_f = MappingPlan.for_feinberg(run.n_blocks)
    timing_f = SolverTimingModel(plan_f, spmvs_per_iteration=spmvs,
                                 vector_ops_per_iteration=vops)
    # Steady-state accounting (no one-time mapping write), matching the
    # paper's speedup definition; matters only for few-iteration solves.
    run.times_s["feinberg_fc"] = timing_f.solve_time_s(it_gpu, n,
                                                       include_setup=False)
    if run.results["feinberg"].converged:
        run.times_s["feinberg"] = timing_f.solve_time_s(
            run.results["feinberg"].iterations, n, include_setup=False)
    else:
        run.times_s["feinberg"] = float("inf")

    plan_r = MappingPlan.for_refloat(run.n_blocks, spec)
    timing_r = SolverTimingModel(plan_r, spmvs_per_iteration=spmvs,
                                 vector_ops_per_iteration=vops)
    if run.results["refloat"].converged:
        run.times_s["refloat"] = timing_r.solve_time_s(
            run.results["refloat"].iterations, n, include_setup=False)
    else:
        run.times_s["refloat"] = float("inf")
    return run


def run_suite(solver: str, scale: Optional[str] = None,
              use_cache: bool = True) -> Dict[int, MatrixRun]:
    """Run (or fetch) the full 12-matrix evaluation for one solver."""
    scale = resolve_scale(scale)
    key = (scale, solver)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    runs = {sid: run_matrix(sid, solver, scale) for sid in suite_ids()}
    _CACHE[key] = runs
    return runs


def geometric_mean(values: List[float]) -> float:
    """GMN over finite positive entries (the paper's summary statistic)."""
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))
