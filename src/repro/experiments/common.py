"""Shared evaluation runner: solve every suite matrix on every platform.

Fig. 8 (speedups), Fig. 9 (traces), Table VI (iterations) and Table VII
(configurations) are all views of the same set of runs, so the runs are done
once per (scale, solver) and cached in-process.

Platforms and solvers come from the :mod:`repro.api` registries —
``run_matrix``/``run_suite`` iterate :data:`PLATFORM_REGISTRY` /
:data:`SOLVER_REGISTRY` specs, so registering a platform from user code is
enough to sweep it.  The default grid (the Fig. 8 legend):

* ``gpu``          — exact FP64 solve, timed with the V100 roofline model;
* ``feinberg_fc``  — functionally-correct baseline: FP64 iterations charged
                     with the [32] accelerator timing;
* ``feinberg``     — the [32] functional model (vector window flaw); its own
                     iteration count (or NC) with [32] timing;
* ``refloat``      — ReFloat operator, its own iterations, ReFloat timing.

Runtime knobs resolve through :class:`repro.api.RunConfig` (argument >
installed config > environment); the ``REPRO_*`` names below are the
environment spellings of its fields.

Hot-path architecture
---------------------
Asset resolution is a three-level hierarchy — in-process LRU, then the
persistent on-disk store, then a full build — plus a configurable fan-out:

* a *matrix asset* cache keyed ``(sid, scale)`` holds the built matrix, its
  right-hand side, one shared :class:`BlockedMatrix` partition and the
  constructed platform operators — so the cg and bicgstab sweeps (and any
  experiment revisiting a matrix) stop re-partitioning and re-quantising
  identical matrices.  The cache is LRU with a byte budget:
  ``REPRO_ASSET_CACHE_MB`` bounds the (estimated) resident bytes, evicting
  the least-recently-used entries first, so ``paper``-scale sweeps do not
  grow without bound (unset = unbounded, the test/default-scale behaviour);
* when ``REPRO_ASSET_STORE`` names a directory, in-process misses attach to
  the persistent store (:mod:`repro.experiments.store`): the CSR arrays,
  RHS and partition metadata come back as read-only memory maps instead of
  being regenerated, and fresh builds are materialised into the store for
  the next cold process.  Only the operator quantisation (cheap,
  vectorised, deterministic) re-runs on attach, so store hits are
  bit-identical to builds;
* a *run* cache keyed ``(scale, solver)`` memoises whole-suite sweeps;
* every batch compiles into a dependency-aware task graph
  (:mod:`repro.api.graph`): solve nodes, baseline nodes variant solves
  depend on ("needs baseline" — what used to be a solve-all-baselines
  phase barrier), and asset nodes gating solves on their store entry
  ("needs store entry").  A scheduler dispatches ready nodes as
  dependencies complete — variant solves overlap still-running
  baselines, pre-warm overlaps independent solves — and a failed node
  skips its dependents with structured ``"dependency"`` failures;
* :func:`run_suite` fans the 12 matrices out over an executor.
  ``REPRO_SUITE_EXECUTOR`` selects ``thread`` (default) or ``process``;
  ``REPRO_SUITE_WORKERS`` overrides the worker count, with ``1`` forcing
  the serial path.  Thread results are deterministic and identical to
  serial execution — operators are effectively immutable and the
  vector-converter scratch buffers are thread-local.  The process pool
  sidesteps the GIL entirely for ``paper``-scale sweeps: task payloads are
  picklable ``(sid, solver, scale)`` triples, each worker process resolves
  assets through its own hierarchy — with a store configured the parent
  pre-materialises every entry and workers mmap-attach instead of
  rebuilding per worker — and the returned :class:`MatrixRun` carries only
  arrays/floats, so results are again identical to serial execution.  An
  interpreter-exit hook (registered ahead of ``concurrent.futures``' own
  drain-the-queue handler) reaps live workers, so an exit without
  :func:`clear_run_caches` cannot hang — or stall out a full abandoned
  sweep — on live workers.
"""

from __future__ import annotations

import atexit
import math
import os
import signal
import threading
import time
from collections import OrderedDict, deque
from collections.abc import Mapping
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from repro.api import config as api_config
from repro.api import faults
from repro.api.faults import RunFailure
from repro.api.graph import (
    GraphScheduler,
    TaskGraph,
    compile_solve_graph,
)
from repro.api.platforms import DEFAULT_PLATFORMS
from repro.api.registry import (
    PLATFORM_REGISTRY,
    SOLVER_REGISTRY,
    PlatformContext,
    resolve_platforms,
)
from repro.api.specs import RunRequest, SuiteSpec
from repro.api.sweep import (
    VARIANT_FAMILIES,
    SweepSpec,
    ensure_variant_platforms,
    is_variant_token,
)
from repro.experiments import ledger as run_ledger
from repro.experiments import store
from repro.formats.feinberg import FeinbergSpec
from repro.formats.refloat import ReFloatSpec
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.solvers import ConvergenceCriterion, SolverResult
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids

__all__ = [
    "PLATFORMS",
    "SOLVERS",
    "ExecutionStats",
    "MatrixRun",
    "SuiteResult",
    "SweepResult",
    "asset_cache_stats",
    "default_spec_for",
    "matrix_assets",
    "platform_operator",
    "run_matrix",
    "run_request",
    "run_spec",
    "run_suite",
    "run_sweep",
    "clear_run_caches",
    "geometric_mean",
]

#: The default sweep grid (back-compat alias; the registry is the source of
#: truth and holds more platforms than these four).
PLATFORMS = DEFAULT_PLATFORMS


class _SolverCallables(Mapping):
    """Live name → callable view of the solver registry.

    Keeps the historical ``SOLVERS`` dict API (``SOLVERS["cg"]``,
    ``sorted(SOLVERS)``) while the registry remains the single source of
    truth — solvers registered after import show up here immediately.
    """

    def __getitem__(self, name: str) -> Callable[..., SolverResult]:
        return SOLVER_REGISTRY.get(name).solve

    def __iter__(self):
        return iter(SOLVER_REGISTRY.names())

    def __len__(self) -> int:
        return len(SOLVER_REGISTRY)


SOLVERS: Mapping = _SolverCallables()

#: In-process cache of full-suite runs, keyed (scale, solver).
_CACHE: Dict[tuple, Dict[int, "MatrixRun"]] = {}

#: In-process LRU cache of per-matrix assets, keyed (sid, scale); most
#: recently used entries sit at the end.  Guarded by _CACHE_LOCK, with the
#: estimated per-entry bytes in _ASSET_SIZES and their sum in _ASSET_BYTES.
_ASSETS: "OrderedDict[tuple, MatrixAssets]" = OrderedDict()
_ASSET_SIZES: Dict[tuple, int] = {}
_ASSET_BYTES: int = 0

_CACHE_LOCK = threading.Lock()

_EXECUTORS = api_config.EXECUTORS

#: Persistent process pool (created on first use, resized on demand) so the
#: per-worker asset caches survive across run_suite calls — the cg sweep
#: warms the workers the bicgstab sweep then reuses.  Guarded by _CACHE_LOCK.
_PROCESS_POOL: Optional[ProcessPoolExecutor] = None
#: (width, asset-env-config) the pool was created under.  Workers inherit
#: their environment at fork time, so a pool outliving a change to any
#: asset-handling env var would keep honouring the stale value (rebuilding
#: assets the parent materialised, or ignoring a new cache budget) — the
#: pool is recreated whenever any part of the token changes.
_PROCESS_POOL_TOKEN: Optional[tuple] = None
#: PID that created the pool.  Forked workers inherit this module's state —
#: including the executor object and sibling Process handles — so every
#: shutdown path must refuse to touch a pool it does not own: a worker
#: "shutting down" the inherited copy would join threads that never ran in
#: its process and terminate its own siblings.
_PROCESS_POOL_OWNER: Optional[int] = None


def _registry_pool_stamp() -> tuple:
    """The registry state a worker must share with the parent.

    Worker processes (on fork platforms) freeze the registries at pool
    creation.  Variant *tokens* are exempt — workers rebuild those on
    demand from their family registry — but a platform or solver
    registered under a plain name after the fork would be unresolvable
    (or, after ``replace=True``, silently mean the old work) in a stale
    worker, so the pool identity covers every non-token name with its
    per-name version.
    """
    platform_names = tuple(name for name in PLATFORM_REGISTRY.names()
                           if not is_variant_token(name))
    solver_names = SOLVER_REGISTRY.names()
    return (platform_names, PLATFORM_REGISTRY.versions(platform_names),
            solver_names, SOLVER_REGISTRY.versions(solver_names))


def _pool_token(workers: int) -> tuple:
    cfg = api_config.active()
    # The variant-family generation joins the registry stamp: workers
    # materialise variant tokens from *their* family registry, so a pool
    # predating a register_variant_family call would raise unknown-family
    # KeyErrors for sweeps over the new family — such a pool is recreated.
    return (workers, cfg.store or "", cfg.store_verify, cfg.asset_cache_mb,
            VARIANT_FAMILIES.generation, _registry_pool_stamp())


def _pool_worker_init() -> None:
    """Restore default signal dispositions in pool workers.

    Workers fork from the parent and inherit its signal handlers.  A
    parent that traps SIGTERM for graceful shutdown (the solve-service
    daemon does) would otherwise make its workers unkillable by
    ``Process.terminate()``: the inherited handler swallows the signal,
    and ``concurrent.futures``' broken-pool cleanup then joins the
    immortal worker forever.  Workers must die on SIGTERM and leave
    SIGINT to the parent's orchestration.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.default_int_handler)


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, recreated when the width or store config changes."""
    global _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER
    token = _pool_token(workers)
    with _CACHE_LOCK:
        if _PROCESS_POOL is None or _PROCESS_POOL_TOKEN != token:
            if _PROCESS_POOL is not None and _PROCESS_POOL_OWNER == os.getpid():
                _PROCESS_POOL.shutdown(wait=False)
            _PROCESS_POOL = ProcessPoolExecutor(
                max_workers=workers, initializer=_pool_worker_init)
            _PROCESS_POOL_TOKEN = token
            _PROCESS_POOL_OWNER = os.getpid()
        return _PROCESS_POOL


def _detach_process_pool() -> Optional[ProcessPoolExecutor]:
    """Drop the module's pool reference; return it only to the owning process.

    Non-owners (forked workers that inherited the reference) always get
    ``None`` — they must never operate on the parent's executor state.
    """
    global _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER
    with _CACHE_LOCK:
        pool, owner = _PROCESS_POOL, _PROCESS_POOL_OWNER
        _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER = \
            None, None, None
    if pool is None or owner != os.getpid():
        return None
    return pool


def _shutdown_process_pool() -> None:
    """Shut the shared pool down cooperatively (the ``clear_run_caches`` path).

    ``cancel_futures`` drops work not yet handed to a worker; anything
    already in the call queue still runs, so this is orderly and bounded.
    """
    pool = _detach_process_pool()
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def _discard_process_pool(kill: bool = False) -> None:
    """Drop the shared pool after a break or hang — reap it, never drain it.

    ``kill=True`` SIGKILLs live workers first (the timeout-recovery path: a
    worker stuck in a hung solve cannot be cancelled cooperatively); a pool
    that is already broken just needs its bookkeeping shut down.  The next
    :func:`_process_pool` call builds a fresh pool.
    """
    pool = _detach_process_pool()
    if pool is None:
        return
    if kill:
        for proc in list((getattr(pool, "_processes", None) or {}).values()):
            if proc.is_alive():
                proc.kill()
    pool.shutdown(wait=False, cancel_futures=True)


def _exit_process_pool() -> None:
    """Interpreter-exit hook: reap live workers instead of draining them.

    At exit nobody can consume results, so queued work is abandoned by
    definition: live workers are terminated first, then the cooperative
    shutdown reaps the (now broken) pool.  This must run *before*
    ``concurrent.futures``' own exit handler — which joins the pool only
    after executing every queued task, and can hang forever on a stuck
    worker — hence the registration below goes through
    ``threading._register_atexit`` (those callbacks run LIFO ahead of the
    futures handler) rather than plain :mod:`atexit`, which fires too late
    to prevent the drain.  Verified against a queued-work exit in
    ``tests/test_suite_executor.py``.
    """
    pool = _detach_process_pool()
    if pool is None:
        return
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        if proc.is_alive():
            proc.terminate()
    pool.shutdown(wait=True, cancel_futures=True)


#: An interpreter exit without clear_run_caches() must not hang (or stall
#: arbitrarily long) on live pool workers.  Registered once at import time —
#: a no-op when no pool was ever created, including in the workers
#: themselves.  The threading hook is a private CPython API (3.9+); plain
#: atexit is the degraded fallback (it cannot pre-empt the futures drain).
try:
    threading._register_atexit(_exit_process_pool)
except (AttributeError, RuntimeError):  # pragma: no cover - fallback
    atexit.register(_exit_process_pool)


def _asset_cache_budget() -> Optional[int]:
    """The active config's asset-cache byte budget (None = unbounded).

    Sourced from ``REPRO_ASSET_CACHE_MB`` unless a :class:`RunConfig` is
    installed; invalid env values raise the config module's named error.
    """
    return api_config.active().asset_cache_bytes


def _approx_nbytes(*roots) -> int:
    """Estimated resident bytes of the ndarray/CSR payloads under ``roots``.

    Walks instance attributes, deduplicating shared arrays by identity (the
    partition, quantised matrix and operators alias each other heavily), so
    the figure tracks what the cache actually pins.  State that evicting an
    asset cannot free is excluded: :class:`VectorConverterPlan` instances
    are owned by the process-wide ``vector_converter_plan`` LRU (they
    outlive the asset), and per-thread scratch is transient — charging
    either here would make eviction subtract bytes that stay resident.
    """
    from repro.formats.refloat import VectorConverterPlan

    seen, total = set(), 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += _array_nbytes(obj)
        elif sp.issparse(obj):
            stack.extend(getattr(obj, name) for name in
                         ("data", "indices", "indptr", "row", "col")
                         if hasattr(obj, name))
        elif isinstance(obj, dict):
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
        elif isinstance(obj, (threading.local, VectorConverterPlan)):
            continue  # not freed by evicting this asset (see docstring)
        elif hasattr(obj, "__dict__"):
            stack.extend(vars(obj).values())
    return total


def _array_nbytes(arr: np.ndarray) -> int:
    """Resident bytes an array pins: store-mmapped arrays count as zero.

    Memory-mapped views are backed by the OS page cache — evicting an asset
    that wraps them frees (approximately) nothing, and charging them would
    make a warm-store sweep look as expensive as a cold one.
    """
    if isinstance(arr, np.memmap) or isinstance(getattr(arr, "base", None),
                                                np.memmap):
        return 0
    return arr.nbytes


@dataclass
class MatrixAssets:
    """Everything about one (matrix, scale) pair that is solver-independent.

    Built once and shared by every platform/solver sweep: the matrix, the
    paper right-hand side ``A @ 1``, a single :class:`BlockedMatrix`
    partition (handed to the operators so nothing re-partitions), and the
    constructed operators themselves.  All of it is read-only after
    construction, so sharing across runner threads is safe.
    """

    sid: int
    scale: str
    A: object
    b: np.ndarray
    blocked: BlockedMatrix
    spec: ReFloatSpec
    exact_op: ExactOperator
    refloat_op: ReFloatOperator
    feinberg_ops: Dict[FeinbergSpec, FeinbergOperator] = field(default_factory=dict)

    def feinberg_op(self, spec: FeinbergSpec) -> FeinbergOperator:
        with _CACHE_LOCK:
            op = self.feinberg_ops.get(spec)
        if op is None:
            op = FeinbergOperator(None, spec, blocked=self.blocked)
            with _CACHE_LOCK:
                op = self.feinberg_ops.setdefault(spec, op)
        return op


def _spec_token(spec: ReFloatSpec) -> str:
    """Filename-safe identity of a ReFloat spec, for store extra-array keys."""
    return (f"b{spec.b}e{spec.e}f{spec.f}ev{spec.ev}fv{spec.fv}"
            f"-{spec.rounding}-{spec.underflow}-{spec.eb_policy}")


def _store_extras(spec: ReFloatSpec, refloat_op: ReFloatOperator,
                  ) -> Dict[str, np.ndarray]:
    """Extra arrays saved with a store entry: the pre-quantised matrix,
    stored in the same contiguous BSR tensor layout as the canonical entry
    (``ReFloatOperator`` gathers it back to CSR order bit-identically).

    Keyed by the full spec identity, so a loader with a different default
    spec simply misses the extra and re-quantises — never reuses stale data.
    """
    qbsr = refloat_op.blocked.bsr.scatter_values(refloat_op.A.data)
    return {f"refloat_qbsr_{_spec_token(spec)}": qbsr}


def _load_or_build_assets(sid: int, scale: str) -> MatrixAssets:
    """Level 2/3 of the asset hierarchy: attach to the store, else build.

    A store hit hands back memory-mapped CSR arrays, the stored RHS, the
    reattached partition and (when the spec matches) the pre-quantised
    ReFloat matrix data, so nothing is regenerated and the resulting assets
    are bit-identical to a fresh build.  A miss builds everything and
    materialises it into the store (no-op when ``REPRO_ASSET_STORE`` is
    unset) for the next cold process.
    """
    spec = default_spec_for(sid)
    qbsr_key = f"refloat_qbsr_{_spec_token(spec)}"
    entry = store.load_entry(sid, scale, extras=(qbsr_key,))
    if entry is not None:
        A, b, blocked = entry.A, entry.b, entry.blocked
        refloat_op = ReFloatOperator(None, spec, blocked=blocked,
                                     quantized=entry.extras.get(qbsr_key))
    else:
        store.note_build(sid, scale)
        A = PAPER_SUITE[sid].matrix(scale)
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        refloat_op = ReFloatOperator(None, spec, blocked=blocked)
        store.save_entry(sid, scale, A, b, blocked,
                         extras=_store_extras(spec, refloat_op))
    return MatrixAssets(
        sid=sid, scale=scale, A=A, b=b, blocked=blocked, spec=spec,
        exact_op=ExactOperator(A), refloat_op=refloat_op,
    )


def matrix_assets(sid: int, scale: str) -> MatrixAssets:
    """Build (or fetch) the shared per-matrix assets for ``(sid, scale)``.

    Resolution is hierarchical: the in-process LRU cache, then the on-disk
    ``REPRO_ASSET_STORE`` (memory-mapped attach), then a full build that
    also populates the store.  Cache hits refresh the entry's LRU position;
    inserts charge the entry's estimated bytes against the
    ``REPRO_ASSET_CACHE_MB`` budget and evict least-recently-used entries
    until the budget holds again (the newest entry itself is never evicted —
    a single oversized matrix still runs).
    """
    global _ASSET_BYTES
    key = (sid, scale)
    with _CACHE_LOCK:
        cached = _ASSETS.get(key)
        if cached is not None:
            _ASSETS.move_to_end(key)
            return cached
    assets = _load_or_build_assets(sid, scale)
    budget = _asset_cache_budget()
    nbytes = _approx_nbytes(assets)
    with _CACHE_LOCK:
        # Another thread may have raced us; keep exactly one copy.
        if key in _ASSETS:
            _ASSETS.move_to_end(key)
            return _ASSETS[key]
        _ASSETS[key] = assets
        _ASSET_SIZES[key] = nbytes
        _ASSET_BYTES += nbytes
        if budget is not None:
            while _ASSET_BYTES > budget and len(_ASSETS) > 1:
                old_key, _ = _ASSETS.popitem(last=False)
                _ASSET_BYTES -= _ASSET_SIZES.pop(old_key)
    return assets


def asset_cache_stats() -> Dict[str, int]:
    """Snapshot of the asset cache: entries and estimated resident bytes."""
    with _CACHE_LOCK:
        return {"entries": len(_ASSETS), "bytes": _ASSET_BYTES}


def clear_run_caches() -> None:
    """Drop the in-process caches (tests and memory-sensitive callers).

    Clears the run and asset caches — including the asset cache's LRU byte
    accounting, which must restart from zero — plus the vector-converter
    plan cache, which pins O(n) index/scratch state per ``(n, spec)`` pair
    the operators have touched.  The persistent process pool (whose workers
    hold their own per-process caches) is shut down too.  The on-disk
    ``REPRO_ASSET_STORE`` is *not* touched — persistence across processes
    is its purpose; delete entry directories to evict it.
    """
    from repro.formats.refloat import vector_converter_plan

    global _ASSET_BYTES
    with _CACHE_LOCK:
        _CACHE.clear()
        _ASSETS.clear()
        _ASSET_SIZES.clear()
        _ASSET_BYTES = 0
    vector_converter_plan.cache_clear()
    _shutdown_process_pool()


def default_spec_for(sid: int) -> ReFloatSpec:
    """The Table VII configuration for a matrix (fv=16 for 1288/1848)."""
    fv = PAPER_SUITE[sid].fv_override or 8
    return ReFloatSpec(b=7, e=3, f=3, ev=3, fv=fv)


@dataclass
class MatrixRun:
    """All platform results for one (matrix, solver) cell of Fig. 8.

    ``results``/``times_s`` hold exactly the platforms the run swept;
    :meth:`iterations` and :meth:`speedup` degrade gracefully (``None`` /
    ``NaN``) for platforms absent from a subset sweep.
    """

    sid: int
    name: str
    solver: str
    n_rows: int
    nnz: int
    n_blocks: int
    results: Dict[str, SolverResult] = field(default_factory=dict)
    times_s: Dict[str, float] = field(default_factory=dict)

    @property
    def platforms(self) -> Tuple[str, ...]:
        """The platforms this run swept, in sweep order."""
        return tuple(self.results)

    def iterations(self, platform: str) -> Optional[int]:
        """Converged iteration count; ``None`` when the platform did not
        converge *or* was not part of this run's sweep."""
        res = self.results.get(platform)
        if res is None:
            return None
        return res.iterations if res.converged else None

    def speedup(self, platform: str) -> float:
        """Fig. 8's metric ``p = t_GPU / t_x`` (NaN when x did not converge
        or either platform is absent from the sweep)."""
        t = self.times_s.get(platform)
        t_gpu = self.times_s.get("gpu")
        if t is None or t_gpu is None or not math.isfinite(t):
            return float("nan")
        return t_gpu / t

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (per-platform convergence/iterations/times;
        non-finite floats become ``None``)."""

        def safe(value: Optional[float]) -> Optional[float]:
            if value is None or not math.isfinite(value):
                return None
            return float(value)

        return {
            "sid": self.sid, "name": self.name, "solver": self.solver,
            "n_rows": self.n_rows, "nnz": self.nnz, "n_blocks": self.n_blocks,
            "platforms": {
                name: {
                    "converged": bool(res.converged),
                    "iterations": int(res.iterations),
                    "time_s": safe(self.times_s.get(name)),
                    "speedup_vs_gpu": safe(self.speedup(name)),
                }
                for name, res in self.results.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MatrixRun":
        """Rebuild a *summary-grade* run from :meth:`to_dict` output.

        The inverse is lossy by design — the summary drops iterate vectors
        and residual histories — so the rebuilt ``results`` hold stub
        :class:`SolverResult`\\ s (empty ``x``, ``NaN`` residual norm) that
        carry exactly what reporting reads: convergence, iteration counts
        and times.  A serialised ``time_s`` of ``None`` (non-finite on the
        way out) round-trips to ``inf``, matching the live convention for
        non-converged platforms.  This is what the sweep journal replays.
        """
        run = cls(sid=int(data["sid"]), name=str(data["name"]),
                  solver=str(data["solver"]), n_rows=int(data["n_rows"]),
                  nnz=int(data["nnz"]), n_blocks=int(data["n_blocks"]))
        for name, cell in data["platforms"].items():
            run.results[name] = SolverResult(
                x=np.empty(0), converged=bool(cell["converged"]),
                iterations=int(cell["iterations"]),
                residual_norm=float("nan"))
            time_s = cell.get("time_s")
            run.times_s[name] = (float("inf") if time_s is None
                                 else float(time_s))
        return run


@dataclass
class ExecutionStats:
    """Counters from one engine invocation (:func:`run_suite`/``run_sweep``).

    ``requests`` is the batch size actually executed; ``nodes``/``edges``
    describe the compiled task graph (solve nodes plus any asset pre-warm
    nodes, "needs baseline"/"needs store entry" edges); ``retries`` counts
    re-executions after an in-request exception or timeout; ``timeouts``
    counts requests that outlived ``request_timeout``; ``pool_rebuilds``
    counts process-pool replacements (breaks and timeout kills);
    ``poisoned`` counts requests failed for breaking the pool twice;
    ``skipped`` counts nodes never run because a dependency failed (each
    carries a ``"dependency"``-phase :class:`RunFailure`);
    ``journal_skipped`` counts sweep cells replayed from a journal instead
    of solved.

    ``trace`` is the scheduler's per-node timing record — state, dispatch
    count, monotonic first/last-dispatch and finish offsets — the proof
    that dispatch overlaps (a variant starting before the last baseline
    finished shows up directly).  It stays out of :meth:`to_dict`:
    wall-clock offsets differ run to run, and the serialised stats must
    stay byte-identical across executors (the CI equivalence gate).
    """

    requests: int = 0
    nodes: int = 0
    edges: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    poisoned: int = 0
    skipped: int = 0
    journal_skipped: int = 0
    trace: Dict[str, Dict[str, Any]] = field(default_factory=dict, repr=False)

    def to_dict(self) -> Dict[str, int]:
        return {
            "requests": self.requests, "nodes": self.nodes,
            "edges": self.edges, "retries": self.retries,
            "timeouts": self.timeouts, "pool_rebuilds": self.pool_rebuilds,
            "poisoned": self.poisoned, "skipped": self.skipped,
            "journal_skipped": self.journal_skipped,
        }

    def trace_summary(self) -> Optional[Dict[str, Any]]:
        """Aggregate view of the scheduler trace, safe to serialise.

        Summarises the per-node timing record into what latency work needs
        as an offline baseline: how many nodes the graph had, how many were
        actually dispatched, the peak number simultaneously in flight (the
        scheduler's achieved concurrency / max queue depth), and the wall
        span from first dispatch to last finish.  Unlike ``trace`` itself
        this is deliberately *not* part of :meth:`to_dict` — the CLI emits
        it as a separate top-level key so the serialised stats stay
        byte-identical across executors (the CI equivalence gate strips
        the summary, whose wall span is wall-clock, before comparing).
        ``None`` when no trace was recorded (e.g. a run-cache hit).
        """
        if not self.trace:
            return None
        spans = []
        for node in self.trace.values():
            start = node.get("first_dispatch")
            if start is None:
                continue
            end = node.get("finished")
            spans.append((float(start),
                          float(end) if end is not None else float(start)))
        if not spans:
            return {"nodes": len(self.trace), "executed": 0,
                    "max_inflight": 0, "wall_span_s": 0.0}
        events = sorted([(s, 1) for s, _ in spans]
                        + [(e, -1) for _, e in spans],
                        key=lambda ev: (ev[0], ev[1]))
        peak = depth = 0
        for _, delta in events:
            depth += delta
            peak = max(peak, depth)
        wall = max(e for _, e in spans) - min(s for s, _ in spans)
        return {"nodes": len(self.trace), "executed": len(spans),
                "max_inflight": peak, "wall_span_s": round(wall, 6)}


class SuiteResult(dict):
    """``{sid: MatrixRun}`` plus fault-tolerance metadata.

    A plain dict to every historical consumer (iteration, indexing,
    equality all unchanged); ``failures`` holds the :class:`RunFailure`
    records of cells that produced no run — non-empty only under
    ``on_error="collect"`` — and ``stats`` the engine's
    :class:`ExecutionStats` counters from the call that *executed* it (a
    run-cache hit returns the original object, counters included).
    """

    failures: Tuple[RunFailure, ...] = ()
    stats: Optional[ExecutionStats] = None


def run_matrix(sid: int, solver: str, scale: Optional[str] = None,
               criterion: Optional[ConvergenceCriterion] = None,
               feinberg_spec: FeinbergSpec = FeinbergSpec(),
               platforms: Optional[Iterable[str]] = None) -> MatrixRun:
    """Solve one suite matrix on the selected platforms and attach times.

    ``platforms`` defaults to the paper's four-platform grid; any
    registered platform name is accepted — including a variant token like
    ``"noisy@sigma=0.05"``, materialised on demand from its family — and a
    platform that reuses another's results (``feinberg_fc`` → ``gpu``)
    pulls its dependency into the sweep automatically.  The convergence
    criterion resolves argument > active config > paper default.  Matrix
    construction, partitioning and operator quantisation come from the
    shared :func:`matrix_assets` cache — the solve loops are the only
    per-call work.
    """
    sspec = SOLVER_REGISTRY.get(solver)
    if sspec.multi_rhs:
        raise ValueError(
            f"solver {solver!r} is a multi-RHS (batched) solver; run_matrix "
            f"sweeps single-RHS solvers — call it directly for RHS blocks")
    scale = resolve_scale(scale)
    names = (DEFAULT_PLATFORMS if platforms is None
             else platforms if isinstance(platforms, (str, bytes))
             else tuple(platforms))  # one-shot iterables: two passes below
    ensure_variant_platforms(names)
    order = resolve_platforms(names)
    crit = (criterion if criterion is not None
            else api_config.active().effective_criterion)

    info = PAPER_SUITE[sid]
    assets = matrix_assets(sid, scale)
    n = assets.A.shape[0]

    run = MatrixRun(sid=sid, name=info.name, solver=solver, n_rows=n,
                    nnz=int(assets.A.nnz), n_blocks=assets.blocked.n_blocks)
    ctx = PlatformContext(
        sid=sid, scale=scale, solver=solver, n_rows=n, nnz=run.nnz,
        n_blocks=run.n_blocks, spec=assets.spec, feinberg_spec=feinberg_spec,
        spmvs_per_iteration=sspec.spmvs_per_iteration,
        vector_ops_per_iteration=sspec.vector_ops_per_iteration,
        gpu_vector_kernels_per_iteration=sspec.gpu_vector_kernels)

    for name in order:
        pspec = PLATFORM_REGISTRY.get(name)
        if pspec.results_from is not None:
            # Reused numerics (resolve_platforms ordered the dependency
            # ahead of us): e.g. the functionally-correct baseline charges
            # its own timing model at the GPU's iteration count.
            res = run.results[pspec.results_from]
        else:
            op = pspec.operator(assets, ctx)
            res = sspec.solve(op, assets.b, criterion=crit)
        run.results[name] = res
        if res.converged or pspec.always_timed:
            run.times_s[name] = pspec.timing(ctx, res.iterations)
        else:
            run.times_s[name] = float("inf")
    return run


def run_request(request: RunRequest, attempt: int = 1) -> MatrixRun:
    """Execute one declarative :class:`RunRequest` (the distribution seam).

    ``attempt`` is the execution ordinal the engine threads through on
    retries/resubmissions.  The named fault-injection points live here —
    ``"solve"`` before the work, ``"result"`` after it — so every executor
    path (serial, thread pool, process-pool worker) consults the same
    deterministic plan (:mod:`repro.api.faults`); a fault-free run pays one
    emptiness check per point.
    """
    faults.consult("solve", sid=request.sid, solver=request.solver,
                   attempt=attempt)
    run = run_matrix(request.sid, request.solver, request.scale,
                     criterion=request.criterion,
                     platforms=request.platforms)
    faults.consult("result", sid=request.sid, solver=request.solver,
                   attempt=attempt)
    return run


def platform_operator(sid: int, scale: Optional[str] = None,
                      platform: str = "refloat", solver: str = "cg",
                      feinberg_spec: FeinbergSpec = FeinbergSpec(),
                      ) -> Tuple["MatrixAssets", Any]:
    """Build one platform's solve operator for a suite matrix.

    The single-platform slice of :func:`run_matrix`'s setup — the solve
    service uses it to construct the shared operator a coalesced lockstep
    batch iterates with.  Returns ``(assets, operator)``; the assets come
    from the shared :func:`matrix_assets` cache, so repeated batches on the
    same ``(sid, scale)`` pay the quantisation exactly once.  Platforms
    that reuse another's results (``results_from``, e.g. ``feinberg_fc``)
    have no operator of their own and are refused with a named error, as
    are multi-RHS solver names (the context carries a single-RHS solver's
    per-iteration shape).
    """
    sspec = SOLVER_REGISTRY.get(solver)
    if sspec.multi_rhs:
        raise ValueError(
            f"solver {solver!r} is a multi-RHS (batched) solver; "
            f"platform_operator describes single-RHS solves")
    scale = resolve_scale(scale)
    ensure_variant_platforms((platform,))
    pspec = PLATFORM_REGISTRY.get(platform)
    if pspec.operator is None:
        raise ValueError(
            f"platform {platform!r} reuses {pspec.results_from!r}'s results "
            f"and has no operator of its own")
    assets = matrix_assets(sid, scale)
    n = assets.A.shape[0]
    ctx = PlatformContext(
        sid=sid, scale=scale, solver=solver, n_rows=n,
        nnz=int(assets.A.nnz), n_blocks=assets.blocked.n_blocks,
        spec=assets.spec, feinberg_spec=feinberg_spec,
        spmvs_per_iteration=sspec.spmvs_per_iteration,
        vector_ops_per_iteration=sspec.vector_ops_per_iteration,
        gpu_vector_kernels_per_iteration=sspec.gpu_vector_kernels)
    return assets, pspec.operator(assets, ctx)


def _suite_workers(n_tasks: int) -> int:
    """Worker count from the active config (>= 1) or the CPU count.

    ``REPRO_SUITE_WORKERS`` misconfigurations (zero, negatives,
    non-integers) raise the config module's named ``ValueError``.
    """
    workers = api_config.active().workers
    if workers is not None:
        return workers
    return max(1, min(n_tasks, os.cpu_count() or 1))


def _suite_executor(executor: Optional[str] = None) -> str:
    """Resolve the fan-out executor: argument, then config/env, then
    ``thread``."""
    if executor is None:
        return api_config.active().executor
    if executor not in _EXECUTORS:
        raise ValueError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}")
    return executor


def _suite_task(request: RunRequest, attempt: int = 1,
                fault_tokens: Optional[Tuple[str, ...]] = None) -> MatrixRun:
    """Picklable process-pool payload: one :class:`RunRequest`.

    Executes in a worker process, where the module-level asset cache is
    per-process state: the first task touching a ``(sid, scale)`` pair
    resolves the assets through its own hierarchy — a memory-mapped store
    attach when a store is configured (the parent pre-materialised every
    entry), a local build otherwise — and later tasks in the same worker
    reuse them.  The returned :class:`MatrixRun` carries only plain
    arrays/floats, and the request itself is the exact JSON-serialisable
    object a multi-host runner would ship instead of pickling.

    ``fault_tokens`` carries the parent's active fault plan as plain
    strings — the worker materialises them from its own kind registry
    (exactly how variant tokens rebuild platforms), so deterministic fault
    injection crosses the pickle boundary regardless of start method.
    """
    faults.sync_fault_plan(fault_tokens)
    return run_request(request, attempt=attempt)


def _ensure_store_task(sid: int, scale: str) -> None:
    """Picklable pre-warm payload: build one asset in a worker and publish it.

    Runs in a worker process: ``matrix_assets`` misses the (empty) store,
    builds, publishes the entry atomically *and* warms that worker's own
    in-process cache — so the cold pre-materialisation is as parallel as
    the sweep itself, and the parent never pins assets it will not solve.
    """
    matrix_assets(sid, scale)


def _prewarm_plan(requests: List[RunRequest]) -> Tuple[Tuple[int, str], ...]:
    """The ``(sid, scale)`` store entries a process fan-out must pre-warm.

    With a store configured, shipping bare ``(sid, solver, scale)`` keys is
    only cheap if the workers find the assets on disk — otherwise each
    worker regenerates them from scratch.  Entries already published need
    nothing; assets already in the parent's in-process cache are flushed
    to disk here without a rebuild; anything else becomes an
    :class:`~repro.api.graph.AssetNode` in the compiled task graph, built
    in a worker and gating exactly the solves of its ``(sid, scale)`` —
    independent solves overlap with the pre-warm, and a pre-build failure
    surfaces as a structured ``"asset"``-phase failure instead of being
    silently dropped (the old fire-and-forget futures swallowed theirs).
    """
    if store.store_root() is None:
        return ()
    plan: List[Tuple[int, str]] = []
    seen: set = set()
    for req in requests:
        pair = (req.sid, req.scale)
        if pair in seen:
            continue
        seen.add(pair)
        if store.has_entry(req.sid, req.scale):
            continue
        with _CACHE_LOCK:
            assets = _ASSETS.get(pair)
        if assets is not None:
            store.save_entry(req.sid, req.scale, assets.A, assets.b,
                             assets.blocked,
                             extras=_store_extras(assets.spec,
                                                  assets.refloat_op))
        else:
            plan.append(pair)
    return tuple(plan)


def _check_sids(sids: Optional[Iterable[int]]) -> Tuple[int, ...]:
    """The sweep's matrix axis: the full suite, or a validated subset."""
    if sids is None:
        return tuple(suite_ids())
    ids = tuple(int(sid) for sid in sids)
    for sid in ids:
        if sid not in PAPER_SUITE:
            raise KeyError(f"unknown suite matrix id {sid}; have "
                           f"{sorted(PAPER_SUITE)}")
    return ids


def _check_on_error(on_error: str) -> str:
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}")
    return on_error


def _backoff_sleep(backoff: float, attempt: int) -> None:
    """Deterministic exponential backoff before re-running ``attempt``:
    ``backoff * 2**(attempt-1)`` seconds (``backoff=0`` retries at once)."""
    if backoff > 0:
        time.sleep(backoff * (2 ** (attempt - 1)))


def _reraise(failures: List[RunFailure]) -> None:
    """Propagate the first failure under ``on_error="raise"``."""
    exc = failures[0].exception
    if exc is not None:
        raise exc
    raise RuntimeError(  # pragma: no cover - exceptions always ride along
        f"request failed: {failures[0].to_dict()}")


def _run_node(node: Any, attempt: int = 1) -> Optional[MatrixRun]:
    """Execute one graph node in this process (serial path, thread worker).

    Solve nodes run :func:`run_request` (looked up as a module global at
    call time, so tests can monkeypatch it); asset nodes materialise their
    store entry and produce no run.
    """
    if node.kind == "asset":
        _ensure_store_task(node.sid, node.scale)
        return None
    return run_request(node.request, attempt=attempt)


def _skip_dependents(sched: GraphScheduler, graph: TaskGraph, key: str,
                     phase: str, failures: List[RunFailure],
                     stats: ExecutionStats) -> None:
    """Transitively skip everything depending on a failed node.

    Each skipped node gets one structured ``"dependency"``-phase
    :class:`RunFailure` (``attempts=0`` — it never ran) naming the failed
    dependency and its phase, and bumps ``stats.skipped``; a dead baseline
    or asset node therefore degrades its dependents loudly instead of
    wedging the batch.
    """
    for skipped in sched.fail(key):
        stats.skipped += 1
        node = graph.payload(skipped)
        failures.append(RunFailure.from_dependency(
            key=skipped, dependency_key=key, dependency_phase=phase,
            sid=node.sid, solver=node.solver))


def _execute_serial(graph: TaskGraph, on_error: str,
                    on_result: Optional[Callable[[RunRequest, MatrixRun],
                                                 None]],
                    stats: ExecutionStats,
                    ) -> Tuple[Dict[str, MatrixRun], List[RunFailure]]:
    """The serial engine path: scheduler-ordered in-process attempt loops.

    Nodes run one at a time in the scheduler's deterministic topological
    order, so dependencies are always complete before their dependents
    start.  ``request_timeout`` is *not* enforced here — a same-thread
    solve cannot be interrupted from outside — which the config documents;
    retries and backoff behave exactly as in the pooled paths.
    """
    cfg = api_config.active()
    sched = GraphScheduler(graph)
    results: Dict[str, MatrixRun] = {}
    failures: List[RunFailure] = []
    try:
        while sched.has_ready:
            key = sched.pop_ready()
            node = graph.payload(key)
            attempt = 1
            while True:
                sched.start(key)
                try:
                    run = _run_node(node, attempt)
                except Exception as exc:
                    if attempt <= cfg.request_retries:
                        stats.retries += 1
                        _backoff_sleep(cfg.retry_backoff, attempt)
                        attempt += 1
                        continue
                    if on_error == "raise":
                        raise
                    phase = "asset" if node.kind == "asset" else "solve"
                    failures.append(RunFailure.from_exception(
                        exc, key=key, phase=phase, attempts=attempt,
                        sid=node.sid, solver=node.solver))
                    _skip_dependents(sched, graph, key, phase, failures,
                                     stats)
                    break
                sched.complete(key)
                if node.kind != "asset":
                    results[key] = run
                    if on_result is not None:
                        on_result(node.request, run)
                break
    finally:
        stats.trace = sched.trace_dict()
    return results, failures


def _execute_pooled(graph: TaskGraph, workers: int, executor: str,
                    on_error: str,
                    on_result: Optional[Callable[[RunRequest, MatrixRun],
                                                 None]],
                    stats: ExecutionStats,
                    ) -> Tuple[Dict[str, MatrixRun], List[RunFailure]]:
    """The pooled engine path: one scheduler-driven submit/collect loop.

    The :class:`GraphScheduler` owns readiness — a node dispatches the
    moment its dependencies complete and a slot is free, with **no phase
    barriers**: variant solves overlap still-running baselines, asset
    pre-warm overlaps independent solves.  State per node key:
    ``attempts`` (executions started — the fault plan and the retry budget
    both count these), ``breaks`` (process-pool breaks the node was in
    flight for).  Failure semantics:

    * an in-node exception consumes one retry (requeued with backoff)
      until the budget runs out, then records a ``"solve"`` (solve nodes)
      or ``"asset"`` (pre-warm nodes) failure and transitively skips the
      node's dependents with ``"dependency"`` failures;
    * a :class:`BrokenExecutor` means a worker died.  The pool is replaced,
      completed results are kept, and every in-flight node is requeued
      *without* charging its retry budget.  A broken pool fails every
      in-flight future indiscriminately, so the culprit cannot be read off
      the break itself: a node that has now been in flight for *two*
      breaks is instead re-run in **isolation** (alone in the fresh pool),
      and a node that breaks the pool while running alone is convicted
      and poison-pilled (a ``"pool"`` failure, dependents skipped) — one
      deterministic crasher cannot wedge the batch in a rebuild loop, and
      innocents caught in the crossfire always complete;
    * a node outliving ``request_timeout`` charges one retry (or records
      a ``"timeout"`` failure); on the process pool its worker is killed
      and the pool rebuilt (innocent in-flight nodes requeue without a
      charge), on the thread pool the hung thread cannot be reclaimed
      (best effort: its result is abandoned, the slot stays occupied until
      it returns).

    Submission caps in-flight work at the worker count when a timeout is
    active (a queued-behind-a-hog node must not have its clock started);
    without one, every ready node is submitted as it unlocks.
    """
    cfg = api_config.active()
    timeout, retries = cfg.request_timeout, cfg.request_retries
    sched = GraphScheduler(graph)
    results: Dict[str, MatrixRun] = {}
    failures: List[RunFailure] = []
    attempts: Dict[str, int] = dict.fromkeys(graph.keys(), 0)
    breaks: Dict[str, int] = dict.fromkeys(graph.keys(), 0)
    probe: deque = deque()  # twice-suspected: re-run in isolation
    solo: Optional[str] = None  # the node currently running alone
    inflight: Dict[Future, str] = {}
    deadlines: Dict[Future, float] = {}
    window = workers if timeout is not None else len(graph)
    abandoned = 0  # hung thread-pool futures we stopped waiting on
    process = executor == "process"
    pool = _process_pool(workers) if process else ThreadPoolExecutor(
        max_workers=workers, thread_name_prefix="suite")

    def fail(key: str, exc: BaseException, phase: str) -> None:
        node = graph.payload(key)
        failures.append(RunFailure.from_exception(
            exc, key=key, phase=phase, attempts=attempts[key],
            sid=node.sid, solver=node.solver))
        _skip_dependents(sched, graph, key, phase, failures, stats)

    def suspect(key: str) -> None:
        """Route one break victim: isolation after two breaks, else retry
        in the crowd (front of the ready queue, order preserved by the
        caller)."""
        breaks[key] += 1
        if breaks[key] >= 2:
            probe.appendleft(key)
        else:
            sched.requeue(key, front=True)

    def rebuild(kill: bool = False) -> None:
        """Replace the pool; every in-flight node becomes a suspect."""
        nonlocal pool, solo
        stats.pool_rebuilds += 1
        for fut, key in reversed(list(inflight.items())):
            suspect(key)
        inflight.clear()
        deadlines.clear()
        solo = None
        _discard_process_pool(kill=kill)
        pool = _process_pool(workers)

    def submit(key: str) -> bool:
        """Start one execution; False when the pool broke on submit."""
        node = graph.payload(key)
        attempts[key] += 1
        try:
            if node.kind == "asset":
                fut = pool.submit(_ensure_store_task, node.sid, node.scale)
            elif process:
                fut = pool.submit(_suite_task, node.request, attempts[key],
                                  faults.plan_tokens())
            else:
                fut = pool.submit(_run_node, node, attempts[key])
        except BrokenExecutor:
            if not process:  # thread pools have no rebuild path
                raise
            attempts[key] -= 1
            return False
        sched.start(key)
        inflight[fut] = key
        if timeout is not None:
            deadlines[fut] = time.monotonic() + timeout
        return True

    try:
        while True:
            if probe and not inflight:
                # Isolation: one suspect alone in a fresh-or-idle pool, so
                # a break unambiguously convicts it.
                solo = probe.popleft()
                while not submit(solo):
                    stats.pool_rebuilds += 1
                    _discard_process_pool()
                    pool = _process_pool(workers)
            elif solo is None and not probe:
                while sched.has_ready and len(inflight) < window:
                    key = sched.pop_ready()
                    if not submit(key):
                        sched.requeue(key, front=True)
                        rebuild()
            if not inflight:
                if probe or sched.has_ready:
                    continue
                # Nothing running, ready or probed: every remaining node
                # is terminal (failure propagation is immediate), so a
                # blocked node cannot be stranded here.
                break
            if timeout is not None:
                wait_for = max(0.0, min(deadlines.values())
                               - time.monotonic()) + 0.01
            else:
                wait_for = None
            done, _ = wait(list(inflight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)
            broken = False
            for fut in done:
                key = inflight.pop(fut)
                deadlines.pop(fut, None)
                node = graph.payload(key)
                try:
                    run = fut.result()
                except BrokenExecutor:
                    broken = True
                    if solo == key:
                        breaks[key] += 1
                        stats.poisoned += 1
                        fail(key, BrokenExecutor(
                            f"request broke the process pool {breaks[key]} "
                            f"times (the last time running alone)"), "pool")
                        solo = None
                    else:
                        suspect(key)
                except Exception as exc:
                    if solo == key:
                        solo = None
                    if attempts[key] <= retries:
                        stats.retries += 1
                        _backoff_sleep(cfg.retry_backoff, attempts[key])
                        sched.requeue(key)
                    else:
                        fail(key, exc,
                             "asset" if node.kind == "asset" else "solve")
                else:
                    if solo == key:
                        solo = None
                    sched.complete(key)
                    if node.kind != "asset":
                        results[key] = run
                        if on_result is not None:
                            on_result(node.request, run)
            if broken and process:
                rebuild()
            if timeout is not None and not broken:
                now = time.monotonic()
                expired = [fut for fut, dl in deadlines.items() if dl <= now]
                if expired:
                    for fut in expired:
                        key = inflight.pop(fut)
                        deadlines.pop(fut)
                        stats.timeouts += 1
                        was_solo, solo = solo == key, (None if solo == key
                                                       else solo)
                        if not process:
                            fut.cancel()
                            abandoned += 1
                        if attempts[key] <= retries:
                            stats.retries += 1
                            if was_solo:
                                probe.appendleft(key)  # still suspect
                            else:
                                sched.requeue(key)
                        else:
                            fail(key, TimeoutError(
                                f"request exceeded request_timeout="
                                f"{timeout}s"), "timeout")
                    if process:
                        # The hung workers cannot be cancelled
                        # cooperatively: kill the pool and requeue the
                        # innocent in-flight nodes uncharged (their
                        # execution never reached a verdict).
                        stats.pool_rebuilds += 1
                        for fut, key in reversed(list(inflight.items())):
                            attempts[key] -= 1
                            sched.requeue(key, front=True)
                        inflight.clear()
                        deadlines.clear()
                        _discard_process_pool(kill=True)
                        pool = _process_pool(workers)
            if failures and on_error == "raise":
                break
    finally:
        stats.trace = sched.trace_dict()
        for fut in inflight:
            fut.cancel()
        if not process:
            # A hung thread cannot be joined without hanging ourselves:
            # skip the drain when any future was abandoned on timeout.
            pool.shutdown(wait=(abandoned == 0), cancel_futures=True)
    if failures and on_error == "raise":
        _reraise(failures)
    return results, failures


def _execute_requests(requests: List[RunRequest], workers: int,
                      executor: str, on_error: str = "raise",
                      on_result: Optional[Callable[[RunRequest, MatrixRun],
                                                   None]] = None,
                      edges: Iterable[Tuple[str, str]] = (),
                      serial_fallback: bool = True,
                      ) -> Tuple[Dict[str, MatrixRun],
                                 List[RunFailure], ExecutionStats]:
    """Compile a batch of :class:`RunRequest`\\ s into a task graph and run it.

    The shared execution engine behind :func:`run_suite` and
    :func:`run_sweep`.  The batch — plus ``edges``, "needs baseline"
    ``(dependent_key, dependency_key)`` request-key pairs — compiles into
    a :class:`~repro.api.graph.TaskGraph`; on the process executor with a
    store configured, missing store entries join the graph as asset nodes
    gating exactly the solves that need them.  The scheduler then
    dispatches ready nodes with no phase barriers: serial below two
    workers, the persistent process pool (workers mmap-attach pre-warmed
    entries instead of rebuilding) for ``"process"``, a thread pool
    otherwise.  Fault-free results are identical to serial execution on
    every path.

    Fault tolerance — retries with deterministic backoff, per-request
    timeouts, broken-pool recovery — resolves through the active
    :class:`RunConfig` (``request_timeout``/``request_retries``/
    ``retry_backoff``) and applies per node.  Returns
    ``(results, failures, stats)``: ``results`` maps each completed
    request's :meth:`~repro.api.specs.RunRequest.key` to its run (failed
    and skipped keys are absent), ``failures`` the structured
    :class:`RunFailure` records — including one ``"dependency"``-phase
    record per node skipped because something it needed failed —
    (``on_error="raise"`` re-raises the first failure instead), and
    ``stats`` the :class:`ExecutionStats` counters with the scheduler's
    per-node timing trace.  ``on_result(request, run)`` fires in the
    parent as each solve completes — the sweep journal's append hook.

    ``serial_fallback=False`` forces the pooled engine even for a single
    request or a single worker.  The solve-service daemon needs this on
    the process executor: an inline ``run_request`` would run injected
    crash faults (and any hard worker death they emulate) *in the daemon
    process*, forfeiting exactly the isolation the process executor was
    chosen for.
    """
    _check_on_error(on_error)
    serial = serial_fallback and (workers <= 1 or len(requests) <= 1)
    prewarm = (_prewarm_plan(requests)
               if not serial and executor == "process" else ())
    graph = compile_solve_graph(requests, edges=edges, assets=prewarm)
    stats = ExecutionStats(requests=len(requests), nodes=len(graph),
                           edges=graph.n_edges)
    if serial:
        results, failures = _execute_serial(graph, on_error, on_result,
                                            stats)
    else:
        results, failures = _execute_pooled(graph, workers, executor,
                                            on_error, on_result, stats)
    return results, failures, stats


def run_suite(solver: str, scale: Optional[str] = None,
              use_cache: bool = True,
              max_workers: Optional[int] = None,
              executor: Optional[str] = None,
              platforms: Optional[Iterable[str]] = None,
              sids: Optional[Iterable[int]] = None,
              criterion: Optional[ConvergenceCriterion] = None,
              config: Optional["api_config.RunConfig"] = None,
              on_error: str = "raise",
              ) -> "SuiteResult":
    """Run (or fetch) the suite evaluation for one solver.

    The per-matrix runs are independent, so they fan out over an executor
    (``max_workers``, or the active config's worker count; default: one
    worker per matrix up to the CPU count).  ``executor`` — or the config —
    selects ``"thread"`` (default; shares the in-process asset cache) or
    ``"process"`` (GIL-free; each worker process keeps its own asset cache,
    the right choice for ``paper``-scale sweeps).  ``platforms``/``sids``
    restrict the sweep to a registered-platform subset and/or a matrix
    subset; subset results are identical to the corresponding slice of a
    full run.  ``criterion`` pins the convergence criterion (default: the
    active config's), and the resolved criterion is stamped into every
    :class:`RunRequest`, so process-pool workers honour it even though
    their own config froze at fork time.  ``config`` installs a
    :class:`RunConfig` for the duration of the call (otherwise the
    environment-derived config applies).  Results are identical to serial
    execution either way and returned in Table V order (or the ``sids``
    order given).

    Failure handling: retries/timeouts/pool recovery resolve through the
    active config (see :func:`_execute_requests`).  ``on_error="raise"``
    (the default) propagates the first unrecoverable failure;
    ``"collect"`` returns the completed runs with the failed cells'
    :class:`RunFailure` records on ``result.failures`` and the engine
    counters on ``result.stats``.  Partial (failure-carrying) results are
    never cached.
    """
    if config is not None:
        with api_config.use(config):
            return run_suite(solver, scale, use_cache, max_workers, executor,
                             platforms, sids, criterion, on_error=on_error)
    _check_on_error(on_error)
    SOLVER_REGISTRY.get(solver)  # fail fast on unknown solvers
    scale = resolve_scale(scale)
    executor = _suite_executor(executor)
    names = (DEFAULT_PLATFORMS if platforms is None
             else platforms if isinstance(platforms, (str, bytes))
             else tuple(platforms))  # one-shot iterables: two passes below
    # Materialise variant tokens BEFORE reading the registry generation:
    # first-time registrations bump it, and a key computed beforehand
    # could never be hit again.
    ensure_variant_platforms(names)
    order = resolve_platforms(names)
    ids = _check_sids(sids)
    crit = (criterion if criterion is not None
            else api_config.active().effective_criterion)
    # Per-name registry versions are part of the key: a replace=True
    # re-registration makes the same platform/solver name mean different
    # work (a name-only key would serve the stale sweep silently), while
    # registrations of *unrelated* names — say, a later sweep
    # materialising new variant tokens — leave this key, and therefore
    # the cached result, valid.
    key = (scale, solver, order, ids, crit,
           PLATFORM_REGISTRY.versions(order),
           SOLVER_REGISTRY.versions((solver,)))
    if use_cache:
        with _CACHE_LOCK:
            cached = _CACHE.get(key)
        if cached is not None:
            return cached
    requests = [RunRequest(sid=sid, solver=solver, scale=scale,
                           platforms=order, criterion=crit) for sid in ids]
    workers = max_workers if max_workers is not None else _suite_workers(len(ids))
    results, failures, stats = _execute_requests(requests, workers, executor,
                                                 on_error=on_error)
    runs = SuiteResult((req.sid, results[req.key()]) for req in requests
                       if req.key() in results)
    runs.failures = tuple(failures)
    runs.stats = stats
    run_ledger.record_run(
        "suite",
        spec=SuiteSpec(solver=solver, scale=scale, platforms=order,
                       sids=ids),
        scale=scale, criterion=crit, runs=runs.values(), failures=failures,
        stats=stats, platforms=order, solvers=(solver,))
    if not failures:
        with _CACHE_LOCK:
            _CACHE[key] = runs
    return runs


def run_spec(spec: SuiteSpec, use_cache: bool = True,
             config: Optional["api_config.RunConfig"] = None,
             on_error: str = "raise") -> "SuiteResult":
    """Execute a declarative :class:`SuiteSpec`.

    The spec is pure data (lossless JSON round-trip), so
    ``run_spec(SuiteSpec.from_json(text))`` reproduces a sweep received
    across a process or host boundary bit-identically.
    """
    return run_suite(spec.solver, scale=spec.scale, use_cache=use_cache,
                     platforms=spec.platforms, sids=spec.sids, config=config,
                     on_error=on_error)


@dataclass
class SweepResult:
    """Everything one :func:`run_sweep` produced, keyed by variant token.

    ``runs[(solver, token)][sid]`` is a :class:`MatrixRun` whose results
    hold the variant *and* the grafted baseline platforms, so
    ``run.speedup(token)`` works exactly as in a suite run.  With a
    tolerance axis (``spec.tols``), run keys grow a trailing element —
    ``runs[(solver, token, tol)][sid]`` — and :meth:`variant` takes the
    tolerance to select.  ``params`` maps each token back to its grid
    point.  ``failures``/``stats`` carry the engine's fault-tolerance
    metadata exactly as on :class:`SuiteResult` — under
    ``on_error="collect"``, cells whose request failed are simply absent
    from their ``runs`` dict.
    """

    spec: SweepSpec
    scale: str
    criterion: ConvergenceCriterion
    runs: Dict[Tuple[str, ...], Dict[int, MatrixRun]]
    params: Dict[str, Dict[str, Any]]
    failures: Tuple[RunFailure, ...] = ()
    stats: Optional[ExecutionStats] = None

    @property
    def tokens(self) -> Tuple[str, ...]:
        """The swept variant tokens, in grid-expansion order."""
        return tuple(self.params)

    @property
    def sids(self) -> Tuple[int, ...]:
        first = next(iter(self.runs.values()))
        return tuple(first)

    def variant(self, token: str, solver: Optional[str] = None,
                tol: Optional[float] = None) -> Dict[int, MatrixRun]:
        """All matrix runs of one variant (default: the first solver axis;
        with a tolerance axis, the first tolerance unless ``tol`` picks
        another)."""
        key: Tuple[str, ...] = (solver or self.spec.solvers[0], token)
        if self.spec.tols is not None:
            key += (float(tol if tol is not None else self.spec.tols[0]),)
        return self.runs[key]

    def _cell_dict(self, solver: str, token: str,
                   tol: Optional[float]) -> Dict[str, Any]:
        return {str(sid): run.to_dict()
                for sid, run in self.variant(token, solver, tol).items()}

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary: spec + per-variant, per-solver, per-sid runs.

        Without a tolerance axis the shape is the historical one (byte
        identical to earlier releases); with one, each variant gains a
        ``"tols"`` level keyed by the canonical float spelling.
        """
        from repro.api.sweep import _format_value

        def solvers_dict(tol: Optional[float], token: str) -> Dict[str, Any]:
            return {solver: self._cell_dict(solver, token, tol)
                    for solver in self.spec.solvers}

        variants: Dict[str, Any] = {}
        for token, params in self.params.items():
            entry: Dict[str, Any] = {"params": dict(params)}
            if self.spec.tols is None:
                entry["solvers"] = solvers_dict(None, token)
            else:
                entry["tols"] = {
                    _format_value(float(tol)): {
                        "solvers": solvers_dict(tol, token)}
                    for tol in self.spec.tols}
            variants[token] = entry
        return {
            "spec": self.spec.to_dict(),
            "scale": self.scale,
            "variants": variants,
            "failures": [f.to_dict() for f in self.failures],
            "stats": None if self.stats is None else self.stats.to_dict(),
        }


def _graft_baseline(variant_run: MatrixRun, baseline_run: MatrixRun,
                    ) -> MatrixRun:
    """A variant's run with the shared baseline results merged in.

    The baseline platforms were solved exactly once per (solver, sid) —
    merging reuses those results the way ``results_from`` does inside a
    single run, so ``speedup()`` sees its reference without the sweep
    re-solving it per grid point.
    """
    return MatrixRun(
        sid=variant_run.sid, name=variant_run.name,
        solver=variant_run.solver, n_rows=variant_run.n_rows,
        nnz=variant_run.nnz, n_blocks=variant_run.n_blocks,
        results={**baseline_run.results, **variant_run.results},
        times_s={**baseline_run.times_s, **variant_run.times_s})


def run_sweep(spec: SweepSpec, use_cache: bool = True,
              max_workers: Optional[int] = None,
              executor: Optional[str] = None,
              criterion: Optional[ConvergenceCriterion] = None,
              config: Optional["api_config.RunConfig"] = None,
              on_error: str = "raise",
              journal: Optional[Any] = None,
              resume: bool = False) -> SweepResult:
    """Execute a declarative :class:`SweepSpec` scenario sweep.

    The grid expands to variant platforms (materialised from their family,
    in this process and in every worker), and every (solver, variant, sid)
    cell becomes one :class:`RunRequest` — all of them fanned out together
    through the same thread/process executor and asset store as
    :func:`run_suite`, so a single-matrix sigma sweep parallelises exactly
    like a whole-suite run.  Baseline platforms are solved once per
    (solver, sid) and grafted into each variant's :class:`MatrixRun`.
    ``criterion``/``config`` resolve as in :func:`run_suite`, with the
    resolved criterion stamped into every request.

    ``on_error`` behaves as in :func:`run_suite` (``"collect"`` leaves
    failed cells out of ``runs`` and attaches their records).  ``journal``
    attaches a crash-durable progress log
    (:class:`repro.experiments.journal.SweepJournal`): a path, or the
    string ``"auto"`` for the store-rooted default; each completed cell is
    appended as it arrives.  ``resume=True`` replays a previous journal
    first and solves only the cells it is missing — the journal's header
    must match this sweep.  A journaled run always executes (the run cache
    is bypassed on read) so the journal ends up complete.
    """
    if config is not None:
        with api_config.use(config):
            return run_sweep(spec, use_cache, max_workers, executor,
                             criterion, on_error=on_error, journal=journal,
                             resume=resume)
    _check_on_error(on_error)
    if resume and journal is None:
        raise ValueError(
            "resume=True needs a journal (a path, or 'auto' for the "
            "store-rooted default)")
    scale = resolve_scale(spec.scale)
    executor = _suite_executor(executor)
    variants = spec.variants()
    ensure_variant_platforms([token for token, _ in variants])
    if spec.baseline:
        # The baseline set may name variant tokens too.
        ensure_variant_platforms(spec.baseline)
        baseline = resolve_platforms(spec.baseline)
    else:
        baseline = ()
    for solver in spec.solvers:
        if SOLVER_REGISTRY.get(solver).multi_rhs:
            raise ValueError(
                f"solver {solver!r} is a multi-RHS (batched) solver; sweeps "
                f"run single-RHS solvers")
    ids = _check_sids(spec.sids)
    crit = (criterion if criterion is not None
            else api_config.active().effective_criterion)
    # The tolerance axis: each tol re-runs the grid under the base
    # criterion with its tol replaced.  The per-cell criterion is stamped
    # into every RunRequest below, so request keys — and therefore journal
    # records and engine caching — distinguish the tolerance cells.
    crits = (tuple(replace(crit, tol=t) for t in spec.tols)
             if spec.tols else (crit,))
    swept = baseline + tuple(token for token, _ in variants)
    key = ("sweep", spec, scale, crit,
           PLATFORM_REGISTRY.versions(swept),
           SOLVER_REGISTRY.versions(spec.solvers))
    if use_cache and journal is None:
        with _CACHE_LOCK:
            cached = _CACHE.get(key)
        if cached is not None:
            return cached

    def request(solver: str, platforms: Tuple[str, ...], sid: int,
                c: ConvergenceCriterion = crit) -> RunRequest:
        return RunRequest(sid=sid, solver=solver, scale=scale,
                          platforms=platforms, criterion=c)

    requests = []
    for c in crits:
        if baseline:
            requests += [request(solver, baseline, sid, c)
                         for solver in spec.solvers for sid in ids]
        requests += [request(solver, (token,), sid, c)
                     for solver in spec.solvers
                     for token, _ in variants for sid in ids]

    jr = None
    journaled: Dict[str, MatrixRun] = {}
    if journal is not None:
        from repro.experiments.journal import (
            SweepJournal,
            resolve_journal_path,
        )

        path = (resolve_journal_path(spec, scale, crit)
                if journal == "auto" else journal)
        jr = SweepJournal(path)
        if resume:
            journaled = jr.load(spec, scale, crit)
    to_run = [req for req in requests if req.key() not in journaled]
    # "Needs baseline" edges: each variant cell depends on its
    # (solver, sid) baseline request, so the scheduler grafts by
    # dependency instead of a solve-all-baselines-first phase barrier.
    # Cells already journaled satisfy their dependents by replay, so only
    # edges with both endpoints still to run are compiled.
    edges: List[Tuple[str, str]] = []
    if baseline:
        to_run_keys = {req.key() for req in to_run}
        for c in crits:
            for solver in spec.solvers:
                for sid in ids:
                    bkey = request(solver, baseline, sid, c).key()
                    if bkey not in to_run_keys:
                        continue
                    for token, _ in variants:
                        vkey = request(solver, (token,), sid, c).key()
                        if vkey in to_run_keys and vkey != bkey:
                            edges.append((vkey, bkey))
    workers = (max_workers if max_workers is not None
               else _suite_workers(len(to_run) or 1))
    if jr is not None:
        jr.open(spec, scale, crit, resume=resume)

        def on_result(req: RunRequest, run: MatrixRun) -> None:
            jr.record(req.key(), run)
    else:
        on_result = None
    try:
        results, failures, stats = _execute_requests(
            to_run, workers, executor, on_error=on_error,
            on_result=on_result, edges=edges)
    finally:
        if jr is not None:
            jr.close()
    stats.journal_skipped = len(requests) - len(to_run)
    by_key: Dict[str, MatrixRun] = dict(journaled)
    by_key.update(results)
    # Without a tolerance axis the run keys stay the historical
    # (solver, token) pairs; with one they grow a trailing tol element.
    runs: Dict[Tuple[str, ...], Dict[int, MatrixRun]] = {}
    for c in crits:
        for solver in spec.solvers:
            for token, _ in variants:
                cell = {}
                for sid in ids:
                    vrun = by_key.get(request(solver, (token,), sid, c).key())
                    if vrun is None:
                        continue  # failed cell under on_error="collect"
                    if baseline:
                        brun = by_key.get(
                            request(solver, baseline, sid, c).key())
                        if brun is not None:
                            vrun = _graft_baseline(vrun, brun)
                    cell[sid] = vrun
                rkey = ((solver, token) if spec.tols is None
                        else (solver, token, float(c.tol)))
                runs[rkey] = cell
    result = SweepResult(spec=spec, scale=scale, criterion=crit, runs=runs,
                         params={token: params for token, params in variants},
                         failures=tuple(failures), stats=stats)
    run_ledger.record_run(
        "sweep", spec=spec, scale=scale, criterion=crit,
        runs=results.values(), failures=failures, stats=stats,
        platforms=swept, solvers=spec.solvers)
    if not failures:
        with _CACHE_LOCK:
            _CACHE[key] = result
    return result


def geometric_mean(values: List[float]) -> float:
    """GMN over finite positive entries (the paper's summary statistic)."""
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))
