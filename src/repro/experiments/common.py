"""Shared evaluation runner: solve every suite matrix on every platform.

Fig. 8 (speedups), Fig. 9 (traces), Table VI (iterations) and Table VII
(configurations) are all views of the same set of runs, so the runs are done
once per (scale, solver) and cached in-process.

Platforms (the Fig. 8 legend):

* ``gpu``          — exact FP64 solve, timed with the V100 roofline model;
* ``feinberg_fc``  — functionally-correct baseline: FP64 iterations charged
                     with the [32] accelerator timing;
* ``feinberg``     — the [32] functional model (vector window flaw); its own
                     iteration count (or NC) with [32] timing;
* ``refloat``      — ReFloat operator, its own iterations, ReFloat timing.

Hot-path architecture
---------------------
Asset resolution is a three-level hierarchy — in-process LRU, then the
persistent on-disk store, then a full build — plus a configurable fan-out:

* a *matrix asset* cache keyed ``(sid, scale)`` holds the built matrix, its
  right-hand side, one shared :class:`BlockedMatrix` partition and the
  constructed platform operators — so the cg and bicgstab sweeps (and any
  experiment revisiting a matrix) stop re-partitioning and re-quantising
  identical matrices.  The cache is LRU with a byte budget:
  ``REPRO_ASSET_CACHE_MB`` bounds the (estimated) resident bytes, evicting
  the least-recently-used entries first, so ``paper``-scale sweeps do not
  grow without bound (unset = unbounded, the test/default-scale behaviour);
* when ``REPRO_ASSET_STORE`` names a directory, in-process misses attach to
  the persistent store (:mod:`repro.experiments.store`): the CSR arrays,
  RHS and partition metadata come back as read-only memory maps instead of
  being regenerated, and fresh builds are materialised into the store for
  the next cold process.  Only the operator quantisation (cheap,
  vectorised, deterministic) re-runs on attach, so store hits are
  bit-identical to builds;
* a *run* cache keyed ``(scale, solver)`` memoises whole-suite sweeps;
* :func:`run_suite` fans the 12 matrices out over an executor.
  ``REPRO_SUITE_EXECUTOR`` selects ``thread`` (default) or ``process``;
  ``REPRO_SUITE_WORKERS`` overrides the worker count, with ``1`` forcing
  the serial path.  Thread results are deterministic and identical to
  serial execution — operators are effectively immutable and the
  vector-converter scratch buffers are thread-local.  The process pool
  sidesteps the GIL entirely for ``paper``-scale sweeps: task payloads are
  picklable ``(sid, solver, scale)`` triples, each worker process resolves
  assets through its own hierarchy — with a store configured the parent
  pre-materialises every entry and workers mmap-attach instead of
  rebuilding per worker — and the returned :class:`MatrixRun` carries only
  arrays/floats, so results are again identical to serial execution.  An
  interpreter-exit hook (registered ahead of ``concurrent.futures``' own
  drain-the-queue handler) reaps live workers, so an exit without
  :func:`clear_run_caches` cannot hang — or stall out a full abandoned
  sweep — on live workers.
"""

from __future__ import annotations

import atexit
import math
import os
import threading
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np
import scipy.sparse as sp

from repro.experiments import store
from repro.formats.feinberg import FeinbergSpec
from repro.formats.refloat import ReFloatSpec
from repro.hardware.accelerator import MappingPlan, SolverTimingModel
from repro.hardware.gpu import GPUSolverModel
from repro.operators import ExactOperator, FeinbergOperator, ReFloatOperator
from repro.solvers import ConvergenceCriterion, SolverResult, bicgstab, cg
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids
from repro.util.validation import check_env_positive_int

__all__ = [
    "PLATFORMS",
    "SOLVERS",
    "MatrixRun",
    "asset_cache_stats",
    "default_spec_for",
    "matrix_assets",
    "run_matrix",
    "run_suite",
    "clear_run_caches",
    "geometric_mean",
]

PLATFORMS = ("gpu", "feinberg", "feinberg_fc", "refloat")
SOLVERS: Dict[str, Callable[..., SolverResult]] = {"cg": cg, "bicgstab": bicgstab}

#: SpMVs and n-length vector ops per iteration, per solver (Section VI-B:
#: BiCGSTAB does two whole-matrix SpMVs per iteration).
_SOLVER_SHAPE = {"cg": (1, 6), "bicgstab": (2, 12)}

#: In-process cache of full-suite runs, keyed (scale, solver).
_CACHE: Dict[tuple, Dict[int, "MatrixRun"]] = {}

#: In-process LRU cache of per-matrix assets, keyed (sid, scale); most
#: recently used entries sit at the end.  Guarded by _CACHE_LOCK, with the
#: estimated per-entry bytes in _ASSET_SIZES and their sum in _ASSET_BYTES.
_ASSETS: "OrderedDict[tuple, MatrixAssets]" = OrderedDict()
_ASSET_SIZES: Dict[tuple, int] = {}
_ASSET_BYTES: int = 0

_CACHE_LOCK = threading.Lock()

_EXECUTORS = ("thread", "process")

#: Persistent process pool (created on first use, resized on demand) so the
#: per-worker asset caches survive across run_suite calls — the cg sweep
#: warms the workers the bicgstab sweep then reuses.  Guarded by _CACHE_LOCK.
_PROCESS_POOL: Optional[ProcessPoolExecutor] = None
#: (width, asset-env-config) the pool was created under.  Workers inherit
#: their environment at fork time, so a pool outliving a change to any
#: asset-handling env var would keep honouring the stale value (rebuilding
#: assets the parent materialised, or ignoring a new cache budget) — the
#: pool is recreated whenever any part of the token changes.
_PROCESS_POOL_TOKEN: Optional[tuple] = None
#: PID that created the pool.  Forked workers inherit this module's state —
#: including the executor object and sibling Process handles — so every
#: shutdown path must refuse to touch a pool it does not own: a worker
#: "shutting down" the inherited copy would join threads that never ran in
#: its process and terminate its own siblings.
_PROCESS_POOL_OWNER: Optional[int] = None


def _pool_token(workers: int) -> tuple:
    return (workers,
            os.environ.get("REPRO_ASSET_STORE") or "",
            os.environ.get("REPRO_ASSET_STORE_VERIFY") or "",
            os.environ.get("REPRO_ASSET_CACHE_MB") or "")


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """The shared pool, recreated when the width or store config changes."""
    global _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER
    token = _pool_token(workers)
    with _CACHE_LOCK:
        if _PROCESS_POOL is None or _PROCESS_POOL_TOKEN != token:
            if _PROCESS_POOL is not None and _PROCESS_POOL_OWNER == os.getpid():
                _PROCESS_POOL.shutdown(wait=False)
            _PROCESS_POOL = ProcessPoolExecutor(max_workers=workers)
            _PROCESS_POOL_TOKEN = token
            _PROCESS_POOL_OWNER = os.getpid()
        return _PROCESS_POOL


def _detach_process_pool() -> Optional[ProcessPoolExecutor]:
    """Drop the module's pool reference; return it only to the owning process.

    Non-owners (forked workers that inherited the reference) always get
    ``None`` — they must never operate on the parent's executor state.
    """
    global _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER
    with _CACHE_LOCK:
        pool, owner = _PROCESS_POOL, _PROCESS_POOL_OWNER
        _PROCESS_POOL, _PROCESS_POOL_TOKEN, _PROCESS_POOL_OWNER = \
            None, None, None
    if pool is None or owner != os.getpid():
        return None
    return pool


def _shutdown_process_pool() -> None:
    """Shut the shared pool down cooperatively (the ``clear_run_caches`` path).

    ``cancel_futures`` drops work not yet handed to a worker; anything
    already in the call queue still runs, so this is orderly and bounded.
    """
    pool = _detach_process_pool()
    if pool is not None:
        pool.shutdown(wait=True, cancel_futures=True)


def _exit_process_pool() -> None:
    """Interpreter-exit hook: reap live workers instead of draining them.

    At exit nobody can consume results, so queued work is abandoned by
    definition: live workers are terminated first, then the cooperative
    shutdown reaps the (now broken) pool.  This must run *before*
    ``concurrent.futures``' own exit handler — which joins the pool only
    after executing every queued task, and can hang forever on a stuck
    worker — hence the registration below goes through
    ``threading._register_atexit`` (those callbacks run LIFO ahead of the
    futures handler) rather than plain :mod:`atexit`, which fires too late
    to prevent the drain.  Verified against a queued-work exit in
    ``tests/test_suite_executor.py``.
    """
    pool = _detach_process_pool()
    if pool is None:
        return
    for proc in list((getattr(pool, "_processes", None) or {}).values()):
        if proc.is_alive():
            proc.terminate()
    pool.shutdown(wait=True, cancel_futures=True)


#: An interpreter exit without clear_run_caches() must not hang (or stall
#: arbitrarily long) on live pool workers.  Registered once at import time —
#: a no-op when no pool was ever created, including in the workers
#: themselves.  The threading hook is a private CPython API (3.9+); plain
#: atexit is the degraded fallback (it cannot pre-empt the futures drain).
try:
    threading._register_atexit(_exit_process_pool)
except (AttributeError, RuntimeError):  # pragma: no cover - fallback
    atexit.register(_exit_process_pool)


def _asset_cache_budget() -> Optional[int]:
    """The asset-cache byte budget from ``REPRO_ASSET_CACHE_MB`` (None = off)."""
    env = os.environ.get("REPRO_ASSET_CACHE_MB")
    if not env:
        return None
    try:
        mb = float(env)
    except ValueError:
        raise ValueError(
            f"REPRO_ASSET_CACHE_MB must be a number (megabytes), got {env!r}"
        ) from None
    if mb <= 0:
        raise ValueError(
            f"REPRO_ASSET_CACHE_MB must be positive, got {env!r}")
    return int(mb * (1 << 20))


def _approx_nbytes(*roots) -> int:
    """Estimated resident bytes of the ndarray/CSR payloads under ``roots``.

    Walks instance attributes, deduplicating shared arrays by identity (the
    partition, quantised matrix and operators alias each other heavily), so
    the figure tracks what the cache actually pins.  State that evicting an
    asset cannot free is excluded: :class:`VectorConverterPlan` instances
    are owned by the process-wide ``vector_converter_plan`` LRU (they
    outlive the asset), and per-thread scratch is transient — charging
    either here would make eviction subtract bytes that stay resident.
    """
    from repro.formats.refloat import VectorConverterPlan

    seen, total = set(), 0
    stack = list(roots)
    while stack:
        obj = stack.pop()
        if obj is None or id(obj) in seen:
            continue
        seen.add(id(obj))
        if isinstance(obj, np.ndarray):
            total += _array_nbytes(obj)
        elif sp.issparse(obj):
            stack.extend(getattr(obj, name) for name in
                         ("data", "indices", "indptr", "row", "col")
                         if hasattr(obj, name))
        elif isinstance(obj, dict):
            stack.extend(obj.values())
        elif isinstance(obj, (list, tuple)):
            stack.extend(obj)
        elif isinstance(obj, (threading.local, VectorConverterPlan)):
            continue  # not freed by evicting this asset (see docstring)
        elif hasattr(obj, "__dict__"):
            stack.extend(vars(obj).values())
    return total


def _array_nbytes(arr: np.ndarray) -> int:
    """Resident bytes an array pins: store-mmapped arrays count as zero.

    Memory-mapped views are backed by the OS page cache — evicting an asset
    that wraps them frees (approximately) nothing, and charging them would
    make a warm-store sweep look as expensive as a cold one.
    """
    if isinstance(arr, np.memmap) or isinstance(getattr(arr, "base", None),
                                                np.memmap):
        return 0
    return arr.nbytes


@dataclass
class MatrixAssets:
    """Everything about one (matrix, scale) pair that is solver-independent.

    Built once and shared by every platform/solver sweep: the matrix, the
    paper right-hand side ``A @ 1``, a single :class:`BlockedMatrix`
    partition (handed to the operators so nothing re-partitions), and the
    constructed operators themselves.  All of it is read-only after
    construction, so sharing across runner threads is safe.
    """

    sid: int
    scale: str
    A: object
    b: np.ndarray
    blocked: BlockedMatrix
    spec: ReFloatSpec
    exact_op: ExactOperator
    refloat_op: ReFloatOperator
    feinberg_ops: Dict[FeinbergSpec, FeinbergOperator] = field(default_factory=dict)

    def feinberg_op(self, spec: FeinbergSpec) -> FeinbergOperator:
        with _CACHE_LOCK:
            op = self.feinberg_ops.get(spec)
        if op is None:
            op = FeinbergOperator(None, spec, blocked=self.blocked)
            with _CACHE_LOCK:
                op = self.feinberg_ops.setdefault(spec, op)
        return op


def _spec_token(spec: ReFloatSpec) -> str:
    """Filename-safe identity of a ReFloat spec, for store extra-array keys."""
    return (f"b{spec.b}e{spec.e}f{spec.f}ev{spec.ev}fv{spec.fv}"
            f"-{spec.rounding}-{spec.underflow}-{spec.eb_policy}")


def _store_extras(spec: ReFloatSpec, refloat_op: ReFloatOperator,
                  ) -> Dict[str, np.ndarray]:
    """Extra arrays saved with a store entry: the pre-quantised matrix data.

    Keyed by the full spec identity, so a loader with a different default
    spec simply misses the extra and re-quantises — never reuses stale data.
    """
    return {f"refloat_qdata_{_spec_token(spec)}": refloat_op.A.data}


def _load_or_build_assets(sid: int, scale: str) -> MatrixAssets:
    """Level 2/3 of the asset hierarchy: attach to the store, else build.

    A store hit hands back memory-mapped CSR arrays, the stored RHS, the
    reattached partition and (when the spec matches) the pre-quantised
    ReFloat matrix data, so nothing is regenerated and the resulting assets
    are bit-identical to a fresh build.  A miss builds everything and
    materialises it into the store (no-op when ``REPRO_ASSET_STORE`` is
    unset) for the next cold process.
    """
    spec = default_spec_for(sid)
    qdata_key = f"refloat_qdata_{_spec_token(spec)}"
    entry = store.load_entry(sid, scale, extras=(qdata_key,))
    if entry is not None:
        A, b, blocked = entry.A, entry.b, entry.blocked
        refloat_op = ReFloatOperator(None, spec, blocked=blocked,
                                     quantized=entry.extras.get(qdata_key))
    else:
        store.note_build(sid, scale)
        A = PAPER_SUITE[sid].matrix(scale)
        blocked = BlockedMatrix(A, b=7)
        b = A @ np.ones(A.shape[0])
        refloat_op = ReFloatOperator(None, spec, blocked=blocked)
        store.save_entry(sid, scale, A, b, blocked,
                         extras=_store_extras(spec, refloat_op))
    return MatrixAssets(
        sid=sid, scale=scale, A=A, b=b, blocked=blocked, spec=spec,
        exact_op=ExactOperator(A), refloat_op=refloat_op,
    )


def matrix_assets(sid: int, scale: str) -> MatrixAssets:
    """Build (or fetch) the shared per-matrix assets for ``(sid, scale)``.

    Resolution is hierarchical: the in-process LRU cache, then the on-disk
    ``REPRO_ASSET_STORE`` (memory-mapped attach), then a full build that
    also populates the store.  Cache hits refresh the entry's LRU position;
    inserts charge the entry's estimated bytes against the
    ``REPRO_ASSET_CACHE_MB`` budget and evict least-recently-used entries
    until the budget holds again (the newest entry itself is never evicted —
    a single oversized matrix still runs).
    """
    global _ASSET_BYTES
    key = (sid, scale)
    with _CACHE_LOCK:
        cached = _ASSETS.get(key)
        if cached is not None:
            _ASSETS.move_to_end(key)
            return cached
    assets = _load_or_build_assets(sid, scale)
    budget = _asset_cache_budget()
    nbytes = _approx_nbytes(assets)
    with _CACHE_LOCK:
        # Another thread may have raced us; keep exactly one copy.
        if key in _ASSETS:
            _ASSETS.move_to_end(key)
            return _ASSETS[key]
        _ASSETS[key] = assets
        _ASSET_SIZES[key] = nbytes
        _ASSET_BYTES += nbytes
        if budget is not None:
            while _ASSET_BYTES > budget and len(_ASSETS) > 1:
                old_key, _ = _ASSETS.popitem(last=False)
                _ASSET_BYTES -= _ASSET_SIZES.pop(old_key)
    return assets


def asset_cache_stats() -> Dict[str, int]:
    """Snapshot of the asset cache: entries and estimated resident bytes."""
    with _CACHE_LOCK:
        return {"entries": len(_ASSETS), "bytes": _ASSET_BYTES}


def clear_run_caches() -> None:
    """Drop the in-process caches (tests and memory-sensitive callers).

    Clears the run and asset caches — including the asset cache's LRU byte
    accounting, which must restart from zero — plus the vector-converter
    plan cache, which pins O(n) index/scratch state per ``(n, spec)`` pair
    the operators have touched.  The persistent process pool (whose workers
    hold their own per-process caches) is shut down too.  The on-disk
    ``REPRO_ASSET_STORE`` is *not* touched — persistence across processes
    is its purpose; delete entry directories to evict it.
    """
    from repro.formats.refloat import vector_converter_plan

    global _ASSET_BYTES
    with _CACHE_LOCK:
        _CACHE.clear()
        _ASSETS.clear()
        _ASSET_SIZES.clear()
        _ASSET_BYTES = 0
    vector_converter_plan.cache_clear()
    _shutdown_process_pool()


def default_spec_for(sid: int) -> ReFloatSpec:
    """The Table VII configuration for a matrix (fv=16 for 1288/1848)."""
    fv = PAPER_SUITE[sid].fv_override or 8
    return ReFloatSpec(b=7, e=3, f=3, ev=3, fv=fv)


@dataclass
class MatrixRun:
    """All platform results for one (matrix, solver) cell of Fig. 8."""

    sid: int
    name: str
    solver: str
    n_rows: int
    nnz: int
    n_blocks: int
    results: Dict[str, SolverResult] = field(default_factory=dict)
    times_s: Dict[str, float] = field(default_factory=dict)

    def iterations(self, platform: str) -> Optional[int]:
        res = self.results[platform]
        return res.iterations if res.converged else None

    def speedup(self, platform: str) -> float:
        """Fig. 8's metric ``p = t_GPU / t_x`` (NaN when x did not converge)."""
        t = self.times_s.get(platform)
        if t is None or not math.isfinite(t):
            return float("nan")
        return self.times_s["gpu"] / t


def run_matrix(sid: int, solver: str, scale: Optional[str] = None,
               criterion: Optional[ConvergenceCriterion] = None,
               feinberg_spec: FeinbergSpec = FeinbergSpec()) -> MatrixRun:
    """Solve one suite matrix on all four platforms and attach model times.

    Matrix construction, partitioning and operator quantisation come from
    the shared :func:`matrix_assets` cache — the solve loops are the only
    per-call work.
    """
    if solver not in SOLVERS:
        raise KeyError(f"solver must be one of {sorted(SOLVERS)}")
    scale = resolve_scale(scale)
    crit = criterion or ConvergenceCriterion(tol=1e-8, max_iterations=20000)
    solve = SOLVERS[solver]
    spmvs, vops = _SOLVER_SHAPE[solver]

    info = PAPER_SUITE[sid]
    assets = matrix_assets(sid, scale)
    A, b, blocked, spec = assets.A, assets.b, assets.blocked, assets.spec
    n = A.shape[0]

    run = MatrixRun(sid=sid, name=info.name, solver=solver, n_rows=n,
                    nnz=int(A.nnz), n_blocks=blocked.n_blocks)

    run.results["gpu"] = solve(assets.exact_op, b, criterion=crit)
    run.results["feinberg"] = solve(assets.feinberg_op(feinberg_spec), b,
                                    criterion=crit)
    run.results["feinberg_fc"] = run.results["gpu"]  # identical numerics
    run.results["refloat"] = solve(assets.refloat_op, b, criterion=crit)

    # --- timing models -------------------------------------------------
    gpu_model = GPUSolverModel.cg() if solver == "cg" else GPUSolverModel.bicgstab()
    it_gpu = run.results["gpu"].iterations
    run.times_s["gpu"] = gpu_model.solve_time_s(it_gpu, n, run.nnz)

    plan_f = MappingPlan.for_feinberg(run.n_blocks)
    timing_f = SolverTimingModel(plan_f, spmvs_per_iteration=spmvs,
                                 vector_ops_per_iteration=vops)
    # Steady-state accounting (no one-time mapping write), matching the
    # paper's speedup definition; matters only for few-iteration solves.
    run.times_s["feinberg_fc"] = timing_f.solve_time_s(it_gpu, n,
                                                       include_setup=False)
    if run.results["feinberg"].converged:
        run.times_s["feinberg"] = timing_f.solve_time_s(
            run.results["feinberg"].iterations, n, include_setup=False)
    else:
        run.times_s["feinberg"] = float("inf")

    plan_r = MappingPlan.for_refloat(run.n_blocks, spec)
    timing_r = SolverTimingModel(plan_r, spmvs_per_iteration=spmvs,
                                 vector_ops_per_iteration=vops)
    if run.results["refloat"].converged:
        run.times_s["refloat"] = timing_r.solve_time_s(
            run.results["refloat"].iterations, n, include_setup=False)
    else:
        run.times_s["refloat"] = float("inf")
    return run


def _suite_workers(n_tasks: int) -> int:
    """Worker count from ``REPRO_SUITE_WORKERS`` (>= 1) or the CPU count.

    Zero and negative values raise the same named-env-var ``ValueError`` as
    non-integers — silently clamping ``0`` to serial hid misconfigurations.
    """
    env = os.environ.get("REPRO_SUITE_WORKERS")
    if env:
        return check_env_positive_int("REPRO_SUITE_WORKERS", env)
    return max(1, min(n_tasks, os.cpu_count() or 1))


def _suite_executor(executor: Optional[str] = None) -> str:
    """Resolve the fan-out executor: argument, then env, then ``thread``."""
    if executor is None:
        executor = os.environ.get("REPRO_SUITE_EXECUTOR") or "thread"
        if executor not in _EXECUTORS:
            raise ValueError(
                f"REPRO_SUITE_EXECUTOR must be one of {_EXECUTORS}, "
                f"got REPRO_SUITE_EXECUTOR={executor!r}")
    elif executor not in _EXECUTORS:
        raise ValueError(
            f"executor must be one of {_EXECUTORS}, got {executor!r}")
    return executor


def _suite_task(sid: int, solver: str, scale: str) -> MatrixRun:
    """Picklable process-pool payload: one matrix run, assets cached locally.

    Executes in a worker process, where the module-level asset cache is
    per-process state: the first task touching a ``(sid, scale)`` pair
    resolves the assets through its own hierarchy — a memory-mapped store
    attach when ``REPRO_ASSET_STORE`` is configured (the parent
    pre-materialised every entry), a local build otherwise — and later
    tasks in the same worker reuse them.  The returned :class:`MatrixRun`
    carries only plain arrays and floats.
    """
    return run_matrix(sid, solver, scale)


def _ensure_store_task(sid: int, scale: str) -> None:
    """Picklable pre-warm payload: build one asset in a worker and publish it.

    Runs in a worker process: ``matrix_assets`` misses the (empty) store,
    builds, publishes the entry atomically *and* warms that worker's own
    in-process cache — so the cold pre-materialisation is as parallel as
    the sweep itself, and the parent never pins assets it will not solve.
    """
    matrix_assets(sid, scale)


def _ensure_store_entries(ids: List[int], scale: str,
                          pool: ProcessPoolExecutor) -> list:
    """Materialise every ``(sid, scale)`` store entry for a process fan-out.

    With a store configured, shipping bare ``(sid, solver, scale)`` keys is
    only cheap if the workers find the assets on disk — otherwise each
    worker regenerates them from scratch.  Entries already published are
    untouched; assets already in the parent's in-process cache are flushed
    to disk without a rebuild; anything else is built once, fanned out over
    the pool's own workers.  The returned futures are *not* awaited here —
    the solve tasks queue right behind them, so workers with nothing to
    pre-build start solving immediately.  All races are benign: the atomic
    publish keeps exactly one winner, and a solve task that beats its
    entry's pre-build simply builds in-worker as before.
    """
    if store.store_root() is None:
        return []
    missing = []
    for sid in ids:
        if store.has_entry(sid, scale):
            continue
        with _CACHE_LOCK:
            assets = _ASSETS.get((sid, scale))
        if assets is not None:
            store.save_entry(sid, scale, assets.A, assets.b, assets.blocked,
                             extras=_store_extras(assets.spec,
                                                  assets.refloat_op))
        else:
            missing.append(sid)
    return [pool.submit(_ensure_store_task, sid, scale) for sid in missing]


def run_suite(solver: str, scale: Optional[str] = None,
              use_cache: bool = True,
              max_workers: Optional[int] = None,
              executor: Optional[str] = None) -> Dict[int, MatrixRun]:
    """Run (or fetch) the full 12-matrix evaluation for one solver.

    The per-matrix runs are independent, so they fan out over an executor
    (``max_workers`` or ``REPRO_SUITE_WORKERS``; default: one worker per
    matrix up to the CPU count).  ``executor`` — or ``REPRO_SUITE_EXECUTOR``
    — selects ``"thread"`` (default; shares the in-process asset cache) or
    ``"process"`` (GIL-free; each worker process keeps its own asset cache,
    the right choice for ``paper``-scale sweeps).  Results are identical to
    serial execution either way and returned in Table V order.
    """
    scale = resolve_scale(scale)
    executor = _suite_executor(executor)
    key = (scale, solver)
    if use_cache:
        with _CACHE_LOCK:
            cached = _CACHE.get(key)
        if cached is not None:
            return cached
    ids = suite_ids()
    workers = max_workers if max_workers is not None else _suite_workers(len(ids))
    if workers <= 1:
        runs = {sid: run_matrix(sid, solver, scale) for sid in ids}
    elif executor == "process":
        pool = _process_pool(workers)
        prewarm = _ensure_store_entries(ids, scale, pool)
        futures = {sid: pool.submit(_suite_task, sid, solver, scale)
                   for sid in ids}
        runs = {sid: futures[sid].result() for sid in ids}
        for future in prewarm:
            # A failed pre-build already surfaced through its solve task
            # (which rebuilds in-worker); just reap the future.
            future.exception()
    else:
        with ThreadPoolExecutor(max_workers=workers,
                                thread_name_prefix="suite") as pool:
            futures = {sid: pool.submit(run_matrix, sid, solver, scale)
                       for sid in ids}
            runs = {sid: futures[sid].result() for sid in ids}
    with _CACHE_LOCK:
        _CACHE[key] = runs
    return runs


def geometric_mean(values: List[float]) -> float:
    """GMN over finite positive entries (the paper's summary statistic)."""
    vals = [v for v in values if v > 0 and math.isfinite(v)]
    if not vals:
        return float("nan")
    return float(np.exp(np.mean(np.log(vals))))
