"""Table I: iterations to convergence under naive exp/frac truncation
(crystm03, CG).

Two sweeps, as in the paper: fraction bits at full (11-bit) exponent, and
exponent bits at full (52-bit) fraction.  NC = the solver hit its budget,
diverged, or broke down.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

import numpy as np

from repro.api import config as api_config
from repro.experiments.reporting import format_table
from repro.operators import TruncatedOperator
from repro.solvers import cg
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale

__all__ = ["run", "collect", "FRAC_SWEEP", "EXP_SWEEP", "PAPER_TABLE1"]

FRAC_SWEEP = [52, 30, 29, 28, 27, 26, 25, 24, 23, 22, 21, 20]
EXP_SWEEP = [11, 10, 9, 8, 7, 6]

#: The paper's Table I iteration counts (NC = None).
PAPER_TABLE1 = {
    ("frac", 52): 80, ("frac", 30): 82, ("frac", 29): 82, ("frac", 28): 83,
    ("frac", 27): 83, ("frac", 26): 84, ("frac", 25): 90, ("frac", 24): 93,
    ("frac", 23): 93, ("frac", 22): 95, ("frac", 21): 107, ("frac", 20): None,
    ("exp", 11): 80, ("exp", 10): 80, ("exp", 9): 80, ("exp", 8): 80,
    ("exp", 7): 20620, ("exp", 6): None,
}


def collect(scale: Optional[str] = None, sid: int = 355,
            max_iterations: Optional[int] = None) -> Dict[str, List[dict]]:
    scale = resolve_scale(scale)
    A = PAPER_SUITE[sid].matrix(scale)
    b = A @ np.ones(A.shape[0])
    crit = api_config.active().effective_criterion
    if max_iterations is not None:
        crit = replace(crit, max_iterations=max_iterations)

    def solve(exp_bits, frac_bits):
        op = TruncatedOperator(A, exp_bits=exp_bits, frac_bits=frac_bits)
        res = cg(op, b, criterion=crit)
        return res.iterations if res.converged else None

    out = {"frac": [], "exp": []}
    for f in FRAC_SWEEP:
        out["frac"].append({"exp": 11, "frac": f, "iterations": solve(11, f),
                            "paper": PAPER_TABLE1[("frac", f)]})
    for e in EXP_SWEEP:
        out["exp"].append({"exp": e, "frac": 52, "iterations": solve(e, 52),
                           "paper": PAPER_TABLE1[("exp", e)]})
    return out


def run(scale: Optional[str] = None, print_output: bool = True,
        **kwargs) -> Dict[str, List[dict]]:
    data = collect(scale, **kwargs)
    if print_output:
        for sweep, label in (("frac", "fraction sweep (exp=11)"),
                             ("exp", "exponent sweep (frac=52)")):
            rows = [[d["exp"], d["frac"],
                     d["iterations"] if d["iterations"] is not None else "NC",
                     d["paper"] if d["paper"] is not None else "NC"]
                    for d in data[sweep]]
            print(format_table(["exp", "frac", "#ite", "paper #ite"], rows,
                               title=f"\nTable I — {label}, crystm03 analog, CG"))
    return data
