"""Append-only sweep journal: crash-durable progress for ``run_sweep``.

A killed sweep (OOM, SIGKILL, power loss) used to throw away every
completed cell.  With a journal attached, the parent appends one JSONL
record per completed :class:`RunRequest` — flushed and fsynced as results
arrive — and a re-invocation with ``resume=True`` loads the journal,
skips every journaled cell, and solves only what is missing.

Layout (version-stamped JSONL)::

    {"type": "SweepJournal", "version": 1, "spec": {...},
     "scale": "...", "criterion": {...}}          # header, line 1
    {"key": "<RunRequest.key()>", "run": {...}}   # one line per result

``run`` is :meth:`MatrixRun.to_dict` — the JSON-safe summary.  Resumed
cells are therefore *summary-grade*: convergence, iterations and times
survive (everything sweep reporting consumes), iterate vectors and
residual histories do not.  A resume validates the header against the
sweep being run — journals never silently mix grids — and tolerates a
torn final line (the record being written when the process died).

The default location (when a caller asks for a journal without naming a
path) lives under the asset-store root, keyed by a digest of the spec:
``$REPRO_ASSET_STORE/journals/sweep-<digest>.jsonl`` — the same sweep
spec always resumes from the same file.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from repro.api.sweep import SweepSpec
from repro.experiments import store
from repro.solvers.base import ConvergenceCriterion

__all__ = ["JOURNAL_VERSION", "SweepJournal", "default_journal_path"]

JOURNAL_VERSION = 1


def default_journal_path(spec: SweepSpec) -> Path:
    """The store-rooted journal path for ``spec`` (stable across runs)."""
    root = store.store_root()
    if root is None:
        raise ValueError(
            "no asset store configured: a default journal path needs "
            "REPRO_ASSET_STORE (or RunConfig.store) set, or pass an "
            "explicit journal path")
    digest = hashlib.sha256(spec.to_json().encode()).hexdigest()[:16]
    return Path(root) / "journals" / f"sweep-{digest}.jsonl"


class SweepJournal:
    """One journal file: header-validated append/replay of sweep results."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None

    def _header(self, spec: SweepSpec, scale: str,
                criterion: ConvergenceCriterion) -> Dict:
        return {
            "type": "SweepJournal", "version": JOURNAL_VERSION,
            "spec": spec.to_dict(), "scale": scale,
            "criterion": asdict(criterion),
        }

    def load(self, spec: SweepSpec, scale: str,
             criterion: ConvergenceCriterion) -> Dict[str, "object"]:
        """Replay the journal: ``{request key: MatrixRun}`` (summary-grade).

        Missing file = nothing journaled.  A header that does not match
        the sweep being resumed raises ``ValueError`` (resuming cell X of
        grid A into grid B would silently corrupt results); a torn final
        record is skipped.  Later records win over earlier ones for the
        same key (append-only re-runs overwrite by replay order).
        """
        from repro.experiments.common import MatrixRun

        if not self.path.exists():
            return {}
        expected = self._header(spec, scale, criterion)
        runs: Dict[str, MatrixRun] = {}
        with open(self.path, "r") as fh:
            for lineno, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn trailing record: the crash point
                if lineno == 0:
                    # Journals written before the tolerance axis existed
                    # have no "tols" key in their spec dict; absent means
                    # the same thing None does now.
                    if isinstance(record.get("spec"), dict):
                        record["spec"].setdefault("tols", None)
                    if record != expected:
                        raise ValueError(
                            f"journal {self.path} was written by a "
                            f"different sweep (spec/scale/criterion "
                            f"mismatch); refusing to resume")
                    continue
                runs[record["key"]] = MatrixRun.from_dict(record["run"])
        return runs

    def open(self, spec: SweepSpec, scale: str,
             criterion: ConvergenceCriterion, resume: bool) -> None:
        """Open for appending.  Fresh runs truncate and write the header;
        resumes (validated by :meth:`load` first) append after it."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._fh = open(self.path, "a")
            return
        self._fh = open(self.path, "w")
        self._append(self._header(spec, scale, criterion))

    def _append(self, record: Dict) -> None:
        self._fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def record(self, key: str, run) -> None:
        """Append one completed result (flushed + fsynced: a record either
        fully survives a crash or is a torn line the replay skips)."""
        self._append({"key": key, "run": run.to_dict()})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
