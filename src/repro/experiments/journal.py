"""Append-only sweep journal: crash-durable progress for ``run_sweep``.

A killed sweep (OOM, SIGKILL, power loss) used to throw away every
completed cell.  With a journal attached, the parent appends one JSONL
record per completed :class:`RunRequest` — flushed and fsynced as results
arrive — and a re-invocation with ``resume=True`` loads the journal,
skips every journaled cell, and solves only what is missing.

Layout (version-stamped JSONL)::

    {"type": "SweepJournal", "version": 1, "spec": {...},
     "scale": "...", "criterion": {...}}          # header, line 1
    {"key": "<RunRequest.key()>", "run": {...}}   # one line per result

``run`` is :meth:`MatrixRun.to_dict` — the JSON-safe summary.  Resumed
cells are therefore *summary-grade*: convergence, iterations and times
survive (everything sweep reporting consumes), iterate vectors and
residual histories do not.  A resume validates the header against the
sweep being run — journals never silently mix grids — and tolerates a
torn final line (the record being written when the process died).

The journal is a thin specialisation of the shared
:class:`repro.experiments.ledger.JsonlLog` core (the run ledger is the
other consumer): the core owns the fsynced append and the
torn-line-tolerant replay; this module owns the header pinning and the
later-records-win keyed replay.

The default location (when a caller asks for a journal without naming a
path) lives under the asset-store root, keyed by a digest of everything
the header pins — spec, resolved scale, criterion:
``$REPRO_ASSET_STORE/journals/sweep-<digest>.jsonl`` — so the same sweep
always resumes from the same file and two sweeps of the same grid at
different scales or tolerances get *different* files.  Journals written
before the digest included scale/criterion are still found:
:func:`resolve_journal_path` falls back to the old-digest path when its
header matches the sweep being run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, Optional

from repro.api import config as api_config
from repro.api.sweep import SweepSpec
from repro.experiments import store
from repro.experiments.ledger import JsonlLog
from repro.solvers.base import ConvergenceCriterion

__all__ = ["JOURNAL_VERSION", "SweepJournal", "default_journal_path",
           "resolve_journal_path"]

JOURNAL_VERSION = 1


def _journal_root() -> Path:
    root = store.store_root()
    if root is None:
        raise ValueError(
            "no asset store configured: a default journal path needs "
            "REPRO_ASSET_STORE (or RunConfig.store) set, or pass an "
            "explicit journal path")
    return Path(root) / "journals"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _resolve_pins(spec: SweepSpec, scale: Optional[str],
                  criterion: Optional[ConvergenceCriterion]):
    """The (scale, criterion) the journal header will pin for ``spec``."""
    from repro.sparse.gallery.suite import resolve_scale

    scale = resolve_scale(spec.scale if scale is None else scale)
    if criterion is None:
        criterion = api_config.active().effective_criterion
    return scale, criterion


def default_journal_path(spec: SweepSpec, scale: Optional[str] = None,
                         criterion: Optional[ConvergenceCriterion] = None,
                         ) -> Path:
    """The store-rooted journal path for ``spec`` (stable across runs).

    The digest covers everything the journal header pins — the spec
    *and* the resolved scale *and* the criterion — so sweeps that differ
    only in scale or tolerance get distinct files instead of one file
    and a header-mismatch refusal.  ``scale``/``criterion`` default to
    the spec's scale (resolved against the active config) and the active
    config's criterion, exactly as ``run_sweep`` resolves them.
    """
    scale, criterion = _resolve_pins(spec, scale, criterion)
    payload = json.dumps(
        {"spec": spec.to_dict(), "scale": scale,
         "criterion": asdict(criterion)}, sort_keys=True)
    return _journal_root() / f"sweep-{_digest(payload)}.jsonl"


def _legacy_journal_path(spec: SweepSpec) -> Path:
    """The pre-fix path whose digest covered only the spec."""
    return _journal_root() / f"sweep-{_digest(spec.to_json())}.jsonl"


def resolve_journal_path(spec: SweepSpec, scale: Optional[str] = None,
                         criterion: Optional[ConvergenceCriterion] = None,
                         ) -> Path:
    """The path an ``"auto"`` journal uses for ``spec``.

    Prefers :func:`default_journal_path`; when that file does not exist
    yet but an old-digest file does *and* its header pins exactly this
    sweep, the old file is returned so journals written before the
    digest fix keep resuming.
    """
    scale, criterion = _resolve_pins(spec, scale, criterion)
    path = default_journal_path(spec, scale, criterion)
    if not path.exists():
        legacy = _legacy_journal_path(spec)
        if legacy.exists() and SweepJournal(legacy).matches(
                spec, scale, criterion):
            return legacy
    return path


class SweepJournal:
    """One journal file: header-validated append/replay of sweep results."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._log = JsonlLog(path)

    def _header(self, spec: SweepSpec, scale: str,
                criterion: ConvergenceCriterion) -> Dict:
        return {
            "type": "SweepJournal", "version": JOURNAL_VERSION,
            "spec": spec.to_dict(), "scale": scale,
            "criterion": asdict(criterion),
        }

    @staticmethod
    def _normalise_header(record: Dict) -> Dict:
        # Journals written before the tolerance axis existed have no
        # "tols" key in their spec dict; absent means the same thing
        # None does now.
        if isinstance(record, dict) and isinstance(record.get("spec"), dict):
            record["spec"].setdefault("tols", None)
        return record

    def matches(self, spec: SweepSpec, scale: str,
                criterion: ConvergenceCriterion) -> bool:
        """Whether this file's header pins exactly this sweep."""
        for lineno, record in self._log.replay(torn="stop"):
            return (lineno == 0
                    and self._normalise_header(record)
                    == self._header(spec, scale, criterion))
        return False

    def load(self, spec: SweepSpec, scale: str,
             criterion: ConvergenceCriterion) -> Dict[str, "object"]:
        """Replay the journal: ``{request key: MatrixRun}`` (summary-grade).

        Missing file = nothing journaled.  A header that does not match
        the sweep being resumed raises ``ValueError`` (resuming cell X of
        grid A into grid B would silently corrupt results); a torn final
        record is skipped.  Later records win over earlier ones for the
        same key (append-only re-runs overwrite by replay order).
        """
        from repro.experiments.common import MatrixRun

        if not self.path.exists():
            return {}
        expected = self._header(spec, scale, criterion)
        runs: Dict[str, MatrixRun] = {}
        for lineno, record in self._log.replay(torn="stop"):
            if lineno == 0:
                if self._normalise_header(record) != expected:
                    raise ValueError(
                        f"journal {self.path} was written by a "
                        f"different sweep (spec/scale/criterion "
                        f"mismatch); refusing to resume")
                continue
            runs[record["key"]] = MatrixRun.from_dict(record["run"])
        return runs

    def open(self, spec: SweepSpec, scale: str,
             criterion: ConvergenceCriterion, resume: bool) -> None:
        """Open for appending.  Fresh runs truncate and write the header;
        resumes (validated by :meth:`load` first) append after it."""
        if resume and self.path.exists():
            self._log.open(truncate=False)
            return
        self._log.open(truncate=True)
        self._append(self._header(spec, scale, criterion))

    def _append(self, record: Dict) -> None:
        self._log.append(record)

    def record(self, key: str, run) -> None:
        """Append one completed result (flushed + fsynced: a record either
        fully survives a crash or is a torn line the replay skips)."""
        self._append({"key": key, "run": run.to_dict()})

    def close(self) -> None:
        self._log.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None
