"""Persistent on-disk matrix-asset store (``REPRO_ASSET_STORE``).

Asset construction — matrix generation, the :class:`BlockedMatrix`
partition argsort, operator quantisation — dominates suite wall-clock once
the solve kernels are fast, and it used to be repeated by every cold
process: CI jobs, process-pool workers, back-to-back sweeps.  This module
materialises the solver-independent part of a ``(sid, scale)`` asset —
the CSR matrix, the paper right-hand side ``A @ 1`` and the partition's
contiguous BSR layout — to a versioned, checksummed on-disk format that a
cold process attaches to via ``np.load(..., mmap_mode="r")`` instead of
regenerating.

Layout
------
Since v2 the canonical entry *is* the :class:`repro.sparse.bsr.BSRBlocks`
layout — the accelerator's native operand shape — so a worker memory-maps
one ``(n_blocks, 2^b, 2^b)`` tensor with zero reassembly.  The canonical
CSR value array is *not* stored twice: it gathers bit-identically from the
tensor through the scatter map.  The grouping arrays v1 persisted
(``order``, ``group_starts``, ...) derive lazily on attach and are gone
from disk.  Old ``v1/`` roots read as misses and age out via GC.

::

    $REPRO_ASSET_STORE/
      v2/                                # bump STORE_VERSION to invalidate
        <sid>-<scale>/                   # one atomically-published entry
          meta.json                      # version, shapes, dtypes, crc32s
          A_data.npy A_indices.npy A_indptr.npy     # matrix as generated
          C_indices.npy C_indptr.npy                # canonical CSR pattern
                                                    #   (only when A is not
                                                    #   already canonical;
                                                    #   values gather from
                                                    #   the BSR tensor)
          b.npy                                     # RHS = A @ ones
          bsr_data.npy                              # (n_blocks, 2^b, 2^b)
          bsr_indptr.npy bsr_indices.npy            # block BSR indexing
          bsr_scatter.npy                           # dense<->CSR map

Every array file's CRC32 is recorded in ``meta.json``; a load verifies
version, dtypes, shapes and checksums, and *any* mismatch — truncation,
bit rot, a stale layout — discards the entry and reports a miss, so the
caller falls back to a rebuild that atomically replaces it.  Entries are
written to a temporary sibling directory and published with one
``os.rename``, so concurrent writers (process-pool workers, parallel CI
jobs) race benignly: the first rename wins and later writers discard
their copy.

Eviction is manual and always safe: delete entry directories (or a whole
``v*`` root) at any time; the affected keys simply rebuild.  The store
trusts the suite generators to be deterministic per ``(sid, scale)`` —
when generator code changes, bump :data:`STORE_VERSION` so stale entries
are ignored rather than served.

Counters
--------
:func:`counters` exposes monotonically-increasing per-process counts of
``builds`` (full asset constructions), ``hits``/``misses`` (store probes)
and ``invalid`` (entries discarded by verification) — the hook CI uses to
assert a warm-store suite run performs **zero** builds.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Optional

import numpy as np
import scipy.sparse as sp

from repro.api import config
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.bsr import BSRBlocks
from repro.sparse.mmio import csr_from_arrays, csr_to_arrays

__all__ = [
    "STORE_VERSION",
    "StoreEntry",
    "store_root",
    "entry_path",
    "has_entry",
    "save_entry",
    "load_entry",
    "discard_entry",
    "note_build",
    "counters",
    "reset_counters",
    "entry_stats",
    "store_stats",
    "gc_store",
]

#: On-disk format version; bump when the layout *or* the suite generators
#: change, so stale entries read as misses instead of wrong data.
#: v2: contiguous BSR layout replaces the v1 block-grouping arrays.
STORE_VERSION = 2

_BSR_ARRAYS = ("bsr_data", "bsr_indptr", "bsr_indices", "bsr_scatter")
_ORIGINAL_CSR = ("A_data", "A_indices", "A_indptr")
_CANONICAL_CSR = ("C_indices", "C_indptr")
#: Every array name the core layout may use; anything else in an entry is a
#: caller-owned extra.  The single source of truth for save-side collision
#: checks and load-side required/extra classification.
_CORE_ARRAYS = frozenset(_ORIGINAL_CSR) | frozenset(_CANONICAL_CSR) \
    | {"b"} | frozenset(_BSR_ARRAYS)

_COUNTER_LOCK = threading.Lock()


def _reset_counter_dict() -> Dict[str, int]:
    return {"builds": 0, "hits": 0, "misses": 0, "saves": 0, "invalid": 0}


_COUNTERS: Dict[str, int] = _reset_counter_dict()


def _bump(name: str) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += 1


def note_build(sid: int, scale: str) -> None:
    """Record one full asset construction (the store's cache-miss cost)."""
    _bump("builds")


def counters() -> Dict[str, int]:
    """Snapshot of the per-process store counters (see module docstring)."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_counters() -> None:
    """Zero the per-process counters (tests and the CI smoke harness)."""
    global _COUNTERS
    with _COUNTER_LOCK:
        _COUNTERS = _reset_counter_dict()


# ----------------------------------------------------------------------
# Paths and configuration


def store_root() -> Optional[Path]:
    """The configured store directory, or ``None`` when the store is off.

    Sourced from the active :class:`repro.api.config.RunConfig` (i.e.
    ``REPRO_ASSET_STORE`` unless a config object is installed).
    """
    store = config.active().store
    if not store:
        return None
    return Path(store)


def _verify_checksums() -> bool:
    """Checksum verification toggle (``store_verify`` /
    ``REPRO_ASSET_STORE_VERIFY=0`` skips).

    Verification reads each file once, which at paper scale is still far
    cheaper than a rebuild; disabling it keeps loads purely lazy/mmapped
    for stores on trusted local disks.
    """
    return config.active().store_verify


def entry_path(sid: int, scale: str, root: Optional[Path] = None) -> Path:
    """Directory holding the ``(sid, scale)`` entry under the current root."""
    root = store_root() if root is None else root
    if root is None:
        raise ValueError("REPRO_ASSET_STORE is not configured")
    return root / f"v{STORE_VERSION}" / f"{int(sid)}-{scale}"


def has_entry(sid: int, scale: str) -> bool:
    """Whether a published entry exists (no verification — loads still may
    reject it)."""
    root = store_root()
    if root is None:
        return False
    return (entry_path(sid, scale, root) / "meta.json").is_file()


# ----------------------------------------------------------------------
# Saving


def _file_crc32(path: Path) -> int:
    crc = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                return crc
            crc = zlib.crc32(chunk, crc)


def _same_csr(A: sp.csr_matrix, C: sp.csr_matrix) -> bool:
    return (A.shape == C.shape and A.nnz == C.nnz
            and np.array_equal(A.indptr, C.indptr)
            and np.array_equal(A.indices, C.indices)
            and np.array_equal(A.data, C.data))


@dataclass
class StoreEntry:
    """A loaded entry: the matrix exactly as generated, the RHS, the
    reattached partition (whose ``A`` is the canonical matrix), and any
    caller-defined extra arrays that were saved alongside."""

    sid: int
    scale: str
    A: sp.csr_matrix
    b: np.ndarray
    blocked: BlockedMatrix
    extras: Dict[str, np.ndarray]


def save_entry(sid: int, scale: str, A, b: np.ndarray,
               blocked: BlockedMatrix,
               extras: Optional[Dict[str, np.ndarray]] = None,
               ) -> Optional[Path]:
    """Materialise one asset to the store; no-op when the store is off.

    ``A`` is the matrix *as generated* (it backs the exact operator and the
    RHS, so its nonzero order must round-trip bit-exactly); ``blocked`` is
    persisted as its contiguous BSR layout — ``blocked.A``'s value array
    gathers bit-identically from the tensor, so only its CSR *pattern* is
    stored, and only when it differs from ``A``.  ``extras`` are additional
    caller-owned arrays (e.g. pre-quantised matrix data keyed by format
    spec, stored in the same BSR tensor layout) checksummed and
    round-tripped verbatim; their names must not collide with the core
    layout.  The entry is written to a
    temporary sibling and published atomically — losing a publish race to a
    concurrent writer is not an error.  Write-side I/O failures (disk full,
    permissions lost) degrade to a no-save: the store is a cache, and the
    already-built assets must not be thrown away because materialising them
    failed — mirroring the load side's transient-error handling.
    """
    root = store_root()
    if root is None:
        return None
    final = entry_path(sid, scale, root)
    if (final / "meta.json").is_file():
        return final
    A = sp.csr_matrix(A, dtype=np.float64)
    a_arrays, shape = csr_to_arrays(A)
    arrays = dict(zip(_ORIGINAL_CSR, (a_arrays["data"], a_arrays["indices"],
                                      a_arrays["indptr"])))
    canonical_shared = _same_csr(A, blocked.A)
    if not canonical_shared:
        c_arrays, _ = csr_to_arrays(blocked.A)
        arrays.update(zip(_CANONICAL_CSR, (c_arrays["indices"],
                                           c_arrays["indptr"])))
    arrays["b"] = np.asarray(b, dtype=np.float64)
    bsr = blocked.bsr
    arrays.update(zip(_BSR_ARRAYS, (bsr.data, bsr.indptr, bsr.indices,
                                    bsr.scatter)))
    for name, arr in (extras or {}).items():
        if name in _CORE_ARRAYS:
            raise ValueError(f"extra array name {name!r} collides with the "
                             f"core store layout")
        arrays[name] = np.asarray(arr)

    tmp = None
    try:
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=final.name + ".tmp-",
                                    dir=final.parent))
        meta = {
            "store_version": STORE_VERSION,
            "sid": int(sid),
            "scale": scale,
            "shape": list(shape),
            "nnz": int(A.nnz),
            "block_b": int(blocked.b),
            "canonical_shared": canonical_shared,
            "arrays": {},
        }
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            np.save(tmp / f"{name}.npy", arr)
            meta["arrays"][name] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "crc32": _file_crc32(tmp / f"{name}.npy"),
            }
        with open(tmp / "meta.json", "w") as fh:
            json.dump(meta, fh, indent=1, sort_keys=True)
        try:
            os.rename(tmp, final)
        except OSError:
            # Lost the publish race (or the entry appeared meanwhile):
            # keep the winner, drop our copy.
            shutil.rmtree(tmp, ignore_errors=True)
            return final if (final / "meta.json").is_file() else None
    except OSError:
        # Could not materialise (ENOSPC, EACCES, ...): drop the partial
        # write and carry on with the in-memory assets.
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
        return None
    except BaseException:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
        raise
    _bump("saves")
    _publish_remote(sid, scale, final)
    return final


def _publish_remote(sid: int, scale: str, path: Path) -> None:
    """Best-effort push of a freshly built entry to the configured remote
    store (``REPRO_SERVICE_STORE``), so the next cold host fetches instead
    of rebuilding.  No-op without a remote; never raises."""
    url = config.active().service_store
    if not url:
        return
    from repro.service import remote_store

    remote_store.publish_entry(url, sid, scale, path)


def _fetch_remote(sid: int, scale: str, root: Path) -> bool:
    """On a local miss, try the configured remote store: fetch the
    CRC-framed entry and install it under the local root (the per-host
    cache), then let the ordinary load path validate it.  ``False`` on
    remote miss or any transport/framing error — never raises."""
    url = config.active().service_store
    if not url:
        return False
    from repro.service import remote_store

    return remote_store.fetch_entry(url, sid, scale, root)


# ----------------------------------------------------------------------
# Loading


def discard_entry(sid: int, scale: str) -> None:
    """Remove a (possibly corrupt) entry; missing entries are fine."""
    root = store_root()
    if root is None:
        return
    shutil.rmtree(entry_path(sid, scale, root), ignore_errors=True)


class _EntryInvalid(Exception):
    """Internal: the entry's *content* is provably wrong — delete it."""


class _EntryUnreadable(Exception):
    """Internal: the entry could not be read *right now* (EIO, EMFILE, an
    NFS hiccup...).  Report a miss but leave the entry on disk — a shared
    store must not lose a valid entry to one process's transient I/O
    failure."""


def _load_array(path: Path, spec: dict, mmap: bool) -> np.ndarray:
    try:
        if _verify_checksums() and _file_crc32(path) != spec["crc32"]:
            raise _EntryInvalid(f"checksum mismatch in {path.name}")
        arr = np.load(path, mmap_mode="r" if mmap else None,
                      allow_pickle=False)
    except FileNotFoundError:
        # A published entry missing a file is structurally broken (atomic
        # publish makes this partial-deletion/tampering, not a race).
        raise _EntryInvalid(f"missing array file {path.name}") from None
    except ValueError as exc:
        # np.load rejected the payload (bad magic, truncated header).
        raise _EntryInvalid(f"malformed array {path.name}: {exc}") from None
    except OSError as exc:
        raise _EntryUnreadable(f"cannot read {path.name}: {exc}") from None
    if arr.dtype.str != spec["dtype"] or list(arr.shape) != spec["shape"]:
        raise _EntryInvalid(
            f"{path.name}: expected {spec['dtype']}{spec['shape']}, "
            f"got {arr.dtype.str}{list(arr.shape)}")
    return arr


def load_entry(sid: int, scale: str, mmap: bool = True,
               extras: Iterable[str] = (),
               ) -> Optional[StoreEntry]:
    """Attach to a stored ``(sid, scale)`` asset; ``None`` on miss.

    Only the core layout plus the caller-requested ``extras`` names are
    checksummed and loaded — extras the caller cannot use (e.g. quantised
    data for a different spec) are never read, so they cost nothing and
    their bit rot cannot invalidate an otherwise-good entry; a requested
    extra that the entry does not carry is simply absent from
    ``StoreEntry.extras``.

    Content failures — truncated or bit-rotted arrays, dtype/shape drift, a
    malformed ``meta.json``, version skew, missing files — count as
    ``invalid``, *remove the entry* and report a miss, so the caller's
    rebuild atomically replaces the bad data.  Transient I/O errors (EIO,
    EMFILE, a network-filesystem hiccup) report a plain miss and leave the
    entry untouched — one process's bad moment must not evict a valid
    shared entry.  With ``mmap`` (default) the big arrays come back as
    read-only memory maps shared page-cache-wide across every attached
    process.
    """
    root = store_root()
    if root is None:
        return None
    path = entry_path(sid, scale, root)
    if not (path / "meta.json").is_file():
        if not _fetch_remote(sid, scale, root):
            _bump("misses")
            return None
    try:
        try:
            with open(path / "meta.json") as fh:
                meta = json.load(fh)
        except ValueError as exc:
            raise _EntryInvalid(f"malformed meta.json: {exc}") from None
        except FileNotFoundError as exc:
            raise _EntryInvalid(f"meta.json vanished: {exc}") from None
        except OSError as exc:
            raise _EntryUnreadable(f"cannot read meta.json: {exc}") from None
        try:
            if (meta["store_version"] != STORE_VERSION
                    or meta["sid"] != int(sid) or meta["scale"] != scale):
                raise _EntryInvalid("version/key mismatch")
            specs = meta["arrays"]
            required = {*_ORIGINAL_CSR, "b", *_BSR_ARRAYS}
            if not meta["canonical_shared"]:
                required |= set(_CANONICAL_CSR)
            if not required <= set(specs):
                raise _EntryInvalid(
                    f"missing core arrays {sorted(required - set(specs))}")
            wanted = required | (set(extras) & set(specs))
            arrays = {name: _load_array(path / f"{name}.npy", specs[name],
                                        mmap)
                      for name in sorted(wanted)}
            shape = tuple(meta["shape"])
            # With checksums verified the arrays were read once already, so
            # the column-bounds scan is page-cache-warm; with verification
            # explicitly disabled the store is declared trusted and the
            # load stays genuinely lazy.
            checked = _verify_checksums()
            A = csr_from_arrays(arrays["A_data"], arrays["A_indices"],
                                arrays["A_indptr"], shape,
                                canonical=meta["canonical_shared"],
                                checked=checked)
            # BSRBlocks runs its cheap structural validation on attach;
            # the full scatter-injectivity scan only under store_verify
            # (matching the checksum policy: trusted stores stay lazy).
            bsr = BSRBlocks(meta["block_b"], shape, arrays["bsr_data"],
                            arrays["bsr_indptr"], arrays["bsr_indices"],
                            arrays["bsr_scatter"])
            if checked:
                bsr.check_scatter_unique()
            if meta["canonical_shared"]:
                C = A
            else:
                # Canonical values gather bit-identically from the tensor;
                # only the CSR pattern is persisted.
                C = csr_from_arrays(bsr.csr_data(), arrays["C_indices"],
                                    arrays["C_indptr"], shape, canonical=True,
                                    checked=checked)
            blocked = BlockedMatrix.from_bsr(C, bsr)
            if arrays["b"].shape != (shape[0],):
                raise _EntryInvalid(
                    f"RHS has shape {arrays['b'].shape}, matrix {shape}")
        except (KeyError, TypeError, ValueError) as exc:
            raise _EntryInvalid(f"malformed entry: {exc}") from None
    except _EntryInvalid:
        _bump("invalid")
        _bump("misses")
        shutil.rmtree(path, ignore_errors=True)
        return None
    except _EntryUnreadable:
        _bump("misses")
        return None
    _bump("hits")
    _note_use(path)
    loaded_extras = {name: arr for name, arr in arrays.items()
                     if name not in _CORE_ARRAYS}
    return StoreEntry(sid=int(sid), scale=scale, A=A, b=arrays["b"],
                      blocked=blocked, extras=loaded_extras)


# ----------------------------------------------------------------------
# Stats and garbage collection

#: Recency sidecar touched on every successful load.  File *access* times
#: are not a reliable LRU signal — page-cache-served mmap reads never
#: update atime, and relatime/noatime mounts suppress it — so GC orders by
#: ``max(newest atime, last_used mtime)``: the sidecar is authoritative on
#: any mount, with atime as the fallback for entries never loaded by a
#: sidecar-aware build.
_LAST_USED = "last_used"


def _note_use(path: Path) -> None:
    """Best-effort recency stamp; read-only stores must not fail loads."""
    try:
        (path / _LAST_USED).touch()
    except OSError:
        pass


def entry_stats(root: Optional[Path] = None) -> list:
    """Per-entry disk usage and recency, across *every* ``v*`` layout root.

    Old-version entries (left behind by a :data:`STORE_VERSION` bump) are
    included — they are exactly what GC should reclaim first.  Each item
    is ``{"key", "version", "path", "nbytes", "atime", "current"}``;
    ``atime`` is the entry's recency — the ``last_used`` sidecar's mtime
    when present, else the newest file access time — the LRU signal
    :func:`gc_store` evicts by.  Entries vanishing mid-scan (a concurrent
    GC or discard) are skipped.
    """
    root = store_root() if root is None else Path(root)
    if root is None or not root.is_dir():
        return []
    out = []
    for vdir in sorted(root.glob("v*")):
        if not vdir.is_dir():
            continue
        for entry in sorted(vdir.iterdir()):
            if not (entry / "meta.json").is_file():
                continue
            nbytes = 0
            atime = 0.0
            try:
                for f in entry.iterdir():
                    st = f.stat()
                    nbytes += st.st_size
                    recency = (st.st_mtime if f.name == _LAST_USED
                               else st.st_atime)
                    atime = max(atime, recency)
            except OSError:
                continue
            out.append({
                "key": entry.name,
                "version": vdir.name,
                "path": str(entry),
                "nbytes": nbytes,
                "atime": atime,
                "current": vdir.name == f"v{STORE_VERSION}",
            })
    return out


def store_stats(root: Optional[Path] = None) -> Dict[str, object]:
    """Aggregate store usage: entry count, total bytes, per-entry detail,
    plus the run ledger's record count/size (the ledger lives under the
    store root but outside the ``v*`` entry namespace, so it is invisible
    to — and safe from — :func:`gc_store`)."""
    from repro.experiments import ledger

    entries = entry_stats(root)
    store = store_root() if root is None else Path(root)
    return {
        "root": str(store) if store is not None else None,
        "entries": len(entries),
        "nbytes": sum(e["nbytes"] for e in entries),
        "per_entry": entries,
        "ledger": ledger.ledger_stats(),
    }


def gc_store(max_bytes: int, root: Optional[Path] = None) -> Dict[str, object]:
    """Evict least-recently-used entries until the store fits ``max_bytes``.

    Recency is the ``last_used`` sidecar :func:`load_entry` stamps on every
    hit (atime is the fallback for entries no sidecar-aware process has
    loaded — see :data:`_LAST_USED`), so warm entries survive even on
    noatime mounts; stale-version entries age out naturally because
    nothing loads them.
    Eviction is always safe — a deleted entry is a future rebuild, never
    data loss — and racing readers degrade to a miss-plus-rebuild.
    Returns ``{"before_nbytes", "after_nbytes", "evicted": [keys],
    "kept": n}``.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    entries = sorted(entry_stats(root), key=lambda e: e["atime"])
    total = sum(e["nbytes"] for e in entries)
    before = total
    evicted = []
    for entry in entries:
        if total <= max_bytes:
            break
        shutil.rmtree(entry["path"], ignore_errors=True)
        total -= entry["nbytes"]
        evicted.append(f"{entry['version']}/{entry['key']}")
    return {
        "before_nbytes": before,
        "after_nbytes": total,
        "evicted": evicted,
        "kept": len(entries) - len(evicted),
    }
