"""Plain-text table rendering for experiment output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["format_table", "format_number"]


def format_number(value: Any, digits: int = 4) -> str:
    """Compact numeric formatting (NC and ints pass through)."""
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NC"
    a = abs(value)
    if a != 0 and (a >= 10 ** digits or a < 10 ** -(digits - 2)):
        return f"{value:.2e}"
    return f"{value:.{digits}g}"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned ASCII table."""
    cells = [[format_number(v) for v in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
