"""Figure 10: robustness to RTN noise (crystm03, CG, error correction off)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.api.registry import SOLVER_REGISTRY
from repro.experiments.common import default_spec_for
from repro.experiments.reporting import format_table
from repro.hardware.accelerator import MappingPlan, SolverTimingModel
from repro.hardware.gpu import GPUSolverModel
from repro.operators import NoisyReFloatOperator
from repro.solvers import ConvergenceCriterion, cg
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale

__all__ = ["run", "collect", "NOISE_SWEEP"]

#: sigma values from 0.1% to 25% (the paper's x-axis).
NOISE_SWEEP = [0.001, 0.005, 0.01, 0.05, 0.10, 0.15, 0.25]


def collect(scale: Optional[str] = None, sid: int = 355,
            max_iterations: int = 20000, seed: int = 1234) -> List[dict]:
    scale = resolve_scale(scale)
    A = PAPER_SUITE[sid].matrix(scale)
    n = A.shape[0]
    b = A @ np.ones(n)
    spec = default_spec_for(sid)
    crit = ConvergenceCriterion(tol=1e-8, max_iterations=max_iterations)

    # One partition shared by the mapping accounting and every noisy
    # operator of the sweep (the sweep changes sigma, never the blocks).
    # The per-iteration operation shape comes from the solver registry.
    sspec = SOLVER_REGISTRY.get("cg")
    blocked = BlockedMatrix(A, b=7)
    plan = MappingPlan.for_refloat(blocked.n_blocks, spec)
    timing = SolverTimingModel(
        plan, spmvs_per_iteration=sspec.spmvs_per_iteration,
        vector_ops_per_iteration=sspec.vector_ops_per_iteration)
    gpu = GPUSolverModel.cg()

    out = []
    for sigma in NOISE_SWEEP:
        op = NoisyReFloatOperator(A, spec, sigma=sigma, seed=seed,
                                  blocked=blocked)
        res = cg(op, b, criterion=crit)
        entry = {"sigma": sigma, "converged": res.converged,
                 "iterations": res.iterations if res.converged else None}
        if res.converged:
            t_rf = timing.solve_time_s(res.iterations, n)
            t_gpu = gpu.solve_time_s(res.iterations, n, int(A.nnz))
            # Speedup vs the GPU solving the same problem in double
            # (GPU iterations from the noise-free double solve).
            from repro.operators import ExactOperator
            res_dbl = cg(ExactOperator(A), b, criterion=crit)
            t_gpu = gpu.solve_time_s(res_dbl.iterations, n, int(A.nnz))
            entry["speedup_vs_gpu"] = t_gpu / t_rf
        else:
            entry["speedup_vs_gpu"] = float("nan")
        out.append(entry)
    return out


def run(scale: Optional[str] = None, print_output: bool = True,
        **kwargs) -> List[dict]:
    data = collect(scale, **kwargs)
    if print_output:
        rows = [[f"{d['sigma']:.1%}",
                 d["iterations"] if d["iterations"] is not None else "NC",
                 d["speedup_vs_gpu"]] for d in data]
        print(format_table(
            ["sigma", "#iterations", "speedup vs GPU"],
            rows,
            title="\nFig. 10 — RTN noise robustness (crystm03 analog, CG; "
                  "paper: 6.85x speedup kept at 25% noise)"))
    return data
