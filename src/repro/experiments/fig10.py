"""Figure 10: robustness to RTN noise (crystm03, CG, error correction off).

Built on the scenario-sweep engine: the sigma grid is a
:class:`repro.api.SweepSpec` over the ``noisy`` variant family, executed by
:func:`repro.experiments.common.run_sweep` — the GPU double-precision
baseline is solved exactly once per sweep and grafted into every variant's
run (the pre-sweep implementation re-solved it per sigma), and the timing
accounting (ReFloat mapping including the one-time setup write, V100
roofline baseline) comes from the registered variant/platform timing
models, pinned equivalent to the original hand-rolled plumbing in
``tests/test_sweep.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional

from repro.api import SweepSpec
from repro.api import config as api_config
from repro.experiments.common import run_sweep
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import resolve_scale

__all__ = ["run", "collect", "sweep_spec", "NOISE_SWEEP"]

#: sigma values from 0.1% to 25% (the paper's x-axis).
NOISE_SWEEP = [0.001, 0.005, 0.01, 0.05, 0.10, 0.15, 0.25]

#: RNG seed of the paper sweep (fixed, not the per-matrix default).
DEFAULT_SEED = 1234


def sweep_spec(sid: int = 355, seed: int = DEFAULT_SEED,
               scale: Optional[str] = None) -> SweepSpec:
    """The Fig. 10 sweep as data: a ``noisy`` sigma grid against the GPU
    baseline, with the one-time mapping write charged (``setup=1``)."""
    return SweepSpec(family="noisy",
                     grid={"sigma": tuple(NOISE_SWEEP),
                           "seed": seed, "setup": 1},
                     solvers=("cg",), baseline=("gpu",),
                     sids=(sid,), scale=scale)


def collect(scale: Optional[str] = None, sid: int = 355,
            max_iterations: Optional[int] = None,
            seed: int = DEFAULT_SEED) -> List[dict]:
    scale = resolve_scale(scale)
    crit = api_config.active().effective_criterion
    if max_iterations is not None:
        crit = replace(crit, max_iterations=max_iterations)
    spec = sweep_spec(sid=sid, seed=seed, scale=scale)
    result = run_sweep(spec, criterion=crit)
    out = []
    for token, params in result.params.items():
        run = result.variant(token)[sid]
        res = run.results[token]
        out.append({
            "sigma": params["sigma"],
            "converged": res.converged,
            "iterations": res.iterations if res.converged else None,
            # Speedup vs the GPU solving the same problem in double
            # (GPU iterations from the noise-free double solve).
            "speedup_vs_gpu": run.speedup(token),
        })
    return out


def run(scale: Optional[str] = None, print_output: bool = True,
        **kwargs) -> List[dict]:
    data = collect(scale, **kwargs)
    if print_output:
        rows = [[f"{d['sigma']:.1%}",
                 d["iterations"] if d["iterations"] is not None else "NC",
                 d["speedup_vs_gpu"]] for d in data]
        print(format_table(
            ["sigma", "#iterations", "speedup vs GPU"],
            rows,
            title="\nFig. 10 — RTN noise robustness (crystm03 analog, CG; "
                  "paper: 6.85x speedup kept at 25% noise)"))
    return data
