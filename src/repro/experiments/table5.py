"""Table V: the evaluation-matrix inventory (analog vs paper)."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np
import scipy.sparse.linalg as spla

from repro.api import config as api_config
from repro.api.faults import RunFailure

from repro.experiments.reporting import format_table
from repro.sparse.blocked import BlockedMatrix
from repro.sparse.stats import condition_number, nnz_per_row
from repro.sparse.gallery.suite import PAPER_SUITE, resolve_scale, suite_ids

__all__ = ["run", "collect"]


def collect(scale: Optional[str] = None,
            with_condition: bool = True) -> Dict[int, dict]:
    scale = resolve_scale(scale)
    out = {}
    for sid in suite_ids():
        info = PAPER_SUITE[sid]
        A = info.matrix(scale)
        entry = {
            "name": info.name,
            "rows": int(A.shape[0]),
            "nnz": int(A.nnz),
            "nnz_per_row": round(nnz_per_row(A), 2),
            "paper_rows": info.paper_rows,
            "paper_nnz": info.paper_nnz,
            "paper_nnz_per_row": info.paper_nnz_per_row,
            "paper_kappa": info.paper_kappa,
            "n_blocks": BlockedMatrix(A, b=7).n_blocks,
        }
        if with_condition:
            try:
                entry["kappa"] = condition_number(A)
            except (RuntimeError, ValueError, spla.ArpackError,
                    np.linalg.LinAlgError) as exc:
                # The eigensolvers legitimately fail on some analogs (no
                # convergence, singular shift); the row survives with a NaN
                # kappa and a structured record saying exactly why, instead
                # of a silently swallowed error.
                entry["kappa"] = float("nan")
                entry["kappa_error"] = RunFailure.from_exception(
                    exc, key=f"sid={sid}/kappa", phase="solve",
                    sid=sid).to_dict()
        out[sid] = entry
    return out


def run(scale: Optional[str] = None, print_output: bool = True,
        with_condition: Optional[bool] = None) -> Dict[int, dict]:
    if with_condition is None:
        with_condition = not api_config.active().skip_kappa
    data = collect(scale, with_condition=with_condition)
    if print_output:
        rows = []
        for sid, d in data.items():
            rows.append([sid, d["name"], d["rows"], d["nnz"], d["nnz_per_row"],
                         d.get("kappa", float("nan")), d["paper_rows"],
                         d["paper_nnz_per_row"], d["paper_kappa"], d["n_blocks"]])
        print(format_table(
            ["id", "name", "rows", "nnz", "nnz/r", "kappa",
             "paper rows", "paper nnz/r", "paper kappa", "blocks"],
            rows, title="\nTable V — evaluation suite (synthetic analogs)"))
    return data
