"""Figure 8: solver-time speedup over the GPU for the four platforms."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.experiments.common import geometric_mean, run_suite
from repro.experiments.reporting import format_table

__all__ = ["run", "collect", "speedup_table", "PLATFORM_LABELS"]

#: Display labels of the builtin platforms (registry names fall through).
PLATFORM_LABELS = {"feinberg": "Feinberg", "feinberg_fc": "Feinberg-fc",
                   "refloat": "ReFloat", "noisy": "Noisy-ReFloat",
                   "truncated": "Truncated"}


def speedup_table(runs: Dict[int, object]) -> dict:
    """Speedup rows and GMNs for one solver's runs (shared with the CLI).

    Returns ``{"platforms": [...], "rows": [...], "gmn": {platform: gmn}}``
    where each row is ``(sid, name, *speedups)`` in platform order, NaN
    marking non-convergence (the paper's NC); the comparison columns are
    every swept platform except the GPU baseline itself.
    """
    compared = [p for p in next(iter(runs.values())).platforms
                if p != "gpu"]
    rows = []
    per_platform: Dict[str, list] = {p: [] for p in compared}
    for sid, run in runs.items():
        row = [sid, run.name]
        for platform in compared:
            s = run.speedup(platform)
            row.append(s)
            per_platform[platform].append(s)
        rows.append(row)
    gmn = {p: geometric_mean([v for v in vals if v == v])
           for p, vals in per_platform.items()}
    return {"platforms": compared, "rows": rows, "gmn": gmn}


def collect(scale: Optional[str] = None,
            platforms: Optional[Iterable[str]] = None) -> Dict[str, dict]:
    """Speedup table data for both solvers.

    Returns ``{solver: {"platforms": [...], "rows": [...], "gmn":
    {platform: gmn}}}`` (see :func:`speedup_table`).  ``platforms`` sweeps
    a registered subset (or superset — any registry name works).
    """
    return {solver: speedup_table(run_suite(solver, scale,
                                            platforms=platforms))
            for solver in ("cg", "bicgstab")}


def run(scale: Optional[str] = None, print_output: bool = True,
        platforms: Optional[Iterable[str]] = None) -> Dict[str, dict]:
    """Regenerate Fig. 8 (printed as two tables, one per solver)."""
    data = collect(scale, platforms=platforms)
    if print_output:
        for solver, block in data.items():
            compared = block["platforms"]
            rows = [[sid, name] + [s if s == s else "NC" for s in speedups]
                    for sid, name, *speedups in block["rows"]]
            print(format_table(
                ["id", "matrix"] + [PLATFORM_LABELS.get(p, p)
                                    for p in compared],
                rows,
                title=f"\nFig. 8 [{solver.upper()}] — speedup vs GPU (GPU = 1.0)"))
            g = block["gmn"]
            if "feinberg_fc" in g and "refloat" in g:
                print(f"GMN: Feinberg-fc {g['feinberg_fc']:.4g}x, "
                      f"ReFloat {g['refloat']:.4g}x "
                      f"(paper: 0.8362x / 12.59x CG, 1.036x / 13.34x BiCGSTAB)")
            else:
                print("GMN: " + ", ".join(
                    f"{PLATFORM_LABELS.get(p, p)} {g[p]:.4g}x"
                    for p in compared))
    return data
