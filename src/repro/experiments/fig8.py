"""Figure 8: solver-time speedup over the GPU for the four platforms."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import geometric_mean, run_suite
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import suite_ids

__all__ = ["run", "collect"]


def collect(scale: Optional[str] = None) -> Dict[str, dict]:
    """Speedup table data for both solvers.

    Returns ``{solver: {"rows": [...], "gmn": {platform: gmn}}}`` where each
    row is (sid, name, speedup_feinberg, speedup_feinberg_fc, speedup_refloat)
    with NaN marking non-convergence (the paper's NC).
    """
    out: Dict[str, dict] = {}
    for solver in ("cg", "bicgstab"):
        runs = run_suite(solver, scale)
        rows = []
        per_platform = {"feinberg": [], "feinberg_fc": [], "refloat": []}
        for sid in suite_ids():
            run = runs[sid]
            row = [sid, run.name]
            for platform in ("feinberg", "feinberg_fc", "refloat"):
                s = run.speedup(platform)
                row.append(s)
                per_platform[platform].append(s)
            rows.append(row)
        gmn = {p: geometric_mean([v for v in vals if v == v])
               for p, vals in per_platform.items()}
        out[solver] = {"rows": rows, "gmn": gmn}
    return out


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[str, dict]:
    """Regenerate Fig. 8 (printed as two tables, one per solver)."""
    data = collect(scale)
    if print_output:
        for solver, block in data.items():
            rows = [[sid, name,
                     f if f == f else "NC", fc, rf if rf == rf else "NC"]
                    for sid, name, f, fc, rf in block["rows"]]
            print(format_table(
                ["id", "matrix", "Feinberg", "Feinberg-fc", "ReFloat"],
                rows,
                title=f"\nFig. 8 [{solver.upper()}] — speedup vs GPU (GPU = 1.0)"))
            g = block["gmn"]
            print(f"GMN: Feinberg-fc {g['feinberg_fc']:.4g}x, "
                  f"ReFloat {g['refloat']:.4g}x "
                  f"(paper: 0.8362x / 12.59x CG, 1.036x / 13.34x BiCGSTAB)")
    return data
