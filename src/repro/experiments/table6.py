"""Table VI: absolute iteration counts, double vs refloat, per solver."""

from __future__ import annotations

from typing import Dict, Optional

from repro.experiments.common import run_suite
from repro.experiments.reporting import format_table
from repro.sparse.gallery.suite import suite_ids

__all__ = ["run", "collect"]

#: The paper's Table VI, for side-by-side comparison in reports.
PAPER_TABLE6 = {
    # sid: (cg_double, cg_refloat, bicg_double, bicg_refloat)
    353: (68, 85, 49, 51),
    1313: (52, 55, 34, 69),
    354: (81, 95, 58, 79),
    2261: (11, 11, 7, 7),
    1288: (262, 305, 195, 205),
    1311: (1, 1, 1, 1),
    1289: (294, 401, 211, 317),
    355: (80, 95, 59, 52),
    2257: (55, 56, 43, 36),
    1848: (162, 214, 118, 145),
    2259: (57, 58, 45, 36),
    845: (53, 54, 41, 35),
}


def collect(scale: Optional[str] = None) -> Dict[int, dict]:
    cg_runs = run_suite("cg", scale)
    bi_runs = run_suite("bicgstab", scale)
    out = {}
    for sid in suite_ids():
        out[sid] = {
            "name": cg_runs[sid].name,
            "cg_double": cg_runs[sid].iterations("gpu"),
            "cg_refloat": cg_runs[sid].iterations("refloat"),
            "bicgstab_double": bi_runs[sid].iterations("gpu"),
            "bicgstab_refloat": bi_runs[sid].iterations("refloat"),
        }
    return out


def run(scale: Optional[str] = None, print_output: bool = True) -> Dict[int, dict]:
    data = collect(scale)
    if print_output:
        rows = []
        for sid, d in data.items():
            cd, cr = d["cg_double"], d["cg_refloat"]
            bd, br = d["bicgstab_double"], d["bicgstab_refloat"]
            delta_c = (cr - cd) if (cr is not None and cd is not None) else None
            delta_b = (br - bd) if (br is not None and bd is not None) else None
            pc = PAPER_TABLE6[sid]
            rows.append([sid, d["name"], cd, cr, delta_c,
                         f"{pc[0]}/{pc[1]}", bd, br, delta_b,
                         f"{pc[2]}/{pc[3]}"])
        print(format_table(
            ["id", "matrix", "CG dbl", "CG rf", "+/-", "paper",
             "Bi dbl", "Bi rf", "+/-", "paper"],
            rows, title="\nTable VI — iterations to convergence"))
    return data
