"""The append-only record layer: a shared JSONL core and the run ledger.

Two consumers share one persistence contract — "one JSON object per
line, flushed and fsynced, so a record either fully survives a crash or
is a torn final line the replay tolerates":

* the **sweep journal** (:mod:`repro.experiments.journal`): per-sweep
  progress, single writer, header-pinned resume;
* the **run ledger** (this module): the cross-run record.  Every
  completed ``run_suite``/``run_sweep``/CLI ``solve``/service engine
  batch appends one record — spec, :class:`RunConfig` snapshot,
  criterion, registry version stamps, git sha, summary-grade results,
  failures, engine counters — answering "what has this deployment
  solved, under which config, and how did perf trend?".  The ``report``
  CLI subcommand replays it.

:class:`JsonlLog` is the extracted core both build on.  The ledger lives
at ``<ledger root>/ledger.jsonl`` where the root is
``RunConfig.ledger`` (env ``REPRO_RUN_LEDGER``; the literal ``off`` /
``none`` / ``0`` disables the ledger) or, by default, ``ledger/`` under
the asset-store root — deliberately *outside* the store's ``v*`` entry
namespace, so store GC can never evict it.  No store and no explicit
root means no ledger: appends become no-ops.

Appends are failure-isolated (an unwritable ledger degrades to a
``RuntimeWarning``; a record is never worth failing the solve it
describes) and concurrency-safe for the threaded daemon: each record is
one ``O_APPEND`` write under a per-process lock, so concurrent threads
— and separate processes sharing a root — never interleave bytes.
"""

from __future__ import annotations

import json
import os
import subprocess
import threading
import time
import warnings
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.api import config as api_config

__all__ = [
    "LEDGER_VERSION",
    "JsonlLog",
    "RunLedger",
    "counters",
    "git_sha",
    "ledger_path",
    "ledger_root",
    "ledger_stats",
    "record_run",
]

LEDGER_VERSION = 1

#: ``RunConfig.ledger`` values that disable the ledger outright (the
#: store-rooted default included).
_DISABLED_TOKENS = ("off", "none", "0")


def _encode(record: Dict) -> str:
    return json.dumps(record, sort_keys=True) + "\n"


#: Serialises :meth:`JsonlLog.append_atomic` within this process; across
#: processes ``O_APPEND`` places each single-syscall write at the
#: then-current end of file.
_APPEND_LOCK = threading.Lock()


class JsonlLog:
    """An fsynced append-only JSONL file — the shared persistence core.

    * :meth:`open` / :meth:`append` — the buffered single-writer side
      (the sweep journal).  Records serialise as
      ``json.dumps(record, sort_keys=True)`` plus newline, flushed and
      fsynced per append, so the on-disk bytes are pinned.
    * :meth:`append_atomic` — the multi-writer side (the run ledger):
      one ``O_APPEND`` write of the full line per record, under
      :data:`_APPEND_LOCK`.
    * :meth:`replay` — torn-line-tolerant reads.  ``torn="stop"`` treats
      an undecodable line as the crash point and stops (journal
      semantics: everything after a torn line is the dead process's);
      ``torn="skip"`` steps over it (ledger semantics: a torn line must
      not hide records a *different* process appended after it).
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._fh = None

    # -- reading ---------------------------------------------------------

    def replay(self, torn: str = "stop") -> Iterator[Tuple[int, Dict]]:
        """Yield ``(lineno, record)`` per line; a missing file is empty.

        Blank lines are skipped but keep their line number, so a header
        check against ``lineno == 0`` stays exact.
        """
        if torn not in ("stop", "skip"):
            raise ValueError(f"torn must be 'stop' or 'skip', got {torn!r}")
        if not self.path.exists():
            return
        with open(self.path, "r") as fh:
            for lineno, line in enumerate(fh):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    if torn == "stop":
                        break
                    continue
                yield lineno, record

    # -- buffered single-writer appends (the journal) --------------------

    def open(self, truncate: bool) -> None:
        """Open for buffered appends (``truncate=True`` starts fresh)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "w" if truncate else "a")

    def append(self, record: Dict) -> None:
        """Append one record: write, flush, fsync."""
        self._fh.write(_encode(record))
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlLog":
        return self

    def __exit__(self, *exc) -> Optional[bool]:
        self.close()
        return None

    # -- lock-guarded multi-writer appends (the ledger) ------------------

    def append_atomic(self, record: Dict) -> None:
        """Append one record as a single ``O_APPEND`` write + fsync."""
        data = _encode(record).encode("utf-8")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with _APPEND_LOCK:
            fd = os.open(self.path,
                         os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                view = memoryview(data)
                while view:
                    view = view[os.write(fd, view):]
                os.fsync(fd)
            finally:
                os.close(fd)


# -- root resolution -----------------------------------------------------


def ledger_root(config: Optional["api_config.RunConfig"] = None,
                ) -> Optional[Path]:
    """The ledger directory, or ``None`` when no ledger is configured.

    ``RunConfig.ledger`` (env ``REPRO_RUN_LEDGER``) names it explicitly
    — or disables the ledger with ``off``/``none``/``0`` — and otherwise
    it defaults to ``ledger/`` beside the asset-store entries it
    describes.  Without a store either, there is no ledger.
    """
    cfg = config if config is not None else api_config.active()
    raw = cfg.ledger
    if raw:
        if raw.strip().lower() in _DISABLED_TOKENS:
            return None
        return Path(raw)
    if cfg.store:
        return Path(cfg.store) / "ledger"
    return None


def ledger_path(root: Optional[Path] = None) -> Optional[Path]:
    """The ledger file under ``root`` (default: the configured root)."""
    root = ledger_root() if root is None else Path(root)
    if root is None:
        return None
    return root / "ledger.jsonl"


# -- per-process counters (surfaced by /v1/stats) ------------------------

_COUNTERS_LOCK = threading.Lock()
_COUNTERS = {"appends": 0, "errors": 0}


def counters() -> Dict[str, int]:
    """This process's append/error counts (successful/failed appends)."""
    with _COUNTERS_LOCK:
        return dict(_COUNTERS)


def _bump(name: str) -> None:
    with _COUNTERS_LOCK:
        _COUNTERS[name] += 1


def reset_counters() -> None:
    """Zero the per-process counters (test isolation)."""
    with _COUNTERS_LOCK:
        for name in _COUNTERS:
            _COUNTERS[name] = 0


# -- record construction -------------------------------------------------

#: ``False`` = not yet resolved (``None`` is a valid "no repository"
#: answer and must be cached too).
_GIT_SHA: Any = False


def git_sha() -> Optional[str]:
    """The HEAD commit of the repository the running code lives in, or
    ``None`` (no git, no repository, any failure).  Cached per process."""
    global _GIT_SHA
    if _GIT_SHA is False:
        sha: Optional[str] = None
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=Path(__file__).resolve().parent,
                capture_output=True, text=True, timeout=10)
            if proc.returncode == 0:
                sha = proc.stdout.strip() or None
        except Exception:
            sha = None
        _GIT_SHA = sha
    return _GIT_SHA


def _registry_stamps(platforms: Iterable[str],
                     solvers: Iterable[str]) -> Dict[str, Dict[str, int]]:
    """Per-name registration stamps for the names this run touched.

    Names missing from a registry (a variant token whose family was
    never materialised in this process) are simply omitted — the record
    must describe the run, not fail it.
    """
    from repro.api.registry import PLATFORM_REGISTRY, SOLVER_REGISTRY

    def stamps(registry, names) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for name in dict.fromkeys(names):
            try:
                out[name] = registry.versions((name,))[0]
            except KeyError:
                continue
        return out

    return {"platforms": stamps(PLATFORM_REGISTRY, platforms),
            "solvers": stamps(SOLVER_REGISTRY, solvers)}


class RunLedger:
    """One ledger file: concurrency-safe appends + tolerant replay."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._log = JsonlLog(path)

    def append(self, record: Dict) -> None:
        self._log.append_atomic(record)

    def replay(self) -> List[Dict]:
        """Every well-formed ledger record, in append order.

        Torn lines and alien records (wrong ``type``/``version``) are
        skipped, not fatal: the ledger spans many writers over the
        deployment's lifetime and must replay whatever survives.
        """
        return [record for _, record in self._log.replay(torn="skip")
                if isinstance(record, dict)
                and record.get("type") == "RunLedger"
                and record.get("version") == LEDGER_VERSION]

    def stats(self) -> Dict[str, int]:
        """On-disk totals: well-formed record count and file size."""
        if not self.path.exists():
            return {"records": 0, "nbytes": 0}
        return {"records": len(self.replay()),
                "nbytes": int(self.path.stat().st_size)}


def record_run(kind: str, *, spec: Any, scale: Optional[str],
               criterion: Any, runs: Iterable[Any],
               failures: Iterable[Any] = (), stats: Any = None,
               platforms: Iterable[str] = (), solvers: Iterable[str] = (),
               extra: Optional[Dict[str, Any]] = None) -> Optional[Path]:
    """Append one completed-run record to the configured ledger.

    Never raises: with no ledger configured this is a no-op, and any
    failure (unwritable root, full disk, a result that will not
    serialise) degrades to a ``RuntimeWarning`` — the run itself already
    succeeded and must stay successful.  Returns the ledger path on a
    successful append, else ``None``.
    """
    root = ledger_root()
    if root is None:
        return None
    path = root / "ledger.jsonl"
    try:
        record = {
            "type": "RunLedger",
            "version": LEDGER_VERSION,
            "kind": kind,
            "ts": round(time.time(), 3),
            "pid": os.getpid(),
            "spec": spec if isinstance(spec, dict) else spec.to_dict(),
            "scale": scale,
            "criterion": (asdict(criterion)
                          if is_dataclass(criterion) else criterion),
            "config": api_config.active().to_dict(),
            "registry": _registry_stamps(platforms, solvers),
            "git_sha": git_sha(),
            "runs": [run.to_dict() for run in runs],
            "failures": [f.to_dict() for f in failures],
            "stats": None if stats is None else stats.to_dict(),
        }
        if extra:
            record.update(extra)
        RunLedger(path).append(record)
    except Exception as exc:
        _bump("errors")
        warnings.warn(
            f"run ledger append to {path} failed ({exc!r}); the run "
            f"itself is unaffected", RuntimeWarning, stacklevel=2)
        return None
    _bump("appends")
    return path


def ledger_stats() -> Dict[str, Any]:
    """Ledger totals for ``store --stats`` and the daemon's ``/v1/stats``:
    the resolved path, on-disk record count/bytes, and this process's
    append/error counters.  Never raises (an unreadable ledger reports
    zero records)."""
    out: Dict[str, Any] = {"path": None, "records": 0, "nbytes": 0}
    out.update(counters())
    try:
        path = ledger_path()
        if path is not None:
            out["path"] = str(path)
            out.update(RunLedger(path).stats())
    except Exception:  # pragma: no cover - stats must never fail a caller
        pass
    return out
