"""CLI entry point for the evaluation harness.

Legacy experiment regeneration (one table/figure of the paper)::

    python -m repro.experiments fig8 [--scale SCALE]
    python -m repro.experiments all

Declarative runs (no environment variables required — every knob is a
flag mapping onto :class:`repro.api.RunConfig` / :class:`repro.api.SuiteSpec`)::

    python -m repro.experiments suite --solver cg --platforms gpu,refloat \
        --scale test --executor process --workers 4 --json out.json
    python -m repro.experiments solve --sid 353 --solver bicgstab \
        --platforms gpu,refloat --scale test --json out.json

Scenario sweeps over a variant-family parameter grid
(:class:`repro.api.SweepSpec`; repeat ``--grid`` for extra axes)::

    python -m repro.experiments sweep --platform noisy \
        --grid sigma=0.001,0.01,0.25 --sids 355 --scale test --json -
    python -m repro.experiments sweep --platform truncated \
        --grid e=11 --grid f=20,26,52 --executor process

Asset-store maintenance::

    python -m repro.experiments store --stats
    python -m repro.experiments store --gc --max-mb 512

The run ledger (every completed suite/sweep/solve/service batch appends
one record under ``$REPRO_ASSET_STORE/ledger/`` or ``REPRO_RUN_LEDGER``;
``report`` replays it)::

    python -m repro.experiments report
    python -m repro.experiments report --json - --last 20

The solve service (long-lived daemon + remote client)::

    python -m repro.experiments serve --host 127.0.0.1 --port 8537 \
        --workers 4 --executor process --store /var/cache/repro
    python -m repro.experiments solve --sid 353 --remote 127.0.0.1:8537

Fault tolerance (suite and sweep): ``--retries``/``--timeout``/
``--backoff`` map onto the :class:`RunConfig` knobs, ``--on-error
collect`` returns partial results with failure records instead of
raising, ``--journal``/``--resume`` give sweeps crash-durable progress,
and ``--fault`` injects deterministic faults for drills::

    python -m repro.experiments suite --executor process --retries 1 \
        --on-error collect --fault crash@attempt=1,sid=2257
    python -m repro.experiments sweep --platform noisy --grid sigma=0.01 \
        --journal run.jsonl --resume
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.api import RunConfig, SuiteSpec
from repro.api.specs import RunRequest

_API_COMMANDS = ("suite", "solve", "sweep", "store", "serve", "report")


def _split_csv(text: Optional[str]) -> Optional[list]:
    if text is None:
        return None
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise argparse.ArgumentTypeError("expected a comma-separated list")
    return items


def _platforms_arg(text: str) -> list:
    return _split_csv(text)


def _sids_arg(text: str) -> list:
    try:
        return [int(s) for s in _split_csv(text)]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"sids must be comma-separated integers, got {text!r}") from None


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--solver", default="cg",
                        help="registered solver name (default: cg)")
    parser.add_argument("--platforms", type=_platforms_arg, default=None,
                        metavar="P1,P2,...",
                        help="registered platform subset (default: the "
                             "paper's four-platform grid)")
    parser.add_argument("--scale", choices=["test", "default", "paper"],
                        default=None, help="matrix scale (default: 'default')")
    parser.add_argument("--json", dest="json_out", metavar="OUT",
                        default=None,
                        help="write results (and the spec that produced "
                             "them) as JSON to OUT, '-' for stdout")


def _emit_json(payload: dict, target: Optional[str]) -> None:
    text = json.dumps(payload, indent=1, sort_keys=True)
    if target == "-":
        print(text)
    elif target:
        with open(target, "w") as fh:
            fh.write(text + "\n")


def _add_fault_flags(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by ``suite`` and ``sweep``."""
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="extra attempts per failed request "
                             "(default: REPRO_REQUEST_RETRIES or 0)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECS",
                        help="per-request timeout in seconds, enforced on "
                             "pooled executors (default: "
                             "REPRO_REQUEST_TIMEOUT or none)")
    parser.add_argument("--backoff", type=float, default=None, metavar="SECS",
                        help="retry backoff base: attempt n waits "
                             "backoff*2^(n-1) seconds (default: "
                             "REPRO_RETRY_BACKOFF or 0)")
    parser.add_argument("--on-error", dest="on_error",
                        choices=["raise", "collect"], default="raise",
                        help="'raise' (default) propagates the first "
                             "unrecoverable failure; 'collect' returns "
                             "partial results with failure records "
                             "(exit code 3 when any request failed)")
    parser.add_argument("--fault", action="append", default=None,
                        metavar="TOKEN",
                        help="inject a deterministic fault for drills "
                             "(repeatable); tokens use the variant "
                             "grammar: 'crash@attempt=1,sid=2257', "
                             "'hang@secs=30,sid=494', "
                             "'fail@attempts=1,sid=353'")


def _report_failures(failures) -> int:
    """Print failure summaries to stderr; exit 3 when any survived."""
    for f in failures:
        sys.stderr.write(
            f"FAILED [{f.phase}] sid={f.sid} solver={f.solver} after "
            f"{f.attempts} attempt(s): {f.error_type}: {f.message}\n")
    return 3 if failures else 0


def _run_config(args: argparse.Namespace) -> RunConfig:
    """Flags layered over the environment-derived config (flags win)."""
    overrides = {}
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if getattr(args, "executor", None) is not None:
        overrides["executor"] = args.executor
    if getattr(args, "scale", None) is not None:
        overrides["scale"] = args.scale
    if getattr(args, "timeout", None) is not None:
        overrides["request_timeout"] = args.timeout
    if getattr(args, "retries", None) is not None:
        overrides["request_retries"] = args.retries
    if getattr(args, "backoff", None) is not None:
        overrides["retry_backoff"] = args.backoff
    if getattr(args, "batch_window", None) is not None:
        overrides["service_batch_window"] = args.batch_window
    if getattr(args, "batch_max", None) is not None:
        overrides["service_batch_max"] = args.batch_max
    if getattr(args, "no_coalesce", False):
        overrides["service_coalesce"] = False
    if getattr(args, "store", None) is not None:
        overrides["store"] = args.store
    return RunConfig.from_env(**overrides)


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.api.faults import use_fault_plan
    from repro.experiments.common import run_spec
    from repro.experiments.fig8 import PLATFORM_LABELS, speedup_table
    from repro.experiments.reporting import format_table

    spec = SuiteSpec(solver=args.solver, scale=args.scale,
                     platforms=args.platforms, sids=args.sids)
    with use_fault_plan(args.fault or None):
        runs = run_spec(spec, config=_run_config(args),
                        on_error=args.on_error)
    table = speedup_table(runs)
    rows = [[sid, name, runs[sid].iterations("gpu")]
            + [s if s == s else "NC" for s in speedups]
            for sid, name, *speedups in table["rows"]]
    print(format_table(
        ["id", "matrix", "gpu its"] + [PLATFORM_LABELS.get(p, p)
                                       for p in table["platforms"]],
        rows,
        title=f"suite [{args.solver}] — speedup vs GPU (GPU = 1.0)"))
    for p in table["platforms"]:
        gmn = table["gmn"][p]
        if gmn == gmn:  # no baseline swept -> NaN: nothing to report
            print(f"GMN {PLATFORM_LABELS.get(p, p)}: {gmn:.4g}x")
    _emit_json({"spec": spec.to_dict(),
                "runs": {str(sid): run.to_dict()
                         for sid, run in runs.items()},
                "failures": [f.to_dict() for f in runs.failures],
                "stats": (None if runs.stats is None
                          else runs.stats.to_dict()),
                "trace_summary": (None if runs.stats is None
                                  else runs.stats.trace_summary())},
               args.json_out)
    return _report_failures(runs.failures)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.experiments.common import run_request
    from repro.sparse.gallery.suite import resolve_scale

    request = RunRequest(
        sid=args.sid, solver=args.solver,
        scale=resolve_scale(args.scale),
        platforms=tuple(args.platforms) if args.platforms else None)
    from repro.api import use as use_config
    if args.remote:
        from repro.experiments.common import MatrixRun
        from repro.service import ServiceClient, ServiceError

        client = ServiceClient.from_config(args.remote, _run_config(args))
        try:
            run_dict = client.solve(request)
        except ServiceError as exc:
            sys.stderr.write(f"remote solve failed: {exc}\n")
            return 3
        run = MatrixRun.from_dict(run_dict)
    else:
        from repro.api import config as api_config
        from repro.experiments import ledger

        with use_config(_run_config(args)):
            run = run_request(request)
            ledger.record_run(
                "solve", spec=request, scale=request.scale,
                criterion=api_config.active().effective_criterion,
                runs=(run,), platforms=run.platforms,
                solvers=(request.solver,))
    print(f"{run.name} (sid {run.sid}, n={run.n_rows}, nnz={run.nnz}, "
          f"{run.n_blocks} blocks) — {run.solver}")
    for platform in run.platforms:
        res = run.results[platform]
        state = f"{res.iterations:>6d} its" if res.converged else "    NC    "
        speedup = run.speedup(platform)
        extra = f"  speedup {speedup:.4g}x" if speedup == speedup else ""
        print(f"  {platform:<12} {state}{extra}")
    _emit_json({"request": request.to_dict(), "run": run.to_dict()},
               args.json_out)
    return 0


def _grid_arg(text: str) -> tuple:
    """One ``--grid`` axis: ``key=v1,v2,...`` (values typed like tokens)."""
    from repro.api.sweep import _parse_value

    key, sep, body = text.partition("=")
    values = [item.strip() for item in body.split(",") if item.strip()]
    if not sep or not key.strip() or not values:
        raise argparse.ArgumentTypeError(
            f"grid axes look like key=v1,v2,..., got {text!r}")
    return key.strip(), tuple(_parse_value(v) for v in values)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api.faults import use_fault_plan
    from repro.api.sweep import SweepSpec
    from repro.experiments.common import geometric_mean, run_sweep
    from repro.experiments.reporting import format_table

    if args.baseline is None:
        baseline = ("gpu",)
    elif [name.lower() for name in args.baseline] == ["none"]:
        baseline = None
    else:
        baseline = tuple(args.baseline)
    spec = SweepSpec(family=args.platform, grid=tuple(args.grid),
                     solvers=(args.solver,), baseline=baseline,
                     sids=args.sids, scale=args.scale, tols=args.tols)
    with use_fault_plan(args.fault or None):
        result = run_sweep(spec, config=_run_config(args),
                           on_error=args.on_error, journal=args.journal,
                           resume=args.resume)
    if args.journal is not None and result.stats is not None:
        sys.stderr.write(
            f"journal: {result.stats.journal_skipped} cell(s) replayed, "
            f"{result.stats.requests} solved\n")
    tol_axis = spec.tols if spec.tols is not None else (None,)
    rows = []
    for tol in tol_axis:
        for token in result.tokens:
            cell = result.variant(token, tol=tol)
            speedups = [run.speedup(token) for run in cell.values()]
            prefix = [token] if tol is None else [token, tol]
            for sid, run in cell.items():
                its = run.iterations(token)
                s = run.speedup(token)
                rows.append(prefix + [sid, its if its is not None else "NC",
                                      s if s == s else "NC"])
            if len(cell) > 1:
                gmn = geometric_mean(speedups)
                rows.append(prefix + ["GMN", "",
                                      gmn if gmn == gmn else "NC"])
    header = ["variant"] + (["tol"] if spec.tols is not None else []) + \
        ["id", "#iterations", "speedup vs GPU"]
    print(format_table(
        header, rows,
        title=f"sweep [{args.solver}] — {args.platform} grid over "
              f"{len(result.tokens)} variants"))
    payload = result.to_dict()
    payload["trace_summary"] = (None if result.stats is None
                                else result.stats.trace_summary())
    _emit_json(payload, args.json_out)
    return _report_failures(result.failures)


def _tols_arg(text: str) -> tuple:
    try:
        return tuple(float(s) for s in _split_csv(text))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"tols must be comma-separated floats, got {text!r}") from None


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.api.faults import use_fault_plan
    from repro.experiments.common import clear_run_caches
    from repro.service import SolveService

    config = _run_config(args)
    with use_fault_plan(args.fault or None):
        service = SolveService(host=args.host, port=args.port, config=config)
        host, port = service.address
        # The smoke harness (and humans) parse this line for the bound
        # ephemeral port; keep its shape stable.
        print(f"listening on http://{host}:{port}", flush=True)

        def _stop(signum, frame) -> None:
            # shutdown() blocks until serve_forever exits; the handler
            # runs *inside* serve_forever's thread, so hand it off.
            threading.Thread(target=service.shutdown, daemon=True).start()

        previous = {sig: signal.signal(sig, _stop)
                    for sig in (signal.SIGINT, signal.SIGTERM)}
        try:
            service.serve_forever()
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            stats = service.stats()
            service.close()
            # Reap the persistent process pool (if the engine ever built
            # one) so the daemon exits promptly instead of waiting on
            # worker processes at interpreter shutdown.
            clear_run_caches()
    _emit_json(stats, args.json_out)
    sys.stderr.write(
        f"served {stats['service']['requests']} request(s), "
        f"{stats['service']['coalesced_batches']} coalesced batch(es)\n")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.api import use as use_config
    from repro.experiments import store

    overrides = {}
    if args.store is not None:
        overrides["store"] = args.store
    with use_config(RunConfig.from_env(**overrides)):
        if store.store_root() is None:
            print("no asset store configured (set REPRO_ASSET_STORE or "
                  "pass --store PATH)", file=sys.stderr)
            return 2
        if args.gc:
            result = store.gc_store(int(args.max_mb * (1 << 20)))
            print(f"evicted {len(result['evicted'])} entries "
                  f"({result['before_nbytes'] - result['after_nbytes']} "
                  f"bytes), kept {result['kept']} "
                  f"({result['after_nbytes']} bytes)")
            for key in result["evicted"]:
                print(f"  - {key}")
        else:
            stats = store.store_stats()
            print(f"{stats['root']}: {stats['entries']} entries, "
                  f"{stats['nbytes']} bytes")
            for entry in stats["per_entry"]:
                marker = "" if entry["current"] else "  [stale version]"
                print(f"  {entry['version']}/{entry['key']:<16} "
                      f"{entry['nbytes']:>12d} B{marker}")
            led = stats.get("ledger") or {}
            if led.get("path"):
                print(f"ledger {led['path']}: {led['records']} records, "
                      f"{led['nbytes']} bytes")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import ledger as ledger_mod
    from repro.experiments.common import MatrixRun
    from repro.experiments.reporting import format_table

    overrides = {}
    if args.store is not None:
        overrides["store"] = args.store
    if args.ledger is not None:
        overrides["ledger"] = args.ledger
    path = ledger_mod.ledger_path(
        ledger_mod.ledger_root(RunConfig.from_env(**overrides)))
    if path is None:
        print("no run ledger configured (set REPRO_ASSET_STORE or "
              "REPRO_RUN_LEDGER, or pass --store / --ledger)",
              file=sys.stderr)
        return 2
    records = ledger_mod.RunLedger(path).replay()
    if args.last is not None:
        records = records[-args.last:]

    summaries = []
    trajectory: dict = {}
    kinds: dict = {}
    sids: set = set()
    platforms: set = set()
    solvers: set = set()
    failure_trend = []
    for idx, rec in enumerate(records):
        kind = rec.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        runs = [MatrixRun.from_dict(r) for r in rec.get("runs") or ()]
        failures = rec.get("failures") or []
        attempted = len(runs) + len(failures)
        failure_trend.append({
            "record": idx, "kind": kind, "ts": rec.get("ts"),
            "runs": len(runs), "failures": len(failures),
            "rate": (round(len(failures) / attempted, 4)
                     if attempted else 0.0),
        })
        summaries.append({
            "record": idx, "kind": kind, "ts": rec.get("ts"),
            "scale": rec.get("scale"), "git_sha": rec.get("git_sha"),
            "registry": rec.get("registry") or {},
            "runs": len(runs), "failures": len(failures),
        })
        for run in runs:
            sids.add(run.sid)
            solvers.add(run.solver)
            for platform in run.platforms:
                platforms.add(platform)
                t = run.times_s.get(platform)
                s = run.speedup(platform)
                trajectory.setdefault((run.sid, run.solver, platform),
                                      []).append({
                    "record": idx, "ts": rec.get("ts"),
                    "time_s": (t if t is not None
                               and t < float("inf") else None),
                    "iterations": run.iterations(platform),
                    "converged": bool(run.results[platform].converged),
                    "speedup_vs_gpu": s if s == s else None,
                })

    rows = []
    for (sid, solver, platform), points in sorted(trajectory.items()):
        finite = [p["time_s"] for p in points if p["time_s"] is not None]
        first = finite[0] if finite else float("nan")
        last = finite[-1] if finite else float("nan")
        delta = (f"{(last - first) / first * 100.0:+.1f}%"
                 if finite and first > 0 else "-")
        rows.append([sid, solver, platform, len(points), first, last, delta])
    print(format_table(
        ["id", "solver", "platform", "runs", "first t(s)", "last t(s)",
         "trend"],
        rows,
        title=f"run ledger {path} — perf trajectory over "
              f"{len(records)} record(s)"))
    kind_summary = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
    print(f"coverage: {kind_summary or 'no records'}; {len(sids)} matrix "
          f"id(s), {len(platforms)} platform(s), {len(solvers)} solver(s)")
    print(format_table(
        ["record", "kind", "runs", "failures", "failure rate"],
        [[f["record"], f["kind"], f["runs"], f["failures"],
          f"{f['rate'] * 100.0:.1f}%"] for f in failure_trend],
        title="failure-rate trend"))
    _emit_json({
        "type": "LedgerReport", "version": 1, "path": str(path),
        "records": summaries,
        "trajectory": {f"{sid}/{solver}/{platform}": points
                       for (sid, solver, platform), points
                       in sorted(trajectory.items())},
        "coverage": {"kinds": kinds, "sids": sorted(sids),
                     "platforms": sorted(platforms),
                     "solvers": sorted(solvers)},
        "failure_trend": failure_trend,
    }, args.json_out)
    return 0


def _api_parser(command: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=f"python -m repro.experiments {command}")
    if command == "suite":
        _add_run_flags(parser)
        parser.add_argument("--sids", type=_sids_arg, default=None,
                            metavar="ID1,ID2,...",
                            help="suite-matrix subset (default: all 12)")
        parser.add_argument("--workers", type=int, default=None,
                            help="fan-out width (default: one per matrix "
                                 "up to the CPU count)")
        parser.add_argument("--executor", choices=["thread", "process"],
                            default=None, help="fan-out executor")
        _add_fault_flags(parser)
        parser.set_defaults(func=_cmd_suite)
    elif command == "sweep":
        parser.add_argument("--platform", required=True, metavar="FAMILY",
                            help="variant family to sweep (noisy, "
                                 "truncated, feinberg, or user-registered)")
        parser.add_argument("--grid", type=_grid_arg, action="append",
                            required=True, metavar="KEY=V1,V2,...",
                            help="one parameter axis of the grid "
                                 "(repeat for more axes; a single value "
                                 "pins the parameter)")
        parser.add_argument("--solver", default="cg",
                            help="registered solver name (default: cg)")
        parser.add_argument("--baseline", type=_platforms_arg,
                            default=None, metavar="P1,P2,...",
                            help="baseline platforms solved once per "
                                 "matrix and grafted into every variant "
                                 "(default: gpu; 'none' for no baseline)")
        parser.add_argument("--sids", type=_sids_arg, default=None,
                            metavar="ID1,ID2,...",
                            help="suite-matrix subset (default: all 12)")
        parser.add_argument("--scale", choices=["test", "default", "paper"],
                            default=None,
                            help="matrix scale (default: 'default')")
        parser.add_argument("--workers", type=int, default=None,
                            help="fan-out width (default: one per run "
                                 "up to the CPU count)")
        parser.add_argument("--executor", choices=["thread", "process"],
                            default=None, help="fan-out executor")
        parser.add_argument("--json", dest="json_out", metavar="OUT",
                            default=None,
                            help="write the sweep (spec + per-variant "
                                 "runs) as JSON to OUT, '-' for stdout")
        _add_fault_flags(parser)
        parser.add_argument("--journal", nargs="?", const="auto",
                            default=None, metavar="PATH",
                            help="append each completed cell to a "
                                 "crash-durable JSONL journal (bare "
                                 "--journal uses the store-rooted default "
                                 "path)")
        parser.add_argument("--resume", action="store_true",
                            help="replay the journal first and solve only "
                                 "the missing cells (requires --journal)")
        parser.add_argument("--tols", type=_tols_arg, default=None,
                            metavar="T1,T2,...",
                            help="convergence-tolerance axis: run the whole "
                                 "grid once per tolerance (e.g. "
                                 "1e-6,1e-8,1e-10), with the resolved "
                                 "criterion stamped into every cell")
        parser.set_defaults(func=_cmd_sweep)
    elif command == "solve":
        parser.add_argument("--sid", type=int, required=True,
                            help="suite matrix id (Table V)")
        _add_run_flags(parser)
        parser.add_argument("--remote", default=None, metavar="HOST:PORT",
                            help="solve on a running solve-service daemon "
                                 "instead of in-process (see 'serve')")
        parser.add_argument("--retries", type=int, default=None, metavar="N",
                            help="with --remote: transport retries "
                                 "(default: REPRO_REQUEST_RETRIES or 0)")
        parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECS",
                            help="with --remote: socket timeout (default: "
                                 "REPRO_REQUEST_TIMEOUT or none)")
        parser.add_argument("--backoff", type=float, default=None,
                            metavar="SECS",
                            help="with --remote: retry backoff base "
                                 "(default: REPRO_RETRY_BACKOFF or 0)")
        parser.set_defaults(func=_cmd_solve)
    elif command == "serve":
        parser.add_argument("--host", default="127.0.0.1",
                            help="bind address (default: 127.0.0.1)")
        parser.add_argument("--port", type=int, default=0,
                            help="bind port (default: 0 = ephemeral; the "
                                 "bound port is printed on startup)")
        parser.add_argument("--workers", type=int, default=None,
                            help="engine fan-out width per batch")
        parser.add_argument("--executor", choices=["thread", "process"],
                            default=None, help="engine executor")
        parser.add_argument("--store", default=None, metavar="PATH",
                            help="asset-store root served over the remote "
                                 "store protocol (default: "
                                 "REPRO_ASSET_STORE)")
        parser.add_argument("--batch-window", dest="batch_window",
                            type=float, default=None, metavar="SECS",
                            help="coalescing window (default: "
                                 "REPRO_SERVICE_BATCH_WINDOW or 0.05)")
        parser.add_argument("--batch-max", dest="batch_max", type=int,
                            default=None, metavar="N",
                            help="max coalesced batch size (default: "
                                 "REPRO_SERVICE_BATCH_MAX or 8)")
        parser.add_argument("--no-coalesce", dest="no_coalesce",
                            action="store_true",
                            help="disable request coalescing (every "
                                 "request becomes its own batch)")
        parser.add_argument("--retries", type=int, default=None, metavar="N",
                            help="engine retries per failed request")
        parser.add_argument("--timeout", type=float, default=None,
                            metavar="SECS",
                            help="engine per-request timeout")
        parser.add_argument("--backoff", type=float, default=None,
                            metavar="SECS", help="engine retry backoff base")
        parser.add_argument("--fault", action="append", default=None,
                            metavar="TOKEN",
                            help="inject a deterministic fault for drills "
                                 "(repeatable), e.g. "
                                 "'crash@attempt=1,sid=2257'")
        parser.add_argument("--json", dest="json_out", metavar="OUT",
                            default=None,
                            help="write the final service stats as JSON to "
                                 "OUT on shutdown, '-' for stdout")
        parser.set_defaults(func=_cmd_serve)
    elif command == "report":
        parser.add_argument("--store", default=None, metavar="PATH",
                            help="store root whose ledger to replay "
                                 "(default: REPRO_ASSET_STORE)")
        parser.add_argument("--ledger", default=None, metavar="DIR",
                            help="ledger root directory (default: "
                                 "REPRO_RUN_LEDGER, or ledger/ under the "
                                 "store root)")
        parser.add_argument("--last", type=int, default=None, metavar="N",
                            help="replay only the most recent N records")
        parser.add_argument("--json", dest="json_out", metavar="OUT",
                            default=None,
                            help="write the report as JSON to OUT, '-' "
                                 "for stdout")
        parser.set_defaults(func=_cmd_report)
    else:  # store
        parser.add_argument("--store", default=None, metavar="PATH",
                            help="store root (default: REPRO_ASSET_STORE)")
        group = parser.add_mutually_exclusive_group()
        group.add_argument("--stats", action="store_true",
                           help="print entry sizes and totals (default)")
        group.add_argument("--gc", action="store_true",
                           help="evict LRU entries down to --max-mb")
        parser.add_argument("--max-mb", type=float, default=None,
                            help="GC byte budget in megabytes")
        parser.set_defaults(func=_cmd_store)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _API_COMMANDS:
        parser = _api_parser(argv[0])
        args = parser.parse_args(argv[1:])
        if argv[0] == "store":
            if args.gc and args.max_mb is None:
                parser.error("--gc requires --max-mb N")
            if args.max_mb is not None and args.max_mb < 0:
                parser.error("--max-mb must be >= 0")
        if argv[0] == "sweep" and args.resume and args.journal is None:
            parser.error("--resume requires --journal")
        return args.func(args)

    from repro.experiments import EXPERIMENTS, run_experiment

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the ReFloat paper, or "
                    "run declarative jobs (suite/solve/sweep), store "
                    "maintenance (store), the run-ledger report (report), "
                    "or the solve service (serve).")
    parser.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment to run (or: suite, solve, sweep, "
                             "store, serve, report)")
    parser.add_argument("--scale", choices=["test", "default", "paper"],
                        default=None,
                        help="matrix scale (default: 'default', or 'paper' "
                             "when REPRO_FULL=1)")
    args = parser.parse_args(argv)
    run_experiment(args.name, scale=args.scale)
    return 0


if __name__ == "__main__":
    sys.exit(main())
