"""CLI entry point: ``python -m repro.experiments <name> [--scale SCALE]``."""

import argparse

from repro.experiments import EXPERIMENTS, run_experiment


def main() -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a table/figure of the ReFloat paper.")
    parser.add_argument("name", choices=sorted(EXPERIMENTS) + ["all"],
                        help="experiment to run")
    parser.add_argument("--scale", choices=["test", "default", "paper"],
                        default=None,
                        help="matrix scale (default: 'default', or 'paper' "
                             "when REPRO_FULL=1)")
    args = parser.parse_args()
    run_experiment(args.name, scale=args.scale)


if __name__ == "__main__":
    main()
