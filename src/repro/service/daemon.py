"""The solve daemon: a long-lived HTTP front-end over the run engine.

Zero dependencies beyond the stdlib (``http.server``).  Two solve paths
share one ``POST /v1/solve`` endpoint, distinguished by the payload's
``type`` tag:

- ``"RunRequest"`` — the full evaluation unit.  Concurrently arriving
  requests are micro-batched (same window/size bounds as the coalescer)
  into one :func:`~repro.experiments.common._execute_requests` call, i.e.
  scheduled onto the persistent process pool through the existing graph
  scheduler — retries, timeouts, pool recovery and dependency-skip all
  inherited.  Results stream back as ``MatrixRun.to_dict()``; structured
  failures come back as ``RunFailure`` records, not hung sockets.
- ``"VectorJob"`` — one right-hand side.  Same-key jobs coalesce into one
  lockstep ``matmat`` batch (:mod:`repro.service.coalesce`), bit-identical
  per column to solving each request on its own.

``GET /v1/stats`` returns the service counters plus the engine/store
counter snapshots; ``GET /v1/health`` is the liveness probe;
``POST /v1/shutdown`` stops the daemon cleanly after in-flight work.
``GET``/``PUT /v1/store/<sid>/<scale>`` serve the remote store protocol
from this daemon's local store root (:mod:`repro.service.wire` framing).
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

import numpy as np

from repro.api import config as api_config
from repro.api.registry import PLATFORM_REGISTRY, SOLVER_REGISTRY
from repro.api.specs import RunRequest
from repro.api.sweep import ensure_variant_platforms
from repro.service.coalesce import Coalescer, ServiceCounters
from repro.service.jobs import VectorJob
from repro.service.wire import WireError, pack_entry, unpack_entry
from repro.solvers.lockstep import LOCKSTEP_SOLVERS, solve_lockstep

__all__ = ["SERVICE_VERSION", "SolveService"]

SERVICE_VERSION = 1


class SolveService:
    """One daemon instance: HTTP server + coalescers + engine front-end.

    ``port=0`` binds an ephemeral port (read it back from ``address``).
    ``config`` — when given — is installed process-wide for the daemon's
    lifetime (:func:`repro.api.config.set_active`), so every handler
    thread, coalesced batch and pool worker resolves the same knobs;
    ``None`` uses whatever is already active.  Call :meth:`serve_forever`
    to run, :meth:`shutdown` (or ``POST /v1/shutdown``) to stop it, and
    :meth:`close` to flush the coalescers and release the socket.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 config: Optional["api_config.RunConfig"] = None) -> None:
        self._installed = config is not None
        if self._installed:
            api_config.set_active(config)
        cfg = api_config.active()
        self._cfg = cfg
        self.counters = ServiceCounters()
        self._vector = Coalescer(
            self._run_vector_batch, window=cfg.service_batch_window,
            max_batch=cfg.service_batch_max, coalesce=cfg.service_coalesce,
            counters=self.counters, kind="vector")
        self._engine = Coalescer(
            self._run_engine_batch, window=cfg.service_batch_window,
            max_batch=cfg.service_batch_max, coalesce=cfg.service_coalesce,
            counters=self.counters, kind="engine")
        self._engine_lock = threading.Lock()
        self._engine_totals: Dict[str, int] = {}
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def serve_forever(self, poll_interval: float = 0.05) -> None:
        # A tight poll keeps shutdown latency low; the poll is a cheap
        # selector timeout, not a busy wait.
        self._httpd.serve_forever(poll_interval=poll_interval)

    def shutdown(self) -> None:
        """Stop ``serve_forever`` (threadsafe; in-flight requests finish)."""
        self._httpd.shutdown()

    def close(self) -> None:
        """Flush the coalescers, release the socket, restore the config."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._vector.close()
        self._engine.close()
        self._httpd.server_close()
        if self._installed:
            api_config.set_active(None)

    def __enter__(self) -> "SolveService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission (validated, pre-coalesce) ----------------------------

    def submit_request(self, request: RunRequest):
        """Enqueue a :class:`RunRequest` for the next engine micro-batch."""
        return self._engine.submit("engine", request)

    def submit_vector(self, job: VectorJob):
        """Validate a :class:`VectorJob` cheaply and enqueue it under its
        batch key.  Identity errors (unknown solver/platform, a multi-RHS
        solver, an operatorless platform) raise ``ValueError``/``KeyError``
        here — *before* the job could poison an innocent batch."""
        sspec = SOLVER_REGISTRY.get(job.solver)
        if sspec.multi_rhs:
            raise ValueError(
                f"solver {job.solver!r} is a multi-RHS (batched) solver; "
                f"vector jobs name the single-RHS solver — batching is the "
                f"coalescer's job")
        if job.solver not in LOCKSTEP_SOLVERS:
            raise ValueError(
                f"vector jobs support the gang-schedulable solvers "
                f"{sorted(LOCKSTEP_SOLVERS)}, got {job.solver!r}")
        ensure_variant_platforms((job.platform,))
        pspec = PLATFORM_REGISTRY.get(job.platform)
        if pspec.operator is None:
            raise ValueError(
                f"platform {job.platform!r} reuses {pspec.results_from!r}'s "
                f"results and cannot solve vector jobs")
        crit = (job.criterion if job.criterion is not None
                else api_config.active().effective_criterion)
        return self._vector.submit(job.batch_key(crit), job)

    # -- batch runners ---------------------------------------------------

    def _run_vector_batch(self, key: str,
                          jobs: List[VectorJob]) -> List[Dict[str, Any]]:
        from repro.experiments.common import platform_operator

        lead = jobs[0]  # the batch key pins (sid, scale, solver, platform,
        #                 criterion) across the whole batch
        crit = (lead.criterion if lead.criterion is not None
                else api_config.active().effective_criterion)
        assets, op = platform_operator(lead.sid, lead.scale, lead.platform,
                                       lead.solver)
        n = int(assets.A.shape[0])
        outs: List[Optional[Dict[str, Any]]] = [None] * len(jobs)
        cols: List[np.ndarray] = []
        col_slots: List[int] = []
        for i, job in enumerate(jobs):
            if job.rhs is None:
                rhs = np.asarray(assets.b, dtype=np.float64)
            else:
                rhs = np.asarray(job.rhs, dtype=np.float64)
            if rhs.shape != (n,):
                # A malformed RHS fails its own request, not the batch.
                outs[i] = {"error": f"rhs must have length {n} for sid "
                                    f"{job.sid}, got {rhs.shape[0]}"}
                continue
            cols.append(rhs)
            col_slots.append(i)
        if cols:
            stats: Dict[str, Any] = {}
            results = solve_lockstep(op, np.stack(cols, axis=1),
                                     solver=lead.solver, criterion=crit,
                                     batch_stats=stats)
            self.counters.note_matmats(stats["matmats"])
            batch = {"size": len(cols), "matmats": stats["matmats"]}
            for slot, res in zip(col_slots, results):
                outs[slot] = {
                    "sid": jobs[slot].sid,
                    "solver": lead.solver,
                    "platform": lead.platform,
                    "converged": bool(res.converged),
                    "iterations": int(res.iterations),
                    "residual_norm": float(res.residual_norm),
                    "matvecs": int(res.matvecs),
                    "breakdown": res.breakdown,
                    "x": [float(v) for v in res.x],
                    "batch": batch,
                }
        return outs  # type: ignore[return-value]

    def _run_engine_batch(self, key: str,
                          jobs: List[RunRequest]) -> List[Dict[str, Any]]:
        from repro.api.platforms import DEFAULT_PLATFORMS
        from repro.experiments import ledger
        from repro.experiments.common import _execute_requests, _suite_workers

        uniq: Dict[str, RunRequest] = {}
        for req in jobs:
            uniq.setdefault(req.key(), req)
        requests = list(uniq.values())
        cfg = api_config.active()
        workers = _suite_workers(len(requests))
        # One engine batch at a time: the persistent process pool is a
        # process-wide singleton and concurrent schedulers must not share
        # it mid-rebuild.
        with self._engine_lock:
            # On the process executor, never fall back to inline
            # execution (even for a one-request batch): a crashing solve
            # must take down a pool worker, not the daemon.
            results, failures, stats = _execute_requests(
                requests, workers, cfg.executor, on_error="collect",
                serial_fallback=cfg.executor != "process")
        with self.counters._lock:
            for name, value in stats.to_dict().items():
                self._engine_totals[name] = (
                    self._engine_totals.get(name, 0) + value)
        # One ledger record per engine batch — the service-side analogue
        # of a run_suite record, with the coalescing shape attached.
        ledger.record_run(
            "service",
            spec={"type": "ServiceBatch", "version": SERVICE_VERSION,
                  "requests": [req.to_dict() for req in requests]},
            scale=None, criterion=cfg.effective_criterion,
            runs=list(results.values()), failures=failures, stats=stats,
            platforms=[p for req in requests
                       for p in (req.platforms or DEFAULT_PLATFORMS)],
            solvers=[req.solver for req in requests],
            extra={"service": {"batch_jobs": len(jobs),
                               "unique_requests": len(requests),
                               "coalesced": len(jobs) > len(requests)}})
        by_failure = {f.key: f for f in failures}
        outs = []
        for req in jobs:
            k = req.key()
            run = results.get(k)
            if run is not None:
                outs.append({"run": run.to_dict(), "failure": None})
            else:
                failure = by_failure.get(k)
                outs.append({
                    "run": None,
                    "failure": (failure.to_dict() if failure is not None
                                else {"key": k, "phase": "solve",
                                      "error_type": "Unknown",
                                      "message": "request produced neither "
                                                 "a run nor a failure",
                                      "attempts": 0, "sid": req.sid,
                                      "solver": req.solver}),
                })
        return outs

    # -- introspection and the store protocol ----------------------------

    def stats(self) -> Dict[str, Any]:
        from repro.experiments import ledger, store
        from repro.service import remote_store

        return {
            "type": "ServiceStats",
            "version": SERVICE_VERSION,
            "pid": os.getpid(),
            "coalesce": {
                "enabled": self._cfg.service_coalesce,
                "window_s": self._cfg.service_batch_window,
                "max_batch": self._cfg.service_batch_max,
            },
            "service": self.counters.to_dict(),
            "engine": dict(self._engine_totals),
            "ledger": ledger.ledger_stats(),
            "store": store.counters(),
            "remote_store": remote_store.counters(),
        }

    def store_get(self, sid: int, scale: str) -> Optional[bytes]:
        """Frame the local entry for the wire; ``None`` = miss (404)."""
        from repro.experiments import store

        self.counters.note_store_request()
        root = store.store_root()
        if root is None:
            raise LookupError("no asset store configured on this daemon")
        path = store.entry_path(sid, scale, root)
        if not (path / "meta.json").is_file():
            return None
        try:
            return pack_entry(path)
        except WireError:
            return None  # torn local entry: a miss, the client rebuilds

    def store_put(self, sid: int, scale: str, data: bytes) -> None:
        """Verify and install a pushed entry (atomic, races are benign)."""
        from repro.experiments import store

        self.counters.note_store_request()
        root = store.store_root()
        if root is None:
            raise LookupError("no asset store configured on this daemon")
        final = store.entry_path(sid, scale, root)
        if (final / "meta.json").is_file():
            return  # already have it; first writer wins
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=final.name + ".put-",
                                    dir=final.parent))
        try:
            meta = unpack_entry(data, tmp)
            if meta.get("sid") != int(sid) or meta.get("scale") != scale:
                raise WireError("pushed entry is for a different key")
            os.rename(tmp, final)
        except WireError:
            shutil.rmtree(tmp, ignore_errors=True)
            raise
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)  # lost race: fine


class _Handler(BaseHTTPRequestHandler):
    """Per-connection handler; ``service`` is bound by ``SolveService``."""

    service: SolveService
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # the daemon's stdout is for the serve CLI, not per-request noise

    # -- helpers ---------------------------------------------------------

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _store_key(self, path: str) -> Optional[Tuple[int, str]]:
        parts = path.strip("/").split("/")
        if len(parts) != 4 or parts[:2] != ["v1", "store"]:
            return None
        try:
            return int(parts[2]), parts[3]
        except ValueError:
            return None

    # -- verbs -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = urlsplit(self.path).path
        if path == "/v1/health":
            self._send_json(200, {"ok": True, "version": SERVICE_VERSION,
                                  "pid": os.getpid()})
            return
        if path == "/v1/stats":
            self._send_json(200, self.service.stats())
            return
        key = self._store_key(path)
        if key is not None:
            try:
                blob = self.service.store_get(*key)
            except LookupError as exc:
                self._send_json(503, {"error": str(exc)})
                return
            if blob is None:
                self._send_json(404, {"error": "no such store entry"})
            else:
                self._send_bytes(200, blob)
            return
        self._send_json(404, {"error": f"unknown path {path!r}"})

    def do_PUT(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path
        key = self._store_key(path)
        if key is None:
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        data = self._read_body()
        try:
            self.service.store_put(*key, data)
        except LookupError as exc:
            self._send_json(503, {"error": str(exc)})
            return
        except WireError as exc:
            self._send_json(400, {"error": f"bad entry frame: {exc}"})
            return
        self._send_json(200, {"ok": True})

    def do_POST(self) -> None:  # noqa: N802
        path = urlsplit(self.path).path
        if path == "/v1/shutdown":
            self._send_json(200, {"ok": True})
            # shutdown() must not run on a handler thread joined by the
            # serve loop's own machinery mid-request: hand it off.
            threading.Thread(target=self.service.shutdown,
                             daemon=True).start()
            return
        if path != "/v1/solve":
            self._send_json(404, {"error": f"unknown path {path!r}"})
            return
        started = time.monotonic()
        try:
            payload = json.loads(self._read_body().decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_json(400, {"error": f"malformed JSON body: {exc}"})
            return
        kind = payload.get("type") if isinstance(payload, dict) else None
        try:
            if kind == "RunRequest":
                request = RunRequest.from_dict(payload)
                out = self.service.submit_request(request).result()
                response = {"type": "SolveResponse",
                            "version": SERVICE_VERSION,
                            "request": request.to_dict(), **out}
            elif kind == "VectorJob":
                job = VectorJob.from_dict(payload)
                out = self.service.submit_vector(job).result()
                if "error" in out:
                    response = {"type": "SolveResponse",
                                "version": SERVICE_VERSION,
                                "result": None, "error": out["error"]}
                else:
                    response = {"type": "SolveResponse",
                                "version": SERVICE_VERSION,
                                "result": out, "error": None}
            else:
                self._send_json(400, {
                    "error": f"solve payloads must be tagged "
                             f"'RunRequest' or 'VectorJob', got {kind!r}"})
                return
        except (KeyError, ValueError, TypeError) as exc:
            self._send_json(400, {"error": f"{type(exc).__name__}: {exc}"})
            return
        except Exception as exc:  # a batch blew up: structured 500
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        self.service.counters.note_latency(time.monotonic() - started)
        self._send_json(200, response)
