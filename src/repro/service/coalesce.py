"""Request coalescing: bounded-window batching with per-request demux.

The economics the paper is built on — expensive one-time setup amortised
across solves — only pay off for a service if concurrent tenants hitting
the *same* operator actually share its applications.  The
:class:`Coalescer` implements that: jobs enter with a batch key, same-key
jobs arriving within the batch window (or until the batch hits its max
size, whichever is first) are handed to the runner as **one** batch, and
each submitter gets exactly its own result back through a future.  Jobs
with different keys never share a batch.

Ordering guarantees: within a batch, results demux positionally — job *i*
of the batch receives result *i*; across batches, dispatch is
first-deadline-first (a batch never waits on a later one's window).  The
runner is called on a dedicated thread per batch, so a slow batch does not
stall dispatching of unrelated keys.

:class:`ServiceCounters` is the daemon's shared metrics object (requests,
batches, batch sizes, queue depth, per-request latency), surfaced by
``GET /v1/stats``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

__all__ = ["Coalescer", "ServiceCounters", "latency_percentile"]


def latency_percentile(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples`` (0.0 when empty).

    Deliberately dependency-free (the service layer is stdlib-only) and
    shared by the stats endpoint and the service benchmarks, so both
    report the same definition of p50/p95.
    """
    values = sorted(samples)
    if not values:
        return 0.0
    if not 0 < q <= 100:
        raise ValueError(f"percentile must be in (0, 100], got {q!r}")
    rank = max(1, int(-(-len(values) * q // 100)))  # ceil without math
    return float(values[rank - 1])


class ServiceCounters:
    """Thread-safe service metrics; ``to_dict`` is the stats-JSON shape."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.vector_jobs = 0
        self.engine_requests = 0
        self.batches = 0
        self.coalesced_batches = 0
        self.batch_columns = 0
        self.max_batch_size = 0
        self.batch_matmats = 0
        self.engine_batches = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.latency_count = 0
        self.latency_total_s = 0.0
        self.latency_max_s = 0.0
        # A bounded reservoir of the most recent per-request latencies:
        # enough for stable p50/p95 over recent traffic, flat memory for
        # a long-lived daemon.
        self._latencies: "deque[float]" = deque(maxlen=4096)
        self.store_requests = 0

    def note_enqueued(self, kind: str) -> None:
        with self._lock:
            self.requests += 1
            if kind == "vector":
                self.vector_jobs += 1
            else:
                self.engine_requests += 1
            self.queue_depth += 1
            self.max_queue_depth = max(self.max_queue_depth,
                                       self.queue_depth)

    def note_batch(self, kind: str, size: int) -> None:
        with self._lock:
            self.queue_depth -= size
            if kind == "vector":
                self.batches += 1
                self.batch_columns += size
                self.max_batch_size = max(self.max_batch_size, size)
                if size >= 2:
                    self.coalesced_batches += 1
            else:
                self.engine_batches += 1

    def note_matmats(self, n: int) -> None:
        with self._lock:
            self.batch_matmats += n

    def note_latency(self, seconds: float) -> None:
        with self._lock:
            self.latency_count += 1
            self.latency_total_s += seconds
            self.latency_max_s = max(self.latency_max_s, seconds)
            self._latencies.append(seconds)

    def note_store_request(self) -> None:
        with self._lock:
            self.store_requests += 1

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests,
                "vector_jobs": self.vector_jobs,
                "engine_requests": self.engine_requests,
                "batches": self.batches,
                "coalesced_batches": self.coalesced_batches,
                "batch_columns": self.batch_columns,
                "max_batch_size": self.max_batch_size,
                "batch_matmats": self.batch_matmats,
                "engine_batches": self.engine_batches,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "store_requests": self.store_requests,
                "latency": {
                    "count": self.latency_count,
                    "total_s": round(self.latency_total_s, 6),
                    "max_s": round(self.latency_max_s, 6),
                    "p50_s": round(latency_percentile(self._latencies, 50), 6),
                    "p95_s": round(latency_percentile(self._latencies, 95), 6),
                },
            }


@dataclass
class _Group:
    deadline: float
    items: List[Tuple[Any, Future]] = field(default_factory=list)


class Coalescer:
    """Group same-key jobs into batches; demux results to per-job futures.

    ``runner(key, jobs)`` executes one batch and returns one result per
    job, in job order; a raised exception fails every future of the batch.
    ``window`` is the seconds a batch waits after its *first* job before
    dispatching (0 = the next dispatcher pass); a batch reaching
    ``max_batch`` jobs dispatches immediately.  ``coalesce=False`` turns
    every job into its own immediate batch — the measurement baseline.
    """

    def __init__(self, runner: Callable[[str, List[Any]], List[Any]],
                 window: float = 0.05, max_batch: int = 8,
                 coalesce: bool = True,
                 counters: ServiceCounters = None,
                 kind: str = "vector") -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        self._runner = runner
        self._window = max(0.0, float(window))
        self._max = int(max_batch)
        self._coalesce = bool(coalesce) and self._max > 1
        self._counters = counters
        self._kind = kind
        self._cond = threading.Condition()
        self._groups: "OrderedDict[str, _Group]" = OrderedDict()
        self._batch_threads: List[threading.Thread] = []
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name=f"coalesce-{kind}", daemon=True)
        self._dispatcher.start()

    def submit(self, key: str, job: Any) -> Future:
        """Enqueue one job under ``key``; resolve via the returned future."""
        fut: Future = Future()
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            if self._counters is not None:
                self._counters.note_enqueued(self._kind)
            if not self._coalesce:
                self._launch(key, [(job, fut)])
                return fut
            group = self._groups.get(key)
            if group is None:
                group = self._groups[key] = _Group(
                    deadline=time.monotonic() + self._window)
                self._cond.notify_all()  # dispatcher: new earliest deadline
            group.items.append((job, fut))
            if len(group.items) >= self._max:
                del self._groups[key]
                self._launch(key, group.items)
        return fut

    def close(self) -> None:
        """Flush every pending batch, run them, and stop the dispatcher."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._dispatcher.join()
        while True:
            with self._cond:
                threads, self._batch_threads = self._batch_threads, []
            if not threads:
                return
            for t in threads:
                t.join()

    # -- internal --------------------------------------------------------

    def _launch(self, key: str, items: List[Tuple[Any, Future]]) -> None:
        # Caller holds the lock.
        if self._counters is not None:
            self._counters.note_batch(self._kind, len(items))
        t = threading.Thread(target=self._run_batch, args=(key, items),
                             name=f"batch-{self._kind}", daemon=True)
        # Prune finished batch threads so a long-lived daemon stays flat.
        self._batch_threads = [bt for bt in self._batch_threads
                               if bt.is_alive()]
        self._batch_threads.append(t)
        t.start()

    def _run_batch(self, key: str, items: List[Tuple[Any, Future]]) -> None:
        jobs = [job for job, _ in items]
        try:
            outs = self._runner(key, jobs)
            if len(outs) != len(items):
                raise RuntimeError(
                    f"batch runner returned {len(outs)} results for "
                    f"{len(items)} jobs")
        except BaseException as exc:
            for _, fut in items:
                fut.set_exception(exc)
            return
        for (_, fut), out in zip(items, outs):
            fut.set_result(out)

    def _dispatch_loop(self) -> None:
        with self._cond:
            while True:
                now = time.monotonic()
                due = [k for k, g in self._groups.items()
                       if self._closed or g.deadline <= now]
                for k in due:
                    self._launch(k, self._groups.pop(k).items)
                if self._closed:
                    return
                timeout = None
                if self._groups:
                    timeout = max(0.0, min(
                        g.deadline for g in self._groups.values()) - now)
                self._cond.wait(timeout)
