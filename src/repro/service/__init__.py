"""Solve-as-a-service: a zero-dependency daemon over the run engine.

The subsystem turns the existing declarative job objects into a wire
surface (stdlib ``http.server``/``http.client`` only — no new deps):

- :class:`~repro.service.daemon.SolveService` — the long-lived daemon.
  ``POST /v1/solve`` accepts a :class:`~repro.api.specs.RunRequest` payload
  (scheduled onto the persistent process pool through the graph scheduler,
  inheriting retries/timeouts/pool recovery/dependency-skip) or a
  :class:`~repro.service.jobs.VectorJob` (a single right-hand side, the
  many-users fast path).  ``GET /v1/stats`` surfaces the service counters;
  ``GET``/``PUT /v1/store/<sid>/<scale>`` is the remote asset-store
  protocol.
- :class:`~repro.service.coalesce.Coalescer` — groups concurrent same-key
  vector jobs into one lockstep ``matmat`` batch
  (:func:`~repro.solvers.lockstep.solve_lockstep`), bounded by the batch
  window and max batch size, with per-request demux and results
  bit-identical to the per-request serial path.
- :mod:`~repro.service.wire` — CRC-checked framing of v2 store entries for
  hosts that don't share a filesystem.
- :class:`~repro.service.client.ServiceClient` — the client half, reusing
  the ``RunConfig`` retry/backoff/timeout knobs.

Start a daemon with ``python -m repro.experiments serve``; point clients at
it with ``solve --remote host:port`` or ``REPRO_SERVICE_STORE``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.coalesce import Coalescer, ServiceCounters
from repro.service.daemon import SolveService
from repro.service.jobs import VectorJob
from repro.service.wire import WireError, pack_entry, unpack_entry

__all__ = [
    "Coalescer",
    "ServiceClient",
    "ServiceCounters",
    "ServiceError",
    "SolveService",
    "VectorJob",
    "WireError",
    "pack_entry",
    "unpack_entry",
]
