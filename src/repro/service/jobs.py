"""The service's single-RHS job object — the coalescable unit of work.

A :class:`VectorJob` is what a tenant actually sends when they have *one*
right-hand side for a suite matrix: far lighter than a full
:class:`~repro.api.specs.RunRequest` (no platform grid, no timing model —
just "solve ``A x = b`` on this platform and give me ``x``").  Concurrent
jobs agreeing on :meth:`VectorJob.batch_key` — ``(sid, scale, solver,
platform, criterion)`` — are what the coalescer merges into one lockstep
``matmat`` batch.

Like the other job objects it is a frozen dataclass of primitives with a
lossless JSON round-trip (JSON serialises float64 via ``repr``, which
round-trips bit-exactly), so the RHS a client sends is the RHS the solver
sees.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Dict, Optional, Tuple

from repro.api.config import (
    check_criterion as _check_criterion,
    parse_payload,
    tag_payload,
)
from repro.api.specs import _check_scale
from repro.solvers.base import ConvergenceCriterion

__all__ = ["VectorJob"]

_JSON_TYPE = "VectorJob"
_JSON_VERSION = 1


@dataclass(frozen=True)
class VectorJob:
    """One right-hand side against one platform of one suite matrix.

    ``rhs`` of ``None`` means the suite's paper RHS (``A @ 1``) — useful
    for smoke traffic; real tenants send their own vector.  ``criterion``
    of ``None`` defers to the daemon's active config, and the *resolved*
    criterion is part of the batch key, so jobs only coalesce when they
    genuinely stop under the same rule.
    """

    sid: int
    scale: str
    solver: str = "cg"
    platform: str = "refloat"
    criterion: Optional[ConvergenceCriterion] = None
    rhs: Optional[Tuple[float, ...]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "sid", int(self.sid))
        _check_scale(self.scale, required=True)
        if not self.solver:
            raise ValueError("solver must be non-empty")
        if not self.platform:
            raise ValueError("platform must be non-empty")
        object.__setattr__(self, "criterion",
                           _check_criterion(self.criterion))
        if self.rhs is not None:
            object.__setattr__(self, "rhs",
                               tuple(float(v) for v in self.rhs))
            if not self.rhs:
                raise ValueError("rhs must be non-empty (or None for the "
                                 "suite RHS)")

    def replace(self, **changes: Any) -> "VectorJob":
        return replace(self, **changes)

    def batch_key(self, criterion: ConvergenceCriterion) -> str:
        """The coalescing identity: jobs with equal keys share one batch.

        ``criterion`` is the job's criterion *resolved* against the
        daemon's config — two jobs deferring to the default and one
        spelling it out all land in the same batch.
        """
        return json.dumps({"sid": self.sid, "scale": self.scale,
                           "solver": self.solver, "platform": self.platform,
                           "criterion": asdict(criterion)},
                          sort_keys=True)

    def to_dict(self) -> Dict[str, Any]:
        return tag_payload(asdict(self), _JSON_TYPE, _JSON_VERSION)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "VectorJob":
        return cls(**parse_payload(data, _JSON_TYPE, _JSON_VERSION))

    @classmethod
    def from_json(cls, text: str) -> "VectorJob":
        return cls.from_dict(json.loads(text))
