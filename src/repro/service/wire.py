"""CRC-checked wire framing for v2 asset-store entries.

One entry travels as a single self-describing blob::

    b"RPRS1\\n"                     magic + framing version
    8-byte big-endian header length
    header JSON                     {"type", "version", "meta", "files"}
    concatenated raw file bytes     in header order

``meta`` is the entry's ``meta.json`` dict verbatim (same versioned v2 BSR
layout — the receiver's ordinary :func:`repro.experiments.store.load_entry`
validation applies unchanged after unpack); ``files`` lists each ``.npy``
payload with its byte length and a CRC32 computed over the bytes actually
framed.  :func:`unpack_entry` verifies the magic, lengths and every CRC —
on the array files *twice*, against the wire header and against the meta's
own per-array checksums — before anything is written, so a truncated or
tampered payload degrades to a named :class:`WireError` (the remote-store
caller treats it as a miss and rebuilds), never a corrupt install and never
a crash.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Any, Dict

__all__ = ["WireError", "pack_entry", "unpack_entry"]

MAGIC = b"RPRS1\n"
_WIRE_TYPE = "StoreEntryWire"
_WIRE_VERSION = 1


class WireError(Exception):
    """The payload is not a valid store-entry frame (truncated, tampered,
    or version-skewed).  Always a miss, never a crash."""


def pack_entry(path: Path) -> bytes:
    """Frame the published store entry at ``path`` for the wire.

    Reads ``meta.json`` plus every array file it names; raises
    :class:`WireError` if the on-disk entry is incomplete (a torn entry
    must not be replicated).
    """
    path = Path(path)
    try:
        with open(path / "meta.json") as fh:
            meta = json.load(fh)
        names = sorted(meta["arrays"])
    except (OSError, ValueError, TypeError, KeyError) as exc:
        raise WireError(f"unreadable entry at {path}: {exc}") from None
    files = []
    blobs = []
    for name in names:
        try:
            blob = (path / f"{name}.npy").read_bytes()
        except OSError as exc:
            raise WireError(
                f"unreadable array {name!r} in {path}: {exc}") from None
        files.append({"name": name, "nbytes": len(blob),
                      "crc32": zlib.crc32(blob)})
        blobs.append(blob)
    header = json.dumps({"type": _WIRE_TYPE, "version": _WIRE_VERSION,
                         "meta": meta, "files": files},
                        sort_keys=True).encode("utf-8")
    return b"".join([MAGIC, len(header).to_bytes(8, "big"), header] + blobs)


def unpack_entry(data: bytes, dest: Path) -> Dict[str, Any]:
    """Verify a framed entry and write its files into directory ``dest``.

    ``dest`` should be a private temporary directory — the caller publishes
    it atomically (``os.rename``) after this returns, exactly like a local
    :func:`~repro.experiments.store.save_entry`.  Returns the entry's meta
    dict.  Raises :class:`WireError` on any structural or checksum problem
    *before* writing a single file.
    """
    base = len(MAGIC) + 8
    if len(data) < base or not data.startswith(MAGIC):
        raise WireError("not a store-entry frame (bad magic)")
    header_len = int.from_bytes(data[len(MAGIC):base], "big")
    if len(data) < base + header_len:
        raise WireError("truncated frame header")
    try:
        header = json.loads(data[base:base + header_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"malformed frame header: {exc}") from None
    try:
        if (header["type"] != _WIRE_TYPE
                or header["version"] != _WIRE_VERSION):
            raise WireError("frame type/version mismatch")
        meta = header["meta"]
        files = header["files"]
        meta_crcs = {name: spec["crc32"]
                     for name, spec in meta["arrays"].items()}
        if sorted(meta_crcs) != sorted(f["name"] for f in files):
            raise WireError("frame file list disagrees with meta arrays")
        offset = base + header_len
        blobs = {}
        for spec in files:
            name, nbytes = spec["name"], int(spec["nbytes"])
            blob = data[offset:offset + nbytes]
            offset += nbytes
            if len(blob) != nbytes:
                raise WireError(f"truncated payload for array {name!r}")
            crc = zlib.crc32(blob)
            if crc != spec["crc32"]:
                raise WireError(f"wire checksum mismatch in {name!r}")
            if crc != meta_crcs[name]:
                raise WireError(f"meta checksum mismatch in {name!r}")
            blobs[name] = blob
        if offset != len(data):
            raise WireError(f"{len(data) - offset} trailing bytes in frame")
    except WireError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed frame: {exc}") from None
    dest = Path(dest)
    dest.mkdir(parents=True, exist_ok=True)
    for name, blob in blobs.items():
        (dest / f"{name}.npy").write_bytes(blob)
    with open(dest / "meta.json", "w") as fh:
        json.dump(meta, fh, indent=1, sort_keys=True)
    return meta
