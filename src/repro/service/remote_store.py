"""Client half of the remote store protocol: fetch/publish over the wire.

Worker hosts that don't share a filesystem with the fleet point
``REPRO_SERVICE_STORE`` at a solve-service daemon; their *local* store root
(``REPRO_ASSET_STORE``) becomes a per-host cache in front of it.  On a
local miss, :func:`fetch_entry` GETs the CRC-framed entry
(:mod:`repro.service.wire`), verifies it, and installs it atomically into
the local root exactly like a local :func:`~repro.experiments.store.
save_entry` publish; freshly built entries are pushed back with
:func:`publish_entry` so the next cold host fetches instead of rebuilding.

Failure policy mirrors the local store's transient-error handling: *every*
network, HTTP, framing or filesystem problem degrades to ``False`` — a
plain miss, after which the caller rebuilds locally — never an exception
into the solve path.  The per-process counters record what happened.
"""

from __future__ import annotations

import http.client
import os
import shutil
import tempfile
import threading
import urllib.parse
from pathlib import Path
from typing import Dict, Tuple

from repro.service.wire import WireError, pack_entry, unpack_entry

__all__ = ["DEFAULT_TIMEOUT", "counters", "fetch_entry", "publish_entry",
           "reset_counters"]

#: Socket timeout for store transfers, seconds.  Deliberately generous —
#: entries are tens of MB at paper scale — but finite: a hung daemon must
#: degrade to a local rebuild, not a stuck worker.
DEFAULT_TIMEOUT = 30.0

_COUNTER_LOCK = threading.Lock()


def _reset_counter_dict() -> Dict[str, int]:
    return {"fetches": 0, "fetch_hits": 0, "fetch_misses": 0,
            "fetch_errors": 0, "publishes": 0, "publish_errors": 0}


_COUNTERS: Dict[str, int] = _reset_counter_dict()


def _bump(name: str) -> None:
    with _COUNTER_LOCK:
        _COUNTERS[name] += 1


def counters() -> Dict[str, int]:
    """Snapshot of the per-process remote-store counters."""
    with _COUNTER_LOCK:
        return dict(_COUNTERS)


def reset_counters() -> None:
    global _COUNTERS
    with _COUNTER_LOCK:
        _COUNTERS = _reset_counter_dict()


def _connect(base_url: str, timeout: float,
             ) -> Tuple[http.client.HTTPConnection, str]:
    parts = urllib.parse.urlsplit(base_url)
    if parts.scheme == "https":
        conn: http.client.HTTPConnection = http.client.HTTPSConnection(
            parts.hostname, parts.port or 443, timeout=timeout)
    else:
        conn = http.client.HTTPConnection(parts.hostname, parts.port or 80,
                                          timeout=timeout)
    return conn, parts.path.rstrip("/")


def fetch_entry(base_url: str, sid: int, scale: str, root: Path,
                timeout: float = DEFAULT_TIMEOUT) -> bool:
    """Fetch ``(sid, scale)`` from the remote store into local ``root``.

    Returns ``True`` when the entry is installed (or a concurrent fetch
    won the publish race — the entry is there either way), ``False`` on
    remote miss or any error.  Never raises.
    """
    from repro.experiments.store import entry_path

    _bump("fetches")
    conn = None
    try:
        conn, prefix = _connect(base_url, timeout)
        conn.request("GET", f"{prefix}/v1/store/{int(sid)}/{scale}")
        resp = conn.getresponse()
        data = resp.read()
        status = resp.status
    except (OSError, http.client.HTTPException, ValueError):
        _bump("fetch_errors")
        return False
    finally:
        if conn is not None:
            conn.close()
    if status == 404:
        _bump("fetch_misses")
        return False
    if status != 200:
        _bump("fetch_errors")
        return False
    final = entry_path(sid, scale, Path(root))
    tmp = None
    try:
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(prefix=final.name + ".fetch-",
                                    dir=final.parent))
        meta = unpack_entry(data, tmp)
        if meta.get("sid") != int(sid) or meta.get("scale") != scale:
            raise WireError("fetched entry is for a different key")
        os.rename(tmp, final)
    except WireError:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
        _bump("fetch_errors")
        return False
    except OSError:
        # Lost an install race, or local disk trouble: either way the
        # caller re-checks the local entry next.
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)
        if (final / "meta.json").is_file():
            _bump("fetch_hits")
            return True
        _bump("fetch_errors")
        return False
    _bump("fetch_hits")
    return True


def publish_entry(base_url: str, sid: int, scale: str, path: Path,
                  timeout: float = DEFAULT_TIMEOUT) -> bool:
    """PUT the local entry directory at ``path`` to the remote store.

    Best-effort: ``True`` on a 2xx response, ``False`` on anything else.
    Never raises — publishing is an optimisation for the *next* host, and
    this host's solve must proceed regardless.
    """
    _bump("publishes")
    try:
        payload = pack_entry(Path(path))
    except WireError:
        _bump("publish_errors")
        return False
    conn = None
    try:
        conn, prefix = _connect(base_url, timeout)
        conn.request("PUT", f"{prefix}/v1/store/{int(sid)}/{scale}",
                     body=payload,
                     headers={"Content-Type": "application/octet-stream"})
        resp = conn.getresponse()
        resp.read()
        ok = 200 <= resp.status < 300
    except (OSError, http.client.HTTPException, ValueError):
        _bump("publish_errors")
        return False
    finally:
        if conn is not None:
            conn.close()
    if not ok:
        _bump("publish_errors")
    return ok
