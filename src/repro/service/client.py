"""The client half of the solve service (stdlib ``http.client`` only).

:class:`ServiceClient` speaks the daemon's JSON wire protocol and reuses
the :class:`~repro.api.config.RunConfig` fault-tolerance knobs: network
errors and 5xx responses retry ``retries`` times with the same
deterministic exponential backoff the run engine uses
(``backoff * 2**(n-1)`` seconds before retry ``n``), under the per-request
``timeout``.  Solve *failures* — the daemon ran the request and it failed —
do not retry here: the daemon's own engine already applied the retry
policy; they surface as :class:`ServiceError` with the structured failure
record attached.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Optional, Tuple

from repro.api import config as api_config
from repro.api.specs import RunRequest
from repro.service.jobs import VectorJob

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """The service could not be reached, or it reported a failure.

    ``failure`` carries the daemon's structured
    :class:`~repro.api.faults.RunFailure` record (as a dict) when the
    request executed and failed; ``status`` the HTTP status when one was
    received.
    """

    def __init__(self, message: str,
                 failure: Optional[Dict[str, Any]] = None,
                 status: Optional[int] = None) -> None:
        super().__init__(message)
        self.failure = failure
        self.status = status


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` or ``http://host:port`` -> ``(host, port)``."""
    text = address.strip()
    if text.startswith(("http://", "https://")):
        text = text.split("://", 1)[1]
    text = text.rstrip("/")
    host, sep, port = text.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ValueError(
            f"service address must look like host:port, got {address!r}")
    return host, int(port)


class ServiceClient:
    """A thin, connection-per-request client for one solve-service daemon."""

    def __init__(self, address: str, timeout: Optional[float] = None,
                 retries: int = 0, backoff: float = 0.0) -> None:
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))

    @classmethod
    def from_config(cls, address: str,
                    config: Optional["api_config.RunConfig"] = None,
                    ) -> "ServiceClient":
        """A client wired to the config's retry/backoff/timeout knobs."""
        cfg = config if config is not None else api_config.active()
        return cls(address, timeout=cfg.request_timeout,
                   retries=cfg.request_retries, backoff=cfg.retry_backoff)

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None,
                 content_type: str = "application/json",
                 ) -> Tuple[int, bytes]:
        attempts = self.retries + 1
        last: Optional[BaseException] = None
        for attempt in range(1, attempts + 1):
            conn = None
            try:
                conn = http.client.HTTPConnection(self.host, self.port,
                                                  timeout=self.timeout)
                headers = {"Content-Type": content_type} if body else {}
                conn.request(method, path, body=body, headers=headers)
                resp = conn.getresponse()
                data = resp.read()
                status = resp.status
            except (OSError, http.client.HTTPException) as exc:
                last = exc
                if attempt < attempts:
                    time.sleep(self.backoff * 2 ** (attempt - 1))
                    continue
                raise ServiceError(
                    f"cannot reach solve service at "
                    f"{self.host}:{self.port}: {exc}") from exc
            finally:
                if conn is not None:
                    conn.close()
            if status >= 500 and attempt < attempts:
                time.sleep(self.backoff * 2 ** (attempt - 1))
                continue
            return status, data
        raise ServiceError(  # pragma: no cover - loop always returns/raises
            f"cannot reach solve service at {self.host}:{self.port}: {last}")

    def _json(self, method: str, path: str,
              payload: Optional[Dict[str, Any]] = None,
              ) -> Tuple[int, Dict[str, Any]]:
        body = (None if payload is None
                else json.dumps(payload, sort_keys=True).encode("utf-8"))
        status, data = self._request(method, path, body)
        try:
            decoded = json.loads(data.decode("utf-8")) if data else {}
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"malformed response from {self.host}:{self.port} "
                f"({status}): {exc}", status=status) from None
        return status, decoded

    # -- API -------------------------------------------------------------

    def solve(self, request: RunRequest) -> Dict[str, Any]:
        """Run one :class:`RunRequest` remotely; returns the run dict.

        The dict is exactly ``MatrixRun.to_dict()`` as the daemon's engine
        produced it (revive with ``MatrixRun.from_dict`` for the accessor
        methods).  A structured engine failure raises :class:`ServiceError`
        with ``failure`` attached.
        """
        status, payload = self._json("POST", "/v1/solve", request.to_dict())
        if status != 200 or payload.get("error"):
            raise ServiceError(
                f"solve failed ({status}): {payload.get('error', payload)}",
                status=status)
        failure = payload.get("failure")
        if failure is not None:
            raise ServiceError(
                f"solve failed [{failure.get('phase')}]: "
                f"{failure.get('error_type')}: {failure.get('message')}",
                failure=failure, status=status)
        return payload["run"]

    def solve_vector(self, job: VectorJob) -> Dict[str, Any]:
        """Solve one right-hand side remotely; returns the result dict
        (``x``, ``converged``, ``iterations``, ``residual_norm``,
        ``matvecs``, ``batch`` — the coalesced batch it rode in)."""
        status, payload = self._json("POST", "/v1/solve", job.to_dict())
        if status != 200 or payload.get("error"):
            raise ServiceError(
                f"vector solve failed ({status}): "
                f"{payload.get('error', payload)}", status=status)
        return payload["result"]

    def stats(self) -> Dict[str, Any]:
        status, payload = self._json("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(f"stats failed ({status})", status=status)
        return payload

    def health(self) -> Dict[str, Any]:
        status, payload = self._json("GET", "/v1/health")
        if status != 200:
            raise ServiceError(f"health failed ({status})", status=status)
        return payload

    def shutdown(self) -> None:
        """Ask the daemon to exit cleanly (it finishes in-flight work)."""
        status, payload = self._json("POST", "/v1/shutdown")
        if status != 200:
            raise ServiceError(f"shutdown failed ({status})", status=status)
