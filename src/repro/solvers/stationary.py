"""Stationary iterations (Jacobi, Richardson) — simple baselines.

These are not evaluated in the paper but complete the iterative-solver
substrate (Code 1 covers them: the correction step is a fixed linear map of
the residual) and serve as cheap smoke tests for the quantised operators.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_initial_guess,
    check_system,
    quiet_fp_errors,
)

__all__ = ["jacobi", "richardson"]


@quiet_fp_errors
def _run_stationary(op, b, correction, crit, x0) -> SolverResult:
    b = check_system(op, b)
    n = b.size
    # Same named-error validation as the Krylov solvers: a wrong-length or
    # non-finite guess fails here, not deep inside the first matvec.
    x0 = check_initial_guess(x0, (n,))
    x = np.zeros(n) if x0 is None else x0
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolverResult(x=np.zeros(n), converged=True, iterations=0,
                            residual_norm=0.0, residual_history=[0.0])
    threshold = crit.threshold(b_norm)
    matvecs = 0
    r = b - op.matvec(x) if np.any(x) else b.copy()
    if np.any(x):
        matvecs += 1
    r_norm = float(np.linalg.norm(r))
    history = [r_norm]
    for k in range(1, crit.max_iterations + 1):
        if r_norm < threshold:
            return SolverResult(x=x, converged=True, iterations=k - 1,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        x = x + correction(r)
        r = b - op.matvec(x)
        matvecs += 1
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if not np.isfinite(r_norm) or r_norm > crit.divergence_factor * history[0]:
            return SolverResult(x=x, converged=False, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="divergence", matvecs=matvecs)
    return SolverResult(x=x, converged=r_norm < threshold,
                        iterations=crit.max_iterations, residual_norm=r_norm,
                        residual_history=history, matvecs=matvecs)


def jacobi(A, b, x0: Optional[np.ndarray] = None,
           criterion: Optional[ConvergenceCriterion] = None,
           damping: float = 1.0) -> SolverResult:
    """Damped Jacobi iteration ``x += damping * D^{-1} r``.

    Requires direct access to the matrix diagonal, so ``A`` must be a sparse
    matrix (or expose ``.A`` like the quantised operators do).
    """
    matrix = A.A if hasattr(A, "A") and sp.issparse(A.A) else A
    diag = sp.csr_matrix(matrix).diagonal()
    if np.any(diag == 0):
        raise ValueError("Jacobi requires a nonzero diagonal")
    inv_diag = damping / diag
    op = as_operator(A)
    crit = criterion or ConvergenceCriterion(max_iterations=5000)
    return _run_stationary(op, b, lambda r: inv_diag * r, crit, x0)


def richardson(A, b, omega: float, x0: Optional[np.ndarray] = None,
               criterion: Optional[ConvergenceCriterion] = None) -> SolverResult:
    """Richardson iteration ``x += omega * r`` (converges for
    0 < omega < 2 / lambda_max on SPD systems)."""
    if omega <= 0:
        raise ValueError(f"omega must be positive, got {omega}")
    op = as_operator(A)
    crit = criterion or ConvergenceCriterion(max_iterations=5000)
    return _run_stationary(op, b, lambda r: omega * r, crit, x0)
