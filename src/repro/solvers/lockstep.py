"""Lockstep gang batching: many single-RHS solves, one ``matmat`` per round.

The service coalescer (:mod:`repro.service`) needs the impossible-sounding
combination the block solvers cannot give it: the *batching economy* of one
operator application per iteration across ``k`` right-hand sides, with
results **bit-identical** to running each request through the plain
single-vector solver on its own.  ``block_cg``'s k-dimensional search space
changes the numerics, so it can never be the transparent fast path.

:func:`solve_lockstep` gets both by construction.  Each column runs the
*unmodified* registered single-vector solver (``cg``/``bicgstab``/...) on
its own worker thread against a proxy operator whose ``matvec`` rendezvous
at a shared gate.  Once every still-active column has submitted its vector,
one :func:`~repro.solvers.base.operator_matmat` over the stacked columns
serves the whole round, and each column receives exactly its output column
back.  Every platform operator's ``matmat`` is pinned bit-identical per
column to its ``matvec`` (see :class:`~repro.solvers.base.MatrixOperator`),
so each column's iterates, iteration count, residual history and breakdown
behaviour are bit-identical to the serial :func:`~repro.solvers.block_cg.
solve_many` path — while the engine sees one contraction per round instead
of ``k``.

Columns are allowed heterogeneous lifetimes: a column that converges,
breaks down, or exits before its first apply simply leaves the gang, and
later rounds batch only the survivors (``bicgstab``'s two applies per
iteration stay in lockstep with themselves the same way).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Union

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_block_system,
    check_initial_guess,
    operator_matmat,
)

__all__ = ["LOCKSTEP_SOLVERS", "solve_lockstep"]

#: Inner single-RHS solvers the gang can drive by name.  The solve
#: service validates vector jobs against this set up front, so an
#: unsupported solver is the submitting request's error, not a batch
#: failure for everyone coalesced with it.
LOCKSTEP_SOLVERS = ("cg", "bicgstab", "gmres")


class _GateAborted(RuntimeError):
    """Internal: the shared operator application failed; unwind the column
    threads so the original error can propagate from the gang call."""


class _LockstepGate:
    """The rendezvous point: collects one vector per active column, applies
    the operator once, and demuxes the output columns."""

    def __init__(self, op, n_cols: int):
        self._op = op
        self._cond = threading.Condition()
        self._active = n_cols
        self._pending: Dict[int, np.ndarray] = {}
        self._outputs: Dict[int, np.ndarray] = {}
        self._round = 0
        self.rounds = 0
        self.round_widths: List[int] = []
        self.error: Optional[BaseException] = None

    def apply(self, col: int, x: np.ndarray) -> np.ndarray:
        with self._cond:
            if self.error is not None:
                raise _GateAborted()
            token = self._round
            self._pending[col] = x
            if len(self._pending) == self._active:
                self._flush()
            else:
                while self._round == token and self.error is None:
                    self._cond.wait()
            if self.error is not None:
                raise _GateAborted()
            return self._outputs.pop(col)

    def leave(self, col: int) -> None:
        """A column's solver returned (or raised): shrink the gang.

        If every remaining active column is already waiting at the gate,
        this departure is what completes the round — flush it.
        """
        with self._cond:
            self._active -= 1
            if (self.error is None and self._pending
                    and len(self._pending) == self._active):
                self._flush()

    def _flush(self) -> None:
        # Caller holds the lock; every other active column is parked in
        # wait(), so doing the batched apply under the lock serialises
        # nothing that could otherwise run.
        cols = sorted(self._pending)
        X = np.stack([self._pending[c] for c in cols], axis=1)
        try:
            Y = operator_matmat(self._op, X)
        except BaseException as exc:  # surface from the gang call itself
            self.error = exc
            self._pending.clear()
            self._cond.notify_all()
            return
        for i, c in enumerate(cols):
            # Contiguous per-column copies: the solver's vector arithmetic
            # must see exactly what a standalone matvec would have returned.
            self._outputs[c] = np.ascontiguousarray(Y[:, i])
        self._pending.clear()
        self.round_widths.append(len(cols))
        self._round += 1
        self.rounds += 1
        self._cond.notify_all()


class _GangColumn:
    """One column's operator proxy: ``matvec`` rendezvous at the gate."""

    def __init__(self, gate: _LockstepGate, col: int, shape: tuple):
        self._gate = gate
        self._col = col
        self.shape = shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self._gate.apply(self._col,
                                np.asarray(x, dtype=np.float64))


def solve_lockstep(
    A,
    B,
    solver: Union[str, Callable[..., SolverResult]] = "cg",
    X0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    batch_stats: Optional[dict] = None,
    **kwargs,
) -> List[SolverResult]:
    """Solve ``A x_j = b_j`` for every column of ``B``, gang-scheduled.

    Parameters
    ----------
    A : sparse matrix or LinearOperator
        The shared operator; built once.  Its ``matmat`` (when present)
        serves each lockstep round in one batched application.
    B : array_like of shape (n, k)
        Right-hand sides.  Unlike :func:`~repro.solvers.block_cg.block_cg`,
        duplicated or correlated columns are perfectly fine — columns never
        mix numerically.
    solver : str or callable
        ``"cg"`` / ``"bicgstab"`` / ``"gmres"``, or any callable with the
        ``solver(A, b, x0=..., criterion=..., **kwargs)`` convention.  Must
        be a *single-vector* solver: each column runs it verbatim.
    X0 : array_like of shape (n, k), optional
        Per-column initial guesses.
    criterion : ConvergenceCriterion, optional
    batch_stats : dict, optional
        When given, updated in place with the batching economy achieved:
        ``{"columns": k, "matmats": rounds, "round_widths": [...]}`` —
        ``matmats`` is the number of batched applications the operator saw
        (serial execution would have paid ``sum(round_widths)`` matvecs).
    **kwargs
        Forwarded to the underlying solver.

    Returns
    -------
    list of SolverResult, one per column of ``B`` (in column order), each
    bit-identical to ``solver(A, B[:, j], ...)`` run on its own.
    """
    op = as_operator(A)
    B = check_block_system(op, B)
    if isinstance(solver, str):
        from repro.solvers.bicgstab import bicgstab
        from repro.solvers.cg import cg
        from repro.solvers.gmres import gmres

        registry = {"cg": cg, "bicgstab": bicgstab, "gmres": gmres}
        if solver not in registry:
            raise KeyError(
                f"solver must be one of {sorted(registry)}, got {solver!r}")
        solver = registry[solver]
    X0 = check_initial_guess(X0, B.shape, name="X0", copy=False)
    k = B.shape[1]
    gate = _LockstepGate(op, k)
    results: List[Optional[SolverResult]] = [None] * k
    errors: List[Optional[BaseException]] = [None] * k

    def column(j: int) -> None:
        proxy = _GangColumn(gate, j, op.shape)
        b = np.ascontiguousarray(B[:, j])
        x0 = None if X0 is None else np.ascontiguousarray(X0[:, j])
        try:
            results[j] = solver(proxy, b, x0=x0, criterion=criterion,
                                **kwargs)
        except BaseException as exc:
            errors[j] = exc
        finally:
            gate.leave(j)

    if k == 1:
        column(0)  # no thread needed: a gang of one still rounds trivially
    else:
        threads = [threading.Thread(target=column, args=(j,),
                                    name=f"lockstep-{j}", daemon=True)
                   for j in range(k)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    if gate.error is not None:
        raise gate.error
    for exc in errors:
        if exc is not None and not isinstance(exc, _GateAborted):
            raise exc
    if batch_stats is not None:
        batch_stats["columns"] = k
        batch_stats["matmats"] = gate.rounds
        batch_stats["round_widths"] = list(gate.round_widths)
    return results  # type: ignore[return-value]
