"""Mixed-precision iterative refinement (extension).

Classic Wilkinson/Moler refinement, recast for quantised accelerators: run an
inner solve on the *quantised* operator (cheap, on the crossbars), compute the
residual with the *exact* operator (the host FPU), and repeat.  This is the
natural systems answer to "what if the quantised solve stalls above the
target residual?" — it restores full-precision attainable accuracy while
keeping most work on the accelerator, and is the paper's implicit fallback
story for extreme bit budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.solvers.base import ConvergenceCriterion, SolverResult, as_operator
from repro.solvers.cg import cg

__all__ = ["RefinementResult", "iterative_refinement"]


@dataclass
class RefinementResult:
    """Outcome of iterative refinement.

    ``inner_iterations`` counts all inner-solver iterations across outer
    steps; ``outer_history`` records the exact residual after each outer
    correction.
    """

    x: np.ndarray
    converged: bool
    outer_iterations: int
    inner_iterations: int
    residual_norm: float
    outer_history: List[float]


def iterative_refinement(
    exact_A,
    inner_A,
    b,
    inner_solver: Callable[..., SolverResult] = cg,
    outer_tol: float = 1e-12,
    inner_tol: float = 1e-6,
    max_outer: int = 20,
    inner_criterion: Optional[ConvergenceCriterion] = None,
) -> RefinementResult:
    """Refine ``exact_A x = b`` using inner solves on ``inner_A``.

    Parameters
    ----------
    exact_A : matrix/operator used for true residuals (FP64).
    inner_A : matrix/operator used inside the correction solves (quantised).
    inner_solver : cg-compatible solver function.
    outer_tol : relative target for the exact residual.
    inner_tol : relative tolerance of each inner solve.
    """
    exact = as_operator(exact_A)
    b = np.asarray(b, dtype=np.float64)
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return RefinementResult(np.zeros(b.size), True, 0, 0, 0.0, [0.0])

    crit = inner_criterion or ConvergenceCriterion(tol=inner_tol, max_iterations=5000)
    x = np.zeros(b.size)
    r = b.copy()
    r_norm = float(np.linalg.norm(r))
    history = [r_norm]
    inner_total = 0
    for outer in range(1, max_outer + 1):
        result = inner_solver(inner_A, r, criterion=crit)
        inner_total += result.iterations
        x += result.x
        r = b - exact.matvec(x)
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if r_norm < outer_tol * b_norm:
            return RefinementResult(x, True, outer, inner_total, r_norm, history)
        if not np.isfinite(r_norm) or (len(history) > 2 and r_norm >= history[-2]):
            # Refinement stalled: quantised correction no longer reduces the
            # exact residual.
            return RefinementResult(x, False, outer, inner_total, r_norm, history)
    return RefinementResult(x, r_norm < outer_tol * b_norm, max_outer,
                            inner_total, r_norm, history)
