"""Preconditioners (extension; cf. the analog-preconditioner line of work [34]).

Each factory returns a callable ``z = M^{-1} r`` suitable for the
``preconditioner`` argument of the Krylov solvers.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

__all__ = ["jacobi_preconditioner", "ssor_preconditioner", "ilu_preconditioner"]


def _matrix_of(A) -> sp.csr_matrix:
    if hasattr(A, "A") and sp.issparse(A.A):
        return sp.csr_matrix(A.A)
    return sp.csr_matrix(A)


def jacobi_preconditioner(A) -> Callable[[np.ndarray], np.ndarray]:
    """Diagonal scaling ``M = diag(A)``."""
    diag = _matrix_of(A).diagonal()
    if np.any(diag == 0):
        raise ValueError("Jacobi preconditioner requires a nonzero diagonal")
    inv = 1.0 / diag
    return lambda r: inv * r


def ssor_preconditioner(A, omega: float = 1.0) -> Callable[[np.ndarray], np.ndarray]:
    """Symmetric SOR: ``M = (D/w + L) (D/w)^{-1} (D/w + U) * w/(2-w)``.

    Valid for SPD matrices and ``0 < omega < 2``.
    """
    if not 0 < omega < 2:
        raise ValueError(f"omega must be in (0, 2), got {omega}")
    M = _matrix_of(A)
    D = sp.diags(M.diagonal())
    L = sp.tril(M, k=-1, format="csr")
    lower = (D / omega + L).tocsc()
    upper = (D / omega + L.T).tocsc()
    dscale = omega / (2.0 - omega) * M.diagonal()

    def apply(r: np.ndarray) -> np.ndarray:
        y = spla.spsolve_triangular(lower, r, lower=True)
        y = dscale * y
        return spla.spsolve_triangular(upper, y, lower=False)

    return apply


def ilu_preconditioner(A, **kwargs) -> Callable[[np.ndarray], np.ndarray]:
    """Incomplete LU via scipy's spilu (drop-tolerance ILU)."""
    M = _matrix_of(A).tocsc()
    ilu = spla.spilu(M, **kwargs)
    return lambda r: ilu.solve(r)
