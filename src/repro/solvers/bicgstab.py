"""Stabilised BiConjugate Gradient (van der Vorst 1992).

Two SpMVs per iteration (the paper: "for BiCGSTAB solver, there are two SpMV
on the whole matrix" per iteration).  Works for general nonsymmetric systems;
the evaluation uses it on the same SPD suite as CG, as the paper does.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_initial_guess,
    check_system,
    quiet_fp_errors,
)

__all__ = ["bicgstab"]


@quiet_fp_errors
def bicgstab(
    A,
    b,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> SolverResult:
    """Solve ``A x = b`` by BiCGSTAB.  See :func:`repro.solvers.cg.cg` for the
    parameter/return conventions (identical)."""
    op = as_operator(A)
    b = check_system(op, b)
    crit = criterion or ConvergenceCriterion()
    n = b.size
    x0 = check_initial_guess(x0, (n,))
    x = np.zeros(n) if x0 is None else x0

    matvecs = 0
    if x0 is None or not np.any(x):
        r = b.copy()
    else:
        r = b - op.matvec(x)
        matvecs += 1
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolverResult(x=np.zeros(n), converged=True, iterations=0,
                            residual_norm=0.0, residual_history=[0.0],
                            matvecs=matvecs)
    threshold = crit.threshold(b_norm)
    r_norm = float(np.linalg.norm(r))
    history = [r_norm]
    if r_norm < threshold:
        return SolverResult(x=x, converged=True, iterations=0,
                            residual_norm=r_norm, residual_history=history,
                            matvecs=matvecs)

    r_hat = r.copy()  # shadow residual
    rho_prev = alpha = omega = 1.0
    v = np.zeros(n)
    p = np.zeros(n)

    def _fail(k: int, why: str) -> SolverResult:
        return SolverResult(x=x, converged=False, iterations=k,
                            residual_norm=r_norm, residual_history=history,
                            breakdown=why, matvecs=matvecs)

    prec = preconditioner or (lambda u: u)

    for k in range(1, crit.max_iterations + 1):
        rho = float(r_hat @ r)
        if not np.isfinite(rho) or rho == 0.0:
            return _fail(k - 1, "rho breakdown")
        beta = (rho / rho_prev) * (alpha / omega)
        p = r + beta * (p - omega * v)
        phat = prec(p)
        if not np.all(np.isfinite(phat)):
            return _fail(k - 1, "non-finite direction")
        v = op.matvec(phat)
        matvecs += 1
        denom = float(r_hat @ v)
        if not np.isfinite(denom) or denom == 0.0:
            return _fail(k - 1, "r_hat'v breakdown")
        alpha = rho / denom
        s = r - alpha * v
        s_norm = float(np.linalg.norm(s))
        if s_norm < threshold:
            # Early half-step convergence.
            x += alpha * phat
            r_norm = s_norm
            history.append(r_norm)
            if callback:
                callback(k, x, r_norm)
            return SolverResult(x=x, converged=True, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        shat = prec(s)
        if not np.all(np.isfinite(shat)):
            return _fail(k - 1, "non-finite half-step")
        t = op.matvec(shat)
        matvecs += 1
        tt = float(t @ t)
        if not np.isfinite(tt) or tt == 0.0:
            return _fail(k - 1, "t't breakdown")
        omega = float(t @ s) / tt
        if not np.isfinite(omega) or omega == 0.0:
            return _fail(k - 1, "omega breakdown")
        x += alpha * phat + omega * shat
        r = s - omega * t
        rho_prev = rho
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if callback:
            callback(k, x, r_norm)
        if r_norm < threshold:
            return SolverResult(x=x, converged=True, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        if not np.isfinite(r_norm) or r_norm > crit.divergence_factor * history[0]:
            return _fail(k, "divergence")

    return SolverResult(x=x, converged=False, iterations=crit.max_iterations,
                        residual_norm=r_norm, residual_history=history,
                        matvecs=matvecs)
