"""Block (multi-RHS) BiCGSTAB: the batched-throughput story for
nonsymmetric systems.

``block_bicgstab`` runs the van der Vorst recurrence for ``k`` right-hand
sides in lockstep: the per-column scalars (``rho``, ``alpha``, ``omega``)
become ``k``-vectors and the two SpMVs per iteration become two batched
operator applications (``matmat``), so crossbar platforms write the
bit-sliced operand program twice per iteration *total* instead of twice per
column (see :class:`repro.hardware.engine.BlockedEngine.multiply_batch`).
Unlike :func:`repro.solvers.block_cg.block_cg` there is no coupling across
columns — each column follows exactly the single-vector recurrence, so
per-column breakdowns (rho/omega collapse) freeze only the offending
column while the rest keep iterating, and results are tolerance-pinned
against per-column :func:`repro.solvers.bicgstab.bicgstab` (same algorithm,
batched BLAS accumulation — not bit-identical, but converging to the same
tolerance; asserted by the block-solve tests).

Columns are masked, never resized: converged/broken columns are zeroed in
the direction blocks before each apply (quantised platforms must not see
stale or non-finite values) and their entries of ``X`` stop updating, while
the batch width stays ``k`` so the operator's cached conversion plan is
reused unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    as_operator,
    check_block_system,
    check_initial_guess,
    operator_matmat,
    quiet_fp_errors,
)
from repro.solvers.block_cg import BlockSolverResult, _column_norms, solve_many

__all__ = ["block_bicgstab"]


@quiet_fp_errors
def block_bicgstab(
    A,
    B,
    X0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
    fallback: bool = False,
) -> BlockSolverResult:
    """Solve ``A X = B`` (``A`` possibly nonsymmetric) by batched BiCGSTAB.

    Parameters mirror :func:`repro.solvers.block_cg.block_cg`; the
    differences:

    * two batched applies per iteration (``matmats`` grows by 2, matching
      the paper's "two SpMV per iteration" BiCGSTAB accounting);
    * columns are independent — a numerical breakdown (``rho``/``omega``
      collapse, divergence) freezes that column at its last iterate and the
      others continue; ``breakdown`` then names each reason with the
      affected columns;
    * ``fallback=True`` repairs still-unconverged columns with per-column
      single-vector BiCGSTAB via :func:`solve_many`.

    Returns
    -------
    BlockSolverResult
    """
    op = as_operator(A)
    B = check_block_system(op, B)
    crit = criterion or ConvergenceCriterion()
    n, k = B.shape
    X0 = check_initial_guess(X0, (n, k), name="X0")
    X = np.zeros((n, k)) if X0 is None else X0

    matmats = 0
    if X0 is None or not np.any(X):
        R = B.copy()
    else:
        R = B - operator_matmat(op, X)
        matmats += 1
    b_norms = _column_norms(B)
    if not np.any(b_norms):
        zeros = np.zeros(k)
        return BlockSolverResult(X=np.zeros((n, k)), converged=True,
                                 iterations=0, residual_norms=zeros,
                                 converged_mask=np.ones(k, dtype=bool),
                                 residual_history=[zeros], matmats=matmats)
    # A zero column is solved exactly by x_j = 0, whatever its residual says.
    thresholds = np.where(b_norms > 0, crit.threshold(b_norms), np.inf)
    r_norms = _column_norms(R)
    # r_norms is updated in place as columns freeze — snapshot every entry.
    history = [r_norms.copy()]
    converged_mask = r_norms < thresholds
    if bool(converged_mask.all()):
        return BlockSolverResult(X=X, converged=True, iterations=0,
                                 residual_norms=r_norms,
                                 converged_mask=converged_mask,
                                 residual_history=history, matmats=matmats)

    R_hat = R.copy()  # per-column shadow residuals
    rho_prev = np.ones(k)
    alpha = np.ones(k)
    omega = np.ones(k)
    V = np.zeros((n, k))
    P = np.zeros((n, k))
    active = ~converged_mask
    init_norms = r_norms.copy()
    reasons: Dict[str, List[int]] = {}

    def _freeze(mask: np.ndarray, why: str) -> None:
        cols = np.flatnonzero(mask)
        if cols.size:
            reasons.setdefault(why, []).extend(int(c) for c in cols)
            active[cols] = False

    iterations = crit.max_iterations
    for it in range(1, crit.max_iterations + 1):
        # Frozen columns carry stale/non-finite values through the
        # full-width recurrences below; they are masked out of every
        # operator input and never written back, so only active columns'
        # arithmetic matters (matching the scalar solver's exactly).
        rho = np.einsum("ij,ij->j", R_hat, R)
        _freeze(active & (~np.isfinite(rho) | (rho == 0.0)), "rho breakdown")
        beta = (rho / rho_prev) * (alpha / omega)
        P = R + beta * (P - omega * V)
        _freeze(active & ~np.isfinite(P).all(axis=0), "non-finite direction")
        if not active.any():
            iterations = it - 1
            break
        Q = operator_matmat(op, np.where(active, P, 0.0))
        matmats += 1
        act = np.flatnonzero(active)
        V[:, act] = Q[:, act]
        denom = np.einsum("ij,ij->j", R_hat, V)
        _freeze(active & (~np.isfinite(denom) | (denom == 0.0)),
                "r_hat'v breakdown")
        alpha = rho / denom
        S = R - alpha * V
        s_norms = _column_norms(S)
        half = active & (s_norms < thresholds)
        hcols = np.flatnonzero(half)
        if hcols.size:
            # Early half-step convergence: x += alpha p, done.
            X[:, hcols] += alpha[hcols] * P[:, hcols]
            r_norms[hcols] = s_norms[hcols]
            converged_mask[hcols] = True
            active[hcols] = False
        if active.any():
            T = operator_matmat(op, np.where(active, S, 0.0))
            matmats += 1
            tt = np.einsum("ij,ij->j", T, T)
            _freeze(active & (~np.isfinite(tt) | (tt == 0.0)),
                    "t't breakdown")
            omega_new = np.einsum("ij,ij->j", T, S) / tt
            _freeze(active & (~np.isfinite(omega_new) | (omega_new == 0.0)),
                    "omega breakdown")
            act = np.flatnonzero(active)
            omega[act] = omega_new[act]
            X[:, act] += alpha[act] * P[:, act] + omega[act] * S[:, act]
            R[:, act] = S[:, act] - omega[act] * T[:, act]
            rho_prev[act] = rho[act]
            r_norms[act] = _column_norms(R[:, act])
            newly = active & (r_norms < thresholds)
            converged_mask |= newly
            active &= ~newly
            _freeze(active & (~np.isfinite(r_norms)
                              | (r_norms > crit.divergence_factor
                                 * init_norms)),
                    "divergence")
        history.append(r_norms.copy())
        if callback:
            callback(it, X, r_norms)
        if not active.any():
            iterations = it
            break

    breakdown = None
    if reasons:
        breakdown = "; ".join(
            f"{why} (columns {sorted(cols)})"
            for why, cols in reasons.items())

    if fallback and breakdown is not None:
        bad = np.flatnonzero(~converged_mask)
        singles = solve_many(op, B[:, bad], solver="bicgstab",
                             criterion=crit) if bad.size else []
        for idx, res in zip(bad, singles):
            X[:, idx] = res.x
            r_norms[idx] = res.residual_norm
            converged_mask[idx] = res.converged
        breakdown = f"{breakdown} (recovered per-column via solve_many)"

    return BlockSolverResult(
        X=X, converged=bool(converged_mask.all()), iterations=iterations,
        residual_norms=r_norms, converged_mask=converged_mask,
        residual_history=history, breakdown=breakdown, matmats=matmats)
