"""Iterative linear solvers, operator-parameterised (the paper's Code 1)."""

from repro.solvers.base import (
    ConvergenceCriterion,
    LinearOperator,
    MatrixOperator,
    SolverResult,
    as_operator,
    operator_matmat,
)
from repro.solvers.bicgstab import bicgstab
from repro.solvers.block_bicgstab import block_bicgstab
from repro.solvers.block_cg import BlockSolverResult, block_cg, solve_many
from repro.solvers.cg import cg
from repro.solvers.gmres import gmres
from repro.solvers.lockstep import solve_lockstep
from repro.solvers.precond import (
    ilu_preconditioner,
    jacobi_preconditioner,
    ssor_preconditioner,
)
from repro.solvers.refinement import RefinementResult, iterative_refinement
from repro.solvers.stationary import jacobi, richardson

__all__ = [
    "BlockSolverResult",
    "ConvergenceCriterion",
    "LinearOperator",
    "MatrixOperator",
    "SolverResult",
    "as_operator",
    "operator_matmat",
    "bicgstab",
    "block_bicgstab",
    "block_cg",
    "cg",
    "gmres",
    "solve_lockstep",
    "solve_many",
    "ilu_preconditioner",
    "jacobi_preconditioner",
    "ssor_preconditioner",
    "RefinementResult",
    "iterative_refinement",
    "jacobi",
    "richardson",
]
