"""Iterative linear solvers, operator-parameterised (the paper's Code 1)."""

from repro.solvers.base import (
    ConvergenceCriterion,
    LinearOperator,
    MatrixOperator,
    SolverResult,
    as_operator,
)
from repro.solvers.bicgstab import bicgstab
from repro.solvers.cg import cg
from repro.solvers.gmres import gmres
from repro.solvers.precond import (
    ilu_preconditioner,
    jacobi_preconditioner,
    ssor_preconditioner,
)
from repro.solvers.refinement import RefinementResult, iterative_refinement
from repro.solvers.stationary import jacobi, richardson

__all__ = [
    "ConvergenceCriterion",
    "LinearOperator",
    "MatrixOperator",
    "SolverResult",
    "as_operator",
    "bicgstab",
    "cg",
    "gmres",
    "ilu_preconditioner",
    "jacobi_preconditioner",
    "ssor_preconditioner",
    "RefinementResult",
    "iterative_refinement",
    "jacobi",
    "richardson",
]
