"""Block Conjugate Gradient (O'Leary 1980) and a multi-RHS convenience loop.

``block_cg`` solves ``A X = B`` for ``k`` right-hand sides simultaneously:
one batched operator application (``matmat``) per iteration replaces ``k``
independent SpMVs, and the ``k``-dimensional search space usually *also*
cuts the iteration count below the single-vector CG's.  On the crossbar
platforms this is the natural batched workload — the bit-sliced operand
program is written once per iteration and amortised across the whole batch
(see :class:`repro.hardware.engine.BlockedEngine.multiply_batch`), so total
engine contractions drop by roughly the batch width.

All block arithmetic outside the operator application is FP64 (the
accelerator's MAC units); the small ``k x k`` systems are solved by LAPACK.
Rank deficiency across the right-hand sides (e.g. duplicated columns of
``B``) surfaces as a breakdown rather than silent stagnation — deduplicate
or fall back to :func:`solve_many` in that case.

``solve_many`` is the convenience wrapper for operators without a fast batch
path (or for heterogeneous per-column stopping): it loops the existing
single-vector solvers column by column against one shared operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Union

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_block_system,
    check_initial_guess,
    operator_matmat,
    quiet_fp_errors,
)

__all__ = ["BlockSolverResult", "block_cg", "solve_many"]


@dataclass
class BlockSolverResult:
    """Outcome of a block solve of ``A X = B``.

    Attributes
    ----------
    X : ndarray of shape (n, k)
        Final block iterate.
    converged : bool
        Whether *every* column met the convergence criterion.
    iterations : int
        Block iterations executed (each performs one batched apply).
    residual_norms : ndarray of shape (k,)
        Final per-column (recursive) residual 2-norms.
    converged_mask : ndarray of bool, shape (k,)
        Per-column convergence at termination.
    residual_history : list of ndarray
        Per-column ``||r_j||_2`` after every iteration, starting with the
        initial residuals at index 0.
    breakdown : str or None
        Set when the solve stopped on a numerical breakdown (singular block
        Gram matrix, non-finite values) rather than convergence/budget.
    matmats : int
        Batched operator applications performed (= engine contractions).
    """

    X: np.ndarray
    converged: bool
    iterations: int
    residual_norms: np.ndarray
    converged_mask: np.ndarray
    residual_history: List[np.ndarray] = field(default_factory=list)
    breakdown: Optional[str] = None
    matmats: int = 0

    @property
    def not_converged(self) -> bool:
        return not self.converged


def _column_norms(R: np.ndarray) -> np.ndarray:
    return np.sqrt(np.einsum("ij,ij->j", R, R))


@quiet_fp_errors
def block_cg(
    A,
    B,
    X0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
    fallback: bool = False,
) -> BlockSolverResult:
    """Solve SPD ``A X = B`` for all ``k`` columns by block CG.

    Parameters
    ----------
    A : sparse matrix or LinearOperator
        The SpMV platform; its ``matmat`` is used when present, otherwise
        each block apply falls back to ``k`` matvecs (same numerics, no
        batching economy).
    B : array_like of shape (n, k)
        Right-hand sides.  Columns should be linearly independent — and not
        *nearly* dependent either: duplicated, zero, or strongly correlated
        columns rank-deplete the block Gram matrices (columns also converge
        at different rates, depleting the search block mid-solve) and the
        solve terminates with a ``breakdown``.  On breakdown the iterate can
        be far from solved in some columns — check ``converged_mask``, and
        either pass ``fallback=True`` or use :func:`solve_many` yourself.
    X0 : array_like of shape (n, k), optional
        Initial block guess (default: zeros).
    criterion : ConvergenceCriterion
        Stopping rule, applied per column: ``||r_j|| < tol * ||b_j||``
        (relative) for every ``j``, with the shared iteration budget.
    callback : callable, optional
        Called as ``callback(iteration, X, residual_norms)`` per iteration.
    fallback : bool
        When True, a breakdown triggers per-column single-vector CG
        (:func:`solve_many`) on the still-unconverged columns, so the
        returned ``X`` is solved wherever single-vector CG can solve it.
        The ``breakdown`` field keeps the original reason (suffixed with
        the fallback note) and ``matmats`` still counts only the batched
        applies; the fallback's matvecs are the price of the repair.

    Returns
    -------
    BlockSolverResult
    """
    op = as_operator(A)
    B = check_block_system(op, B)
    crit = criterion or ConvergenceCriterion()
    n, k = B.shape
    X0 = check_initial_guess(X0, (n, k), name="X0")
    X = np.zeros((n, k)) if X0 is None else X0

    matmats = 0
    if X0 is None or not np.any(X):
        R = B.copy()
    else:
        R = B - operator_matmat(op, X)
        matmats += 1
    b_norms = _column_norms(B)
    if not np.any(b_norms):
        zeros = np.zeros(k)
        return BlockSolverResult(X=np.zeros((n, k)), converged=True,
                                 iterations=0, residual_norms=zeros,
                                 converged_mask=np.ones(k, dtype=bool),
                                 residual_history=[zeros], matmats=matmats)
    # A zero column is solved exactly by x_j = 0, whatever its residual says.
    thresholds = np.where(b_norms > 0, crit.threshold(b_norms), np.inf)
    r_norms = _column_norms(R)
    history = [r_norms]
    done = r_norms < thresholds
    if bool(done.all()):
        return BlockSolverResult(X=X, converged=True, iterations=0,
                                 residual_norms=r_norms, converged_mask=done,
                                 residual_history=history, matmats=matmats)

    P = R.copy()
    RtR = R.T @ R
    converged = False
    breakdown = None
    iterations = crit.max_iterations

    for it in range(1, crit.max_iterations + 1):
        if not np.all(np.isfinite(P)):
            breakdown, iterations = "non-finite direction block", it - 1
            break
        Q = operator_matmat(op, P)
        matmats += 1
        PtQ = P.T @ Q
        try:
            alpha = np.linalg.solve(PtQ, RtR)
        except np.linalg.LinAlgError:
            breakdown, iterations = "singular P'AP block", it - 1
            break
        if not np.all(np.isfinite(alpha)):
            breakdown, iterations = "P'AP breakdown", it - 1
            break
        X += P @ alpha
        R -= Q @ alpha
        r_norms = _column_norms(R)
        history.append(r_norms)
        if callback:
            callback(it, X, r_norms)
        if bool((r_norms < thresholds).all()):
            converged, iterations = True, it
            break
        if not np.all(np.isfinite(r_norms)) or bool(
                (r_norms > crit.divergence_factor * history[0]).any()):
            breakdown, iterations = "divergence", it
            break
        RtR_new = R.T @ R
        try:
            beta = np.linalg.solve(RtR, RtR_new)
        except np.linalg.LinAlgError:
            breakdown, iterations = "singular R'R block", it
            break
        if not np.all(np.isfinite(beta)):
            breakdown, iterations = "R'R breakdown", it
            break
        RtR = RtR_new
        P = R + P @ beta

    if fallback and breakdown is not None:
        mask = r_norms < thresholds
        bad = np.flatnonzero(~mask)
        singles = solve_many(op, B[:, bad], solver="cg",
                             criterion=crit) if bad.size else []
        r_norms = r_norms.copy()
        for idx, res in zip(bad, singles):
            X[:, idx] = res.x
            r_norms[idx] = res.residual_norm
            mask[idx] = res.converged
        converged = bool(mask.all())
        breakdown = f"{breakdown} (recovered per-column via solve_many)"
        return BlockSolverResult(
            X=X, converged=converged, iterations=iterations,
            residual_norms=r_norms, converged_mask=mask,
            residual_history=history, breakdown=breakdown, matmats=matmats)

    return BlockSolverResult(
        X=X, converged=converged, iterations=iterations,
        residual_norms=r_norms, converged_mask=r_norms < thresholds,
        residual_history=history, breakdown=breakdown, matmats=matmats)


def solve_many(
    A,
    B,
    solver: Union[str, Callable[..., SolverResult]] = "cg",
    X0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    **kwargs,
) -> List[SolverResult]:
    """Solve ``A x_j = b_j`` for every column of ``B`` with a 1-RHS solver.

    The operator is built **once** and shared across columns (so quantised
    platforms pay one partition/quantisation, not ``k``), but the solve loop
    itself is the plain single-vector solver per column — the fallback for
    operators without a fast batch path, and the reference a batched
    :func:`block_cg` is tolerance-pinned against.

    Parameters
    ----------
    A : sparse matrix or LinearOperator
    B : array_like of shape (n, k)
    solver : str or callable
        ``"cg"`` / ``"bicgstab"`` / ``"gmres"``, or any callable with the
        ``solver(A, b, x0=..., criterion=..., **kwargs)`` convention.
    X0 : array_like of shape (n, k), optional
        Per-column initial guesses.
    criterion : ConvergenceCriterion, optional
    **kwargs
        Forwarded to the underlying solver (e.g. ``preconditioner=``).

    Returns
    -------
    list of SolverResult, one per column of ``B`` (in column order).
    """
    op = as_operator(A)
    B = check_block_system(op, B)
    if isinstance(solver, str):
        from repro.solvers.bicgstab import bicgstab
        from repro.solvers.cg import cg
        from repro.solvers.gmres import gmres

        registry = {"cg": cg, "bicgstab": bicgstab, "gmres": gmres}
        if solver not in registry:
            raise KeyError(
                f"solver must be one of {sorted(registry)}, got {solver!r}")
        solver = registry[solver]
    X0 = check_initial_guess(X0, B.shape, name="X0", copy=False)
    results: List[SolverResult] = []
    for j in range(B.shape[1]):
        x0 = None if X0 is None else X0[:, j]
        results.append(solver(op, B[:, j], x0=x0, criterion=criterion,
                              **kwargs))
    return results
