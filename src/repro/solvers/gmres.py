"""Restarted GMRES — extension beyond the paper's CG/BiCGSTAB pair.

The paper restricts its evaluation to the two Krylov solvers of Section II-B;
GMRES(m) is included here because it is the standard choice for nonsymmetric
systems and exercises the same quantised-SpMV operator interface (one SpMV
per inner iteration), making it a natural ablation: ReFloat's per-iteration
error injection interacts differently with a long recurrence.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_initial_guess,
    check_system,
    quiet_fp_errors,
)

__all__ = ["gmres"]


@quiet_fp_errors
def gmres(
    A,
    b,
    x0: Optional[np.ndarray] = None,
    restart: int = 30,
    criterion: Optional[ConvergenceCriterion] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> SolverResult:
    """Solve ``A x = b`` by GMRES with restart length ``restart``.

    Iteration counting: each *inner* step (one SpMV) counts as one iteration,
    so iteration counts are comparable with CG's across operators.

    Convergence is never declared from the Givens-rotation residual estimate
    alone: the estimate only ends an inner cycle, after which the true
    residual ``||b - A x||`` is recomputed — if it drifted back above the
    threshold (loss of orthogonality, or a quantised operator whose matvec is
    not the exact matrix the estimate models), the solve restarts from the
    true residual instead of returning an optimistic ``residual_norm``.
    """
    op = as_operator(A)
    b = check_system(op, b)
    crit = criterion or ConvergenceCriterion()
    if restart < 1:
        raise ValueError(f"restart must be >= 1, got {restart}")
    n = b.size
    x0 = check_initial_guess(x0, (n,))
    x = np.zeros(n) if x0 is None else x0

    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolverResult(x=np.zeros(n), converged=True, iterations=0,
                            residual_norm=0.0, residual_history=[0.0])
    threshold = crit.threshold(b_norm)

    matvecs = 0
    iterations = 0
    if np.any(x):
        r = b - op.matvec(x)
        matvecs += 1
    else:
        r = b.copy()
    r_norm = float(np.linalg.norm(r))
    history = [r_norm]

    while True:
        # Invariant: r_norm here is always a *true* residual norm — the
        # initial one, or the recomputed ``||b - A x||`` after a cycle —
        # so this is the only place convergence may be declared.
        if r_norm < threshold:
            return SolverResult(x=x, converged=True, iterations=iterations,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        if iterations >= crit.max_iterations:
            return SolverResult(x=x, converged=False, iterations=iterations,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        m = min(restart, crit.max_iterations - iterations)
        Q = np.zeros((n, m + 1))
        H = np.zeros((m + 1, m))
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        Q[:, 0] = r / r_norm
        g[0] = r_norm
        cycle_r_norm = r_norm  # true residual of x, which the inner loop
        inner_done = 0         # does not touch until the cycle-end update
        for j in range(m):
            w = op.matvec(Q[:, j])
            matvecs += 1
            if not np.all(np.isfinite(w)):
                # x is still the cycle-start iterate, so its true residual
                # is the cycle-start one — not the mid-cycle estimate.  As
                # in the other breakdown paths, history's last entry is
                # made consistent with the returned residual_norm.
                history[-1] = cycle_r_norm
                return SolverResult(x=x, converged=False, iterations=iterations,
                                    residual_norm=cycle_r_norm,
                                    residual_history=history,
                                    breakdown="non-finite Krylov vector",
                                    matvecs=matvecs)
            # Modified Gram-Schmidt.
            for i in range(j + 1):
                H[i, j] = float(Q[:, i] @ w)
                w -= H[i, j] * Q[:, i]
            H[j + 1, j] = float(np.linalg.norm(w))
            if H[j + 1, j] > 0:
                Q[:, j + 1] = w / H[j + 1, j]
            # Apply accumulated Givens rotations to the new column.
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = float(np.hypot(H[j, j], H[j + 1, j]))
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, H[j + 1, j] / denom
            H[j, j] = cs[j] * H[j, j] + sn[j] * H[j + 1, j]
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            iterations += 1
            inner_done = j + 1
            r_norm = abs(float(g[j + 1]))
            history.append(r_norm)
            if callback:
                callback(iterations, x, r_norm)
            if r_norm < threshold or iterations >= crit.max_iterations:
                break
        # Solve the small triangular system and update x.  The inner loop
        # always completes at least one step (m >= 1), so j >= 1 here.
        j = inner_done
        R = np.triu(H[:j, :j])
        if np.any(np.diagonal(R) == 0.0):
            # Exactly-singular least-squares system (lucky breakdown with
            # a stagnant estimate): the iterate cannot be updated.  The
            # reported norm is still the *true* residual of the current
            # iterate, never the (possibly zero) Givens estimate.
            r_norm = float(np.linalg.norm(b - op.matvec(x)))
            matvecs += 1
            history[-1] = r_norm
            return SolverResult(x=x, converged=False, iterations=iterations,
                                residual_norm=r_norm,
                                residual_history=history,
                                breakdown="singular Hessenberg system",
                                matvecs=matvecs)
        y = np.linalg.solve(R, g[:j])
        x = x + Q[:, :j] @ y
        # True residual: the Givens estimate above is only a cycle-ending
        # heuristic; convergence is re-judged from this at the loop top.
        r = b - op.matvec(x)
        matvecs += 1
        r_norm = float(np.linalg.norm(r))
        history[-1] = r_norm  # replace estimate with the true restart residual
        if not np.isfinite(r_norm) or r_norm > crit.divergence_factor * history[0]:
            return SolverResult(x=x, converged=False, iterations=iterations,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="divergence", matvecs=matvecs)
