"""Solver infrastructure: operator protocol, results, convergence control.

The solvers in this package are written against a minimal operator interface
(``shape`` + ``matvec``) so the same CG/BiCGSTAB code runs in exact FP64, in
ReFloat, in the Feinberg model, or with noise injection — the quantised
platform *is* the operator (Code 1 of the paper runs unchanged; only the SpMV
changes).  All vector arithmetic outside the SpMV is FP64, matching the
accelerator's double-precision MAC units (Fig. 6a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Protocol, runtime_checkable

import numpy as np
import scipy.sparse as sp

__all__ = [
    "LinearOperator",
    "MatrixOperator",
    "SolverResult",
    "ConvergenceCriterion",
    "as_operator",
    "operator_matmat",
    "check_system",
    "check_block_system",
    "check_initial_guess",
    "quiet_fp_errors",
]


def quiet_fp_errors(fn):
    """Run a solver under ``np.errstate(all='ignore')``.

    Divergence on the quantised platforms legitimately drives iterates through
    overflow before the explicit divergence check fires; the solvers detect
    and report non-finite states themselves, so the global warnings are noise.
    """
    import functools

    @functools.wraps(fn)
    def wrapped(*args, **kwargs):
        with np.errstate(over="ignore", invalid="ignore", divide="ignore",
                         under="ignore"):
            return fn(*args, **kwargs)

    return wrapped


@runtime_checkable
class LinearOperator(Protocol):
    """Anything with a shape and a matvec (the platform abstraction)."""

    shape: tuple

    def matvec(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - protocol
        ...


class MatrixOperator:
    """Exact FP64 SpMV backed by a scipy sparse matrix."""

    def __init__(self, A):
        self.A = sp.csr_matrix(A, dtype=np.float64)
        self.shape = self.A.shape

    def matvec(self, x: np.ndarray) -> np.ndarray:
        return self.A @ x

    def matmat(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`matvec`: one SpMM over ``(n, k)`` columns.

        CSR SpMM accumulates every output element over the same index order
        as the matvec kernel, so column ``j`` is bit-identical to
        ``matvec(X[:, j])``.
        """
        return self.A @ np.asarray(X, dtype=np.float64)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatrixOperator(shape={self.shape}, nnz={self.A.nnz})"


def as_operator(A) -> LinearOperator:
    """Coerce a sparse matrix / operator-like object to a LinearOperator."""
    if isinstance(A, LinearOperator) and not sp.issparse(A):
        return A
    return MatrixOperator(A)


def operator_matmat(op: LinearOperator, X: np.ndarray) -> np.ndarray:
    """Apply an operator to ``k`` columns, batched when the operator can.

    Routes through ``op.matmat`` (the fast multi-RHS path of the platform
    operators) when present; any operator exposing only the minimal
    ``matvec`` protocol gets a per-column loop, so block solvers run on
    every platform.
    """
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D (n, k), got shape {X.shape}")
    if X.shape[1] == 0:
        raise ValueError("X must have at least one column")
    mm = getattr(op, "matmat", None)
    if mm is not None:
        return np.asarray(mm(X), dtype=np.float64)
    out = np.empty((op.shape[0], X.shape[1]), dtype=np.float64)
    for j in range(X.shape[1]):
        out[:, j] = op.matvec(X[:, j])
    return out


@dataclass
class SolverResult:
    """Outcome of an iterative solve.

    Attributes
    ----------
    x : ndarray
        Final iterate.
    converged : bool
        Whether the convergence criterion was met.
    iterations : int
        Iterations executed (matching the paper's "#ite": one correction per
        iteration; BiCGSTAB counts one iteration per full two-SpMV step).
    residual_norm : float
        Final (recursive) residual 2-norm.
    residual_history : list of float
        ``||r||_2`` after every iteration, starting with the initial residual
        at index 0 — the Fig. 9 trace.
    breakdown : str or None
        Set when the solve stopped on a numerical breakdown (division by ~0,
        non-finite values) rather than convergence/budget exhaustion.
    matvecs : int
        Number of operator applications performed.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    residual_history: List[float] = field(default_factory=list)
    breakdown: Optional[str] = None
    matvecs: int = 0

    @property
    def not_converged(self) -> bool:
        return not self.converged


@dataclass(frozen=True)
class ConvergenceCriterion:
    """Paper criterion: residual 2-norm below a threshold, or budget hit.

    ``relative=True`` scales the threshold by ``||b||_2`` (scale-invariant;
    see DESIGN.md).  ``divergence_factor`` declares breakdown once the
    residual exceeds that multiple of the initial residual — this is how the
    non-convergent Feinberg runs terminate in bounded time.
    """

    tol: float = 1e-8
    max_iterations: int = 20000
    relative: bool = True
    divergence_factor: float = 1e12

    def threshold(self, b_norm: float) -> float:
        return self.tol * b_norm if self.relative else self.tol


def check_block_system(op: LinearOperator, B) -> np.ndarray:
    """Validate operator/block compatibility; return ``B`` as (n, k) float64."""
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError(f"B must be 2-D (n, k), got shape {B.shape}")
    m, n = op.shape
    if m != n:
        raise ValueError(f"operator must be square, got {op.shape}")
    if B.shape[0] != n:
        raise ValueError(
            f"dimension mismatch: operator {op.shape}, B {B.shape}")
    if B.shape[1] == 0:
        raise ValueError("B must have at least one column")
    if not np.all(np.isfinite(B)):
        raise ValueError("B contains non-finite values")
    return B


def check_initial_guess(x0, shape, name: str = "x0",
                        copy: bool = True) -> Optional[np.ndarray]:
    """Validate an initial guess against the expected shape; ``None`` passes.

    Returns a float64 array — a fresh copy by default, since solvers update
    the iterate in place — or ``None`` when no guess was given.  Callers
    that only *read* the guess (e.g. ``solve_many``, whose per-column
    solvers make their own copies) pass ``copy=False`` to skip the block
    duplication.  A wrong-length, wrongly-shaped or non-finite guess fails
    here with a named error instead of crashing deep inside the first
    matvec with an opaque broadcast message.
    """
    if x0 is None:
        return None
    arr = (np.array(x0, dtype=np.float64) if copy
           else np.asarray(x0, dtype=np.float64))
    expected = tuple(shape)
    if arr.shape != expected:
        raise ValueError(f"{name} must have shape {expected}, got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr


def check_system(op: LinearOperator, b: np.ndarray) -> np.ndarray:
    """Validate operator/vector compatibility; return b as float64 array."""
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise ValueError(f"b must be a vector, got shape {b.shape}")
    m, n = op.shape
    if m != n:
        raise ValueError(f"operator must be square, got {op.shape}")
    if b.size != n:
        raise ValueError(f"dimension mismatch: operator {op.shape}, b {b.size}")
    if not np.all(np.isfinite(b)):
        raise ValueError("b contains non-finite values")
    return b
