"""Conjugate Gradient (Hestenes & Stiefel), operator-parameterised.

Implemented exactly as the paper's Code 1 specialises for CG: one SpMV per
iteration (on the direction vector ``p``), recursive residual update, optional
preconditioner.  All vector arithmetic is FP64; the operator may quantise.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.solvers.base import (
    ConvergenceCriterion,
    SolverResult,
    as_operator,
    check_initial_guess,
    check_system,
    quiet_fp_errors,
)

__all__ = ["cg"]


@quiet_fp_errors
def cg(
    A,
    b,
    x0: Optional[np.ndarray] = None,
    criterion: Optional[ConvergenceCriterion] = None,
    preconditioner: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> SolverResult:
    """Solve SPD ``A x = b`` by (preconditioned) conjugate gradients.

    Parameters
    ----------
    A : sparse matrix or LinearOperator
        The SpMV platform (exact, ReFloat, Feinberg, noisy, ...).
    b : array_like
        Right-hand side.
    x0 : array_like, optional
        Initial guess (paper: the all-zero vector).
    criterion : ConvergenceCriterion
        Stopping rule; defaults to the paper's ``||r|| < 1e-8 ||b||`` with a
        20000-iteration budget.
    preconditioner : callable, optional
        ``z = M^{-1} r`` application.
    callback : callable, optional
        Called as ``callback(iteration, x, residual_norm)`` once per iteration.

    Returns
    -------
    SolverResult
    """
    op = as_operator(A)
    b = check_system(op, b)
    crit = criterion or ConvergenceCriterion()
    n = b.size
    x0 = check_initial_guess(x0, (n,))
    x = np.zeros(n) if x0 is None else x0

    matvecs = 0
    if x0 is None or not np.any(x):
        r = b.copy()
    else:
        r = b - op.matvec(x)
        matvecs += 1
    b_norm = float(np.linalg.norm(b))
    if b_norm == 0.0:
        return SolverResult(x=np.zeros(n), converged=True, iterations=0,
                            residual_norm=0.0, residual_history=[0.0],
                            matvecs=matvecs)
    threshold = crit.threshold(b_norm)
    r_norm = float(np.linalg.norm(r))
    history = [r_norm]
    if r_norm < threshold:
        return SolverResult(x=x, converged=True, iterations=0,
                            residual_norm=r_norm, residual_history=history,
                            matvecs=matvecs)

    z = preconditioner(r) if preconditioner else r
    p = z.copy()
    rho = float(r @ z)

    for k in range(1, crit.max_iterations + 1):
        if not np.all(np.isfinite(p)):
            return SolverResult(x=x, converged=False, iterations=k - 1,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="non-finite direction", matvecs=matvecs)
        q = op.matvec(p)
        matvecs += 1
        pq = float(p @ q)
        if not np.isfinite(pq) or pq == 0.0:
            return SolverResult(x=x, converged=False, iterations=k - 1,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="p'Ap breakdown", matvecs=matvecs)
        alpha = rho / pq
        x += alpha * p
        r -= alpha * q
        r_norm = float(np.linalg.norm(r))
        history.append(r_norm)
        if callback:
            callback(k, x, r_norm)
        if r_norm < threshold:
            return SolverResult(x=x, converged=True, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                matvecs=matvecs)
        if not np.isfinite(r_norm) or r_norm > crit.divergence_factor * history[0]:
            return SolverResult(x=x, converged=False, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="divergence", matvecs=matvecs)
        z = preconditioner(r) if preconditioner else r
        rho_new = float(r @ z)
        if rho == 0.0:
            return SolverResult(x=x, converged=False, iterations=k,
                                residual_norm=r_norm, residual_history=history,
                                breakdown="rho breakdown", matvecs=matvecs)
        beta = rho_new / rho
        rho = rho_new
        p = z + beta * p

    return SolverResult(x=x, converged=False, iterations=crit.max_iterations,
                        residual_norm=r_norm, residual_history=history,
                        matvecs=matvecs)
