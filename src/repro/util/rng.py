"""Deterministic random-number-generator helpers.

All stochastic components in the library (gallery generators, RTN noise) take
either an integer seed or a ``numpy.random.Generator``; this module centralises
the conversion so every entry point behaves identically.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

#: Seed used when callers pass ``None``.  Fixed so that the benchmark harness
#: is reproducible run-to-run without any configuration.
DEFAULT_SEED = 20231110


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` from a seed, generator, or ``None``.

    ``None`` maps to the library-wide :data:`DEFAULT_SEED` (reproducible by
    default; pass an explicit generator for independent streams).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)
