"""Shared utilities: validation helpers, deterministic RNG, small numerics."""

from repro.util.validation import (
    check_positive_int,
    check_nonnegative_int,
    check_in_range,
    require,
)
from repro.util.rng import default_rng

__all__ = [
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "require",
    "default_rng",
]
