"""Small argument-validation helpers used across the package.

These raise ``ValueError``/``TypeError`` with consistent messages so tests can
assert on them and so public entry points fail fast with actionable errors.
"""

from __future__ import annotations

from typing import Any


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer and return it."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_in_range(value: float, name: str, lo: float, hi: float) -> float:
    """Validate ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value}")
    return value


def check_env_positive_int(name: str, raw: str) -> int:
    """Parse an environment-variable value as a positive (>= 1) integer.

    Non-integers, zero and negative values all raise the same ``ValueError``
    naming the variable and the offending value (``NAME='raw'``), so every
    misconfiguration of a worker-count-style knob fails identically and the
    message says exactly what to fix.
    """
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a positive integer, got {name}={raw!r}"
        ) from None
    if value < 1:
        raise ValueError(
            f"{name} must be a positive integer, got {name}={raw!r}")
    return value


def check_env_nonnegative_int(name: str, raw: str) -> int:
    """Parse an environment-variable value as a non-negative (>= 0) integer.

    Same named-error pattern as :func:`check_env_positive_int` — the retry
    count knob accepts ``0`` (= no retries) but nothing below it.
    """
    try:
        value = int(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a non-negative integer, got {name}={raw!r}"
        ) from None
    if value < 0:
        raise ValueError(
            f"{name} must be a non-negative integer, got {name}={raw!r}")
    return value


def _check_env_float(name: str, raw: str, kind: str) -> float:
    import math

    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"{name} must be a {kind} number, got {name}={raw!r}") from None
    if not math.isfinite(value):
        raise ValueError(
            f"{name} must be a {kind} number, got {name}={raw!r}")
    return value


def check_env_positive_float(name: str, raw: str) -> float:
    """Parse an environment-variable value as a positive, finite float.

    Zero, negatives, infinities and non-numerics raise the same
    ``ValueError`` naming the variable and value (``NAME='raw'``) — the
    timeout knob pattern: a timeout of 0 means a misconfiguration, never
    "fail every request instantly".
    """
    value = _check_env_float(name, raw, "positive")
    if value <= 0:
        raise ValueError(
            f"{name} must be a positive number, got {name}={raw!r}")
    return value


def check_env_nonnegative_float(name: str, raw: str) -> float:
    """Parse an environment-variable value as a non-negative, finite float
    (the backoff knob accepts ``0`` = retry immediately)."""
    value = _check_env_float(name, raw, "non-negative")
    if value < 0:
        raise ValueError(
            f"{name} must be a non-negative number, got {name}={raw!r}")
    return value
