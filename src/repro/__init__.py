"""repro — a from-scratch reproduction of ReFloat (SC'23).

ReFloat is a block floating-point data format plus a ReRAM accelerator
architecture for iterative linear solvers.  This package implements the
format, the accelerator and its baselines as functional + timing models, the
solvers, and the full evaluation harness.  Top-level re-exports cover the
primary public API; see the subpackages for everything else:

* :mod:`repro.formats`     — IEEE bit tools, ReFloat / Feinberg / BFP codecs
* :mod:`repro.sparse`      — blocking, layouts, Matrix Market, matrix gallery
* :mod:`repro.solvers`     — CG, BiCGSTAB, GMRES, stationary, refinement
* :mod:`repro.operators`   — SpMV platforms (exact / ReFloat / Feinberg / noisy)
* :mod:`repro.hardware`    — crossbar sim, processing engine, timing models
* :mod:`repro.analysis`    — locality, memory accounting, trace utilities
* :mod:`repro.api`         — platform/solver registries, typed RunConfig,
                             declarative SuiteSpec/RunRequest job objects
* :mod:`repro.experiments` — one runner per paper table/figure
"""

from repro.api import (
    PLATFORM_REGISTRY,
    SOLVER_REGISTRY,
    PlatformSpec,
    RunConfig,
    RunRequest,
    SolverSpec,
    SuiteSpec,
    SweepSpec,
    register_platform,
    register_solver,
    register_variant_family,
)
from repro.formats import DEFAULT_SPEC, ReFloatSpec
from repro.operators import (
    ExactOperator,
    FeinbergFcOperator,
    FeinbergOperator,
    NoisyReFloatOperator,
    ReFloatOperator,
)
from repro.solvers import ConvergenceCriterion, SolverResult, bicgstab, cg, gmres
from repro.sparse import BlockedMatrix
from repro.sparse.gallery import build_matrix, suite_ids

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_SPEC",
    "ReFloatSpec",
    "ExactOperator",
    "FeinbergFcOperator",
    "FeinbergOperator",
    "NoisyReFloatOperator",
    "ReFloatOperator",
    "ConvergenceCriterion",
    "SolverResult",
    "bicgstab",
    "cg",
    "gmres",
    "BlockedMatrix",
    "build_matrix",
    "suite_ids",
    "PLATFORM_REGISTRY",
    "SOLVER_REGISTRY",
    "PlatformSpec",
    "RunConfig",
    "RunRequest",
    "SolverSpec",
    "SuiteSpec",
    "SweepSpec",
    "register_platform",
    "register_solver",
    "register_variant_family",
    "__version__",
]
