"""Bit-exact ReFloat processing engine (Fig. 6b/6c datapath).

A processing engine multiplies one ReFloat matrix block with one vector
segment.  This module reproduces the integer-domain datapath:

* matrix elements become ``(2^e + f)``-bit aligned integers
  ``(2^f + frac) << (offset - lo)`` on two sign-quadrant crossbar clusters;
* vector elements become ``(2^ev + fv)``-bit fixed-point integers from the
  DAC path of :func:`repro.formats.refloat.quantize_vector`;
* four quadrant MVMs run on the bit-serial crossbar model and are combined
  as ``(P+ x+ + P- x-) - (P+ x- + P- x+)`` (the ④→⑤ subtraction);
* the integer result is rescaled by ``2^(eb + lo - f) * 2^(ebv + lo_v - fv)``
  — the ⑦+⑧ exponent add — giving the double-precision output ⑨.

Because every step is exact integer arithmetic within 2^53, the engine output
equals the FP64 shortcut ``~A_c @ ~x_c`` *bit for bit*; that equivalence is
what licenses :class:`repro.operators.ReFloatOperator`'s fast path, and is
asserted in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.formats import ieee
from repro.formats.refloat import (
    EncodedBlock,
    ReFloatSpec,
    encode_values,
    offset_bounds,
    quantize_vector,
)
from repro.hardware.cost import cycles_for_spec
from repro.hardware.crossbar import CrossbarMVM

__all__ = ["ProcessingEngine", "block_mvm_reference"]


class ProcessingEngine:
    """Bit-exact floating-point block MVM on the crossbar substrate.

    Parameters
    ----------
    block : (2^b, 2^b) dense float64 array
        One matrix block (zeros allowed; they map to zero conductance in
        every bit plane).
    spec : ReFloatSpec
    """

    def __init__(self, block: np.ndarray, spec: ReFloatSpec):
        block = np.asarray(block, dtype=np.float64)
        n = 1 << spec.b
        if block.shape != (n, n):
            raise ValueError(f"block must be ({n}, {n}), got {block.shape}")
        self.spec = spec
        self.block = block
        lo, hi = offset_bounds(spec.e)
        nz = block != 0.0
        if np.any(nz):
            enc = encode_values(block[nz], spec.e, spec.f,
                                rounding=spec.rounding)
            self.eb = enc.eb
            mag = ((np.uint64(1) << np.uint64(spec.f)) + enc.frac) << (
                (enc.offset.astype(np.int64) - lo).astype(np.uint64))
            # Flush entries below the window (offset saturated at lo from
            # further down) per the storage semantics.
            _, exp, _ = ieee.decompose(block[nz])
            below = (exp.astype(np.int64) - enc.eb) < lo
            if spec.underflow == "flush":
                mag = np.where(below, np.uint64(0), mag)
            pos = np.zeros(block.shape, dtype=np.uint64)
            neg = np.zeros(block.shape, dtype=np.uint64)
            sign = enc.sign.astype(bool)
            pos_vals = np.where(~sign, mag, np.uint64(0))
            neg_vals = np.where(sign, mag, np.uint64(0))
            pos[nz] = pos_vals
            neg[nz] = neg_vals
            self._pos, self._neg = pos, neg
        else:
            self.eb = 0
            self._pos = np.zeros(block.shape, dtype=np.uint64)
            self._neg = np.zeros(block.shape, dtype=np.uint64)
        self.matrix_bits = (1 << spec.e) + spec.f
        self.vector_bits = (1 << spec.ev) + spec.fv

    @property
    def cycles(self) -> int:
        """Eq. (3) latency of one block MVM."""
        return cycles_for_spec(self.spec)

    def multiply(self, segment: np.ndarray) -> np.ndarray:
        """One block MVM: returns the FP64 segment ``~A_c^T @ ~x_c``.

        (ReRAM computes the transpose product — wordlines are rows; callers
        orient blocks accordingly.)
        """
        spec = self.spec
        xq, ebv = quantize_vector(np.asarray(segment, dtype=np.float64), spec)
        if ebv.size != 1:
            raise ValueError("segment must be exactly one block long")
        lo_v, hi_v = offset_bounds(spec.ev)
        ulp_exp = int(ebv[0]) + lo_v - spec.fv
        xint = np.rint(np.abs(xq) * np.ldexp(1.0, -ulp_exp)).astype(np.uint64)
        xpos = np.where(xq >= 0, xint, np.uint64(0))
        xneg = np.where(xq < 0, xint, np.uint64(0))

        mvm_pos = CrossbarMVM(self._pos, self.matrix_bits, self.vector_bits)
        mvm_neg = CrossbarMVM(self._neg, self.matrix_bits, self.vector_bits)
        pp = mvm_pos.multiply(xpos)
        nn = mvm_neg.multiply(xneg)
        pn = mvm_pos.multiply(xneg)
        np_ = mvm_neg.multiply(xpos)
        signed = (pp + nn) - (pn + np_)

        lo, _ = offset_bounds(spec.e)
        scale_exp = (self.eb + lo - spec.f) + ulp_exp
        return signed.astype(np.float64) * np.ldexp(1.0, scale_exp)


def block_mvm_reference(block: np.ndarray, segment: np.ndarray,
                        spec: ReFloatSpec) -> np.ndarray:
    """The FP64 shortcut the engine must match: ``quantize(block)^T @ quantize(seg)``."""
    from repro.formats.refloat import quantize_values

    block = np.asarray(block, dtype=np.float64)
    nz = block != 0.0
    qblock = np.zeros_like(block)
    if np.any(nz):
        qblock[nz], _ = quantize_values(block[nz], spec.e, spec.f,
                                        rounding=spec.rounding,
                                        eb_policy="cover",
                                        underflow=spec.underflow)
    xq, _ = quantize_vector(np.asarray(segment, dtype=np.float64), spec)
    return qblock.T @ xq
