"""Bit-exact ReFloat processing engine (Fig. 6b/6c datapath).

A processing engine multiplies one ReFloat matrix block with one vector
segment.  This module reproduces the integer-domain datapath:

* matrix elements become ``(2^e + f)``-bit aligned integers
  ``(2^f + frac) << (offset - lo)`` on two sign-quadrant crossbar clusters;
* vector elements become ``(2^ev + fv)``-bit fixed-point integers from the
  DAC path of :func:`repro.formats.refloat.quantize_vector`;
* four quadrant MVMs run on the bit-serial crossbar model and are combined
  as ``(P+ x+ + P- x-) - (P+ x- + P- x+)`` (the ④→⑤ subtraction);
* the integer result is rescaled by ``2^(eb + lo - f) * 2^(ebv + lo_v - fv)``
  — the ⑦+⑧ exponent add — giving the double-precision output ⑨.

Because every step is exact integer arithmetic within 2^53, the engine output
equals the FP64 shortcut ``~A_c @ ~x_c`` *bit for bit*; that equivalence is
what licenses :class:`repro.operators.ReFloatOperator`'s fast path, and is
asserted in the test suite.  The one conversion the integer datapath cannot
express is an *exact-grid* segment (near-lossless vector configs or very
tiny values, where the segment's ulp exponent falls below the binary64
normal range and the converter passes values through unquantised) — the
engines reject it with ``ValueError`` rather than round it silently; the
FP64 shortcut handles it exactly.

Hot-path architecture
---------------------
:class:`ProcessingEngine` hoists everything invariant across ``multiply``
calls into ``__init__``: the sign-quadrant :class:`CrossbarMVM` instances
(each construction bit-slices the block into ``N_M`` planes) are built once,
and the vector conversion goes through the cached
:class:`repro.formats.refloat.VectorConverterPlan`.  :class:`BlockedEngine`
extends the same bit-exact datapath to a whole :class:`BlockedMatrix`: all
occupied blocks are encoded once into a dense integer tensor and every
``multiply`` runs one batched integer contraction over all blocks — the
vectorised functional model of the accelerator's engine array.
"""

from __future__ import annotations

import numpy as np

from repro.formats import ieee
from repro.formats.refloat import (
    ReFloatSpec,
    covering_exponent_base,
    offset_bounds,
    quantize_vector,
    vector_converter_plan,
)
from repro.hardware.cost import cycles_for_spec
from repro.hardware.crossbar import CrossbarMVM
from repro.sparse.blocked import BlockedMatrix

__all__ = ["ProcessingEngine", "BlockedEngine", "block_mvm_reference"]


def _aligned_cells(values: np.ndarray, eb, spec: ReFloatSpec):
    """Signed aligned integer cell values for nonzeros against base(s) ``eb``.

    The Fig. 6b matrix conversion both engines share: magnitude
    ``(2^f + frac) << (offset - lo)`` with the below-window flush keyed to
    the *unrounded* exponent (the datapath drops a value whose stored
    exponent sits below the window before any fraction rounding).  ``eb``
    may be a scalar (one block), a per-value array (all blocks at once), or
    ``None`` to derive the cover base from the values themselves.
    Returns ``(cells, eb)`` — int64 cells (negative for sign-bit-set values,
    0 for flushed ones) and the base(s) actually used.
    """
    lo, hi = offset_bounds(spec.e)
    sign, exp, frac = ieee.decompose(values)
    exp64 = exp.astype(np.int64)
    if eb is None:
        eb = covering_exponent_base(int(exp64.max()), spec.e)
    if spec.rounding == "truncate":
        qfrac = ieee.truncate_fraction(frac, spec.f)
        carry = np.zeros(values.shape, dtype=np.int64)
    else:
        qfrac, carry_b = ieee.round_fraction(frac, spec.f)
        carry = carry_b.astype(np.int64)
    eb64 = np.asarray(eb, dtype=np.int64)
    offset = np.clip(exp64 + carry - eb64, lo, hi)
    frac_small = (qfrac >> np.uint64(ieee.FRAC_BITS - spec.f)
                  if spec.f < ieee.FRAC_BITS else qfrac).astype(np.int64)
    mag = ((np.int64(1) << np.int64(spec.f)) + frac_small) << (offset - lo)
    if spec.underflow == "flush":
        mag = np.where((exp64 - eb64) < lo, np.int64(0), mag)
    return np.where(sign.astype(bool), -mag, mag), eb


class ProcessingEngine:
    """Bit-exact floating-point block MVM on the crossbar substrate.

    Parameters
    ----------
    block : (2^b, 2^b) dense float64 array
        One matrix block (zeros allowed; they map to zero conductance in
        every bit plane).
    spec : ReFloatSpec
    """

    def __init__(self, block: np.ndarray, spec: ReFloatSpec):
        block = np.asarray(block, dtype=np.float64)
        n = 1 << spec.b
        if block.shape != (n, n):
            raise ValueError(f"block must be ({n}, {n}), got {block.shape}")
        self.spec = spec
        self.block = block
        nz = block != 0.0
        pos = np.zeros(block.shape, dtype=np.uint64)
        neg = np.zeros(block.shape, dtype=np.uint64)
        if np.any(nz):
            # Shared sign-quadrant cell alignment; eb=None derives the cover
            # base over this block's nonzeros (what encode_values picks).
            cells, self.eb = _aligned_cells(block[nz], None, spec)
            pos[nz] = np.maximum(cells, 0).astype(np.uint64)
            neg[nz] = (-np.minimum(cells, 0)).astype(np.uint64)
        else:
            self.eb = 0
        self._pos, self._neg = pos, neg
        self.matrix_bits = (1 << spec.e) + spec.f
        self.vector_bits = (1 << spec.ev) + spec.fv
        # Hoisted: the two sign-quadrant crossbar stacks (each construction
        # bit-slices its matrix into N_M planes) and the vector plan.  The
        # four quadrant MVMs of `multiply` reuse these.
        self._mvm_pos = CrossbarMVM(self._pos, self.matrix_bits, self.vector_bits)
        self._mvm_neg = CrossbarMVM(self._neg, self.matrix_bits, self.vector_bits)
        self._plan = vector_converter_plan(n, spec)

    @property
    def cycles(self) -> int:
        """Eq. (3) latency of one block MVM."""
        return cycles_for_spec(self.spec)

    def multiply(self, segment: np.ndarray) -> np.ndarray:
        """One block MVM: returns the FP64 segment ``~A_c^T @ ~x_c``.

        (ReRAM computes the transpose product — wordlines are rows; callers
        orient blocks accordingly.)
        """
        spec = self.spec
        segment = np.asarray(segment, dtype=np.float64)
        if segment.size != self._plan.n:
            raise ValueError("segment must be exactly one block long")
        xq, ebv = self._plan.convert(segment)
        lo_v, hi_v = offset_bounds(spec.ev)
        ulp_exp = int(ebv[0]) + lo_v - spec.fv
        if ulp_exp < -1022:
            raise ValueError(
                f"segment ulp exponent {ulp_exp} is below the binary64 "
                "normal range (exact-grid passthrough): the fixed-point "
                "wordline model cannot represent this conversion — use the "
                "FP64 shortcut (block_mvm_reference / ReFloatOperator)")
        xint = np.rint(np.abs(xq) * np.ldexp(1.0, -ulp_exp)).astype(np.uint64)
        xpos = np.where(xq >= 0, xint, np.uint64(0))
        xneg = np.where(xq < 0, xint, np.uint64(0))

        # Four quadrant MVMs, two per sign-quadrant crossbar stack, batched.
        pp, pn = self._mvm_pos.multiply_batch(np.stack((xpos, xneg)))
        nn, np_ = self._mvm_neg.multiply_batch(np.stack((xneg, xpos)))
        signed = (pp + nn) - (pn + np_)

        lo, _ = offset_bounds(spec.e)
        scale_exp = (self.eb + lo - spec.f) + ulp_exp
        return signed.astype(np.float64) * np.ldexp(1.0, scale_exp)

    def multiply_batch(self, segments: np.ndarray) -> np.ndarray:
        """Batched :meth:`multiply`: ``(k, 2^b)`` segments to ``(k, 2^b)``.

        One bit-sliced operand program serves the whole batch: the ``2k``
        sign-quadrant drives per crossbar stack ride through
        :meth:`CrossbarMVM.multiply_batch` in a single contraction each.
        Bit-identical to calling :meth:`multiply` per row (asserted by the
        fast-path tests).
        """
        spec = self.spec
        segments = np.asarray(segments, dtype=np.float64)
        if segments.ndim != 2 or segments.shape[1] != self._plan.n:
            raise ValueError(
                f"segments must have shape (k, {self._plan.n}), "
                f"got {segments.shape}")
        k = segments.shape[0]
        Xq, ebv = self._plan.convert_batch(segments.T)   # (size, k), (1, k)
        lo_v, _ = offset_bounds(spec.ev)
        ulp_exp = ebv[0].astype(np.int64) + lo_v - spec.fv
        if bool((ulp_exp < -1022).any()):
            raise ValueError(
                "a segment ulp exponent is below the binary64 normal range "
                "(exact-grid passthrough): the fixed-point wordline model "
                "cannot represent this conversion — use the FP64 shortcut "
                "(block_mvm_reference / ReFloatOperator)")
        XqT = Xq.T                                       # (k, size)
        xint = np.rint(np.abs(XqT) * np.ldexp(1.0, -ulp_exp)[:, None]) \
            .astype(np.uint64)
        xpos = np.where(XqT >= 0, xint, np.uint64(0))
        xneg = np.where(XqT < 0, xint, np.uint64(0))

        # 2k drives per stack: rows [0, k) carry the +/+ and -/- products,
        # rows [k, 2k) the cross terms — the per-segment ④→⑤ combination.
        pos = self._mvm_pos.multiply_batch(np.concatenate((xpos, xneg)))
        neg = self._mvm_neg.multiply_batch(np.concatenate((xneg, xpos)))
        signed = (pos[:k] + neg[:k]) - (pos[k:] + neg[k:])

        lo, _ = offset_bounds(spec.e)
        scale_exp = (self.eb + lo - spec.f) + ulp_exp
        return signed.astype(np.float64) * np.ldexp(1.0, scale_exp)[:, None]


class BlockedEngine:
    """Batched multi-block engine: every occupied block in one vectorised pass.

    The functional model of the accelerator's engine *array*: each occupied
    block of a :class:`BlockedMatrix` is one :class:`ProcessingEngine`, all
    operating in parallel on their row segment of the input vector, with the
    per-block outputs accumulated into the output column segments in block
    order.  ``multiply`` is bit-identical to running one
    :class:`ProcessingEngine` per occupied block (same accumulation order) —
    asserted by the fast-path tests — but performs a single integer
    ``einsum`` over a precomputed ``(n_blocks, 2^b, 2^b)`` signed-cell
    tensor instead of thousands of per-block bit-serial simulations.

    Exactness argument: the four sign-quadrant products combine as
    ``(P+ x+ + P- x-) - (P+ x- + P- x+) = (P+ - P-)^T (x+ - x-)``, and every
    quantity is an exact int64 (widths validated at construction), so
    storing the *signed* cells loses nothing.

    Like :class:`ProcessingEngine`, block exponent bases always use the
    ``"cover"`` policy (the hardware padding alignment), regardless of
    ``spec.eb_policy``.

    Memory: the dense cell tensor costs ``8 * n_blocks * 4^b`` bytes — fine
    for the functional-simulation scales this class targets; production SpMV
    goes through :class:`repro.operators.ReFloatOperator`'s CSR shortcut.
    """

    def __init__(self, blocked: BlockedMatrix, spec: ReFloatSpec):
        if spec.b != blocked.b:
            raise ValueError(
                f"spec block size 2^{spec.b} does not match partition 2^{blocked.b}"
            )
        self.blocked = blocked
        self.spec = spec
        self.matrix_bits = (1 << spec.e) + spec.f
        self.vector_bits = (1 << spec.ev) + spec.fv
        size = blocked.block_size
        width = self.matrix_bits + self.vector_bits + int(size).bit_length()
        if width > 62:
            raise ValueError("operand widths would overflow the exact int64 model")
        bsr = blocked.bsr
        self.block_rows = bsr.block_rows.astype(np.int64)
        self.block_cols = bsr.indices.astype(np.int64)
        lo, hi = offset_bounds(spec.e)
        self._lo = lo
        G = blocked.n_blocks
        #: Per-block cover exponent bases (block-grouped order).
        self.eb = blocked.exponent_bases(spec.e, "cover").astype(np.int64)
        cells = np.zeros((G, size, size), dtype=np.int64)
        if blocked.nnz:
            # per_nnz_eb would recompute exponent_bases; gather self.eb
            # (already the cover bases, block-grouped) per nonzero, then
            # drop the signed cells straight through the BSR scatter map —
            # same cell, same value as the old order/repeat indirection.
            signed, _ = _aligned_cells(blocked.A.data,
                                       self.eb[bsr.block_of_nnz], spec)
            cells.reshape(-1)[bsr.scatter] = signed
        self._cells = cells
        self._plan = vector_converter_plan(blocked.shape[0], spec)

    @property
    def n_engines(self) -> int:
        """Processing engines required (= occupied blocks)."""
        return int(self.blocked.n_blocks)

    @property
    def cycles(self) -> int:
        """Eq. (3) latency of one (parallel) block-MVM wave."""
        return cycles_for_spec(self.spec)

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Full SpMV ``~A^T @ ~x`` through every occupied block at once.

        ``x`` is indexed by matrix rows (the wordline side); the result is
        indexed by columns, exactly like stacking per-block
        ``ProcessingEngine.multiply`` outputs.
        """
        spec = self.spec
        n_rows, n_cols = self.blocked.shape
        x = np.asarray(x, dtype=np.float64)
        if x.shape != (n_rows,):
            raise ValueError(f"x must have shape ({n_rows},), got {x.shape}")
        size = self.blocked.block_size
        nseg_r = -(-n_rows // size)
        nseg_c = -(-n_cols // size)
        xq, ebv = self._plan.convert(x)
        lo_v, _ = offset_bounds(spec.ev)
        ulp_exp = ebv.astype(np.int64) + lo_v - spec.fv
        if bool((ulp_exp < -1022).any()):
            raise ValueError(
                "a segment ulp exponent is below the binary64 normal range "
                "(exact-grid passthrough): the fixed-point wordline model "
                "cannot represent this conversion — use the FP64 shortcut "
                "(block_mvm_reference / ReFloatOperator)")
        xpad = np.zeros(nseg_r * size, dtype=np.float64)
        xpad[:n_rows] = xq
        X = xpad.reshape(nseg_r, size)
        xint = np.rint(np.abs(X) * np.ldexp(1.0, -ulp_exp)[:, None]).astype(np.int64)
        if xint.size and int(xint.max()) >= (1 << self.vector_bits):
            raise ValueError(
                f"vector word does not fit in {self.vector_bits} bits")
        xs = np.where(X >= 0, xint, -xint)
        # One batched integer contraction over all occupied blocks (the
        # per-block ④→⑤ quadrant combination, collapsed to signed cells).
        V = xs[self.block_rows]                       # (G, size)
        signed = np.einsum("gij,gi->gj", self._cells, V)
        scale_exp = (self.eb + self._lo - spec.f) + ulp_exp[self.block_rows]
        contrib = signed.astype(np.float64) * np.ldexp(1.0, scale_exp)[:, None]
        out = np.zeros((nseg_c, size), dtype=np.float64)
        # add.at accumulates in block order — the same order as a Python loop
        # over occupied blocks, so float rounding matches the per-block path.
        np.add.at(out, self.block_cols, contrib)
        return out.ravel()[:n_cols]

    def multiply_batch(self, X: np.ndarray) -> np.ndarray:
        """Batched :meth:`multiply`: ``(n, k)`` columns to ``(n_cols, k)``.

        The multi-RHS functional model of the engine array: one batched
        vector conversion (:meth:`VectorConverterPlan.convert_batch`) and one
        integer contraction per occupied block serve all ``k`` right-hand
        sides — the bit-sliced operand program is amortised across the batch.
        Column ``j`` of the result is bit-identical to ``multiply(X[:, j])``
        (asserted by the fast-path tests): every per-column operation below
        is the same ufunc sequence, and the block-order accumulation is
        columnwise independent.
        """
        spec = self.spec
        n_rows, n_cols = self.blocked.shape
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != n_rows:
            raise ValueError(f"X must have shape ({n_rows}, k), got {X.shape}")
        k = X.shape[1]
        size = self.blocked.block_size
        nseg_r = -(-n_rows // size)
        nseg_c = -(-n_cols // size)
        Xq, ebv = self._plan.convert_batch(X)            # (n, k), (nseg_r, k)
        lo_v, _ = offset_bounds(spec.ev)
        ulp_exp = ebv.astype(np.int64) + lo_v - spec.fv  # (nseg_r, k)
        if bool((ulp_exp < -1022).any()):
            raise ValueError(
                "a segment ulp exponent is below the binary64 normal range "
                "(exact-grid passthrough): the fixed-point wordline model "
                "cannot represent this conversion — use the FP64 shortcut "
                "(block_mvm_reference / ReFloatOperator)")
        xpad = np.zeros((nseg_r * size, k), dtype=np.float64)
        xpad[:n_rows] = Xq
        X3 = xpad.reshape(nseg_r, size, k)
        xint = np.rint(np.abs(X3) * np.ldexp(1.0, -ulp_exp)[:, None, :]) \
            .astype(np.int64)
        if xint.size and int(xint.max()) >= (1 << self.vector_bits):
            raise ValueError(
                f"vector word does not fit in {self.vector_bits} bits")
        xs = np.where(X3 >= 0, xint, -xint)
        # One batched integer contraction per occupied block over all columns.
        V = xs[self.block_rows]                          # (G, size, k)
        signed = np.einsum("gij,gik->gjk", self._cells, V)
        scale_exp = (self.eb + self._lo - spec.f)[:, None] \
            + ulp_exp[self.block_rows]                   # (G, k)
        contrib = signed.astype(np.float64) \
            * np.ldexp(1.0, scale_exp)[:, None, :]
        out = np.zeros((nseg_c, size, k), dtype=np.float64)
        np.add.at(out, self.block_cols, contrib)
        return out.reshape(-1, k)[:n_cols]


def block_mvm_reference(block: np.ndarray, segment: np.ndarray,
                        spec: ReFloatSpec) -> np.ndarray:
    """The FP64 shortcut the engine must match: ``quantize(block)^T @ quantize(seg)``."""
    from repro.formats.refloat import quantize_values

    block = np.asarray(block, dtype=np.float64)
    nz = block != 0.0
    qblock = np.zeros_like(block)
    if np.any(nz):
        qblock[nz], _ = quantize_values(block[nz], spec.e, spec.f,
                                        rounding=spec.rounding,
                                        eb_policy="cover",
                                        underflow=spec.underflow)
    xq, _ = quantize_vector(np.asarray(segment, dtype=np.float64), spec)
    return qblock.T @ xq
