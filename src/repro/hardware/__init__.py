"""ReRAM accelerator substrate: crossbars, engines, timing, GPU baseline."""

from repro.hardware.accelerator import (
    AcceleratorConfig,
    MappingPlan,
    SolverTimingModel,
)
from repro.hardware.adc import ADCConfig, SARADC
from repro.hardware.cost import (
    FEINBERG_CROSSBARS_PER_ENGINE,
    FEINBERG_CYCLES,
    crossbars_for_spec,
    crossbars_per_engine,
    cycles_for_spec,
    cycles_per_block_mvm,
    fixed_point_mvm_cycles,
)
from repro.hardware.crossbar import CrossbarMVM, bit_slice, integer_mvm
from repro.hardware.energy import EnergyModel
from repro.hardware.engine import BlockedEngine, ProcessingEngine, block_mvm_reference
from repro.hardware.gpu import GPUConfig, GPUSolverModel
from repro.hardware.noise import RTNModel

__all__ = [
    "AcceleratorConfig",
    "MappingPlan",
    "SolverTimingModel",
    "ADCConfig",
    "SARADC",
    "FEINBERG_CROSSBARS_PER_ENGINE",
    "FEINBERG_CYCLES",
    "crossbars_for_spec",
    "crossbars_per_engine",
    "cycles_for_spec",
    "cycles_per_block_mvm",
    "fixed_point_mvm_cycles",
    "CrossbarMVM",
    "bit_slice",
    "integer_mvm",
    "EnergyModel",
    "BlockedEngine",
    "ProcessingEngine",
    "block_mvm_reference",
    "GPUConfig",
    "GPUSolverModel",
    "RTNModel",
]
