"""Per-component energy accounting (extension — the paper reports time only).

Energy constants follow the sources the paper's platform table cites:
ISAAC-class ADC/crossbar numbers and SLC write energy.  The model exposes the
same decomposition as the timing model (reads per SpMV, writes per round) so
ablations can weigh bit-budget choices by energy as well as latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.accelerator import MappingPlan

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy per primitive operation (rough ISAAC-class constants)."""

    adc_conversion_J: float = 2e-12     # ~2 pJ per 10-bit conversion
    crossbar_read_J: float = 1e-12      # one 128x128 analog MVM cycle
    cell_write_J: float = 1e-11         # one row write
    mac_op_J: float = 2e-11             # one FP64 MAC

    def spmv_energy_J(self, plan: MappingPlan) -> float:
        """Energy of one whole-matrix SpMV under a mapping plan."""
        reads = (plan.blocks_needed * plan.cycles_per_mvm)
        adc = reads  # one conversion per crossbar read cycle per engine
        energy = reads * self.crossbar_read_J + adc * self.adc_conversion_J
        if not plan.resident:
            writes = plan.rounds * plan.config.crossbar_rows * plan.crossbars_per_engine
            energy += writes * self.cell_write_J
        return energy

    def solve_energy_J(self, plan: MappingPlan, iterations: int,
                       spmvs_per_iteration: int, n_rows: int,
                       vector_ops_per_iteration: int = 6) -> float:
        per_iter = (spmvs_per_iteration * self.spmv_energy_J(plan)
                    + vector_ops_per_iteration * n_rows * self.mac_op_J)
        setup = 0.0
        if plan.resident:
            setup = (plan.blocks_needed * plan.config.crossbar_rows
                     * plan.crossbars_per_engine * self.cell_write_J)
        return setup + iterations * per_iter
