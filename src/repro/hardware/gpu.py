"""GPU baseline cost model (the Table IV V100 + cuSPARSE platform).

Substitution note (DESIGN.md): the paper measures solver wall time on a real
Tesla V100 with cuSPARSE.  We model that platform with the standard
roofline-plus-launch-latency decomposition that governs sparse iterative
solvers on GPUs:

* SpMV is memory-bandwidth-bound: bytes = CSR matrix traffic + vector traffic;
* every kernel pays a launch/sync latency, and a CG iteration launches ~6
  kernels (SpMV, 2 reductions, 3 axpys) — on small matrices this latency
  floor dominates, which is exactly the regime where the paper's ReRAM
  accelerators win 10-30x;
* on large matrices bandwidth dominates and the GPU catches back up —
  reproducing the Fig. 8 crossovers (matrices 2257/2259 where Feinberg and
  even ReFloat drop below 1x).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["GPUConfig", "GPUSolverModel"]


@dataclass(frozen=True)
class GPUConfig:
    """V100 SXM2 parameters (Table IV) with standard efficiency derates."""

    name: str = "Tesla V100 SXM2"
    memory_bandwidth_B_s: float = 900e9
    bandwidth_efficiency: float = 0.75   # achievable fraction for SpMV-like streams
    fp64_flops: float = 7.8e12
    kernel_launch_s: float = 10e-6       # launch + dependency-sync round trip per
    #                                      kernel (cuSPARSE-era CUDA 11, incl. the
    #                                      blocking dot-product reductions of CG)

    @property
    def effective_bandwidth(self) -> float:
        return self.memory_bandwidth_B_s * self.bandwidth_efficiency


@dataclass(frozen=True)
class GPUSolverModel:
    """Per-iteration and whole-solve GPU time for a Krylov solver.

    ``spmvs_per_iteration``/``vector_kernels_per_iteration`` default to CG
    (1 SpMV, 2 dot + 3 axpy); BiCGSTAB uses (2, 10).
    """

    config: GPUConfig = GPUConfig()
    spmvs_per_iteration: int = 1
    vector_kernels_per_iteration: int = 5
    vector_streams_per_kernel: int = 3   # read x, read y, write y

    def spmv_bytes(self, n_rows: int, nnz: int) -> int:
        """CSR SpMV traffic: values + column indices + row pointers + x + y."""
        return nnz * (8 + 4) + n_rows * (8 + 8 + 4)

    def spmv_time_s(self, n_rows: int, nnz: int) -> float:
        bw_time = self.spmv_bytes(n_rows, nnz) / self.config.effective_bandwidth
        flop_time = 2.0 * nnz / self.config.fp64_flops
        return max(bw_time, flop_time) + self.config.kernel_launch_s

    def vector_kernel_time_s(self, n_rows: int) -> float:
        bytes_moved = n_rows * 8 * self.vector_streams_per_kernel
        return bytes_moved / self.config.effective_bandwidth + self.config.kernel_launch_s

    def iteration_time_s(self, n_rows: int, nnz: int) -> float:
        return (self.spmvs_per_iteration * self.spmv_time_s(n_rows, nnz)
                + self.vector_kernels_per_iteration * self.vector_kernel_time_s(n_rows))

    def solve_time_s(self, iterations: int, n_rows: int, nnz: int) -> float:
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return iterations * self.iteration_time_s(n_rows, nnz)

    @classmethod
    def cg(cls, config: GPUConfig = GPUConfig()) -> "GPUSolverModel":
        return cls(config=config, spmvs_per_iteration=1,
                   vector_kernels_per_iteration=5)

    @classmethod
    def bicgstab(cls, config: GPUConfig = GPUConfig()) -> "GPUSolverModel":
        return cls(config=config, spmvs_per_iteration=2,
                   vector_kernels_per_iteration=10)
