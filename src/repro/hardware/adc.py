"""ADC model (the 10-bit 1.5 GS/s pipelined SAR ADC of Table IV, [60]).

With 1-bit DACs and 1-bit cells, a bitline of a ``2^b``-row crossbar
accumulates an integer in ``[0, 2^b]``; digitising it exactly needs ``b + 1``
bits (the paper states the conversion precision as ``fx = b``, which covers
``[0, 2^b - 1]`` — the all-rows-active full-scale code saturates; we expose
both behaviours).  The 10-bit ADC of Table IV digitises 128-row bitlines
(8 bits needed) with headroom, so the evaluation configuration is lossless —
asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ADCConfig", "SARADC"]


@dataclass(frozen=True)
class ADCConfig:
    bits: int = 10
    sample_rate_s: float = 1.5e9

    def __post_init__(self) -> None:
        if not 1 <= self.bits <= 24:
            raise ValueError(f"bits must be in [1, 24], got {self.bits}")

    @property
    def levels(self) -> int:
        return 1 << self.bits

    @property
    def conversion_time_s(self) -> float:
        return 1.0 / self.sample_rate_s


class SARADC:
    """Quantise bitline accumulation counts.

    ``full_scale`` is the largest representable count; larger inputs
    saturate.  For the Table IV configuration (10 bits, 128-row crossbars)
    conversion is exact.
    """

    def __init__(self, config: ADCConfig = ADCConfig(), full_scale: int = None):
        self.config = config
        self.full_scale = (config.levels - 1) if full_scale is None else int(full_scale)
        if self.full_scale < 1:
            raise ValueError("full_scale must be >= 1")

    def convert(self, counts: np.ndarray) -> np.ndarray:
        """Digitise integer bitline counts (exact below full scale)."""
        counts = np.asarray(counts)
        if np.any(counts < 0):
            raise ValueError("bitline counts are non-negative")
        step = max(1, -(-self.full_scale // (self.config.levels - 1)))
        quantised = (np.minimum(counts, self.full_scale) // step) * step
        return quantised

    def is_lossless_for_rows(self, rows: int) -> bool:
        """True when every possible count of a ``rows``-row bitline converts
        exactly (needs levels > rows and unit step)."""
        return self.full_scale >= rows and self.config.levels - 1 >= self.full_scale
