"""Bit-exact functional simulation of fixed-point MVM in ReRAM (Fig. 2).

The hardware computes ``y = M^T x`` (wordlines driven by the vector, bitlines
accumulating down matrix columns) on unsigned integers by

1. bit-slicing the matrix into 1-bit conductance planes, one crossbar each;
2. streaming the vector in bit-serially (1-bit DAC), MSB first;
3. sampling each bitline (S/H), digitising (ADC), and reducing all partial
   sums with the shift-and-add pipeline.

This module reproduces that datapath exactly at the level of integer
arithmetic, including the per-step partial-sum sequence of the worked example
in Fig. 2, and reports the cycle count ``C_int = N_v + N_M - 1``.  It is the
ground-truth reference the ReFloat processing engine is verified against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.hardware.cost import fixed_point_mvm_cycles

__all__ = ["bit_slice", "CrossbarMVM", "integer_mvm"]


def bit_slice(values: np.ndarray, bits: int) -> np.ndarray:
    """Slice unsigned integers into 1-bit planes, MSB first.

    Returns an array of shape ``(bits,) + values.shape`` with entries in
    {0, 1}; plane ``k`` holds bit ``bits - 1 - k``.
    """
    values = np.asarray(values, dtype=np.uint64)
    if bits < 1 or bits > 63:
        raise ValueError(f"bits must be in [1, 63], got {bits}")
    if values.size and int(values.max()) >= (1 << bits):
        raise ValueError(f"value {int(values.max())} does not fit in {bits} bits")
    planes = [((values >> np.uint64(k)) & np.uint64(1)).astype(np.uint8)
              for k in range(bits - 1, -1, -1)]
    return np.stack(planes, axis=0)


@dataclass
class CrossbarMVM:
    """One fixed-point MVM on bit-sliced crossbars, with cycle accounting.

    Parameters
    ----------
    matrix : (m, n) unsigned integers (the block, already aligned).
    matrix_bits, vector_bits : widths N_M and N_v.
    record_trace : keep the per-cycle partial sums (the S/O sequence of
        Fig. 2) for inspection/tests.
    """

    matrix: np.ndarray
    matrix_bits: int
    vector_bits: int
    record_trace: bool = False
    trace: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=np.uint64)
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        self.planes = bit_slice(self.matrix, self.matrix_bits)

    @property
    def cycles(self) -> int:
        """Total pipeline cycles: input phase + cross-crossbar reduction."""
        return fixed_point_mvm_cycles(self.matrix_bits, self.vector_bits)

    def multiply(self, vector: np.ndarray) -> np.ndarray:
        """Compute ``y = M^T x`` exactly via the bit-serial schedule.

        The returned array is int64 (all intermediate values are exact;
        widths are validated to stay below 2^62).
        """
        vector = np.asarray(vector, dtype=np.uint64)
        if vector.shape != (self.matrix.shape[0],):
            raise ValueError(
                f"vector must have shape ({self.matrix.shape[0]},), got {vector.shape}"
            )
        vplanes = bit_slice(vector, self.vector_bits)
        width = self.matrix_bits + self.vector_bits + int(self.matrix.shape[0]).bit_length()
        if width > 62:
            raise ValueError("operand widths would overflow the exact int64 model")

        n_cols = self.matrix.shape[1]
        # Phase 1 (cycles C1..C_Nv of Fig. 2): stream vector bits MSB-first;
        # each crossbar k accumulates S <- (S << 1) + O where O is the 1-bit
        # dot product of the current vector bit-plane with its matrix plane.
        per_plane = np.zeros((self.matrix_bits, n_cols), dtype=np.int64)
        if self.record_trace:
            self.trace = []
        for j in range(self.vector_bits):
            contrib = np.einsum("i,kij->kj", vplanes[j].astype(np.int64),
                                self.planes.astype(np.int64))
            per_plane = (per_plane << 1) + contrib
            if self.record_trace:
                self.trace.append(per_plane.copy())
        # Phase 2 (cycles C_Nv+1 ...): shift-and-add across the matrix planes,
        # MSB plane first.
        total = np.zeros(n_cols, dtype=np.int64)
        for k in range(self.matrix_bits):
            total = (total << 1) + per_plane[k]
            if self.record_trace:
                self.trace.append(total.copy())
        return total


def integer_mvm(matrix: np.ndarray, vector: np.ndarray,
                matrix_bits: int, vector_bits: int) -> Tuple[np.ndarray, int]:
    """Convenience wrapper: exact bit-serial ``M^T x`` plus cycle count."""
    engine = CrossbarMVM(matrix, matrix_bits, vector_bits)
    return engine.multiply(vector), engine.cycles
