"""Bit-exact functional simulation of fixed-point MVM in ReRAM (Fig. 2).

The hardware computes ``y = M^T x`` (wordlines driven by the vector, bitlines
accumulating down matrix columns) on unsigned integers by

1. bit-slicing the matrix into 1-bit conductance planes, one crossbar each;
2. streaming the vector in bit-serially (1-bit DAC), MSB first;
3. sampling each bitline (S/H), digitising (ADC), and reducing all partial
   sums with the shift-and-add pipeline.

This module reproduces that datapath exactly at the level of integer
arithmetic, including the per-step partial-sum sequence of the worked example
in Fig. 2, and reports the cycle count ``C_int = N_v + N_M - 1``.  It is the
ground-truth reference the ReFloat processing engine is verified against.

Two execution modes produce identical integers: ``record_trace=True`` runs
the cycle-by-cycle shift-and-add schedule (the Fig. 2 reference); the
default fast path collapses both pipeline phases into one batched
contraction over all bit-planes — through BLAS in float64 whenever the
operand widths make that exact (<= 53 bits), in int64 otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.hardware.cost import fixed_point_mvm_cycles

__all__ = ["bit_slice", "CrossbarMVM", "integer_mvm"]


def bit_slice(values: np.ndarray, bits: int) -> np.ndarray:
    """Slice unsigned integers into 1-bit planes, MSB first.

    Returns an array of shape ``(bits,) + values.shape`` with entries in
    {0, 1}; plane ``k`` holds bit ``bits - 1 - k``.
    """
    values = np.asarray(values, dtype=np.uint64)
    if bits < 1 or bits > 63:
        raise ValueError(f"bits must be in [1, 63], got {bits}")
    if values.size and int(values.max()) >= (1 << bits):
        raise ValueError(f"value {int(values.max())} does not fit in {bits} bits")
    shifts = np.arange(bits - 1, -1, -1, dtype=np.uint64)
    shifts = shifts.reshape((bits,) + (1,) * values.ndim)
    return ((values[None, ...] >> shifts) & np.uint64(1)).astype(np.uint8)


@dataclass
class CrossbarMVM:
    """One fixed-point MVM on bit-sliced crossbars, with cycle accounting.

    Parameters
    ----------
    matrix : (m, n) unsigned integers (the block, already aligned).
    matrix_bits, vector_bits : widths N_M and N_v.
    record_trace : keep the per-cycle partial sums (the S/O sequence of
        Fig. 2) for inspection/tests.  Forces the cycle-by-cycle schedule;
        without it, :meth:`multiply` computes the identical integers with a
        single batched tensordot over all vector bit-planes.
    """

    matrix: np.ndarray
    matrix_bits: int
    vector_bits: int
    record_trace: bool = False
    trace: List[np.ndarray] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.matrix = np.asarray(self.matrix, dtype=np.uint64)
        if self.matrix.ndim != 2:
            raise ValueError("matrix must be 2-D")
        self.planes = bit_slice(self.matrix, self.matrix_bits)
        # Hoisted once: the planes as int64 (tensordot operand) and the
        # power-of-two weight of each vector bit-plane, MSB first.
        self._width = (self.matrix_bits + self.vector_bits
                       + int(self.matrix.shape[0]).bit_length())
        self._planes_flat = None
        if not self.record_trace:
            # Traced instances skip this (the cycle-accurate reference never
            # touches the batched operands); flipping record_trace off later
            # still works — the fast path builds them lazily on first use.
            self._build_batched_operands()

    def _build_batched_operands(self) -> None:
        """Hoist the fast path's contraction operands (built once).

        The batched fast path contracts vector planes against matrix planes
        as one flat matmul: (m, N_M * n) is the pre-transposed, pre-reshaped
        tensordot operand.  All partial sums are bounded by 2^width, so
        whenever width <= 53 the whole schedule is exact in float64 and can
        ride BLAS; wider (exotic) configurations fall back to exact int64.
        """
        m, n = self.matrix.shape
        flat = np.ascontiguousarray(
            self.planes.transpose(1, 0, 2).reshape(m, self.matrix_bits * n))
        self._vweights = (np.int64(1) << np.arange(
            self.vector_bits - 1, -1, -1, dtype=np.int64))
        self._mweights = (np.int64(1) << np.arange(
            self.matrix_bits - 1, -1, -1, dtype=np.int64))
        if self._width <= 53:
            self._planes_flat = flat.astype(np.float64)
            self._vweights_f = self._vweights.astype(np.float64)
            self._mweights_f = self._mweights.astype(np.float64)
        else:
            self._planes_flat = flat.astype(np.int64)

    @property
    def cycles(self) -> int:
        """Total pipeline cycles: input phase + cross-crossbar reduction."""
        return fixed_point_mvm_cycles(self.matrix_bits, self.vector_bits)

    def multiply(self, vector: np.ndarray) -> np.ndarray:
        """Compute ``y = M^T x`` exactly via the bit-serial schedule.

        The returned array is int64 (all intermediate values are exact;
        widths are validated to stay below 2^62).
        """
        vector = np.asarray(vector, dtype=np.uint64)
        if vector.shape != (self.matrix.shape[0],):
            raise ValueError(
                f"vector must have shape ({self.matrix.shape[0]},), got {vector.shape}"
            )
        vplanes = bit_slice(vector, self.vector_bits)
        if self._width > 62:
            raise ValueError("operand widths would overflow the exact int64 model")

        n_cols = self.matrix.shape[1]
        if self.record_trace:
            # Cycle-accurate reference: stream vector bits MSB-first (Phase 1,
            # cycles C1..C_Nv of Fig. 2); each crossbar k accumulates
            # S <- (S << 1) + O where O is the 1-bit dot product of the
            # current vector bit-plane with its matrix plane.
            self.trace = []
            per_plane = np.zeros((self.matrix_bits, n_cols), dtype=np.int64)
            for j in range(self.vector_bits):
                contrib = np.einsum("i,kij->kj", vplanes[j].astype(np.int64),
                                    self.planes.astype(np.int64))
                per_plane = (per_plane << 1) + contrib
                self.trace.append(per_plane.copy())
            total = np.zeros(n_cols, dtype=np.int64)
            for k in range(self.matrix_bits):
                total = (total << 1) + per_plane[k]
                self.trace.append(total.copy())
            return total
        # Fast path: all the Phase-1 shift-and-adds collapse into one batched
        # integer tensordot over every vector bit-plane at once — plane j
        # carries weight 2^(N_v - 1 - j), so the weighted contraction equals
        # the bit-serial accumulator exactly; Phase 2 collapses the same way
        # with the matrix-plane weights (all values are exact int64).
        return self._batched(vplanes[:, None, :])[0]

    def _batched(self, vplanes: np.ndarray) -> np.ndarray:
        """The collapsed bit-serial schedule for ``(N_v, B, m)`` bit-planes.

        One matmul against the pre-reshaped matrix planes replaces the
        per-bit loop; the two weighted contractions reproduce the Phase-1
        and Phase-2 shift-and-add pipelines.  Every partial sum stays below
        ``2^width``, so the float64/BLAS route (width <= 53) is bit-exact —
        identical integers to the int64 route, just much faster.
        """
        if self._planes_flat is None:
            self._build_batched_operands()
        n_v, batch, m = vplanes.shape
        n_cols = self.matrix.shape[1]
        if self._width <= 53:
            contrib = (vplanes.reshape(n_v * batch, m).astype(np.float64)
                       @ self._planes_flat)             # (N_v*B, N_M*n_cols)
            per_plane = self._vweights_f @ contrib.reshape(n_v, -1)
            per_plane = per_plane.reshape(batch, self.matrix_bits, n_cols)
            return (self._mweights_f @ per_plane).astype(np.int64)
        contrib = (vplanes.reshape(n_v * batch, m).astype(np.int64)
                   @ self._planes_flat)                 # (N_v*B, N_M*n_cols)
        contrib = contrib.reshape(n_v, batch, self.matrix_bits, n_cols)
        per_plane = np.tensordot(self._vweights, contrib, axes=([0], [0]))
        return np.tensordot(self._mweights, per_plane, axes=([0], [1]))

    def multiply_batch(self, vectors: np.ndarray) -> np.ndarray:
        """Batched :meth:`multiply`: ``(B, m)`` vectors to ``(B, n)`` results.

        Bit-identical to calling :meth:`multiply` per row, but one flat
        integer contraction serves the whole batch — the engine's four
        sign-quadrant MVMs ride through here in two calls.  Not available
        with ``record_trace`` (the trace is inherently per-vector).
        """
        if self.record_trace:
            raise ValueError("multiply_batch does not record traces; "
                             "use multiply per vector")
        vectors = np.asarray(vectors, dtype=np.uint64)
        if vectors.ndim != 2 or vectors.shape[1] != self.matrix.shape[0]:
            raise ValueError(
                f"vectors must have shape (B, {self.matrix.shape[0]}), "
                f"got {vectors.shape}")
        if self._width > 62:
            raise ValueError("operand widths would overflow the exact int64 model")
        return self._batched(bit_slice(vectors, self.vector_bits))


def integer_mvm(matrix: np.ndarray, vector: np.ndarray,
                matrix_bits: int, vector_bits: int) -> Tuple[np.ndarray, int]:
    """Convenience wrapper: exact bit-serial ``M^T x`` plus cycle count."""
    engine = CrossbarMVM(matrix, matrix_bits, vector_bits)
    return engine.multiply(vector), engine.cycles
