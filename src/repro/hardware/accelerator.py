"""Accelerator organisation and timing model (Table IV, Section VI-B).

Both accelerators have the same 17.1 Gb of compute ReRAM (1,048,576 crossbars
of 128x128 1-bit cells); they differ in how many crossbars one block engine
consumes (Eq. 2 / the [32] mapping) and how many cycles one block MVM takes
(Eq. 3).  The performance mechanics the paper describes:

* engines available = total crossbars // crossbars per engine
  (Feinberg: 1048576 // 472 = 2221; ReFloat(7,3,3): 1048576 // 48 = 21845);
* a whole-matrix SpMV needs one engine per occupied block; if that exceeds
  the available engines the SpMV runs in ``rounds = ceil(needed/available)``
  passes, each paying a full cell rewrite (the "cell writing and cluster
  invoking" overhead that makes Feinberg *slower than the GPU* on the big
  scattered matrices);
* when the matrix fits, it is written once per solve and every SpMV costs
  just the pipelined block-MVM latency (blocks run in parallel, block-column
  partial sums are reduced by the MAC units, modelled as pipelined).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.formats.refloat import ReFloatSpec
from repro.hardware.cost import (
    FEINBERG_CROSSBARS_PER_ENGINE,
    FEINBERG_CYCLES,
    crossbars_for_spec,
    cycles_for_spec,
)

__all__ = ["AcceleratorConfig", "MappingPlan", "SolverTimingModel"]


@dataclass(frozen=True)
class AcceleratorConfig:
    """Physical organisation and latency constants (Table IV)."""

    name: str = "ReFloat"
    banks: int = 128
    units_per_bank: int = 128          # subbanks (ReFloat) or clusters (Feinberg)
    crossbars_per_unit: int = 64
    crossbar_rows: int = 128
    cell_bits: int = 1
    compute_latency_s: float = 107e-9  # one crossbar read incl. ADC ([32])
    write_latency_s: float = 50.88e-9  # one row write, SLC [74]
    mac_throughput_ops_s: float = 1.6384e13  # 128 banks x 128 lanes @ 1 GHz

    @property
    def total_crossbars(self) -> int:
        return self.banks * self.units_per_bank * self.crossbars_per_unit

    @property
    def compute_bits(self) -> int:
        """Total ReRAM compute bits (Table IV: 17.1 Gb for both designs)."""
        return self.total_crossbars * self.crossbar_rows ** 2 * self.cell_bits

    @property
    def block_write_time_s(self) -> float:
        """Writing one crossbar (rows serial, crossbars of a unit parallel)."""
        return self.crossbar_rows * self.write_latency_s

    @classmethod
    def refloat_default(cls) -> "AcceleratorConfig":
        return cls()

    @classmethod
    def feinberg_default(cls) -> "AcceleratorConfig":
        return cls(name="Feinberg", units_per_bank=64, crossbars_per_unit=128)


@dataclass(frozen=True)
class MappingPlan:
    """How one matrix maps onto an accelerator for SpMV."""

    blocks_needed: int
    crossbars_per_engine: int
    engines_available: int
    cycles_per_mvm: int
    config: AcceleratorConfig

    @property
    def rounds(self) -> int:
        """Mapping passes per SpMV (1 = matrix resident)."""
        if self.blocks_needed == 0:
            return 1
        return math.ceil(self.blocks_needed / self.engines_available)

    @property
    def resident(self) -> bool:
        return self.rounds == 1

    @property
    def mvm_time_s(self) -> float:
        """Latency of the pipelined block MVMs of one pass."""
        return self.cycles_per_mvm * self.config.compute_latency_s

    @property
    def spmv_time_s(self) -> float:
        """One whole-matrix SpMV.

        Resident: one pipelined pass.  Multi-round: every round re-writes the
        engines' cells (row-serial) and then computes.
        """
        if self.resident:
            return self.mvm_time_s
        return self.rounds * (self.config.block_write_time_s + self.mvm_time_s)

    @property
    def setup_time_s(self) -> float:
        """One-time matrix mapping cost (only charged when resident;
        multi-round mappings pay writes inside every SpMV instead)."""
        return self.config.block_write_time_s if self.resident else 0.0

    @classmethod
    def for_refloat(cls, n_blocks: int, spec: ReFloatSpec,
                    config: Optional[AcceleratorConfig] = None) -> "MappingPlan":
        config = config or AcceleratorConfig.refloat_default()
        cpe = crossbars_for_spec(spec)
        return cls(n_blocks, cpe, config.total_crossbars // cpe,
                   cycles_for_spec(spec), config)

    @classmethod
    def for_feinberg(cls, n_blocks: int,
                     config: Optional[AcceleratorConfig] = None) -> "MappingPlan":
        config = config or AcceleratorConfig.feinberg_default()
        cpe = FEINBERG_CROSSBARS_PER_ENGINE
        return cls(n_blocks, cpe, config.total_crossbars // cpe,
                   FEINBERG_CYCLES, config)


@dataclass(frozen=True)
class SolverTimingModel:
    """Whole-solve latency on an accelerator.

    ``vector_ops_per_iteration`` counts n-length streaming operations (dots,
    axpys, the vector converter) executed by the MAC units each iteration.
    """

    plan: MappingPlan
    spmvs_per_iteration: int = 1
    vector_ops_per_iteration: int = 6

    def vector_time_s(self, n_rows: int) -> float:
        return (self.vector_ops_per_iteration * n_rows
                / self.plan.config.mac_throughput_ops_s)

    def iteration_time_s(self, n_rows: int) -> float:
        return (self.spmvs_per_iteration * self.plan.spmv_time_s
                + self.vector_time_s(n_rows))

    def solve_time_s(self, iterations: int, n_rows: int,
                     include_setup: bool = True) -> float:
        """Whole-solve time.  ``include_setup=False`` drops the one-time
        matrix write — the steady-state accounting the paper's speedups use
        (matters only for solves of a handful of iterations, e.g. gridgena)."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        setup = self.plan.setup_time_s if include_setup else 0.0
        return setup + iterations * self.iteration_time_s(n_rows)
