"""Analytic hardware cost model: Eqs. (2) and (3) and the paper's constants.

These two closed forms drive everything in the evaluation:

* crossbar count per block engine (hardware cost / parallelism),
* cycle count per block MVM (latency).

The module also records the worked constants the paper quotes so tests can
pin them: FP64 -> 8404 crossbars / 4201 cycles; Feinberg -> 472 crossbars
(4 x 118, the [32] mapping carries one extra bit-slice) / 233 cycles;
ReFloat(7,3,3)(3,8) -> 48 crossbars / 28 cycles.
"""

from __future__ import annotations

from repro.formats.refloat import ReFloatSpec

__all__ = [
    "crossbars_per_engine",
    "cycles_per_block_mvm",
    "fixed_point_mvm_cycles",
    "crossbars_for_spec",
    "cycles_for_spec",
    "FEINBERG_CROSSBARS_PER_ENGINE",
    "FEINBERG_CYCLES",
]


def crossbars_per_engine(e: int, f: int) -> int:
    """Eq. (2): ``C = 4 * (2^e + f + 1)``.

    ``(f + 1)`` bit-slices hold the normalised fraction, ``2^e`` padding
    slices align the exponent window, and the factor 4 covers the sign
    quadrants of matrix and vector (positive/negative crossbar copies).
    FP64 (e=11, f=52): ``4 * (2048 + 53) = 8404`` — the paper's number.
    """
    if e < 0 or f < 0:
        raise ValueError("bit counts must be non-negative")
    return 4 * ((1 << e) + f + 1)


def cycles_per_block_mvm(e: int, f: int, ev: int, fv: int) -> int:
    """Eq. (3): ``T = (2^ev + fv + 1) + (2^e + f + 1) - 1``.

    ``(2^ev + fv + 1)`` input bits stream through the 1-bit DACs; each needs
    the ``(2^e + f + 1)``-stage shift-and-add reduction, pipelined.
    FP64: 4201; Feinberg (6-bit exponent assumption): 233; default ReFloat:
    ``(8 + 8 + 1) + (8 + 3 + 1) - 1 = 28``.
    """
    if min(e, f, ev, fv) < 0:
        raise ValueError("bit counts must be non-negative")
    return ((1 << ev) + fv + 1) + ((1 << e) + f + 1) - 1


def fixed_point_mvm_cycles(matrix_bits: int, vector_bits: int) -> int:
    """Cycle count of the plain fixed-point pipeline of Fig. 2:
    ``C_int = N_v + (N_M - 1)``."""
    if matrix_bits < 1 or vector_bits < 1:
        raise ValueError("bit widths must be positive")
    return vector_bits + matrix_bits - 1


def crossbars_for_spec(spec: ReFloatSpec) -> int:
    """Eq. (2) applied to a ReFloat configuration."""
    return crossbars_per_engine(spec.e, spec.f)


def cycles_for_spec(spec: ReFloatSpec) -> int:
    """Eq. (3) applied to a ReFloat configuration."""
    return cycles_per_block_mvm(spec.e, spec.f, spec.ev, spec.fv)


#: The [32] mapping costs the paper uses for the Feinberg baseline: 118
#: crossbars per sign quadrant (the extra +1 slice beyond Eq. 2's 117 is the
#: [32] mapping detail the paper carries through: 1048576 // 472 = 2221
#: engines, the paper's number).
FEINBERG_CROSSBARS_PER_ENGINE = 4 * 118

#: Feinberg per-block cycles under the paper's 6-bit-exponent assumption.
FEINBERG_CYCLES = cycles_per_block_mvm(6, 52, 6, 52)
