"""ReRAM device-noise models (Section VI-D).

Random telegraph noise (RTN) is the dominant read-noise mechanism in
metal-oxide ReRAM cells [17]; accelerator studies ([3], [32], [47]) model it
as a zero-mean multiplicative deviation of each cell's conductance.  We
follow that convention: each stored value's effective conductance is
``g * (1 + delta)`` with ``delta ~ N(0, sigma^2)`` redrawn at every analog
read (no error correction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import SeedLike, default_rng
from repro.util.validation import check_in_range

__all__ = ["RTNModel"]


@dataclass
class RTNModel:
    """Random-telegraph-noise generator.

    Parameters
    ----------
    sigma : float
        Relative conductance deviation (the paper sweeps 0.001 .. 0.25).
    clip : float
        Deviations are clipped to ``[-clip, +clip]`` sigmas to keep
        conductances physical (a cell cannot go negative); 4-sigma clipping
        changes moments negligibly for the swept range.
    """

    sigma: float
    clip: float = 4.0

    def __post_init__(self) -> None:
        check_in_range(self.sigma, "sigma", 0.0, 1.0)
        if self.clip <= 0:
            raise ValueError("clip must be positive")

    def factors(self, n: int, rng: SeedLike = None) -> np.ndarray:
        """Multiplicative factors ``1 + delta`` for ``n`` cells."""
        if self.sigma == 0.0:
            return np.ones(n)
        gen = default_rng(rng)
        delta = gen.standard_normal(n)
        np.clip(delta, -self.clip, self.clip, out=delta)
        return 1.0 + self.sigma * delta

    def perturb(self, values: np.ndarray, rng: SeedLike = None) -> np.ndarray:
        """Apply one fresh noise realisation to stored values."""
        values = np.asarray(values, dtype=np.float64)
        return values * self.factors(values.size, rng).reshape(values.shape)
