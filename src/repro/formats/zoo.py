"""Named floating-point formats as ReFloat special cases (Table III).

The paper observes that ReFloat generalises the common reduced-precision
formats: with block size 1 (``b = 0``) the block exponent base is the value's
own exponent, offsets are 0, and the format degenerates to a plain
(sign, exponent, fraction) float with the given bit budget.  Table III:

====================  =====================
Int8                  ReFloat(0, 0, 7)
Int16                 ReFloat(0, 0, 15)
bfloat16              ReFloat(0, 8, 7)
ms-fp9                ReFloat(0, 5, 3)
FP32 (float)          ReFloat(0, 8, 23)
TensorFloat32         ReFloat(0, 8, 10)
FP64 (double)         ReFloat(0, 11, 52)
BFP64                 ReFloat(6, 0, 52)
====================  =====================

The named specs here set ``ev/fv`` equal to ``e/f`` (vector treated the same
as the matrix) — these are format descriptions, not accelerator configs.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.formats.refloat import ReFloatSpec, quantize_values

__all__ = ["FORMAT_ZOO", "named_spec", "quantize_to_named_format"]


def _spec(b: int, e: int, f: int) -> ReFloatSpec:
    return ReFloatSpec(b=b, e=e, f=f, ev=e, fv=f)


#: Table III, exactly.
FORMAT_ZOO: Dict[str, ReFloatSpec] = {
    "int8": _spec(0, 0, 7),
    "int16": _spec(0, 0, 15),
    "bfloat16": _spec(0, 8, 7),
    "ms-fp9": _spec(0, 5, 3),
    "fp32": _spec(0, 8, 23),
    "tensorfloat32": _spec(0, 8, 10),
    "fp64": _spec(0, 11, 52),
    "bfp64": _spec(6, 0, 52),
}


def named_spec(name: str) -> ReFloatSpec:
    """Look up a Table III format by (case-insensitive) name."""
    key = name.lower()
    if key not in FORMAT_ZOO:
        raise KeyError(
            f"unknown format {name!r}; available: {sorted(FORMAT_ZOO)}"
        )
    return FORMAT_ZOO[key]


def quantize_to_named_format(x, name: str) -> np.ndarray:
    """Quantise values elementwise under a Table III format.

    For ``b = 0`` formats each value is its own block, so the exponent base is
    the value's own exponent and only the fraction truncation bites (the
    *exponent field width* of e.g. bfloat16 constrains range, which float64
    inputs in this package never exceed — consistent with treating these as
    fraction-budget comparisons, as the paper's Figure 1 does).
    """
    spec = named_spec(name)
    x = np.asarray(x, dtype=np.float64)
    if spec.b == 0:
        out, _ = quantize_values(x, spec.e, spec.f, eb=None if x.size == 1 else _own_base(x),
                                 rounding=spec.rounding)
        return out
    # Blocked formats (BFP64): quantise per block of 2^b.
    size = spec.block_size
    out = np.empty_like(x)
    for start in range(0, x.size, size):
        seg = x[start:start + size]
        out[start:start + size], _ = quantize_values(seg, spec.e, spec.f,
                                                     rounding=spec.rounding)
    return out


def _own_base(x: np.ndarray) -> np.ndarray:
    """Per-element exponent base = each value's own exponent (b = 0 case)."""
    from repro.formats import ieee

    _, exp, _ = ieee.decompose(x)
    return np.where(exp == ieee.EXP_ZERO, 0, exp).astype(np.int32)
