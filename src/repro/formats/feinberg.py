"""Model of the Feinberg et al. [32] (ISCA'18) floating-point mapping.

[32] maps double-precision matrices to crossbars by keeping the full 52-bit
fraction and aligning exponents inside a 64-slot "padding" window (6 exponent
bits).  Matrix values whose exponents exceed the window are handled by FPUs,
so *matrix* values are effectively exact.  The paper's Section III-C critique
is that the *vector* has no such fallback: at every iteration the solver's
vectors are driven through the fixed-point window that the matrix mapping
defines, and values falling outside that window are mangled — which is why
[32] fails to converge on half of the evaluation suite.

We model the vector datapath as a fixed-point window of ``2^exp_bits`` binades
anchored at the matrix's maximum entry exponent:

* magnitudes *above* the window top ``2^(anchor+1)`` are out of range: policy
  ``"wrap"`` (default; exponent high bits dropped, value lands in a wrong
  binade — the mod-64 behaviour), ``"clamp"`` (saturate to the window top) or
  ``"flush"`` (drop to zero);
* magnitudes *below* the window bottom are below the fixed-point resolution
  and flush to zero;
* inside the window, the value keeps ``frac_bits`` fraction bits (52 in [32],
  i.e. effectively exact).

The anchor is computed once from the matrix ("the matrix value does not
change") — this staleness is exactly the flaw the paper identifies.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.formats import ieee

__all__ = ["FeinbergSpec", "matrix_anchor_exponent", "quantize_vector_feinberg"]


@dataclass(frozen=True)
class FeinbergSpec:
    """Configuration of the [32] vector datapath model.

    Parameters
    ----------
    exp_bits : int
        Exponent bits of the padding window (6 in [32] -> 64 binades).
    frac_bits : int
        Fraction bits kept inside the window (52 in [32]).
    policy : str
        Out-of-range-above policy: ``"wrap"`` | ``"clamp"`` | ``"flush"``.
    """

    exp_bits: int = 6
    frac_bits: int = 52
    policy: str = "wrap"

    def __post_init__(self) -> None:
        if not 1 <= self.exp_bits <= 11:
            raise ValueError(f"exp_bits must be in [1, 11], got {self.exp_bits}")
        if not 0 <= self.frac_bits <= ieee.FRAC_BITS:
            raise ValueError(f"frac_bits must be in [0, 52], got {self.frac_bits}")
        if self.policy not in ("wrap", "clamp", "flush"):
            raise ValueError(f"policy must be wrap|clamp|flush, got {self.policy!r}")

    @property
    def window(self) -> int:
        """Number of binades covered by the padding window (the "64 paddings")."""
        return 1 << self.exp_bits


def matrix_anchor_exponent(matrix_values) -> int:
    """Window anchor: the maximum unbiased exponent over the matrix nonzeros.

    [32] aligns fraction slices against the largest exponent of the mapped
    (sub)matrix; the vector fixed-point window inherits that anchor.
    """
    field = ieee.exponent_field(matrix_values)
    nz = field[field != 0]
    if nz.size == 0:
        raise ValueError("matrix has no nonzero values")
    return int(nz.max()) - ieee.EXP_BIAS


def quantize_vector_feinberg(x, anchor, spec: FeinbergSpec) -> np.ndarray:
    """Push a vector through the [32] fixed-point window.

    Parameters
    ----------
    x : array_like of float64
    anchor : int or int array broadcastable to ``x``
        Window top exponent (from :func:`matrix_anchor_exponent`); an array
        gives each element its own anchor (per-block-column windows).
    spec : FeinbergSpec

    Returns
    -------
    ndarray of float64 — the values the crossbar datapath actually sees.
    """
    x = np.asarray(x, dtype=np.float64)
    sign, exp, frac = ieee.decompose(x)
    zero = exp == ieee.EXP_ZERO
    qfrac = ieee.truncate_fraction(frac, spec.frac_bits)

    anchor = np.broadcast_to(np.asarray(anchor, dtype=np.int64), x.shape)
    lo = anchor - spec.window + 1  # lowest representable exponent
    e64 = exp.astype(np.int64)
    above = (~zero) & (e64 > anchor)
    below = (~zero) & (e64 < lo)

    qexp = e64.copy()
    if spec.policy == "wrap":
        # Only the low exp_bits of the (biased) exponent are kept; reconstruct
        # against the anchor's high bits.  Values above the window reappear
        # 2^exp_bits binades lower (mod-64 aliasing).
        mod = spec.window
        wrapped = lo + ((e64 - lo) % mod)
        qexp = np.where(above, wrapped, qexp)
    elif spec.policy == "clamp":
        qexp = np.where(above, anchor, qexp)
        qfrac = np.where(above, np.uint64(0), qfrac)
    else:  # flush
        qexp = np.where(above, np.int64(ieee.EXP_ZERO), qexp)
        qfrac = np.where(above, np.uint64(0), qfrac)

    # Below the fixed-point resolution: flush to zero in every policy.
    qexp = np.where(below, np.int64(ieee.EXP_ZERO), qexp)
    qfrac = np.where(below, np.uint64(0), qfrac)
    qexp = np.where(zero, np.int64(ieee.EXP_ZERO), qexp)
    return ieee.compose(sign, qexp, qfrac)
