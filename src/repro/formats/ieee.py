"""Vectorised IEEE-754 double-precision bit manipulation.

Every quantised format in this package (ReFloat, Feinberg's truncated format,
plain truncated floats, block floating point) is defined in terms of the IEEE
double-precision fields::

    value = (-1)^sign * (1.f51 f50 ... f0) * 2^(e_biased - 1023)

This module provides the vectorised decompose/compose primitives on top of
NumPy bit views, plus fraction truncation/rounding.  Conventions:

* **Exponents are unbiased** everywhere in this package (``e = e_biased - 1023``),
  matching the paper's ``(a)_e`` notation.
* **Fractions** are 52-bit unsigned integers (the stored mantissa field); the
  implied leading 1 is *not* included.  The paper's ``(a)_f in (1, 2)`` real
  fraction is ``1 + frac / 2**52``.
* **Zeros** are reported with exponent :data:`EXP_ZERO` (a large negative
  sentinel) so downstream reductions can mask them out cheaply.
* **Subnormals** flush to zero (sentinel exponent) — ReRAM mappings have no
  subnormal path, and all evaluated matrices are far from the subnormal range.
* **Inf/NaN** raise ``ValueError``: they cannot be mapped to crossbars and
  indicate an upstream bug.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "EXP_ZERO",
    "FRAC_BITS",
    "EXP_BIAS",
    "decompose",
    "compose",
    "exponent_of",
    "exponent_field",
    "truncate_fraction",
    "round_fraction",
    "quantize_ieee",
]

#: Number of stored fraction bits in IEEE-754 binary64.
FRAC_BITS = 52

#: Exponent bias in IEEE-754 binary64.
EXP_BIAS = 1023

#: Sentinel unbiased exponent reported for (flushed-to-)zero values.  Chosen
#: far below any representable exponent (min normal is -1022) so masked
#: arithmetic never confuses it with a real exponent.
EXP_ZERO = -(1 << 20)

_FRAC_MASK = np.uint64((1 << FRAC_BITS) - 1)
_EXP_MASK = np.uint64(0x7FF)


#: Single source of the non-finite rejection message (decompose,
#: exponent_field, and the vector-converter fast path all raise it).
NONFINITE_MSG = "decompose/quantize requires finite values (no inf/nan)"


def _as_float_array(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if not np.all(np.isfinite(arr)):
        raise ValueError(NONFINITE_MSG)
    return arr


def decompose(x) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split float64 values into ``(sign, exponent, fraction)`` arrays.

    Parameters
    ----------
    x : array_like of float64
        Finite values.  Subnormals are flushed to zero.

    Returns
    -------
    sign : ndarray of int8
        0 for non-negative, 1 for negative (IEEE sign bit; sign of -0.0 is
        reported but the value is treated as zero).
    exponent : ndarray of int32
        Unbiased exponent; :data:`EXP_ZERO` for zeros/subnormals.
    fraction : ndarray of uint64
        The 52-bit stored fraction field (0 for zeros/subnormals).
    """
    arr = _as_float_array(x)
    bits = arr.view(np.uint64) if arr.flags.c_contiguous else np.ascontiguousarray(arr).view(np.uint64)
    sign = (bits >> np.uint64(63)).astype(np.int8)
    exp_biased = ((bits >> np.uint64(FRAC_BITS)) & _EXP_MASK).astype(np.int32)
    frac = bits & _FRAC_MASK
    exponent = exp_biased - EXP_BIAS
    # Zeros and subnormals share exp_biased == 0; flush both to exact zero.
    zero_mask = exp_biased == 0
    exponent = np.where(zero_mask, np.int32(EXP_ZERO), exponent)
    frac = np.where(zero_mask, np.uint64(0), frac)
    return sign, exponent.astype(np.int32), frac


def compose(sign, exponent, fraction) -> np.ndarray:
    """Inverse of :func:`decompose` (for normal values and the zero sentinel).

    Values whose exponent would leave the normal range of binary64 raise
    ``ValueError`` — quantised formats in this package never produce them.
    """
    sign = np.asarray(sign)
    exponent = np.asarray(exponent, dtype=np.int64)
    fraction = np.asarray(fraction, dtype=np.uint64)
    zero_mask = exponent <= -EXP_BIAS  # includes the EXP_ZERO sentinel
    exp_b = np.where(zero_mask, 0, exponent + EXP_BIAS)
    if np.any((exp_b < 0) | (exp_b > 2046)):
        raise ValueError("composed exponent outside binary64 normal range")
    frac_clean = np.where(zero_mask, np.uint64(0), fraction & _FRAC_MASK)
    bits = (
        (sign.astype(np.uint64) << np.uint64(63))
        | (exp_b.astype(np.uint64) << np.uint64(FRAC_BITS))
        | frac_clean
    )
    out = bits.view(np.float64)
    # Normalise -0.0 to +0.0 so round-trips are exact for the zero sentinel.
    return out + 0.0


def exponent_of(x) -> np.ndarray:
    """Unbiased exponent (``floor(log2|x|)``) of each value; EXP_ZERO for 0."""
    _, e, _ = decompose(x)
    return e


def exponent_field(x, validate: bool = True) -> np.ndarray:
    """The raw *biased* 11-bit exponent field of each float64, as uint64.

    The cheap sibling of :func:`decompose` for exponent-only consumers (the
    vector-converter hot path): no sign/fraction extraction and no separate
    float finiteness pass.  Zeros *and subnormals* report field 0 (matching
    :func:`decompose`'s flush-to-zero convention: ``field == 0`` iff
    ``decompose`` reports :data:`EXP_ZERO`); normal values report
    ``unbiased + EXP_BIAS``.  With ``validate`` (the default) inf/NaN
    (field 2047) raise ``ValueError`` like :func:`decompose`; hot-path
    callers that already reduce the fields may pass ``validate=False`` and
    test their reduction against 2047 instead, saving the extra pass.
    """
    arr = np.asarray(x, dtype=np.float64)
    bits = arr.view(np.uint64) if arr.flags.c_contiguous else np.ascontiguousarray(arr).view(np.uint64)
    field = (bits >> np.uint64(FRAC_BITS)) & _EXP_MASK
    if validate and np.any(field == 0x7FF):
        raise ValueError(NONFINITE_MSG)
    return field


def truncate_fraction(fraction, f: int) -> np.ndarray:
    """Keep the leading ``f`` bits of 52-bit fractions, zeroing the rest.

    This is the paper's conversion rule ("we only keep the leading f bits from
    the original fraction bits and remove the rest").
    """
    if not 0 <= f <= FRAC_BITS:
        raise ValueError(f"fraction bit count must be in [0, {FRAC_BITS}], got {f}")
    fraction = np.asarray(fraction, dtype=np.uint64)
    shift = np.uint64(FRAC_BITS - f)
    return (fraction >> shift) << shift


def round_fraction(fraction, f: int) -> Tuple[np.ndarray, np.ndarray]:
    """Round 52-bit fractions to ``f`` bits (round-half-up on the cut bit).

    Returns
    -------
    rounded : ndarray of uint64
        Fraction with only the top ``f`` bits significant.
    carry : ndarray of bool
        True where rounding overflowed the fraction (1.111... -> 10.0), in
        which case the caller must increment the exponent and use fraction 0.
    """
    if not 0 <= f <= FRAC_BITS:
        raise ValueError(f"fraction bit count must be in [0, {FRAC_BITS}], got {f}")
    fraction = np.asarray(fraction, dtype=np.uint64)
    if f == FRAC_BITS:
        return fraction.copy(), np.zeros(fraction.shape, dtype=bool)
    shift = np.uint64(FRAC_BITS - f)
    half = np.uint64(1) << np.uint64(FRAC_BITS - f - 1)
    bumped = fraction + half
    # The fraction field is 52 bits wide inside the uint64; mantissa overflow
    # (1.111... -> 10.000...) sets bit 52.
    carry = (bumped >> np.uint64(FRAC_BITS)) != 0
    rounded = (bumped >> shift) << shift
    rounded = np.where(carry, np.uint64(0), rounded)
    return rounded, carry


def quantize_ieee(x, exp_bits: int, frac_bits: int, rounding: str = "truncate") -> np.ndarray:
    """Quantise values to a reduced IEEE-like format (Table I semantics).

    The fraction keeps ``frac_bits`` leading bits.  The *biased* exponent keeps
    its low ``exp_bits`` bits — the mod-2^exp_bits truncation that [32]'s
    padding scheme performs — reconstructed against the high bits of the bias
    (1023), so values near magnitude 1 survive and values whose exponent
    differs in a dropped high bit are wrapped to the wrong binade.  This is
    the mechanism behind the non-convergence rows of Table I.

    Zeros pass through exactly.
    """
    if not 1 <= exp_bits <= 11:
        raise ValueError(f"exp_bits must be in [1, 11], got {exp_bits}")
    sign, e, frac = decompose(x)
    zero = e == EXP_ZERO
    if rounding == "truncate":
        qfrac = truncate_fraction(frac, frac_bits)
        carry = np.zeros(qfrac.shape, dtype=bool)
    elif rounding == "nearest":
        qfrac, carry = round_fraction(frac, frac_bits)
    else:
        raise ValueError(f"rounding must be 'truncate' or 'nearest', got {rounding!r}")
    e_adj = e.astype(np.int64) + carry.astype(np.int64)
    if exp_bits == 11:
        qe = e_adj
    else:
        mod = 1 << exp_bits
        biased = e_adj + EXP_BIAS
        # Keep the low exp_bits; splice onto the high bits of the bias itself.
        base_high = (EXP_BIAS // mod) * mod
        qe = base_high + (biased % mod) - EXP_BIAS
    qe = np.where(zero, np.int64(EXP_ZERO), qe)
    return compose(sign, qe, qfrac)
