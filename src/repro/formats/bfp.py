"""Block floating point (BFP) — the non-dynamic-range baseline of Section II-C.

In BFP a block of values shares a single exponent and each element stores a
*fixed-point* mantissa aligned to that exponent.  Unlike ReFloat there is no
per-element exponent offset: a value ``2^k`` below the shared exponent loses
``k`` mantissa bits outright, which is why "1e-40 and 1e-30 cannot be captured
by a BFP block" (the small one underflows to zero once ``k`` exceeds the
mantissa width).

Table III expresses BFP64 as ``ReFloat(6, 0, 52)`` — zero offset bits.  This
module provides the direct fixed-point formulation, used for cross-checking
that equivalence and for the format-comparison example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.formats import ieee

__all__ = ["BFPSpec", "quantize_block_bfp", "quantize_vector_bfp"]


@dataclass(frozen=True)
class BFPSpec:
    """Block floating point with ``2^b``-element blocks and m-bit mantissas."""

    b: int = 7
    mantissa_bits: int = 52

    def __post_init__(self) -> None:
        if not 0 <= self.b <= 12:
            raise ValueError(f"b must be in [0, 12], got {self.b}")
        if not 1 <= self.mantissa_bits <= 63:
            raise ValueError(f"mantissa_bits must be in [1, 63], got {self.mantissa_bits}")

    @property
    def block_size(self) -> int:
        return 1 << self.b


def quantize_block_bfp(values, spec: BFPSpec) -> Tuple[np.ndarray, int]:
    """Quantise one block to BFP: shared max exponent, fixed-point mantissas.

    The shared exponent is the block's maximum element exponent (standard BFP
    normalisation).  Each element becomes
    ``round_to_zero(x / 2^(emax - m + 1)) * 2^(emax - m + 1)`` with ``m``
    mantissa bits (including the integer bit of the largest element).

    Returns ``(quantized, shared_exponent)``.
    """
    x = np.asarray(values, dtype=np.float64)
    _, exp, _ = ieee.decompose(x)
    nz = exp != ieee.EXP_ZERO
    if not np.any(nz):
        return np.zeros_like(x), 0
    emax = int(exp[nz].max())
    # Unit in the last place of the fixed-point grid.
    ulp_exp = emax - spec.mantissa_bits + 1
    scale = np.ldexp(1.0, -ulp_exp)
    q = np.trunc(x * scale)
    # The largest-magnitude element uses all mantissa_bits; no clipping needed
    # because |x| < 2^(emax+1) implies |q| < 2^mantissa_bits.
    return q / scale, emax


def quantize_vector_bfp(x, spec: BFPSpec) -> np.ndarray:
    """Quantise a vector block-by-block with :func:`quantize_block_bfp`."""
    x = np.asarray(x, dtype=np.float64)
    size = spec.block_size
    out = np.empty_like(x)
    for start in range(0, x.size, size):
        out[start:start + size], _ = quantize_block_bfp(x[start:start + size], spec)
    return out
