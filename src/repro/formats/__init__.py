"""Number formats: IEEE-754 bit tools, ReFloat, Feinberg, BFP, format zoo."""

from repro.formats.ieee import (
    EXP_ZERO,
    FRAC_BITS,
    EXP_BIAS,
    decompose,
    compose,
    exponent_of,
    truncate_fraction,
    round_fraction,
    quantize_ieee,
)
from repro.formats.refloat import (
    ReFloatSpec,
    DEFAULT_SPEC,
    EncodedBlock,
    optimal_exponent_base,
    covering_exponent_base,
    exponent_loss,
    offset_bounds,
    quantize_values,
    encode_values,
    decode_values,
    quantize_vector,
    quantize_vector_storage,
    vector_segment_bases,
)
from repro.formats.feinberg import (
    FeinbergSpec,
    matrix_anchor_exponent,
    quantize_vector_feinberg,
)
from repro.formats.bfp import BFPSpec, quantize_block_bfp, quantize_vector_bfp
from repro.formats.zoo import FORMAT_ZOO, named_spec, quantize_to_named_format

__all__ = [
    "EXP_ZERO",
    "FRAC_BITS",
    "EXP_BIAS",
    "decompose",
    "compose",
    "exponent_of",
    "truncate_fraction",
    "round_fraction",
    "quantize_ieee",
    "ReFloatSpec",
    "DEFAULT_SPEC",
    "EncodedBlock",
    "optimal_exponent_base",
    "covering_exponent_base",
    "exponent_loss",
    "offset_bounds",
    "quantize_values",
    "encode_values",
    "decode_values",
    "quantize_vector",
    "quantize_vector_storage",
    "vector_segment_bases",
    "FeinbergSpec",
    "matrix_anchor_exponent",
    "quantize_vector_feinberg",
    "BFPSpec",
    "quantize_block_bfp",
    "quantize_vector_bfp",
    "FORMAT_ZOO",
    "named_spec",
    "quantize_to_named_format",
]
