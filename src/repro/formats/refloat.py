"""The ReFloat data format (Section IV of the paper).

``ReFloat(b, e, f)(ev, fv)`` represents a ``2^b × 2^b`` matrix block by

* one shared exponent base ``eb`` per block — the round-to-nearest mean of the
  element exponents, which is the closed-form minimiser of the paper's loss
  (Eq. 5);
* per element: 1 sign bit, an ``e``-bit signed exponent *offset* from ``eb``
  saturated to ``[-(2^(e-1)-1), +(2^(e-1)-1)]``, and the leading ``f`` bits of
  the IEEE fraction.

Vector segments of length ``2^b`` use the same scheme with ``(ev, fv)`` bits
and their own base ``ebv`` (Section V-B's vector converter).

This module implements the scalar/array codec; the sparse-block machinery that
applies it per matrix block lives in :mod:`repro.sparse.blocked`.

Hot-path architecture
---------------------
The vector converter runs once per solver iteration, so it is the hottest
format kernel in the package.  Two mechanisms keep it allocation- and
redundancy-free:

* segment reductions use ``np.maximum.reduceat`` / ``np.logical_or.reduceat``
  over the precomputed contiguous segment boundaries (segments of a vector
  are contiguous runs of ``2^b`` elements) instead of ``np.ufunc.at``
  scatters, which are an order of magnitude slower;
* :class:`VectorConverterPlan` precomputes, once per ``(n, spec)`` pair,
  everything :func:`quantize_vector` would otherwise rebuild per call —
  segment ids, reduceat boundaries, and reusable per-thread output buffers —
  and is cached process-wide by :func:`vector_converter_plan`.  Plan-backed
  callers (``ReFloatOperator.matvec``, the processing engines) perform no
  avoidable allocations per conversion.

:func:`quantize_vector_reference` keeps the original straight-line
implementation; the property tests assert the plan path is bit-identical.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Optional, Tuple

import numpy as np

from repro.formats import ieee
from repro.util.validation import check_nonnegative_int

__all__ = [
    "ReFloatSpec",
    "DEFAULT_SPEC",
    "EncodedBlock",
    "VectorConverterPlan",
    "vector_converter_plan",
    "optimal_exponent_base",
    "covering_exponent_base",
    "exponent_loss",
    "offset_bounds",
    "quantize_values",
    "encode_values",
    "decode_values",
    "quantize_vector",
    "quantize_vector_reference",
    "quantize_vector_storage",
    "vector_segment_bases",
]


def _check_bits(value: int, name: str, hi: int) -> int:
    value = check_nonnegative_int(value, name)
    if value > hi:
        raise ValueError(f"{name} must be <= {hi}, got {value}")
    return value


@dataclass(frozen=True)
class ReFloatSpec:
    """Hyper-parameters of a ``ReFloat(b, e, f)(ev, fv)`` format.

    Parameters
    ----------
    b : int
        log2 of the square block edge; blocks are ``2^b x 2^b`` and vector
        segments have length ``2^b``.  The paper uses ``b = 7`` (128x128
        crossbars).
    e, f : int
        Exponent-offset and fraction bit counts for matrix blocks.
    ev, fv : int
        Exponent-offset and fraction bit counts for vector segments.
    rounding : str
        ``"truncate"`` (paper default: keep leading fraction bits) or
        ``"nearest"``.
    underflow : str
        Treatment of values whose exponent falls *below* the offset window:
        ``"flush"`` (default) drops them to zero — the fixed-point semantics
        of a window-aligned datapath (the value is below the representable
        LSB), matching how crossbar bit-slices behave; ``"saturate"`` clamps
        the offset at its minimum, *inflating* tiny values to the window
        bottom.  Values above the window always saturate downward at the top
        (only reachable with ``eb_policy="mean"``).
    eb_policy : str
        How the per-block exponent base is chosen:

        * ``"cover"`` (default) — ``eb = e_max - (2^(e-1) - 1)``, anchoring
          the offset window at the block's largest exponent, exactly like the
          padding alignment of the crossbar mapping.  Whenever the block's
          exponent range fits the ``2^e``-binade window (the paper's Fig. 3d
          locality data: every evaluated matrix fits with e=3), exponents are
          represented *exactly*; out-of-window small values saturate upward —
          a bounded error of at most ``2^(e_max - 2^e + 1)``, i.e. relative to
          the block's largest value, which preserves positive-definiteness.
        * ``"mean"`` — the literal Eq. 5 closed form (round of the mean
          exponent).  Minimises the unclipped exponent loss, but on blocks
          with skewed exponent distributions it can push the *largest*
          entries out of window and shrink them by power-of-two factors,
          destroying SPD-ness.  Kept for fidelity/ablation.
    """

    b: int = 7
    e: int = 3
    f: int = 3
    ev: int = 3
    fv: int = 8
    rounding: str = "truncate"
    underflow: str = "flush"
    eb_policy: str = "cover"

    def __post_init__(self) -> None:
        _check_bits(self.b, "b", 12)
        _check_bits(self.e, "e", 11)
        _check_bits(self.f, "f", ieee.FRAC_BITS)
        _check_bits(self.ev, "ev", 11)
        _check_bits(self.fv, "fv", ieee.FRAC_BITS)
        if self.rounding not in ("truncate", "nearest"):
            raise ValueError(
                f"rounding must be 'truncate' or 'nearest', got {self.rounding!r}"
            )
        if self.underflow not in ("flush", "saturate"):
            raise ValueError(
                f"underflow must be 'flush' or 'saturate', got {self.underflow!r}"
            )
        if self.eb_policy not in ("cover", "mean"):
            raise ValueError(
                f"eb_policy must be 'cover' or 'mean', got {self.eb_policy!r}"
            )

    # ---- derived sizes -------------------------------------------------
    @property
    def block_size(self) -> int:
        """Edge length of a square block (= vector segment length)."""
        return 1 << self.b

    @property
    def matrix_value_bits(self) -> int:
        """Stored bits per matrix element: sign + offset + fraction."""
        return 1 + self.e + self.f

    @property
    def vector_value_bits(self) -> int:
        """Stored bits per vector element: sign + offset + fraction."""
        return 1 + self.ev + self.fv

    def with_vector_bits(self, ev: Optional[int] = None, fv: Optional[int] = None) -> "ReFloatSpec":
        """Copy of this spec with different vector bit counts."""
        return replace(
            self,
            ev=self.ev if ev is None else ev,
            fv=self.fv if fv is None else fv,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReFloat({self.b},{self.e},{self.f})({self.ev},{self.fv})"


#: The paper's default evaluation configuration (Table VII).
DEFAULT_SPEC = ReFloatSpec(b=7, e=3, f=3, ev=3, fv=8)


def offset_bounds(e: int) -> Tuple[int, int]:
    """Saturation range of an ``e``-bit two's-complement exponent offset.

    We use the full signed range ``[-2^(e-1), 2^(e-1) - 1]`` (what an e-bit
    hardware field holds).  The paper's text states the symmetric window
    ``[eb - 2^(e-1) + 1, eb + 2^(e-1) - 1]``; the one extra negative code only
    widens the representable window downward and is required for the Fig. 3d
    locality argument (e=3 covering a 7-binade spread) to hold exactly.
    ``e = 0`` degenerates to the single offset 0 (pure BFP exponent-wise).
    """
    if e <= 0:
        return (0, 0)
    half = 1 << (e - 1)
    return (-half, half - 1)


def optimal_exponent_base(exponents: np.ndarray) -> int:
    """Closed-form minimiser of the exponent loss (Eq. 5): round(mean).

    ``exponents`` must be the unbiased exponents of the *nonzero* elements of
    one block.  Empty input returns base 0 (any base represents an all-zero
    block exactly).
    Round-half-up is used so the result is deterministic across platforms.
    """
    exps = np.asarray(exponents, dtype=np.float64)
    if exps.size == 0:
        return 0
    return int(np.floor(exps.mean() + 0.5))


def covering_exponent_base(max_exponent: int, e: int) -> int:
    """Base anchoring the offset window at the block's largest exponent.

    ``eb = e_max - (2^(e-1) - 1)`` puts the top of the two's-complement
    window exactly on ``e_max`` — the hardware padding alignment.  The
    largest entries are never shrunk; entries more than ``2^e - 1`` binades
    below the max saturate upward with error bounded relative to the block
    maximum.
    """
    if e <= 0:
        return int(max_exponent)
    return int(max_exponent) - ((1 << (e - 1)) - 1)


def exponent_loss(exponents: np.ndarray, eb: int) -> float:
    """The paper's loss L(eb) = sum over block of ((a)_e - eb)^2 (Eq. 4)."""
    exps = np.asarray(exponents, dtype=np.float64)
    return float(np.sum((exps - eb) ** 2))


def quantize_values(
    values,
    e: int,
    f: int,
    eb=None,
    rounding: str = "truncate",
    eb_policy: str = "cover",
    underflow: str = "flush",
) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise values to ReFloat with a shared (or per-value) exponent base.

    Parameters
    ----------
    values : array_like of float64
        Finite values; zeros pass through exactly.
    e, f : int
        Offset / fraction bit counts.
    eb : int, array_like of int, or None
        Exponent base.  ``None`` computes the base over the nonzero values
        (treating the whole input as one block) according to ``eb_policy``.
        An array gives each value its own base (used for grouped per-block
        quantisation).
    rounding : str
        ``"truncate"`` or ``"nearest"``.
    eb_policy : str
        ``"cover"`` or ``"mean"`` — used only when ``eb`` is ``None``.

    Returns
    -------
    quantized : ndarray of float64
        The decoded (reconstructed) quantised values.
    eb_used : ndarray of int32
        Exponent base applied to each value.
    """
    values = np.asarray(values, dtype=np.float64)
    sign, exp, frac = ieee.decompose(values)
    zero = exp == ieee.EXP_ZERO

    if eb is None:
        nz_exp = exp[~zero]
        if nz_exp.size == 0:
            eb_scalar = 0
        elif eb_policy == "cover":
            eb_scalar = covering_exponent_base(int(nz_exp.max()), e)
        elif eb_policy == "mean":
            eb_scalar = optimal_exponent_base(nz_exp)
        else:
            raise ValueError(f"eb_policy must be 'cover' or 'mean', got {eb_policy!r}")
        eb_arr = np.full(values.shape, eb_scalar, dtype=np.int32)
    else:
        eb_arr = np.broadcast_to(np.asarray(eb, dtype=np.int32), values.shape).copy()

    if rounding == "truncate":
        qfrac = ieee.truncate_fraction(frac, f)
        carry = np.zeros(values.shape, dtype=bool)
    elif rounding == "nearest":
        qfrac, carry = ieee.round_fraction(frac, f)
    else:
        raise ValueError(f"rounding must be 'truncate' or 'nearest', got {rounding!r}")

    lo, hi = offset_bounds(e)
    exp_adj = exp.astype(np.int64) + carry
    raw_offset = exp_adj - eb_arr
    offset = np.clip(raw_offset, lo, hi)
    qexp = eb_arr + offset
    if underflow == "flush":
        below = (~zero) & (raw_offset < lo)
        qexp = np.where(below, np.int64(ieee.EXP_ZERO), qexp)
        qfrac = np.where(below, np.uint64(0), qfrac)
    elif underflow != "saturate":
        raise ValueError(f"underflow must be 'flush' or 'saturate', got {underflow!r}")
    qexp = np.where(zero, np.int64(ieee.EXP_ZERO), qexp)
    out = ieee.compose(sign, qexp, qfrac)
    return out, eb_arr


@dataclass(frozen=True)
class EncodedBlock:
    """Explicit bit-level encoding of one block's nonzero values.

    This is the representation a processing engine consumes: integer fields
    rather than reconstructed floats.  ``frac`` holds the *f*-bit fraction as
    the top bits already shifted down (an integer in ``[0, 2^f)``).
    """

    eb: int
    sign: np.ndarray  # int8, 0/1
    offset: np.ndarray  # int32 in [lo, hi]
    frac: np.ndarray  # uint64 in [0, 2^f)
    e: int
    f: int

    @property
    def size(self) -> int:
        return int(self.sign.size)


def encode_values(values, e: int, f: int, eb: Optional[int] = None,
                  rounding: str = "truncate",
                  eb_policy: str = "cover") -> EncodedBlock:
    """Encode values into explicit ReFloat fields (one shared base).

    Zeros are not representable in an :class:`EncodedBlock`; callers encode
    only the nonzeros of a sparse block.  Passing zeros raises ``ValueError``.
    """
    values = np.asarray(values, dtype=np.float64)
    if np.any(values == 0.0):
        raise ValueError("encode_values encodes nonzeros only; filter zeros first")
    sign, exp, frac = ieee.decompose(values)
    if eb is None:
        if eb_policy == "cover":
            eb = covering_exponent_base(int(exp.max()), e)
        else:
            eb = optimal_exponent_base(exp)
    if rounding == "truncate":
        qfrac = ieee.truncate_fraction(frac, f)
        carry = np.zeros(values.shape, dtype=np.int64)
    else:
        qfrac, carry_b = ieee.round_fraction(frac, f)
        carry = carry_b.astype(np.int64)
    lo, hi = offset_bounds(e)
    offset = np.clip(exp.astype(np.int64) + carry - eb, lo, hi).astype(np.int32)
    frac_small = (qfrac >> np.uint64(ieee.FRAC_BITS - f)) if f < ieee.FRAC_BITS else qfrac
    return EncodedBlock(eb=int(eb), sign=sign, offset=offset,
                        frac=frac_small.astype(np.uint64), e=e, f=f)


def decode_values(block: EncodedBlock) -> np.ndarray:
    """Reconstruct float64 values from an :class:`EncodedBlock`."""
    f = block.f
    frac52 = (block.frac << np.uint64(ieee.FRAC_BITS - f)) if f < ieee.FRAC_BITS else block.frac
    qexp = block.eb + block.offset.astype(np.int64)
    return ieee.compose(block.sign, qexp, frac52)


def vector_segment_bases(x, b: int, ev: Optional[int] = None,
                         eb_policy: str = "cover") -> np.ndarray:
    """Per-segment exponent bases for a vector (the Fig. 6d converter).

    The vector is split into contiguous segments of ``2^b`` (the last segment
    may be shorter).  Policy ``"cover"`` (requires ``ev``) anchors each
    segment's window at its largest exponent; ``"mean"`` applies Eq. 5 per
    segment.  Segments with no nonzero entries get base 0.

    Segments are contiguous, so all per-segment reductions run as
    ``np.ufunc.reduceat`` over the segment start offsets — much faster than
    the ``np.maximum.at`` scatter this function used to perform.

    Returns an int32 array of length ``ceil(len(x) / 2^b)``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return np.zeros(0, dtype=np.int32)
    size = 1 << b
    starts = np.arange(0, x.size, size, dtype=np.intp)
    _, exp, _ = ieee.decompose(x)
    nonzero = exp != ieee.EXP_ZERO
    counts = np.add.reduceat(nonzero.astype(np.int64), starts)
    if eb_policy == "cover":
        if ev is None:
            raise ValueError("eb_policy='cover' requires ev")
        # Segment maxima (the EXP_ZERO sentinel is far below any real
        # exponent, so zeros never win the max of a nonempty segment).
        maxima = np.maximum.reduceat(exp.astype(np.int64), starts)
        bases = maxima - ((1 << (ev - 1)) - 1 if ev > 0 else 0)
        return np.where(counts > 0, bases, 0).astype(np.int32)
    if eb_policy != "mean":
        raise ValueError(f"eb_policy must be 'cover' or 'mean', got {eb_policy!r}")
    sums = np.add.reduceat(np.where(nonzero, exp, 0).astype(np.float64), starts)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
    return np.floor(means + 0.5).astype(np.int32)


def quantize_vector_reference(x, spec: ReFloatSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Straight-line vector converter (the original, unplanned implementation).

    Kept verbatim as the ground truth the plan-backed fast path of
    :class:`VectorConverterPlan` is property-tested against (bit identity).
    Use :func:`quantize_vector` in production code.

    Hardware semantics (Section V-B): each vector element drives the wordlines
    as a **(2^ev + fv + 1)-bit fixed-point word** ("a total number of
    (2^ev + fv + 1) bits are applied to the driver") aligned to the segment's
    exponent base — the ``2^ev`` positions align the exponent and the ``fv+1``
    mantissa bits extend below.  So the representable grid of a segment whose
    largest exponent is ``top`` has unit-in-last-place
    ``2^(top - (2^ev - 1) - fv)``; elements keep fraction bits progressively
    as they shrink and underflow to zero only ``2^ev - 1 + fv`` binades below
    the top.  (This is *not* the same as storing the vector in 1+ev+fv bits —
    vectors are produced by the FP64 MAC units each iteration and converted
    on the fly, never stored in ReFloat format.)

    Returns
    -------
    xq : ndarray of float64
        Quantised vector, same length as ``x``.  Exact zeros stay zero.
    ebv : ndarray of int32
        Per-segment exponent bases (length ``ceil(n / 2^b)``) — the scale
        factor the engine multiplies back into the output (Eq. 9).
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy(), np.zeros(0, dtype=np.int32)
    ebv = vector_segment_bases(x, spec.b, ev=spec.ev, eb_policy="cover")
    size = 1 << spec.b
    nseg = ebv.size
    # Segment top exponent = ebv + hi under the cover policy.
    _, hi = offset_bounds(spec.ev)
    tops = ebv.astype(np.int64) + hi
    ulp_exp = tops - ((1 << spec.ev) - 1) - spec.fv
    seg_ids = np.arange(x.size) >> spec.b
    # Grids finer than the binary64 normal range are exact: skip them (this
    # happens for near-lossless configs like ev=11, fv=52).
    exact_grid = ulp_exp < -1022
    ulp = np.ldexp(1.0, np.maximum(ulp_exp, -1022))[seg_ids]
    # Mask empty segments (base 0 would otherwise impose a spurious grid).
    _, exp, _ = ieee.decompose(x)
    nonzero = exp != ieee.EXP_ZERO
    counts = np.bincount(seg_ids, weights=nonzero.astype(np.float64), minlength=nseg)
    live = (counts[seg_ids] > 0) & ~exact_grid[seg_ids]
    scaled = np.where(live, x / ulp, 0.0)
    if spec.rounding == "nearest":
        quantized = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
    else:
        quantized = np.trunc(scaled)
    passthrough = exact_grid[seg_ids] & (counts[seg_ids] > 0)
    xq = np.where(live, quantized * ulp, np.where(passthrough, x, 0.0))
    return xq, ebv


class VectorConverterPlan:
    """Precomputed state for converting length-``n`` vectors under one spec.

    A CG/BiCGSTAB solve converts the same-length vector thousands of times
    with an unchanging spec, yet :func:`quantize_vector_reference` rebuilds
    the segment index map, the reduceat boundaries and every intermediate
    array on each call.  The plan hoists all of that out:

    * ``seg_ids`` / ``starts`` — the per-element segment id and the contiguous
      reduceat boundaries, built once;
    * per-thread scratch buffers in a *padded 2-D layout*: the vector is
      copied into a ``(nseg, 2^b)`` zero-padded buffer whose ``uint64`` bit
      view is precomputed, so the whole fast path is a handful of ufunc
      calls with ``out=`` and no O(n) allocations;
    * per-segment statistics drop to Python scalars when ``nseg`` is small
      (``<= _PY_SEG_LIMIT``) — at solver sizes the per-call cost is NumPy
      dispatch overhead, not arithmetic — and stay vectorised for huge
      segment counts;
    * the fast lane covers the common solver case (every segment has a
      nonzero and no segment's grid is finer than binary64); anything else
      falls back to the general masked path.

    All paths are bit-identical to :func:`quantize_vector_reference`
    (asserted by the property tests).  Plans are shared process-wide via
    :func:`vector_converter_plan`; thread safety comes from the scratch
    buffers being ``threading.local``.

    .. warning:: with ``reuse=True`` the returned arrays are owned by the
       plan and overwritten by the next ``convert`` call on the same thread.
       Copy them (or pass ``reuse=False``) to keep them.
    """

    #: Segment counts up to this use Python-scalar per-segment statistics.
    _PY_SEG_LIMIT = 4096

    def __init__(self, n: int, spec: ReFloatSpec):
        self.n = int(check_nonnegative_int(n, "n"))
        self.spec = spec
        size = 1 << spec.b
        self.size = size
        self.nseg = -(-self.n // size)
        self.seg_ids = np.arange(self.n, dtype=np.intp) >> spec.b
        #: Contiguous segment boundaries for ``np.ufunc.reduceat``.
        self.starts = np.arange(0, self.n, size, dtype=np.intp)
        lo, hi = offset_bounds(spec.ev)
        self._hi = hi
        # ulp_exp = ebv + hi - (2^ev - 1) - fv  =  ebv + lo - fv.
        self._ulp_off = hi - ((1 << spec.ev) - 1) - spec.fv
        self._tls = threading.local()

    def _scratch(self) -> dict:
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None:
            bufs = self._tls.bufs = self._alloc()
        return bufs

    def _alloc(self) -> dict:
        n_pad = self.nseg * self.size
        xpad = np.zeros(n_pad, dtype=np.float64)   # tail beyond n stays zero
        out = np.empty((self.nseg, self.size), dtype=np.float64)
        return {
            "xpad": xpad,
            "x2d": xpad.reshape(self.nseg, self.size),
            "xpad_n": xpad[:self.n],
            "bits": xpad.view(np.uint64),
            "field": (field := np.empty(n_pad, dtype=np.uint64)),
            "field2d": field.reshape(self.nseg, self.size),
            "maxima": np.empty(self.nseg, dtype=np.uint64),
            "sc": np.empty((self.nseg, self.size), dtype=np.float64),
            "out": out,
            "xq": out.reshape(-1)[:self.n],
            "ulp": np.empty((self.nseg, 1), dtype=np.float64),
            "ebv": np.empty(self.nseg, dtype=np.int32),
        }

    def _batch_scratch(self, k: int) -> dict:
        batches = getattr(self._tls, "batches", None)
        if batches is None:
            batches = self._tls.batches = {}
        bufs = batches.get(k)
        if bufs is None:
            bufs = batches[k] = self._alloc_batch(k)
        return bufs

    def _alloc_batch(self, k: int) -> dict:
        n_pad = self.nseg * self.size
        # Column-major working layout: one contiguous row per RHS column, so
        # every per-segment reduction is a reduction over the last axis.
        xpad = np.zeros((k, n_pad), dtype=np.float64)
        field = np.empty((k, n_pad), dtype=np.uint64)
        return {
            "xpad": xpad,
            "x3d": xpad.reshape(k, self.nseg, self.size),
            "xpad_n": xpad[:, :self.n],
            "bits": xpad.view(np.uint64),
            "field": field,
            "field3d": field.reshape(k, self.nseg, self.size),
            "maxima": np.empty((k, self.nseg), dtype=np.uint64),
            "sc": np.empty((k, self.nseg, self.size), dtype=np.float64),
            "out": np.empty((k, self.nseg, self.size), dtype=np.float64),
            "out_nk": np.empty((self.n, k), dtype=np.float64),
            "ebv": np.empty((self.nseg, k), dtype=np.int32),
        }

    def convert_batch(self, X, reuse: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`convert`: ``(n, k)`` columns to ``(Xq, ebv)``.

        Column ``j`` of the result is bit-identical to ``convert(X[:, j])``
        (asserted by the fast-path tests): the batch runs the same ufunc
        sequence over a ``(k, nseg, 2^b)`` layout, so one call amortises the
        conversion dispatch across all right-hand sides of a block solve.
        ``ebv`` has shape ``(nseg, k)`` — per-segment bases per column.

        The vectorised lane covers the common solver case (every segment of
        every column holds a nonzero and no grid is finer than binary64);
        anything else falls back to per-column :meth:`convert` calls, which
        handle empty segments and exact-grid passthrough.  With
        ``reuse=True`` the outputs live in per-thread scratch keyed by ``k``.
        """
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D (n, k), got shape {X.shape}")
        n, k = X.shape
        if n != self.n:
            raise ValueError(f"plan is for length {self.n}, got {n}")
        if k == 0:
            raise ValueError("X must have at least one column")
        if self.n == 0:
            return X.copy(), np.zeros((0, k), dtype=np.int32)
        spec = self.spec
        bufs = self._batch_scratch(k) if reuse else self._alloc_batch(k)
        np.copyto(bufs["xpad_n"], X.T)
        field = np.right_shift(bufs["bits"], np.uint64(ieee.FRAC_BITS),
                               out=bufs["field"])
        np.bitwise_and(field, np.uint64(0x7FF), out=field)
        maxima = bufs["field3d"].max(axis=2, out=bufs["maxima"])
        maxima = maxima.astype(np.int64)
        if int(maxima.max()) == 0x7FF:
            raise ValueError(ieee.NONFINITE_MSG)
        seg_live = maxima != 0
        hi_const = ieee.EXP_BIAS + self._hi
        eb = (maxima - hi_const) * seg_live          # (k, nseg)
        ulp_exp = eb + self._ulp_off
        if bool(seg_live.all()) and not bool((ulp_exp < -1022).any()):
            # Vectorised lane: same ufunc sequence as the 1-D fast lane, with
            # the per-(column, segment) ulp broadcast over the segment axis.
            ulp = np.ldexp(1.0, ulp_exp)[:, :, None]
            sc, out = bufs["sc"], bufs["out"]
            scaled = np.divide(bufs["x3d"], ulp, out=sc)
            if spec.rounding == "nearest":
                sgn = np.sign(scaled, out=out)
                mag = np.abs(scaled, out=scaled)
                np.add(mag, 0.5, out=mag)
                np.floor(mag, out=mag)
                quantized = np.multiply(sgn, mag, out=out)
            else:
                quantized = np.trunc(scaled, out=scaled)
            np.multiply(quantized, ulp, out=out)
            Xq, ebv = bufs["out_nk"], bufs["ebv"]
            np.copyto(Xq, out.reshape(k, -1)[:, :self.n].T)
            np.copyto(ebv, eb.T, casting="unsafe")
            return Xq, ebv
        # General path (empty segments / exact grids somewhere in the batch):
        # delegate to the scalar converter column by column — it is the
        # reference-pinned implementation of exactly those cases.
        Xq, ebv = bufs["out_nk"], bufs["ebv"]
        for j in range(k):
            xq_j, ebv_j = self.convert(X[:, j], reuse=False)
            Xq[:, j] = xq_j
            ebv[:, j] = ebv_j
        return Xq, ebv

    def convert(self, x, reuse: bool = True) -> Tuple[np.ndarray, np.ndarray]:
        """Plan-backed :func:`quantize_vector`: returns ``(xq, ebv)``.

        Bit-identical to :func:`quantize_vector_reference`.  With
        ``reuse=True`` the result lives in per-thread scratch buffers.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.size != self.n:
            raise ValueError(f"plan is for length {self.n}, got {x.size}")
        if self.n == 0:
            return x.copy(), np.zeros(0, dtype=np.int32)
        spec = self.spec
        bufs = self._scratch() if reuse else self._alloc()
        # Copy into the zero-padded 2-D layout; the pad tail (never written
        # again) reads as zeros, which cannot win a segment max or change
        # liveness, and is sliced off the output.
        np.copyto(bufs["xpad_n"], x)
        # Inline specialisation of ieee.exponent_field over the precomputed
        # bit view (same flush-to-zero/inf conventions, zero allocations).
        # One max over the raw biased exponent fields yields every
        # per-segment statistic the reference derives from decompose():
        # field == 0 iff decompose reports EXP_ZERO (zeros and subnormals),
        # so a segment max of 0 means "no nonzeros" (the counts > 0 test),
        # a max of 0x7FF means inf/nan (decompose's ValueError), and a live
        # segment's max is the reference's unbiased max plus the bias.
        field = np.right_shift(bufs["bits"], np.uint64(ieee.FRAC_BITS),
                               out=bufs["field"])
        np.bitwise_and(field, np.uint64(0x7FF), out=field)
        maxima = bufs["field2d"].max(axis=1, out=bufs["maxima"])
        ebv = bufs["ebv"]
        hi_const = ieee.EXP_BIAS + self._hi
        if self.nseg <= self._PY_SEG_LIMIT:
            # Per-segment stats as Python scalars: at solver sizes the cost
            # of this stage is ufunc dispatch, not arithmetic.
            eb_list = maxima.tolist()
            ulp_list = [0.0] * self.nseg
            fast = True
            for i, mb in enumerate(eb_list):
                if mb == 0:
                    fast = False
                    eb = 0
                elif mb == 0x7FF:
                    raise ValueError(ieee.NONFINITE_MSG)
                else:
                    eb = mb - hi_const
                ue = eb + self._ulp_off
                if ue < -1022:
                    fast = False
                    ue = -1022
                eb_list[i] = eb
                ulp_list[i] = math.ldexp(1.0, ue)
            ebv[...] = eb_list
            if fast:
                bufs["ulp"].ravel()[...] = ulp_list
        else:
            maxima = maxima.astype(np.int64)
            if int(maxima.max()) == 0x7FF:
                raise ValueError(ieee.NONFINITE_MSG)
            seg_live = maxima != 0
            np.multiply(maxima - hi_const, seg_live, out=ebv, casting="unsafe")
            ulp_exp = ebv.astype(np.int64) + self._ulp_off
            fast = bool(seg_live.all()) and not bool((ulp_exp < -1022).any())
            if fast:
                bufs["ulp"].ravel()[...] = np.ldexp(1.0, ulp_exp)
        if fast:
            # Fast lane: every element is live, no masking needed; the
            # per-segment ulp broadcasts down the 2-D layout.
            ulp, sc, out = bufs["ulp"], bufs["sc"], bufs["out"]
            scaled = np.divide(bufs["x2d"], ulp, out=sc)
            if spec.rounding == "nearest":
                sgn = np.sign(scaled, out=out)
                mag = np.abs(scaled, out=scaled)
                np.add(mag, 0.5, out=mag)
                np.floor(mag, out=mag)
                quantized = np.multiply(sgn, mag, out=out)
            else:
                quantized = np.trunc(scaled, out=scaled)
            np.multiply(quantized, ulp, out=out)
            return bufs["xq"], ebv
        # General path (empty segments / exact grids): same masked formulas
        # as the reference, with the precomputed index structures.
        ulp_exp = ebv.astype(np.int64) + self._ulp_off
        exact_grid = ulp_exp < -1022
        seg_live = bufs["maxima"] != 0   # field max 0 <=> no nonzeros
        live_seg = seg_live & ~exact_grid
        ulp = np.ldexp(1.0, np.maximum(ulp_exp, -1022))[self.seg_ids]
        live = live_seg[self.seg_ids]
        scaled = np.where(live, x / ulp, 0.0)
        if spec.rounding == "nearest":
            quantized = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
        else:
            quantized = np.trunc(scaled)
        passthrough = (exact_grid & seg_live)[self.seg_ids]
        xq = np.where(live, quantized * ulp, np.where(passthrough, x, 0.0))
        if reuse:
            bufs["xq"][...] = xq
            xq = bufs["xq"]
        return xq, ebv


@lru_cache(maxsize=256)
def vector_converter_plan(n: int, spec: ReFloatSpec) -> VectorConverterPlan:
    """Process-wide cache of :class:`VectorConverterPlan` keyed ``(n, spec)``.

    ``ReFloatSpec`` is a frozen dataclass, so the pair is hashable; the LRU
    bound only matters for pathological workloads that sweep vector lengths.
    """
    return VectorConverterPlan(n, spec)


def quantize_vector(x, spec: ReFloatSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise a vector segment-wise through the DAC path (vector converter).

    See :func:`quantize_vector_reference` for the hardware semantics and the
    return convention; this entry point routes through the cached
    :class:`VectorConverterPlan` (bit-identical, much faster) and always
    returns freshly-owned arrays.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size == 0:
        return x.copy(), np.zeros(0, dtype=np.int32)
    return vector_converter_plan(x.size, spec).convert(x, reuse=False)


def quantize_vector_storage(x, spec: ReFloatSpec) -> Tuple[np.ndarray, np.ndarray]:
    """Quantise a vector into the *storage* codec: (1 + ev + fv) bits/element.

    Unlike :func:`quantize_vector` (the DAC path), this forces each element
    into the per-element floating layout — sign, ev-bit offset, fv-bit
    fraction — the representation used when a vector segment must be *kept*
    in ReFloat form (e.g. buffering partial vectors off-engine).  Elements
    below the offset window follow ``spec.underflow``.
    """
    x = np.asarray(x, dtype=np.float64)
    ebv = vector_segment_bases(x, spec.b, ev=spec.ev, eb_policy=spec.eb_policy)
    # Cold path: transient index expansion, deliberately not via the plan
    # cache (a one-off storage quantisation should not pin O(n) plan state).
    per_elem_eb = np.repeat(ebv, 1 << spec.b)[: x.size]
    xq, _ = quantize_values(x, spec.ev, spec.fv, eb=per_elem_eb,
                            rounding=spec.rounding, underflow=spec.underflow)
    return xq, ebv
