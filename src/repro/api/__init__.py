"""``repro.api`` — registries, typed config, and declarative run specs.

The programmatic surface of the evaluation harness:

* :class:`RunConfig` — frozen runtime configuration;
  :meth:`RunConfig.from_env` is the package's single reader of ``REPRO_*``
  environment variables.
* :data:`PLATFORM_REGISTRY` / :data:`SOLVER_REGISTRY` with the
  :func:`register_platform` / :func:`register_solver` decorators — add a
  platform or solver from user code and sweep it via
  ``run_suite(platforms=[...])`` without touching
  ``repro/experiments/common.py``.
* :class:`SuiteSpec` / :class:`RunRequest` — JSON-serialisable job objects
  (the process-pool payload, and the seam for a multi-host runner).
* :mod:`repro.api.faults` — structured :class:`RunFailure` records and the
  deterministic fault-injection plans (``crash``/``hang``/``fail`` tokens)
  that exercise the run engine's recovery paths repeatably.
* :mod:`repro.api.graph` — the dependency-aware :class:`TaskGraph` /
  :class:`GraphScheduler` the run engine compiles suites and sweeps into
  (typed solve/baseline/asset nodes, named cycle errors, dependent-skip).

Importing this package installs the builtin registrations (the four paper
platforms plus the ``noisy``/``truncated`` scenarios; the cg/bicgstab and
batched solvers; the builtin fault kinds).
"""

from repro.api.config import (
    EXECUTORS,
    SCALES,
    RunConfig,
    active,
    set_active,
    use,
)
from repro.api.registry import (
    PLATFORM_REGISTRY,
    SOLVER_REGISTRY,
    PlatformContext,
    PlatformSpec,
    Registry,
    SolverSpec,
    register_platform,
    register_solver,
    resolve_platforms,
)
from repro.api.platforms import (  # noqa: F401 - installs registrations
    DEFAULT_NOISE_SIGMA,
    DEFAULT_PLATFORMS,
    feinberg_platform_spec,
    noisy_platform_spec,
    truncated_platform_spec,
)
from repro.api.faults import (  # noqa: F401 - installs builtin fault kinds
    FAULT_KINDS,
    FaultPlan,
    InjectedFaultError,
    RunFailure,
    install_fault_plan,
    register_fault_kind,
    use_fault_plan,
)
from repro.api.graph import (
    AssetNode,
    BaselineNode,
    GraphCycleError,
    GraphScheduler,
    SolveNode,
    TaskGraph,
    compile_solve_graph,
)
from repro.api.solvers import DEFAULT_SOLVERS  # noqa: F401 - installs registrations
from repro.api.specs import RunRequest, SuiteSpec
from repro.api.sweep import (  # noqa: F401 - installs builtin families
    VARIANT_FAMILIES,
    SweepSpec,
    VariantFamily,
    ensure_variant,
    ensure_variant_platforms,
    parse_variant_token,
    register_variant_family,
    variant_token,
)

__all__ = [
    "EXECUTORS",
    "SCALES",
    "RunConfig",
    "active",
    "set_active",
    "use",
    "PLATFORM_REGISTRY",
    "SOLVER_REGISTRY",
    "PlatformContext",
    "PlatformSpec",
    "Registry",
    "SolverSpec",
    "register_platform",
    "register_solver",
    "resolve_platforms",
    "DEFAULT_NOISE_SIGMA",
    "DEFAULT_PLATFORMS",
    "DEFAULT_SOLVERS",
    "feinberg_platform_spec",
    "noisy_platform_spec",
    "truncated_platform_spec",
    "FAULT_KINDS",
    "FaultPlan",
    "InjectedFaultError",
    "RunFailure",
    "install_fault_plan",
    "register_fault_kind",
    "use_fault_plan",
    "AssetNode",
    "BaselineNode",
    "GraphCycleError",
    "GraphScheduler",
    "SolveNode",
    "TaskGraph",
    "compile_solve_graph",
    "RunRequest",
    "SuiteSpec",
    "VARIANT_FAMILIES",
    "SweepSpec",
    "VariantFamily",
    "ensure_variant",
    "ensure_variant_platforms",
    "parse_variant_token",
    "register_variant_family",
    "variant_token",
]
