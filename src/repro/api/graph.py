"""Dependency-aware task graph and scheduler for the run engine.

The engine used to hand-roll dependency order with phase barriers: store
pre-materialisation fanned out first, every baseline solved before any
variant, ``resolve_platforms`` walking ``results_from`` chains with its
own recursive visitor.  This module replaces all three orderings with one
structure:

* a :class:`TaskGraph` — nodes are units of work (typed below), edges are
  "the dependent needs the dependency's output";
* a :class:`GraphScheduler` — hands out *ready* nodes (all dependencies
  complete) in deterministic insertion order, unlocks dependents as nodes
  complete, and transitively marks dependents of a failed node as
  *skipped* so a dead baseline cannot wedge the batch.

There are no phase barriers anywhere: a variant solve for sid A becomes
ready the moment A's baseline completes, regardless of how many other
baselines are still running, and store pre-warm nodes overlap with every
solve that does not need them.

Node types (the engine's vocabulary; the graph itself is type-agnostic):

* :class:`SolveNode` — one :class:`~repro.api.specs.RunRequest`;
* :class:`BaselineNode` — a solve other solves graft results from (the
  dependency side of a "needs baseline" edge);
* :class:`AssetNode` — materialise one ``(sid, scale)`` store entry so
  process-pool workers mmap-attach instead of rebuilding.

Scheduling state is engine-agnostic: the scheduler never executes
anything, it only answers "what may run now" — which is exactly what a
serial loop, a thread pool, a persistent process pool, or a future
remote runner need in common.  Cycle detection raises the named
:class:`GraphCycleError` (a ``ValueError``) at scheduling time, and every
dispatch/finish is recorded in a per-node timing trace so the overlap is
observable from :class:`~repro.experiments.common.ExecutionStats`.

This module deliberately sits at the bottom of the API layering — it
imports only :mod:`repro.api.specs` — so the registry, sweep and faults
modules can all build on it without cycles.
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.api.specs import RunRequest

__all__ = [
    "NODE_STATES",
    "AssetNode",
    "BaselineNode",
    "GraphCycleError",
    "GraphScheduler",
    "NodeTrace",
    "SolveNode",
    "TaskGraph",
]

#: Every state a scheduled node moves through.  ``pending`` nodes wait on
#: dependencies, ``ready`` nodes may dispatch, ``running`` nodes are owned
#: by an executor; ``done``/``failed``/``skipped`` are terminal.
NODE_STATES = ("pending", "ready", "running", "done", "failed", "skipped")

_TERMINAL = frozenset(("done", "failed", "skipped"))


class GraphCycleError(ValueError):
    """The task graph contains a dependency cycle (named members ride
    along in ``members``; a ``ValueError`` so callers that matched the
    pre-graph cycle errors keep working)."""

    def __init__(self, message: str, members: Tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.members = tuple(members)


# ----------------------------------------------------------------------
# Typed nodes


@dataclass(frozen=True)
class SolveNode:
    """One declarative solve: the node form of a :class:`RunRequest`."""

    request: RunRequest

    kind = "solve"

    @property
    def key(self) -> str:
        return self.request.key()

    @property
    def sid(self) -> int:
        return self.request.sid

    @property
    def solver(self) -> Optional[str]:
        return self.request.solver


@dataclass(frozen=True)
class BaselineNode(SolveNode):
    """A solve whose results other solves graft (the dependency side of a
    "needs baseline" edge).  Identical execution semantics to
    :class:`SolveNode`; the distinct kind makes baseline scheduling
    observable in traces and tests."""

    kind = "baseline"


@dataclass(frozen=True)
class AssetNode:
    """Materialise one ``(sid, scale)`` asset-store entry.

    The dependency side of a "needs store entry" edge: solves of the same
    ``(sid, scale)`` wait for it, everything else overlaps with it.  An
    asset node that fails records an ``"asset"``-phase failure — the fix
    for pre-warm futures whose errors were silently dropped.
    """

    sid: int
    scale: str

    kind = "asset"

    @property
    def key(self) -> str:
        return self.key_for(self.sid, self.scale)

    @property
    def solver(self) -> Optional[str]:
        return None

    @staticmethod
    def key_for(sid: int, scale: str) -> str:
        return f"asset:{sid}@{scale}"


# ----------------------------------------------------------------------
# The graph


class TaskGraph:
    """A small directed dependency graph keyed by node-identity strings.

    Nodes are added with an optional payload (the engine stores its typed
    node objects); edges say "``dependent`` needs ``dependency``".
    Insertion order is preserved and defines the deterministic tie-break
    everywhere — :meth:`topological_order` and the scheduler's ready queue
    both dispatch equally-ready nodes in the order they were added.
    """

    def __init__(self) -> None:
        self._payloads: Dict[str, Any] = {}
        self._deps: Dict[str, List[str]] = {}
        self._dependents: Dict[str, List[str]] = {}
        self._n_edges = 0

    def add(self, key: str, payload: Any = None) -> str:
        """Add one node; duplicate keys raise ``ValueError`` (two different
        work units must never share an identity)."""
        if key in self._payloads:
            raise ValueError(f"task graph already has a node {key!r}")
        self._payloads[key] = payload
        self._deps[key] = []
        self._dependents[key] = []
        return key

    def add_node(self, node: Any) -> str:
        """Add a typed node (anything with ``.key``) as its own payload."""
        return self.add(node.key, node)

    def depend(self, dependent: str, dependency: str) -> None:
        """Record "``dependent`` needs ``dependency``" (idempotent).

        Unknown keys raise ``KeyError`` naming the missing node; a
        self-dependency is a cycle by definition and raises
        :class:`GraphCycleError` immediately.
        """
        for key in (dependent, dependency):
            if key not in self._payloads:
                raise KeyError(f"task graph has no node {key!r}")
        if dependent == dependency:
            raise GraphCycleError(
                f"node {dependent!r} cannot depend on itself",
                members=(dependent,))
        if dependency in self._deps[dependent]:
            return
        self._deps[dependent].append(dependency)
        self._dependents[dependency].append(dependent)
        self._n_edges += 1

    # -- introspection --------------------------------------------------

    def __contains__(self, key: object) -> bool:
        return key in self._payloads

    def __len__(self) -> int:
        return len(self._payloads)

    @property
    def n_edges(self) -> int:
        return self._n_edges

    def keys(self) -> Tuple[str, ...]:
        """Every node key, in insertion order."""
        return tuple(self._payloads)

    def payload(self, key: str) -> Any:
        if key not in self._payloads:
            raise KeyError(f"task graph has no node {key!r}")
        return self._payloads[key]

    def dependencies(self, key: str) -> Tuple[str, ...]:
        self.payload(key)  # canonical unknown-key error
        return tuple(self._deps[key])

    def dependents(self, key: str) -> Tuple[str, ...]:
        self.payload(key)
        return tuple(self._dependents[key])

    def topological_order(self) -> Tuple[str, ...]:
        """Every key, dependencies before dependents; raises
        :class:`GraphCycleError` naming the cycle's members when no such
        order exists.

        Ties break on *insertion index* (a heap, not a FIFO): of all
        dispatchable nodes, the earliest-added runs first.  When the
        graph was built dependencies-before-dependents — every compiler
        in this package is — the result is exactly the insertion order,
        which is how ``resolve_platforms`` keeps its historical
        "dependencies first, then the requested names in the order
        given" contract on top of the graph.
        """
        keys = list(self._payloads)
        index = {key: i for i, key in enumerate(keys)}
        waiting = {key: len(deps) for key, deps in self._deps.items()}
        heap = [index[key] for key in keys if waiting[key] == 0]
        heapq.heapify(heap)
        order: List[str] = []
        while heap:
            key = keys[heapq.heappop(heap)]
            order.append(key)
            for dep in self._dependents[key]:
                waiting[dep] -= 1
                if waiting[dep] == 0:
                    heapq.heappush(heap, index[dep])
        if len(order) != len(self._payloads):
            members = tuple(key for key in keys if waiting[key] > 0)
            raise GraphCycleError(
                f"task graph has a dependency cycle through "
                f"{members[0]!r} ({len(members)} nodes cannot be ordered)",
                members=members)
        return tuple(order)


# ----------------------------------------------------------------------
# The scheduler


@dataclass
class NodeTrace:
    """Per-node scheduling record: dispatch count and monotonic timestamps
    (seconds relative to the scheduler's construction, so traces from one
    run compare directly)."""

    kind: str
    state: str = "pending"
    dispatches: int = 0
    first_dispatch: Optional[float] = None
    last_dispatch: Optional[float] = None
    finished: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind, "state": self.state,
            "dispatches": self.dispatches,
            "first_dispatch": self.first_dispatch,
            "last_dispatch": self.last_dispatch,
            "finished": self.finished,
        }


class GraphScheduler:
    """Dependency-aware dispatch state over one :class:`TaskGraph`.

    The scheduler owns *readiness*, not execution: executors pop ready
    nodes (:meth:`pop_ready`), report outcomes (:meth:`complete` /
    :meth:`fail`), and may hand a node back (:meth:`requeue`) when a
    dispatch must be retried — the engine's retry budgets, isolation
    probes and pool rebuilds all reduce to requeues.  Construction
    validates the graph is acyclic (raising :class:`GraphCycleError`), and
    :meth:`fail` transitively skips every dependent of a failed node so
    nothing waits forever on work that can no longer happen.
    """

    def __init__(self, graph: TaskGraph) -> None:
        graph.topological_order()  # raises GraphCycleError on cycles
        self.graph = graph
        self._waiting = {key: len(graph.dependencies(key))
                         for key in graph.keys()}
        self._ready: deque = deque(
            key for key in graph.keys() if self._waiting[key] == 0)
        self._t0 = time.monotonic()
        self.trace: Dict[str, NodeTrace] = {
            key: NodeTrace(kind=getattr(graph.payload(key), "kind", "task"))
            for key in graph.keys()}
        for key in self._ready:
            self.trace[key].state = "ready"

    # -- dispatch -------------------------------------------------------

    @property
    def has_ready(self) -> bool:
        return bool(self._ready)

    def pop_ready(self) -> str:
        """The next dispatchable node key (deterministic order)."""
        key = self._ready.popleft()
        self.trace[key].state = "running"
        return key

    def start(self, key: str) -> None:
        """Record one dispatch of ``key`` (again, on every re-dispatch)."""
        now = time.monotonic() - self._t0
        trace = self.trace[key]
        trace.state = "running"
        trace.dispatches += 1
        trace.last_dispatch = now
        if trace.first_dispatch is None:
            trace.first_dispatch = now

    def requeue(self, key: str, front: bool = False) -> None:
        """Hand a popped/dispatched node back for a later dispatch."""
        if self.trace[key].state in _TERMINAL:
            raise ValueError(f"cannot requeue finished node {key!r}")
        self.trace[key].state = "ready"
        if front:
            self._ready.appendleft(key)
        else:
            self._ready.append(key)

    # -- outcomes -------------------------------------------------------

    def complete(self, key: str) -> Tuple[str, ...]:
        """Mark ``key`` done; returns (and queues) the newly-ready keys."""
        self._finish(key, "done")
        unlocked = []
        for dep in self.graph.dependents(key):
            self._waiting[dep] -= 1
            if self._waiting[dep] == 0 and self.trace[dep].state == "pending":
                self.trace[dep].state = "ready"
                self._ready.append(dep)
                unlocked.append(dep)
        return tuple(unlocked)

    def fail(self, key: str) -> Tuple[str, ...]:
        """Mark ``key`` failed; transitively skip its dependents.

        Returns the skipped keys (deterministic graph-insertion order) so
        the engine can attach one structured ``"dependency"`` failure per
        skipped node.  Dependents already finished (a requeue-after-
        success cannot happen) are left untouched.
        """
        self._finish(key, "failed")
        doomed: List[str] = []
        stack = list(self.graph.dependents(key))
        seen = set()
        while stack:
            dep = stack.pop()
            if dep in seen or self.trace[dep].state in _TERMINAL:
                continue
            seen.add(dep)
            doomed.append(dep)
            stack.extend(self.graph.dependents(dep))
        skipped = tuple(k for k in self.graph.keys() if k in seen)
        for dep in skipped:
            self._finish(dep, "skipped")
        return skipped

    def _finish(self, key: str, state: str) -> None:
        trace = self.trace[key]
        trace.state = state
        trace.finished = time.monotonic() - self._t0

    # -- aggregate state ------------------------------------------------

    def state(self, key: str) -> str:
        return self.trace[key].state

    @property
    def is_finished(self) -> bool:
        return all(t.state in _TERMINAL for t in self.trace.values())

    @property
    def n_skipped(self) -> int:
        return sum(1 for t in self.trace.values() if t.state == "skipped")

    def trace_dict(self) -> Dict[str, Dict[str, Any]]:
        """JSON-safe per-node trace, in graph insertion order."""
        return {key: t.to_dict() for key, t in self.trace.items()}


def compile_solve_graph(requests: Iterable[RunRequest],
                        edges: Iterable[Tuple[str, str]] = (),
                        assets: Iterable[Tuple[int, str]] = (),
                        ) -> TaskGraph:
    """Compile a batch of requests (plus typed dependencies) into a graph.

    ``edges`` are "needs baseline" pairs of request keys
    ``(dependent, dependency)`` — the dependency side becomes a
    :class:`BaselineNode`.  ``assets`` lists ``(sid, scale)`` store
    entries to materialise; every request touching that pair gains a
    "needs store entry" edge.  Asset nodes are inserted *first* so the
    scheduler dispatches pre-warm ahead of the solves racing it.
    Duplicate request keys collapse to one node (identical identity means
    identical work), and a request that is its own baseline needs no edge.
    """
    edges = tuple(edges)
    graph = TaskGraph()
    for sid, scale in assets:
        node = AssetNode(sid=sid, scale=scale)
        if node.key not in graph:
            graph.add_node(node)
    baseline_keys = {dependency for _, dependency in edges}
    for request in requests:
        key = request.key()
        if key in graph:
            continue
        node = (BaselineNode(request) if key in baseline_keys
                else SolveNode(request))
        graph.add_node(node)
        asset_key = AssetNode.key_for(request.sid, request.scale)
        if asset_key in graph:
            graph.depend(key, asset_key)
    for dependent, dependency in edges:
        if dependent != dependency:
            graph.depend(dependent, dependency)
    return graph
